"""Ablation A4: AMP design choices — denoiser family and iteration budget.

Compares the Bayes-optimal Bernoulli posterior-mean denoiser against
the sparsity-agnostic soft threshold, and checks that state evolution's
success prediction matches simulated AMP across an m-sweep.
"""

import numpy as np

import repro
from repro.amp import (
    AMPConfig,
    BayesBernoulliDenoiser,
    SoftThresholdDenoiser,
    predicted_success,
    run_amp,
)
from repro.experiments.figures import FigureResult
from repro.utils.rng import spawn_rngs


def _success_rate(n, k, m, denoiser_factory, trials, seed, max_iter=50):
    hits = 0
    for gen in spawn_rngs(seed, trials):
        truth = repro.sample_ground_truth(n, k, gen)
        graph = repro.sample_pooling_graph(n, m, rng=gen)
        meas = repro.measure(graph, truth, repro.ZChannel(0.1), gen)
        result = run_amp(
            meas,
            denoiser=denoiser_factory(k / n),
            config=AMPConfig(max_iter=max_iter),
        )
        hits += bool(result.exact)
    return hits / trials


def _sweep() -> FigureResult:
    n, theta, trials = 600, 0.25, 12
    k = repro.sublinear_k(n, theta)
    rows = []
    for m in (60, 120, 240):
        bayes = _success_rate(
            n, k, m, lambda pi: BayesBernoulliDenoiser(pi), trials, seed=31
        )
        soft = _success_rate(
            n, k, m, lambda pi: SoftThresholdDenoiser(alpha=1.5), trials, seed=31
        )
        one_iter = _success_rate(
            n, k, m, lambda pi: BayesBernoulliDenoiser(pi), trials, seed=31,
            max_iter=1,
        )
        se = predicted_success(BayesBernoulliDenoiser(k / n), k / n, m / n)
        rows.append({
            "m": m,
            "bayes_denoiser": bayes,
            "soft_threshold": soft,
            "bayes_1_iteration": one_iter,
            "state_evolution_predicts": se,
        })
    return FigureResult(
        figure="ablation_amp",
        description="AMP denoiser / iteration ablation (Z-channel p=0.1)",
        params={"n": n, "k": k, "trials": trials},
        rows=rows,
    )


def test_ablation_amp_denoisers(benchmark, emit):
    result = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(result)
    for row in result.rows:
        # Bayes denoiser dominates the generic soft threshold.
        assert row["bayes_denoiser"] >= row["soft_threshold"] - 0.1
        # Iterations matter: one step is no better than the full run
        # (the paper notes AMP's first step sees the same information
        # as the greedy algorithm).
        assert row["bayes_1_iteration"] <= row["bayes_denoiser"] + 0.1
    at_240 = result.rows[-1]
    assert at_240["bayes_denoiser"] >= 0.9
    assert at_240["state_evolution_predicts"]
