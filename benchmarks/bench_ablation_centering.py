"""Ablation A1: score centering (Algorithm 1's k/2 vs oracle vs none).

Algorithm 1 (line 14) ranks by ``Psi - Delta* k/2``. The analysis
(Eq. 3-4) centers by the channel-aware expected query result instead.
This ablation quantifies the difference:

* Z-channel, small p — the two centerings are nearly equivalent (the
  residual bias ``p k/2`` per query is small);
* general channel with q > 0 — the k/2 centering leaves a large bias
  that couples with Delta* fluctuations, inflating the required m by an
  order of magnitude; the oracle centering recovers the Theorem 1
  trajectory (this is why figure4 defaults to oracle centering);
* no centering at all is catastrophic whenever Delta* varies.
"""

import numpy as np

import repro
from repro.experiments.figures import FigureResult
from repro.experiments.runner import required_queries_trials


def _sweep() -> FigureResult:
    rows = []
    configs = [
        ("Z p=0.1", repro.ZChannel(0.1), 800),
        ("Z p=0.3", repro.ZChannel(0.3), 800),
        ("GNC p=q=0.05", repro.NoisyChannel(0.05, 0.05), 400),
    ]
    for label, channel, n in configs:
        k = repro.sublinear_k(n, 0.25)
        for centering in ("half_k", "oracle"):
            sample = required_queries_trials(
                n, k, channel, trials=5, seed=7, centering=centering
            )
            rows.append({
                "series": centering,
                "channel": label,
                "n": n,
                "required_m_median": sample.median,
                "failures": sample.failures,
            })
    return FigureResult(
        figure="ablation_centering",
        description="score centering ablation (Algorithm 1 line 14)",
        params={"theta": 0.25, "trials": 5},
        rows=rows,
    )


def test_ablation_centering(benchmark, emit):
    result = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(result)

    def med(centering, channel):
        for row in result.rows:
            if row["series"] == centering and row["channel"] == channel:
                return row["required_m_median"]
        raise KeyError((centering, channel))

    # Z-channel: centering choice changes little (within 2x).
    for channel in ("Z p=0.1", "Z p=0.3"):
        ratio = med("half_k", channel) / med("oracle", channel)
        assert 0.4 < ratio < 3.0
    # GNC: the k/2 centering is far worse than the oracle centering.
    assert med("half_k", "GNC p=q=0.05") > 2.0 * med("oracle", "GNC p=q=0.05")
