"""Ablation A2: pooling design — with vs without replacement.

The paper samples each query's Gamma agents *with* replacement
(multigraph), noting this "adapts techniques used in a variety of other
statistical inference problems". The alternative draws Gamma *distinct*
agents per query. This ablation compares the required number of queries
under both designs: without replacement every query carries slightly
more information (no duplicate reads), so it needs somewhat fewer
queries — but the difference is a modest constant factor, which is why
the analytically cleaner multigraph design is used.
"""

import numpy as np

import repro
from repro.core.measurement import measure
from repro.core.scores import separation_margin, scores_from_measurements
from repro.experiments.figures import FigureResult
from repro.utils.rng import spawn_rngs


def _sample_design(kind, n, max_m, rng):
    if kind == "with-replacement":
        return repro.sample_pooling_graph(n, max_m, rng=rng)
    if kind == "distinct":
        return repro.sample_pooling_graph(n, max_m, rng=rng, with_replacement=False)
    if kind == "regular":
        # Constant column weight tuned so the expected query size is n/2,
        # matching the other designs' per-query information budget.
        return repro.sample_regular_design(n, max_m, agent_degree=max_m // 2, rng=rng)
    raise ValueError(kind)


def _required_m_fixed_design(n, k, channel, kind, rng, max_m=4000):
    """Binary-search-free required-m scan over a growing fixed graph."""
    truth = repro.sample_ground_truth(n, k, rng)
    graph = _sample_design(kind, n, max_m, rng)
    meas = measure(graph, truth, channel, rng)
    # Stream prefix-by-prefix in steps of 10 queries.
    psi = np.zeros(n)
    delta_star = np.zeros(n, dtype=np.int64)
    for m in range(1, max_m + 1):
        agents, _ = graph.query(m - 1)
        psi[agents] += meas.results[m - 1]
        delta_star[agents] += 1
        if m % 5 == 0:
            scores = psi - delta_star * k / 2.0
            if separation_margin(scores, truth.sigma) > 0:
                return m
    return None


def _sweep() -> FigureResult:
    rows = []
    for n in (400, 800):
        k = repro.sublinear_k(n, 0.25)
        channel = repro.ZChannel(0.1)
        for kind in ("with-replacement", "distinct", "regular"):
            values = []
            for gen in spawn_rngs(17, 5):
                m = _required_m_fixed_design(n, k, channel, kind, gen)
                if m is not None:
                    values.append(m)
            rows.append({
                "series": kind,
                "n": n,
                "k": k,
                "required_m_median": float(np.median(values)),
                "trials": len(values),
            })
    return FigureResult(
        figure="ablation_design",
        description="pooling design ablation: multigraph vs simple graph vs "
        "constant column weight",
        params={"theta": 0.25, "p": 0.1, "check_stride": 5},
        rows=rows,
    )


def test_ablation_pooling_design(benchmark, emit):
    result = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(result)
    for n in (400, 800):
        by_kind = {
            r["series"]: r["required_m_median"]
            for r in result.rows
            if r["n"] == n
        }
        # All three designs land in the same order of magnitude; the
        # paper's multigraph choice costs at most a small constant.
        best = min(by_kind.values())
        for kind, median in by_kind.items():
            assert median <= 3.5 * best, (kind, by_kind)
