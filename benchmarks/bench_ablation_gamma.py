"""Ablation A3: query size Gamma (the paper fixes Gamma = n/2).

The model pools Gamma = n/2 agents per query. This ablation sweeps
Gamma in {n/8, n/4, n/2, 3n/4} and measures the required number of
queries on the Z-channel. Larger pools pack more signal per query but
also more interference from other agents; around n/2 the trade-off is
near its optimum, supporting the paper's choice.
"""

import numpy as np

import repro
from repro.experiments.figures import FigureResult
from repro.experiments.runner import required_queries_trials


def _sweep() -> FigureResult:
    n = 800
    k = repro.sublinear_k(n, 0.25)
    channel = repro.ZChannel(0.1)
    rows = []
    for frac_label, gamma in (
        ("n/8", n // 8),
        ("n/4", n // 4),
        ("n/2", n // 2),
        ("3n/4", 3 * n // 4),
    ):
        sample = required_queries_trials(
            n, k, channel, trials=5, seed=23, gamma=gamma
        )
        rows.append({
            "series": f"Gamma={frac_label}",
            "gamma": gamma,
            "n": n,
            "required_m_median": sample.median,
            "failures": sample.failures,
        })
    return FigureResult(
        figure="ablation_gamma",
        description="query size ablation (paper: Gamma = n/2)",
        params={"n": n, "k": k, "p": 0.1, "trials": 5},
        rows=rows,
    )


def test_ablation_query_size(benchmark, emit):
    result = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(result)
    by_gamma = {row["series"]: row["required_m_median"] for row in result.rows}
    assert all(row["failures"] == 0 for row in result.rows)
    # Tiny pools waste queries: n/8 needs more than n/2.
    assert by_gamma["Gamma=n/8"] > by_gamma["Gamma=n/2"]
    # n/2 is within a small factor of the best choice on this grid.
    best = min(by_gamma.values())
    assert by_gamma["Gamma=n/2"] <= 1.6 * best
