"""Extension bench: communication cost — greedy vs message-passing AMP.

The paper's core efficiency argument (Sections III and VI): the greedy
algorithm needs "only one information exchange per network node" while
AMP "requires an information flow through the whole communication
network within multiple rounds", making unmodified AMP inefficient in
the distributed setting. This bench puts numbers on that claim: the
exact message/bit/round bill of both algorithms at the SAME query
budget, next to their success rates.
"""

import numpy as np

import repro
from repro.amp import (
    amp_communication_cost,
    greedy_communication_cost,
    run_distributed_amp,
)
from repro.experiments.figures import FigureResult
from repro.utils.rng import spawn_rngs


def _sweep() -> FigureResult:
    n, theta, p, trials = 512, 0.25, 0.1, 6
    k = repro.sublinear_k(n, theta)
    rows = []
    for m in (80, 160, 320):
        greedy_exact = amp_exact = 0
        greedy_msgs = amp_msgs = amp_rounds = greedy_rounds = 0
        for gen in spawn_rngs(71, trials):
            truth = repro.sample_ground_truth(n, k, gen)
            graph = repro.sample_pooling_graph(n, m, rng=gen)
            meas = repro.measure(graph, truth, repro.ZChannel(p), gen)

            greedy = repro.greedy_reconstruct(meas)
            greedy_cost = greedy_communication_cost(meas)
            amp_report = run_distributed_amp(meas)

            greedy_exact += bool(greedy.exact)
            amp_exact += bool(amp_report.result.exact)
            greedy_msgs += greedy_cost.messages
            amp_msgs += amp_report.cost.messages
            greedy_rounds += greedy_cost.rounds
            amp_rounds += amp_report.cost.rounds
        rows.append({
            "m": m,
            "greedy_success": greedy_exact / trials,
            "amp_success": amp_exact / trials,
            "greedy_messages": greedy_msgs // trials,
            "amp_messages": amp_msgs // trials,
            "message_ratio_amp_over_greedy": amp_msgs / greedy_msgs,
            "greedy_rounds": greedy_rounds // trials,
            "amp_rounds": amp_rounds // trials,
        })
    return FigureResult(
        figure="communication_cost",
        description="communication bill: Algorithm 1 vs message-passing AMP "
        "(n=512, Z p=0.1)",
        params={"n": n, "k": k, "p": p, "trials": trials},
        rows=rows,
    )


def test_communication_greedy_vs_amp(benchmark, emit):
    result = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(result)
    for row in result.rows:
        # AMP moves strictly more data at every budget...
        assert row["message_ratio_amp_over_greedy"] > 1.0
        assert row["amp_rounds"] >= row["greedy_rounds"]
    # ...and the gap widens with m (more incidences per iteration).
    ratios = [row["message_ratio_amp_over_greedy"] for row in result.rows]
    assert ratios[-1] > ratios[0]
    # While AMP wins on sample efficiency (the paper's other half).
    mid = result.rows[1]
    assert mid["amp_success"] >= mid["greedy_success"]
