"""Extension bench: communication cost — greedy vs message-passing AMP.

The paper's core efficiency argument (Sections III and VI): the greedy
algorithm needs "only one information exchange per network node" while
AMP "requires an information flow through the whole communication
network within multiple rounds", making unmodified AMP inefficient in
the distributed setting. This bench puts numbers on that claim: the
exact message/bit/round bill of both protocols at the same per-``n``
query budget, next to the success rates the budget buys.

Since PR 8 the sweep itself is :func:`figure_robustness_comm`: one
``distributed`` and one ``distributed_amp`` cell per ``n`` on a single
:class:`~repro.experiments.scheduler.SweepPlan`, with the per-cell
:class:`NetworkMetrics` fold supplying the bill — the same pipeline
the CLI's ``robustness_comm`` subcommand runs.
"""

from repro.experiments.figures import figure_robustness_comm


def _sweep():
    return figure_robustness_comm(
        n_values=(128, 256, 512),
        theta=0.25,
        p=0.1,
        m_fraction=0.4,
        trials=6,
        seed=71,
    )


def test_communication_greedy_vs_amp(benchmark, emit):
    result = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(result)
    greedy = result.series("distributed")
    amp = result.series("distributed_amp")
    gaps = []
    for g, a in zip(greedy, amp):
        assert g["n"] == a["n"] and g["m"] == a["m"]
        # AMP moves several times more data at every budget (the
        # iterative message flow vs one exchange per node)...
        assert a["mean_messages"] > 3 * g["mean_messages"]
        assert a["mean_bits"] > 2 * g["mean_bits"]
        assert a["mean_rounds"] >= g["mean_rounds"]
        gaps.append(a["mean_messages"] - g["mean_messages"])
    # ...and the absolute gap widens with n (more incidences per
    # iteration; the ratio stays a roughly constant multiple).
    assert all(b > a for a, b in zip(gaps, gaps[1:]))
    # While AMP wins on sample efficiency (the paper's other half).
    assert sum(a["success_rate"] for a in amp) >= sum(
        g["success_rate"] for g in greedy
    )
