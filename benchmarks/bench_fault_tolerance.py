"""Extension bench: Algorithm 1 under message loss (failure injection).

The paper assumes reliable links. This bench quantifies robustness:
query-broadcast messages are dropped independently with probability
``d`` and we measure the overlap/success of the distributed protocol.
Because a dropped broadcast merely removes one query result from one
agent's neighborhood sum, losing a fraction d of messages behaves like
running with ~ (1-d) m effective queries — so reconstruction quality
degrades gracefully rather than collapsing.
"""

import numpy as np

import repro
from repro.distributed import FaultModel, run_distributed_algorithm1
from repro.distributed.messages import QueryResultMessage
from repro.experiments.figures import FigureResult
from repro.utils.rng import spawn_rngs


def _sweep() -> FigureResult:
    n, k, m, p = 128, 4, 220, 0.1
    trials = 8
    rows = []
    for drop in (0.0, 0.1, 0.3, 0.5, 0.7):
        exact = 0
        overlap_sum = 0.0
        dropped_total = 0
        for gen in spawn_rngs(55, trials):
            truth = repro.sample_ground_truth(n, k, gen)
            graph = repro.sample_pooling_graph(n, m, rng=gen)
            meas = repro.measure(graph, truth, repro.ZChannel(p), gen)
            fault = FaultModel(
                drop_probability=drop,
                affected_types=(QueryResultMessage,),
                rng=gen,
            )
            report = run_distributed_algorithm1(meas, fault_model=fault)
            exact += bool(report.result.exact)
            overlap_sum += report.result.overlap
            dropped_total += report.result.meta["dropped"]
        rows.append({
            "series": "lossy-broadcast",
            "drop_probability": drop,
            "success_rate": exact / trials,
            "mean_overlap": overlap_sum / trials,
            "mean_dropped": dropped_total / trials,
        })
    return FigureResult(
        figure="fault_tolerance",
        description="Algorithm 1 under query-broadcast loss (n=128, m=220)",
        params={"n": n, "k": k, "m": m, "p": p, "trials": trials},
        rows=rows,
    )


def test_fault_tolerance_degrades_gracefully(benchmark, emit):
    result = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(result)
    rows = result.rows
    # Reliable links: near-perfect at 2x the necessary query count.
    assert rows[0]["success_rate"] >= 0.7
    assert rows[0]["mean_dropped"] == 0
    # Graceful degradation: overlap stays high at 30% loss...
    at_30 = next(r for r in rows if r["drop_probability"] == 0.3)
    assert at_30["mean_overlap"] >= 0.8
    # ...and decays (weakly) monotonically with the drop rate.
    overlaps = [r["mean_overlap"] for r in rows]
    assert all(b <= a + 0.1 for a, b in zip(overlaps, overlaps[1:]))
    assert overlaps[-1] <= overlaps[0]
