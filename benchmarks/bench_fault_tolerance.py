"""Extension bench: Algorithm 1 under message loss (failure injection).

The paper assumes reliable links. This bench quantifies robustness:
query-broadcast messages are dropped independently with probability
``d`` and we measure the overlap/success of the distributed protocol.
Because a dropped broadcast merely removes one query result from one
agent's neighborhood sum, losing a fraction d of messages behaves like
running with ~ (1-d) m effective queries — so reconstruction quality
degrades gracefully rather than collapsing.

Since PR 8 the sweep itself is :func:`figure_robustness_loss`: one
``algorithm="distributed"`` cell per drop rate on a single
:class:`~repro.experiments.scheduler.SweepPlan`, each trial's
:class:`FaultModel` seeded from the trial's child seed — the same
pipeline the CLI's ``robustness_loss`` subcommand runs, bit-identical
on every backend.
"""

from repro.experiments.figures import figure_robustness_loss


def _sweep():
    return figure_robustness_loss(
        n=128,
        k=4,
        p=0.1,
        m=220,
        drop_rates=(0.0, 0.1, 0.3, 0.5, 0.7),
        trials=8,
        seed=55,
    )


def test_fault_tolerance_degrades_gracefully(benchmark, emit):
    result = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(result)
    rows = result.rows
    # Reliable links: near-perfect at 2x the necessary query count.
    assert rows[0]["success_rate"] >= 0.7
    assert rows[0]["mean_dropped"] == 0
    # Graceful degradation: overlap stays high at 30% loss...
    at_30 = next(r for r in rows if r["drop_rate"] == 0.3)
    assert at_30["overlap"] >= 0.8
    # ...and decays (weakly) monotonically with the drop rate.
    overlaps = [r["overlap"] for r in rows]
    assert all(b <= a + 0.1 for a, b in zip(overlaps, overlaps[1:]))
    assert overlaps[-1] <= overlaps[0]
