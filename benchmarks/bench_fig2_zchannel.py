"""Figure 2: required queries vs n for the Z-channel (theta = 0.25).

Paper series: p in {0.1, 0.3, 0.5} over n in 10^2..10^5, plus the
Theorem 1 dashed bound for p = 0.1, eps = 0.05. The default bench grid
stops at n ~ 3200 to keep wall-time sane; run the CLI with
``--full-scale`` for the complete sweep.

Expected shape (paper): all series grow ~ k ln n; the p = 0.1 curve
tracks the theory line; larger p sit progressively higher (and beyond
the asymptotic prediction, as the paper itself reports for p >= 0.3).
"""

from repro.experiments.figures import figure2
from repro.experiments.stats import geometric_space


def test_fig2_required_queries_zchannel(benchmark, emit):
    result = benchmark.pedantic(
        lambda: figure2(
            n_values=geometric_space(100, 3200, 6),
            ps=(0.1, 0.3, 0.5),
            trials=3,
            seed=2022,
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)

    # Shape assertions mirroring the paper's qualitative claims.
    for p in (0.1, 0.3, 0.5):
        series = result.series(f"p={p:g}")
        assert all(row["failures"] == 0 for row in series)
        # required m grows with n
        assert series[-1]["required_m_median"] > series[0]["required_m_median"]
    # noisier channels need more queries at the largest n
    at_top = {
        p: result.series(f"p={p:g}")[-1]["required_m_median"]
        for p in (0.1, 0.3, 0.5)
    }
    assert at_top[0.1] < at_top[0.3] < at_top[0.5]
    # p = 0.1 stays within a small factor of the theory line
    theory_top = result.series("theory p=0.1")[-1]["required_m_median"]
    assert at_top[0.1] < 2.0 * theory_top
