"""Figure 3: required queries vs n, noisy query model vs noiseless.

Paper series: "without noise" vs "with noise (lambda = 1)" for
theta = 0.25. Expected shape: both grow ~ k ln n with the noisy curve a
roughly constant factor above the noiseless one; the gap closes as n
grows because the per-agent signal Delta ~ m/2 outruns the noise
std lambda sqrt(Delta*) (Theorem 2: any fixed lambda is eventually
negligible).
"""

from repro.experiments.figures import figure3
from repro.experiments.stats import geometric_space


def test_fig3_required_queries_noisy_query(benchmark, emit):
    result = benchmark.pedantic(
        lambda: figure3(
            n_values=geometric_space(100, 3200, 6),
            lams=(1.0, 2.0),
            trials=3,
            seed=2022,
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)

    clean = result.series("without noise")
    noisy1 = result.series("lambda=1")
    noisy2 = result.series("lambda=2")
    assert all(row["failures"] == 0 for row in clean + noisy1 + noisy2)
    # noise can only increase the required number of queries (on medians,
    # averaged over the grid to absorb trial variance)
    mean = lambda rows: sum(r["required_m_median"] for r in rows) / len(rows)
    assert mean(noisy1) >= mean(clean)
    assert mean(noisy2) >= mean(noisy1)
    # growth in n
    assert clean[-1]["required_m_median"] > clean[0]["required_m_median"]
