"""Figure 4: required queries vs n, general noisy channel p = q.

Paper series: p = q in {1e-1 .. 1e-5} for theta = 0.25, with the GNC
bound of Theorem 1 dashed. Expected shape: small q behave like the
Z-channel (m ~ k ln n); once q dominates k/n the series bends onto the
steeper n ln n trajectory — the crossover the paper points out for
q = 1e-3 around n ~ 3000 (here visible for larger q at the bench's
smaller n range).
"""

from repro.core.noise import effective_channel_regime
from repro.core.ground_truth import sublinear_k
from repro.experiments.figures import figure4
from repro.experiments.stats import geometric_space


def test_fig4_required_queries_general_channel(benchmark, emit):
    n_values = geometric_space(100, 1600, 5)
    result = benchmark.pedantic(
        lambda: figure4(
            n_values=n_values,
            qs=(1e-1, 1e-2, 1e-3, 1e-4, 1e-5),
            trials=2,
            seed=2022,
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)

    # Monotone in q at the largest n: larger false-positive rates demand
    # more queries.
    top = {q: result.series(f"q={q:g}")[-1]["required_m_median"]
           for q in (1e-1, 1e-3, 1e-5)}
    assert top[1e-1] > top[1e-3] >= 0.3 * top[1e-5]
    # Tiny q is in the Z-like regime at these sizes (remark after Thm 1).
    n_top = n_values[-1]
    assert effective_channel_regime(1e-5, sublinear_k(n_top, 0.25), n_top) == "like-z"
    assert effective_channel_regime(1e-1, sublinear_k(n_top, 0.25), n_top) == (
        "like-positive-q"
    )
    # q = 1e-1 sits within a small factor of its GNC theory line.
    sim = result.series("q=0.1")[-1]["required_m_median"]
    theory = result.series("theory q=0.1")[-1]["required_m_median"]
    assert sim < 4.0 * theory
