"""Figure 5: boxplots of the required m per configuration.

Paper: n in {10^3, 10^4, 10^5} for the Z-channel (p = 0.1, 0.3, 0.5)
and the noisy query model (lambda = 0, 1, 2, 3). The bench runs
n in {10^3, ~3.2*10^3} with 12 trials per box; the full grid is
available via ``python -m repro fig5 --full-scale``.

Expected shape: within each n, boxes order by noise level; boxes shift
upward with n; spreads (IQRs) are modest relative to medians.
"""

from repro.experiments.figures import figure5


def test_fig5_required_queries_boxplots(benchmark, emit):
    result = benchmark.pedantic(
        lambda: figure5(
            n_values=(1000, 3200),
            ps=(0.1, 0.3, 0.5),
            lams=(0.0, 1.0, 2.0, 3.0),
            trials=12,
            seed=2022,
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)

    rows = {(row["series"], row["n"]): row for row in result.rows}
    # Noise ordering of medians within each n.
    for n in (1000, 3200):
        assert rows[("Z p=0.1", n)]["median"] < rows[("Z p=0.5", n)]["median"]
        assert rows[("lambda=0", n)]["median"] <= rows[("lambda=3", n)]["median"]
    # Boxes shift upward with n for a fixed configuration.
    assert rows[("Z p=0.3", 1000)]["median"] < rows[("Z p=0.3", 3200)]["median"]
    # Valid box geometry everywhere.
    for row in result.rows:
        assert row["whisker_low"] <= row["q1"] <= row["median"] <= row["q3"]
        assert row["q3"] <= row["whisker_high"]
