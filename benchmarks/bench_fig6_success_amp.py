"""Figure 6: success rate vs m at n = 1000 — greedy vs AMP, Z-channel.

Paper: p in {0.1, 0.3, 0.5}, 100 runs per point, m up to 600; the
Theorem 1 bound for p = 0.1 (eps = 0.1) is dashed. The bench uses 20
trials per point and p in {0.1, 0.3} to stay fast.

Expected shape (the paper's headline comparison):
* both algorithms exhibit a phase transition in m;
* AMP's transition sits at much smaller m and its window is narrower;
* larger p shifts the greedy transition right.
"""

from repro.experiments.figures import figure6


def test_fig6_success_rate_greedy_vs_amp(benchmark, emit):
    m_values = list(range(50, 601, 50))
    result = benchmark.pedantic(
        lambda: figure6(
            n=1000,
            ps=(0.1, 0.3),
            m_values=m_values,
            trials=20,
            seed=2022,
            algorithms=("greedy", "amp"),
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)

    def rates(label):
        return {row["m"]: row["success_rate"] for row in result.series(label)}

    greedy01 = rates("greedy p=0.1")
    amp01 = rates("amp p=0.1")
    greedy03 = rates("greedy p=0.3")

    # Phase transitions: near-zero early, near-one late.
    assert greedy01[50] <= 0.2 and greedy01[600] >= 0.9
    assert amp01[600] >= 0.9
    # AMP transitions earlier: at every m it is at least as successful.
    assert all(amp01[m] >= greedy01[m] - 0.15 for m in m_values)
    assert amp01[100] > greedy01[100] + 0.3
    # Noisier channel shifts the greedy transition right.
    assert sum(greedy03.values()) <= sum(greedy01.values())
