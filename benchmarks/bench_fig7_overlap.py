"""Figure 7: overlap (fraction of identified 1-agents) vs m, greedy.

Paper: n = 1000, Z-channel, p in {0.1, 0.3}; 100 runs per point. The
key observation: near the Theorem 1 threshold the success rate of
*exact* reconstruction is only ~40% while the average overlap is
already ~90% — most 1-agents are found long before all of them are.
"""

from repro.core.bounds import theorem1_sublinear_z
from repro.experiments.figures import figure7


def test_fig7_overlap_curves(benchmark, emit):
    m_values = list(range(50, 601, 50))
    result = benchmark.pedantic(
        lambda: figure7(
            n=1000,
            ps=(0.1, 0.3),
            m_values=m_values,
            trials=25,
            seed=2022,
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)

    rows01 = {row["m"]: row for row in result.series("p=0.1")}
    # Overlap is monotone-ish and dominates success rate everywhere.
    for row in rows01.values():
        assert row["overlap"] >= row["success_rate"] - 1e-9
    assert rows01[600]["overlap"] >= 0.95

    # The paper's threshold observation: near the Theorem 1 bound the
    # overlap is far ahead of the exact-recovery rate.
    bound = theorem1_sublinear_z(1000, 0.25, 0.1, eps=0.1)
    nearest_m = min(m_values, key=lambda m: abs(m - bound))
    near = rows01[nearest_m]
    assert near["overlap"] >= near["success_rate"] + 0.1
    assert near["overlap"] >= 0.7
