"""Micro-benchmarks of the library's hot paths.

Two entry modes:

* **pytest-benchmark** (``pytest benchmarks/bench_perf_core.py``):
  classical throughput benchmarks (many rounds, statistics in the
  benchmark table): pooling-graph sampling, measurement, decoding,
  the incremental step, AMP, and sorting-network generation. The
  ``*_batch`` entries benchmark the vectorized engine of
  :mod:`repro.core.batch` against their legacy per-query counterparts.

* **perf-trajectory script** (``python benchmarks/bench_perf_core.py``):
  runs the end-to-end performance suite — dense-regime CSR
  construction (counting vs sort at the paper's ``Gamma = n/2``,
  ``n = 10^5``), a fig2-style required-queries sweep (legacy engine vs
  batch, serial vs sharded across ``--workers`` processes), a
  full-scale sparse AMP run with the dense path poisoned, batched
  (block-diagonal) AMP sweep cells against the pre-batching per-trial
  loop, a full-scale stacked-AMP poison case, the AMP required-m
  scan (prefix replay + galloping/stacked bisection) against the
  naive per-m probe loop, the sweep engine's flattened cross-cell
  queue against per-cell-barrier execution (with the per-worker
  spec-interning dispatch payloads), the AMP kernel seam (NumPy
  reference vs the fused Numba backend when importable, float32
  opt-in alongside), and the shared-memory arena dispatch payload
  against the pipe-pickled protocols — and appends
  one machine-readable entry (per-case wall time, speedup vs baseline,
  workers used, host info) to ``BENCH_perf_core.json`` at the repo
  root, so regressions across PRs stay visible. ``--smoke`` shrinks
  every case for CI time budgets and ``--case NAME`` restricts the run
  to named cases.
"""

import numpy as np

import repro
from repro.amp import run_amp
from repro.core.batch import BatchTrialRunner, sample_pooling_graph_batch
from repro.core.incremental import IncrementalDecoder, required_queries
from repro.distributed.sorting import odd_even_mergesort


N, K, M = 10_000, 10, 500


def _instance(seed=0, n=N, k=K, m=M, channel=None):
    gen = np.random.default_rng(seed)
    truth = repro.sample_ground_truth(n, k, gen)
    graph = repro.sample_pooling_graph(n, m, rng=gen)
    meas = repro.measure(graph, truth, channel or repro.ZChannel(0.1), gen)
    return truth, graph, meas


def test_perf_sample_pooling_graph(benchmark):
    gen = np.random.default_rng(1)
    benchmark(lambda: repro.sample_pooling_graph(N, 100, rng=gen))


def test_perf_sample_pooling_graph_batch(benchmark):
    gen = np.random.default_rng(1)
    benchmark(lambda: sample_pooling_graph_batch(N, 100, rng=gen))


# Sparse-query regime (gamma << n, the regular-design ablations): here
# the legacy per-query loop is overhead-bound and batching shines
# (>10x); in the dense gamma = n/2 regime the speedup is ~2x because
# the element-wise sort dominates either way.


def test_perf_sample_pooling_graph_sparse(benchmark):
    gen = np.random.default_rng(1)
    benchmark(lambda: repro.sample_pooling_graph(N, 2000, 128, rng=gen))


def test_perf_sample_pooling_graph_sparse_batch(benchmark):
    gen = np.random.default_rng(1)
    benchmark(lambda: sample_pooling_graph_batch(N, 2000, 128, rng=gen))


def test_perf_measure_z_channel(benchmark):
    truth, graph, _ = _instance()
    gen = np.random.default_rng(2)
    channel = repro.ZChannel(0.1)
    benchmark(lambda: repro.measure(graph, truth, channel, gen))


def test_perf_greedy_decode(benchmark):
    _, _, meas = _instance()
    benchmark(lambda: repro.greedy_reconstruct(meas))


def test_perf_neighborhood_sums(benchmark):
    _, graph, meas = _instance()
    results = np.asarray(meas.results, dtype=float)
    benchmark(lambda: graph.neighborhood_sums(results))


def test_perf_incremental_step(benchmark):
    gen = np.random.default_rng(3)
    truth = repro.sample_ground_truth(N, K, gen)
    decoder = IncrementalDecoder(truth, repro.ZChannel(0.1))

    def step():
        decoder.add_query(gen)
        return decoder.is_successful()

    benchmark(step)


def test_perf_required_queries_legacy(benchmark):
    gen = np.random.default_rng(4)
    benchmark(lambda: required_queries(2_000, 6, repro.ZChannel(0.1), gen))


def test_perf_required_queries_chunked(benchmark):
    gen = np.random.default_rng(4)
    runner = BatchTrialRunner(2_000, 6, repro.ZChannel(0.1))
    benchmark(lambda: runner.required_queries(gen))


def test_perf_batch_trial_runner(benchmark):
    runner = BatchTrialRunner(N, K, repro.ZChannel(0.1))
    benchmark(lambda: runner.run_trials(M, trials=4, seed=0))


def test_perf_amp_full_run(benchmark):
    _, _, meas = _instance(n=1000, k=6, m=300)
    benchmark(lambda: run_amp(meas))


# Batched AMP (block-diagonal trial stacking) vs the per-trial loop on
# the same seeds — the bit-identity of the two paths is pinned in
# tests/test_amp_batch.py; these entries track the speed ratio.


def test_perf_amp_trials_per_trial_loop(benchmark):
    from repro.amp import AMPConfig
    from repro.utils.rng import spawn_rngs

    config = AMPConfig(track_history=False)
    channel = repro.ZChannel(0.1)

    def loop():
        out = []
        for gen in spawn_rngs(0, 16):
            truth = repro.sample_ground_truth(1000, 6, gen)
            graph = repro.sample_pooling_graph_batch(1000, 120, rng=gen)
            meas = repro.measure(graph, truth, channel, gen)
            out.append(run_amp(meas, config=config))
        return out

    benchmark(loop)


def test_perf_amp_trials_batched(benchmark):
    from repro.amp.batch_amp import run_amp_trials
    from repro.utils.rng import spawn_seeds

    channel = repro.ZChannel(0.1)
    benchmark(
        lambda: run_amp_trials(
            1000, 6, channel, 120, spawn_seeds(0, 16)
        )
    )


def test_perf_batcher_schedule_generation(benchmark):
    benchmark(lambda: odd_even_mergesort(1024))


# Sweep engine: flattened cross-cell queue vs per-cell-barrier
# execution on the serial backend (pytest-benchmark twins of the
# script-mode `sweep_pipeline` case; the process-backend comparison
# with its pool lifetime lives in script mode only).


def _tiny_sweep_cells():
    channel = repro.ZChannel(0.1)
    return [(n, repro.sublinear_k(n, 0.25), channel) for n in (256, 512)]


def test_perf_sweep_flattened_queue(benchmark):
    from repro.experiments.scheduler import SweepPlan

    def flattened():
        plan = SweepPlan()
        for n, k, channel in _tiny_sweep_cells():
            plan.add_required_queries(
                n, k, channel, trials=3, seed=2022, check_every=4
            )
        return plan.run(backend="serial")

    benchmark.pedantic(flattened, rounds=3, iterations=1)


def test_perf_sweep_per_cell_barrier(benchmark):
    from repro.experiments.scheduler import SweepPlan

    def barrier():
        out = []
        for n, k, channel in _tiny_sweep_cells():
            plan = SweepPlan()
            plan.add_required_queries(
                n, k, channel, trials=3, seed=2022, check_every=4
            )
            out.extend(plan.run(backend="serial"))
        return out

    benchmark.pedantic(barrier, rounds=3, iterations=1)


# AMP required-m scan (prefix replay + galloping/stacked bisection) vs
# probing each grid point with a fresh standalone run — small-scale
# pytest-benchmark twins of the script-mode `amp_required_m` case.


def test_perf_required_queries_amp_scan(benchmark):
    from repro.amp.batch_amp import required_queries_amp
    from repro.utils.rng import spawn_seeds

    channel = repro.ZChannel(0.1)
    benchmark(
        lambda: required_queries_amp(
            512, 4, channel, spawn_seeds(0, 8), gamma=64,
            check_every=8, max_m=512,
        )
    )


def test_perf_required_queries_amp_linear(benchmark):
    from repro.amp.batch_amp import required_queries_amp_linear
    from repro.utils.rng import spawn_seeds

    channel = repro.ZChannel(0.1)
    benchmark(
        lambda: required_queries_amp_linear(
            512, 4, channel, spawn_seeds(0, 8), gamma=64,
            check_every=8, max_m=512,
        )
    )


# Dense-regime CSR construction beyond the uint16 radix fast path:
# compare the counting-sort construction (dispatched automatically for
# n > 2**16, gamma >= n/8) against the comparison-sort construction it
# replaces.


def test_perf_csr_dense_counting(benchmark):
    from repro.core.batch import _csr_from_draws_counting

    draws = np.random.default_rng(6).integers(0, 100_000, size=(64, 50_000))
    benchmark(lambda: _csr_from_draws_counting(draws, 100_000))


def test_perf_csr_dense_sort(benchmark):
    draws = np.random.default_rng(6).integers(0, 100_000, size=(64, 50_000))
    benchmark(lambda: _legacy_sort_csr(draws, 50_000))


# ---------------------------------------------------------------------
# Perf-trajectory script mode: python benchmarks/bench_perf_core.py
# ---------------------------------------------------------------------

BENCH_JSON_SCHEMA = 1


def _timed(fn, repeats=1):
    """Best-of-``repeats`` wall time of ``fn()`` (returns seconds, result)."""
    import time

    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _legacy_sort_csr(draws, gamma):
    """The pre-counting construction at n > 2**16: int64 comparison sort."""
    flat = np.sort(draws, axis=1).ravel()
    starts = np.empty(flat.size, dtype=bool)
    starts[0] = True
    np.not_equal(flat[1:], flat[:-1], out=starts[1:])
    starts[::gamma] = True
    idx = np.flatnonzero(starts)
    return flat[idx].astype(np.int64), np.diff(idx, append=flat.size)


def _case_csr_dense(smoke):
    """Counting vs old sort CSR construction at Gamma = n/2, n beyond uint16.

    On memory-bandwidth-starved hosts the two are near time-parity; the
    counting construction additionally avoids the sort's full ``(m,
    gamma)`` int64 sorted copy (recorded as ``sort_copy_mib_avoided``),
    which is the memory half of the dense-regime sampling ceiling.
    """
    from repro.core.batch import _csr_from_draws_counting, _use_counting_csr

    n = 70_000 if smoke else 100_000
    m = 64 if smoke else 400
    gamma = n // 2
    assert _use_counting_csr(n, gamma)
    draws = np.random.default_rng(6).integers(0, n, size=(m, gamma))
    repeats = 1 if smoke else 3
    baseline_s, (sort_agents, sort_counts) = _timed(
        lambda: _legacy_sort_csr(draws, gamma), repeats
    )
    wall_s, (_, agents, counts) = _timed(
        lambda: _csr_from_draws_counting(draws, n), repeats
    )
    assert np.array_equal(agents, sort_agents)
    assert np.array_equal(counts, sort_counts)
    return {
        "case": "csr_dense_gamma_half_counting",
        "n": n,
        "m": m,
        "gamma": gamma,
        "wall_s": round(wall_s, 4),
        "baseline": "int64 comparison-sort CSR (pre-PR construction)",
        "baseline_s": round(baseline_s, 4),
        "speedup": round(baseline_s / wall_s, 3) if wall_s else None,
        "sort_copy_mib_avoided": round(m * gamma * 8 / 2**20, 1),
    }


def _case_csr_sparse_u32(smoke):
    """uint32-narrowed sort vs old int64 sort in the sparse n > 2**16 regime."""
    from repro.core.batch import _csr_from_draws, _use_counting_csr

    n = 70_000 if smoke else 100_000
    m = 500 if smoke else 2000
    gamma = 1000
    assert not _use_counting_csr(n, gamma)
    draws = np.random.default_rng(7).integers(0, n, size=(m, gamma))
    repeats = 2 if smoke else 3
    baseline_s, (sort_agents, sort_counts) = _timed(
        lambda: _legacy_sort_csr(draws, gamma), repeats
    )
    wall_s, (_, agents, counts) = _timed(
        lambda: _csr_from_draws(draws, n), repeats
    )
    assert np.array_equal(agents, sort_agents)
    assert np.array_equal(counts, sort_counts)
    return {
        "case": "csr_sparse_uint32_sort",
        "n": n,
        "m": m,
        "gamma": gamma,
        "wall_s": round(wall_s, 4),
        "baseline": "int64 comparison-sort CSR (pre-PR construction)",
        "baseline_s": round(baseline_s, 4),
        "speedup": round(baseline_s / wall_s, 3) if wall_s else None,
    }


def _case_fig2_sweep(smoke, workers):
    """Fig2-style required-queries sweep: legacy vs batch vs sharded."""
    from repro.experiments import shutdown_pool
    from repro.experiments.runner import required_queries_trials

    n_values = (400, 1000) if smoke else (1000, 3000, 10_000)
    trials = 3 if smoke else 10
    channel = repro.ZChannel(0.1)

    def sweep(engine, w):
        out = []
        for n in n_values:
            k = repro.sublinear_k(n, 0.25)
            out.append(
                required_queries_trials(
                    n, k, channel, trials=trials, seed=2022,
                    engine=engine, workers=w,
                ).values
            )
        return out

    legacy_s, legacy_vals = _timed(lambda: sweep("legacy", 1))
    serial_s, serial_vals = _timed(lambda: sweep("batch", 1))
    # Warm the pool outside the timed region: interpreter start-up is a
    # one-time cost per session, not a per-sweep cost.
    required_queries_trials(
        100, 3, channel, trials=workers, seed=0, workers=workers
    )
    sharded_s, sharded_vals = _timed(lambda: sweep("batch", workers))
    shutdown_pool()
    assert sharded_vals == serial_vals  # bit-identical sharding
    return {
        "case": "fig2_sweep",
        "n_values": list(n_values),
        "trials": trials,
        "workers": workers,
        "wall_s": round(sharded_s, 4),
        "serial_batch_s": round(serial_s, 4),
        "baseline": "legacy engine, serial",
        "baseline_s": round(legacy_s, 4),
        "speedup": round(legacy_s / sharded_s, 3) if sharded_s else None,
        "speedup_vs_serial_batch": (
            round(serial_s / sharded_s, 3) if sharded_s else None
        ),
    }


def _case_amp_sparse(smoke):
    """Full-scale sparse AMP with the dense path poisoned."""
    from repro.amp import AMPConfig

    n = 20_000 if smoke else 100_000
    m = 100 if smoke else 300
    gen = np.random.default_rng(8)
    truth = repro.sample_ground_truth(n, repro.sublinear_k(n, 0.25), gen)
    graph = repro.sample_pooling_graph_batch(n, m, rng=gen)
    meas = repro.measure(graph, truth, repro.ZChannel(0.1), gen)

    def poisoned(self, dtype=np.float64):
        raise AssertionError("dense adjacency materialized on the AMP hot path")

    original = repro.PoolingGraph.adjacency_dense
    repro.PoolingGraph.adjacency_dense = poisoned
    try:
        wall_s, result = _timed(
            lambda: run_amp(meas, config=AMPConfig(max_iter=5))
        )
    finally:
        repro.PoolingGraph.adjacency_dense = original
    return {
        "case": "amp_sparse_full_scale",
        "n": n,
        "m": m,
        "iterations": result.meta["iterations"],
        "dense_materialized": False,
        "wall_s": round(wall_s, 4),
    }


def _pre_batch_amp_sweep(
    n, k, channel, m, seed, trials, gamma=None, max_iter=50, tol=1e-7
):
    """The pre-batching AMP sweep path, reproduced faithfully.

    One trial per spawned child seed through the legacy per-query
    sampler, then the pre-PR ``run_amp``: fresh CSR build plus a
    ``.T.tocsr()`` transpose conversion per trial and the scalar
    (``np.linalg.norm``-based) iteration loop. This is what
    ``success_rate_curve(algorithm="amp")`` executed per trial before
    the block-diagonal batched runner existed.
    """
    from repro.amp.amp import (
        channel_corrected_results,
        default_denoiser,
        standardization_constants,
    )
    from repro.amp.denoisers import TAU_FLOOR
    from repro.core.scores import top_k_estimate
    from repro.utils.rng import spawn_rngs

    out = []
    for gen in spawn_rngs(seed, trials):
        truth = repro.sample_ground_truth(n, k, gen)
        graph = repro.sample_pooling_graph(n, m, gamma, gen)
        meas = repro.measure(graph, truth, channel, gen)
        denoiser = default_denoiser(n, k)
        y_raw = channel_corrected_results(meas.results, graph.gamma, channel)
        c, scale = standardization_constants(n, m, graph.gamma)
        y = (y_raw - c * k) / scale
        adjacency = graph.adjacency_sparse()
        adjacency_t = adjacency.T.tocsr()
        sigma = np.zeros(n)
        z = y.copy()
        for _ in range(max_iter):
            tau = max(float(np.linalg.norm(z) / np.sqrt(m)), TAU_FLOOR)
            r = (adjacency_t @ z - c * z.sum()) / scale + sigma
            sigma_new = denoiser(r, tau)
            onsager = (n / m) * float(np.mean(denoiser.derivative(r, tau)))
            z = y - (adjacency @ sigma_new - c * sigma_new.sum()) / scale + onsager * z
            step = float(np.linalg.norm(sigma_new - sigma) / np.sqrt(n))
            sigma = sigma_new
            if step < tol:
                break
        out.append(top_k_estimate(sigma, k))
    return out


def _case_amp_batch_sweep(smoke):
    """Batched AMP sweep cells vs the pre-batching per-trial loop.

    Two sub-measurements of one `success_rate_curve(algorithm="amp")`
    cell at n=4096, trials=32 (the acceptance scale): the paper's dense
    Gamma = n/2 design (above STACK_NNZ_CUTOFF, so the engine runs
    per-trial run_amp on batch-sampled graphs) and a sparse Gamma = 64
    ablation design (stacked block-diagonally). Decodes are asserted
    identical to the pre-PR loop before timing.
    """
    from repro.amp import AMPConfig
    from repro.amp.batch_amp import run_amp_trials
    from repro.utils.rng import spawn_seeds

    n = 1024 if smoke else 4096
    trials = 8 if smoke else 32
    channel = repro.ZChannel(0.1)
    k = repro.sublinear_k(n, 0.25)
    config = AMPConfig(track_history=False)
    repeats = 1 if smoke else 3
    sub = []
    for label, m, gamma in (
        ("dense_gamma_half", 150 if smoke else 400, None),
        ("sparse_gamma_64", 200 if smoke else 600, 64),
    ):
        def batched():
            return run_amp_trials(
                n, k, channel, m, spawn_seeds(2022, trials),
                gamma=gamma, config=config,
            )

        def pre_pr():
            return _pre_batch_amp_sweep(n, k, channel, m, 2022, trials, gamma)

        baseline_s, estimates = _timed(pre_pr, repeats)
        wall_s, results = _timed(batched, repeats)
        assert all(
            np.array_equal(est, r.estimate)
            for est, r in zip(estimates, results)
        )
        sub.append(
            {
                "design": label,
                "m": m,
                "gamma": gamma,
                "wall_s": round(wall_s, 4),
                "baseline_s": round(baseline_s, 4),
                "speedup": round(baseline_s / wall_s, 3) if wall_s else None,
            }
        )
    return {
        "case": "amp_batch_sweep_cell",
        "n": n,
        "trials": trials,
        "baseline": "pre-batching AMP sweep (legacy per-query sampler + "
        "per-trial run_amp with per-trial transpose)",
        "designs": sub,
    }


def _case_amp_batch_sparse_poison(smoke):
    """Full-scale stacked AMP with the dense path poisoned.

    Forces the block-diagonal stack at the paper's n = 10^5 (the
    harness's nnz cutoff would normally run this cell per trial) and
    asserts no dense m x n matrix materializes anywhere in it.
    """
    from repro.amp import AMPConfig
    from repro.amp.batch_amp import run_amp_batch
    from repro.utils.rng import spawn_rngs

    n = 20_000 if smoke else 100_000
    m = 100 if smoke else 300
    trials = 2 if smoke else 4
    k = repro.sublinear_k(n, 0.25)
    channel = repro.ZChannel(0.1)
    batch = []
    for gen in spawn_rngs(8, trials):
        truth = repro.sample_ground_truth(n, k, gen)
        graph = repro.sample_pooling_graph_batch(n, m, rng=gen)
        batch.append(repro.measure(graph, truth, channel, gen))

    def poisoned(self, dtype=np.float64):
        raise AssertionError("dense adjacency materialized in batched AMP")

    original = repro.PoolingGraph.adjacency_dense
    repro.PoolingGraph.adjacency_dense = poisoned
    try:
        wall_s, results = _timed(
            lambda: run_amp_batch(batch, config=AMPConfig(max_iter=5))
        )
    finally:
        repro.PoolingGraph.adjacency_dense = original
    return {
        "case": "amp_batch_sparse_full_scale",
        "n": n,
        "m": m,
        "trials": trials,
        "iterations": [r.meta["iterations"] for r in results],
        "dense_materialized": False,
        "wall_s": round(wall_s, 4),
    }


def _case_amp_required_m(smoke):
    """AMP required-m scan vs the naive per-m probe loop.

    The naive loop is what the harness offered before the scan existed:
    for every trial, walk the check grid upward and at each grid point
    draw a **fresh** instance (ground truth, pooling graph, channel
    noise — the per-trial path of a ``success_rate_curve`` probe) and
    run standalone AMP until the trial's first exact decode. The scan
    samples each trial's stream once, replays prefixes, and runs
    galloping bracket + stacked bisection; its certificate dial is
    timed in two modes: ``verify="full"`` (brute-force-identical by
    construction — probe count matches the naive loop's, so the gain
    is prefix replay + stacking) and ``verify="window"`` (sweeps only
    the galloping bracket — the sweep-scale mode, and the recorded
    headline speedup). Per-mode agreement with the exact scan on the
    same seeds is recorded and sanity-asserted.
    """
    from repro.amp import AMPConfig, run_amp
    from repro.amp.batch_amp import required_queries_amp
    from repro.utils.rng import spawn_rngs, spawn_seeds

    n = 1024 if smoke else 4096
    trials = 8 if smoke else 32
    gamma = 64
    check_every = 8 if smoke else 16
    max_m = 1024 if smoke else 2048
    k = repro.sublinear_k(n, 0.25)
    channel = repro.ZChannel(0.1)
    config = AMPConfig(track_history=False)

    def naive():
        out = []
        for gen in spawn_rngs(2022, trials):
            required = None
            for g in range(check_every, max_m + 1, check_every):
                truth = repro.sample_ground_truth(n, k, gen)
                graph = repro.sample_pooling_graph(n, g, gamma, gen)
                meas = repro.measure(graph, truth, channel, gen)
                if run_amp(meas, config=config).exact:
                    required = g
                    break
            out.append(required)
        return out

    def scan(verify):
        return [
            r.required_m
            for r in required_queries_amp(
                n, k, channel, spawn_seeds(2022, trials),
                gamma=gamma, check_every=check_every, max_m=max_m,
                verify=verify,
            )
        ]

    baseline_s, naive_values = _timed(naive)
    exact_s, exact_values = _timed(lambda: scan("full"))
    wall_s, window_values = _timed(lambda: scan("window"))
    assert all(v is not None for v in exact_values)
    agreement = sum(a == b for a, b in zip(exact_values, window_values))
    # The windowed sweep misses only successes hiding below a *failed
    # gallop point* — rare even at smoke scale; a collapse would mean
    # the profile assumption (or the scan) broke.
    assert agreement >= (3 * trials) // 4
    return {
        "case": "amp_required_m",
        "n": n,
        "trials": trials,
        "gamma": gamma,
        "check_every": check_every,
        "max_m": max_m,
        "wall_s": round(wall_s, 4),
        "verify_mode": "window",
        "baseline": "naive per-m probe loop (fresh instance + standalone "
        "run_amp per grid point per trial)",
        "baseline_s": round(baseline_s, 4),
        "speedup": round(baseline_s / wall_s, 3) if wall_s else None,
        "exact_scan_s": round(exact_s, 4),
        "speedup_exact_scan": (
            round(baseline_s / exact_s, 3) if exact_s else None
        ),
        "window_vs_exact_agreement": f"{agreement}/{trials}",
    }


def _case_sweep_pipeline(smoke, workers):
    """Flattened cross-cell queue vs per-cell-barrier sweep execution.

    A fig-3-shaped multi-cell sweep — required-queries cells over
    (noiseless, gaussian lambda=1) channels and an n grid up to 4096 —
    run two ways on the same ``workers``-process pool: the PR 2 shape
    (each cell its own one-cell plan: submission wave, then a per-cell
    barrier before the next cell starts) vs one ``SweepPlan`` holding
    every cell (all chunks share the engine's global queue; stragglers
    of one cell overlap the other cells' chunks). Values are asserted
    bit-identical before timing. **1-core-container caveat** (as in
    PRs 2-3): with a single hardware core the worker processes
    serialize, so the barrier-removal win shows on multi-core hosts
    only — recorded here for trajectory, not as a headline.

    Also measures the per-chunk dispatch payload satellite: the
    interned-spec protocol ships each cell's invariant payload (the
    pickled channel/config spec) at most once per worker, so
    steady-state chunk dispatch carries only seeds + indices; the
    ``intern_specs=False`` baseline re-ships the spec with every
    chunk. Payload sizes are recorded per chunk for both modes.
    """
    import pickle

    from repro.experiments import shutdown_pool
    from repro.experiments.scheduler import SweepExecutor, SweepPlan

    n_values = (256, 512) if smoke else (1024, 2048, 4096)
    trials = 4 if smoke else 8
    check_every = 4 if smoke else 8
    channels = [
        ("noiseless", repro.NoiselessChannel()),
        ("gaussian_lam_1", repro.GaussianQueryNoise(1.0)),
    ]

    def cell_params():
        for _, channel in channels:
            for n in n_values:
                yield n, repro.sublinear_k(n, 0.25), channel

    def per_cell_barrier():
        out = []
        for n, k, channel in cell_params():
            plan = SweepPlan()
            plan.add_required_queries(
                n, k, channel, trials=trials, seed=2022,
                check_every=check_every,
            )
            out.append(plan.run(backend="process", workers=workers)[0].values)
        return out

    def flattened(intern):
        plan = SweepPlan()
        for n, k, channel in cell_params():
            plan.add_required_queries(
                n, k, channel, trials=trials, seed=2022,
                check_every=check_every,
            )
        executor = SweepExecutor(
            backend="process", workers=workers, intern_specs=intern
        )
        return [sample.values for sample in executor.run(plan)]

    # Warm the pool outside the timed region (spawn start-up is a
    # one-time session cost), then time both execution shapes.
    from repro.experiments.runner import required_queries_trials

    required_queries_trials(
        100, 3, repro.NoiselessChannel(), trials=workers, seed=0,
        workers=workers,
    )
    baseline_s, barrier_vals = _timed(per_cell_barrier)
    wall_s, flat_vals = _timed(lambda: flattened(True))
    no_intern_s, no_intern_vals = _timed(lambda: flattened(False))
    shutdown_pool()
    assert flat_vals == barrier_vals == no_intern_vals  # bit-identical
    # Dispatch payload sizes: the interned protocol's steady-state
    # chunk (seeds + indices only) vs a chunk that re-ships the spec.
    # The seed slice is the engine's actual first chunk (chunk_bounds
    # at workers * oversubscribe chunks per cell), not an estimate.
    from repro.core.chunking import chunk_bounds
    from repro.experiments.parallel import _OVERSUBSCRIBE

    probe = SweepPlan()
    n, k, channel = next(cell_params())
    probe.add_required_queries(
        n, k, channel, trials=trials, seed=2022, check_every=check_every
    )
    cell = probe._cells[0]
    spec_blob = pickle.dumps(cell.spec, pickle.HIGHEST_PROTOCOL)
    lo, hi = chunk_bounds(trials, workers * _OVERSUBSCRIBE)[0]
    chunk_seeds = pickle.dumps(
        tuple(cell.seeds[lo:hi]), pickle.HIGHEST_PROTOCOL
    )
    return {
        "case": "sweep_pipeline",
        "n_values": list(n_values),
        "channels": [label for label, _ in channels],
        "cells": len(n_values) * len(channels),
        "trials": trials,
        "workers": workers,
        "wall_s": round(wall_s, 4),
        "baseline": "per-cell-barrier execution (one-cell plans run "
        "sequentially on the same pool)",
        "baseline_s": round(baseline_s, 4),
        "speedup": round(baseline_s / wall_s, 3) if wall_s else None,
        "no_intern_wall_s": round(no_intern_s, 4),
        "dispatch_spec_blob_bytes": len(spec_blob),
        "dispatch_chunk_payload_bytes": len(chunk_seeds),
        "note": "1-core container: worker processes serialize, so the "
        "barrier-removal and intern wins show on multi-core hosts "
        "only; payload bytes are hardware-independent",
    }


def _case_amp_fused_kernel(smoke):
    """AMP kernel seam: NumPy reference vs fused Numba vs float32.

    Times the batched AMP sweep cell (sparse Gamma = 64, stacked
    block-diagonally) under each kernel of the seam. The float64
    Numba backend is asserted decode-identical to the reference and
    JIT-warmed outside the timed region; the float32 variant's wall
    time is recorded alongside (its scores differ only at float32
    rounding — pinned by tolerance in tests/test_kernels.py, not
    asserted here). On hosts without Numba (this repo's CI default)
    the case records the graceful name-level fallback instead of a
    fused speedup, so the trajectory file shows which backend actually
    ran.
    """
    from repro.amp.batch_amp import run_amp_trials
    from repro.amp.kernels import numba_available, resolve_kernel
    from repro.utils.rng import spawn_seeds

    n = 1024 if smoke else 4096
    trials = 8 if smoke else 32
    m = 200 if smoke else 600
    k = repro.sublinear_k(n, 0.25)
    channel = repro.ZChannel(0.1)
    seeds = spawn_seeds(2022, trials)
    repeats = 1 if smoke else 3

    def sweep(kernel):
        return run_amp_trials(
            n, k, channel, m, seeds, gamma=64, kernel=kernel
        )

    baseline_s, reference = _timed(lambda: sweep("numpy"), repeats)
    f32_s, _ = _timed(lambda: sweep("numpy32"), repeats)
    entry = {
        "case": "amp_fused_kernel",
        "n": n,
        "m": m,
        "trials": trials,
        "gamma": 64,
        "baseline": 'kernel="numpy" (float64 reference, bit-identical '
        "to the pre-seam path)",
        "baseline_s": round(baseline_s, 4),
        "numpy32_s": round(f32_s, 4),
        "numba_available": numba_available(),
    }
    if numba_available():
        sweep("numba")  # JIT compilation is a one-time session cost
        wall_s, fused = _timed(lambda: sweep("numba"), repeats)
        assert all(
            np.array_equal(a.estimate, b.estimate)
            for a, b in zip(reference, fused)
        )
        entry["wall_s"] = round(wall_s, 4)
        entry["speedup"] = round(baseline_s / wall_s, 3) if wall_s else None
    else:
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            entry["fallback_kernel"] = resolve_kernel("numba").name
    return entry


def _case_amp_matvec_fused(smoke):
    """Matvec inside the kernel seam: fused CSR loops vs scipy matvec.

    Times the batched AMP sweep cell under the fused Numba kernel with
    its matvec-inclusive phases against the same kernel with the
    seam's generic phases restored (scipy CSR matvec outside the
    jitted region + fused elementwise loops — the pre-seam dispatch),
    at a sparse (``Gamma = 64``) and a dense (``Gamma = n/2``) design
    point. Decode is asserted identical both ways — the phase split is
    a dispatch change, never an arithmetic one. **1-core-container
    caveat**: the fused loops win by keeping the iterate resident
    across the matvec and the elementwise tail; the quoted speedups
    come from CI's multi-core runners, the bench host records the
    single-thread trajectory only. On hosts without Numba (this repo's
    CI default) the case records the graceful name-level fallback
    instead.
    """
    from repro.amp.batch_amp import run_amp_trials
    from repro.amp.kernels import (
        AMPKernel,
        NumbaKernel,
        numba_available,
        resolve_kernel,
    )
    from repro.utils.rng import spawn_seeds

    n = 1024 if smoke else 4096
    trials = 8 if smoke else 32
    m = 200 if smoke else 600
    k = repro.sublinear_k(n, 0.25)
    channel = repro.ZChannel(0.1)
    seeds = spawn_seeds(2022, trials)
    repeats = 1 if smoke else 3

    entry = {
        "case": "amp_matvec_fused",
        "n": n,
        "m": m,
        "trials": trials,
        "gammas": {"sparse": 64, "dense": n // 2},
        "baseline": "NumbaKernel with the generic seam phases (scipy "
        "CSR matvec + fused elementwise loops — the pre-seam dispatch)",
        "numba_available": numba_available(),
    }
    if not numba_available():
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            entry["fallback_kernel"] = resolve_kernel("numba").name
        return entry

    def sweep(gamma):
        return run_amp_trials(
            n, k, channel, m, seeds, gamma=gamma, kernel="numba"
        )

    for label, gamma in (("sparse", 64), ("dense", n // 2)):
        sweep(gamma)  # JIT compilation is a one-time session cost
        fused_s, fused = _timed(lambda: sweep(gamma), repeats)
        orig_adjoint = NumbaKernel.adjoint_posterior
        orig_forward = NumbaKernel.forward_residual
        NumbaKernel.adjoint_posterior = AMPKernel.adjoint_posterior
        NumbaKernel.forward_residual = AMPKernel.forward_residual
        try:
            sweep(gamma)  # warm the generic phases' jitted helpers too
            generic_s, generic = _timed(lambda: sweep(gamma), repeats)
        finally:
            NumbaKernel.adjoint_posterior = orig_adjoint
            NumbaKernel.forward_residual = orig_forward
        assert all(
            np.array_equal(a.estimate, b.estimate)
            for a, b in zip(generic, fused)
        )
        entry[f"{label}_generic_s"] = round(generic_s, 4)
        entry[f"{label}_fused_s"] = round(fused_s, 4)
        entry[f"{label}_speedup"] = (
            round(generic_s / fused_s, 3) if fused_s else None
        )
    return entry


def _case_shm_dispatch_bytes(smoke, workers):
    """Shared-memory arena dispatch vs the pipe-pickled protocols.

    Reruns the fig-3-shaped multi-cell sweep of ``sweep_pipeline`` on
    the process backend with ``shm=True`` (values asserted identical
    to the serial run) and records the per-chunk submission payload
    under the three dispatch protocols: spec-per-chunk (pre-
    interning), interned steady state (seeds + indices through the
    pipe), and the shm arena (arena name plus two ``(offset, length)``
    refs — near-constant bytes regardless of spec size or chunk
    width). **1-core-container caveat** as in ``sweep_pipeline``: the
    worker processes serialize, so the shm wall time is trajectory
    only; the payload bytes are hardware-independent.
    """
    import pickle

    from repro.core.chunking import chunk_bounds
    from repro.experiments import shutdown_pool
    from repro.experiments.parallel import _OVERSUBSCRIBE
    from repro.experiments.scheduler import SweepPlan
    from repro.experiments.shm import SweepArena

    n_values = (256, 512) if smoke else (1024, 2048, 4096)
    trials = 4 if smoke else 8
    check_every = 4 if smoke else 8
    channels = [repro.NoiselessChannel(), repro.GaussianQueryNoise(1.0)]

    def build_plan():
        plan = SweepPlan()
        for channel in channels:
            for n in n_values:
                plan.add_required_queries(
                    n, repro.sublinear_k(n, 0.25), channel,
                    trials=trials, seed=2022, check_every=check_every,
                )
        return plan

    serial_vals = [s.values for s in build_plan().run(backend="serial")]
    # Warm the pool outside the timed region (spawn start-up is a
    # one-time session cost).
    from repro.experiments.runner import required_queries_trials

    required_queries_trials(
        100, 3, repro.NoiselessChannel(), trials=workers, seed=0,
        workers=workers,
    )
    pipe_s, pipe_vals = _timed(
        lambda: [
            s.values
            for s in build_plan().run(
                backend="process", workers=workers, shm=False
            )
        ]
    )
    shm_s, shm_vals = _timed(
        lambda: [
            s.values
            for s in build_plan().run(
                backend="process", workers=workers, shm=True
            )
        ]
    )
    shutdown_pool()
    assert shm_vals == pipe_vals == serial_vals  # bit-identical
    # Per-chunk submission payloads: the first cell's first chunk
    # (chunk_bounds at workers * oversubscribe chunks per cell, the
    # engine's actual split) pickled under each protocol.
    cell = build_plan()._cells[0]
    spec_blob = pickle.dumps(cell.spec, pickle.HIGHEST_PROTOCOL)
    lo, hi = chunk_bounds(trials, workers * _OVERSUBSCRIBE)[0]
    seeds_blob = pickle.dumps(
        tuple(cell.seeds[lo:hi]), pickle.HIGHEST_PROTOCOL
    )
    with SweepArena([spec_blob, seeds_blob]) as arena:
        shm_submission = pickle.dumps(
            (arena.name, arena.refs[0], arena.refs[1], cell.kind, None),
            pickle.HIGHEST_PROTOCOL,
        )
        arena_bytes = arena.size
    return {
        "case": "shm_dispatch_bytes",
        "n_values": list(n_values),
        "cells": len(n_values) * len(channels),
        "trials": trials,
        "workers": workers,
        "wall_s": round(shm_s, 4),
        "baseline": "interned pipe dispatch (process backend, shm off)",
        "baseline_s": round(pipe_s, 4),
        "speedup": round(pipe_s / shm_s, 3) if shm_s else None,
        "chunk_bytes_spec_per_chunk": len(spec_blob) + len(seeds_blob),
        "chunk_bytes_interned": len(seeds_blob),
        "chunk_bytes_shm": len(shm_submission),
        "arena_total_bytes": arena_bytes,
        "note": "1-core container: worker processes serialize, so the "
        "shm wall-time delta is trajectory only; payload bytes are "
        "hardware-independent and chunk_bytes_shm stays near-constant "
        "as specs or chunks grow",
    }


def _case_sweep_resume_overhead(smoke):
    """Checkpoint write-through cost and the warm-resume payoff.

    The same multi-cell sweep timed three ways on the serial backend
    with a fine chunk explosion (``workers=8`` splits each cell into
    many durable chunk records — the worst case for write-through
    cost): plain, checkpointed into a fresh directory each repeat
    (every finished chunk persisted write-then-rename), and resumed
    against an already-complete checkpoint (every cell restored from
    disk, zero compute). The checkpointed run is asserted
    bit-identical to plain; the acceptance bar is overhead under 5%.
    The resume time is the crash-recovery payoff — the cost of
    re-running a finished sweep after a driver kill.
    """
    import shutil
    import tempfile
    from pathlib import Path

    from repro.experiments.scheduler import SweepExecutor, SweepPlan

    n_values = (256, 512) if smoke else (1024, 2048, 4096)
    trials = 4 if smoke else 8
    check_every = 4 if smoke else 8
    chunk_workers = 8  # serial compute, many chunk records per cell
    repeats = 3

    def build_plan():
        plan = SweepPlan()
        for n in n_values:
            k = repro.sublinear_k(n, 0.25)
            plan.add_required_queries(
                n, k, repro.ZChannel(0.1), trials=trials, seed=2022,
                check_every=check_every,
            )
            plan.add_success_curve(
                n, k, repro.NoiselessChannel(), [n // 4, n // 2],
                trials=trials, seed=2023,
            )
        return plan

    def run(checkpoint=None):
        return SweepExecutor(
            backend="serial", workers=chunk_workers, checkpoint=checkpoint
        ).run(build_plan())

    baseline_s, ref = _timed(run, repeats)

    dirs = []

    def checkpointed():
        tmp = tempfile.mkdtemp(prefix="bench-resume-")
        dirs.append(tmp)
        return run(checkpoint=tmp)

    wall_s, got = _timed(checkpointed, repeats)
    assert repr(got) == repr(ref)  # bit-identical through the write path

    populated = dirs[-1]
    cell_records = len(list(Path(populated).glob("plan-*/cell_*.json")))
    resume_s, resumed = _timed(lambda: run(checkpoint=populated), repeats)
    assert repr(resumed) == repr(ref)  # restored, not recomputed
    for tmp in dirs:
        shutil.rmtree(tmp, ignore_errors=True)

    return {
        "case": "sweep_resume_overhead",
        "n_values": list(n_values),
        "cells": len(n_values) * 2,
        "cell_records": cell_records,
        "trials": trials,
        "chunk_workers": chunk_workers,
        "wall_s": round(wall_s, 4),
        "baseline": "same sweep, checkpointing off",
        "baseline_s": round(baseline_s, 4),
        "overhead_pct": (
            round((wall_s / baseline_s - 1) * 100, 2) if baseline_s else None
        ),
        "resume_s": round(resume_s, 4),
        "resume_speedup": (
            round(baseline_s / resume_s, 1) if resume_s else None
        ),
    }


def _case_decode_service(smoke):
    """Decode-service micro-batching: one ragged stack vs serial run_amp.

    Simulates the PR 10 serving hot path: J concurrent sessions (same
    batching cell, different streams and prefix lengths) decoded by
    one ``decode_prefix_batch`` call — exactly what the service's
    ``DecodeBatcher`` issues per wave — against the serial baseline of
    J standalone ``run_amp`` calls on the same prefixes. Outputs are
    asserted bit-identical before timing (batching across users must
    be invisible); the win is the block-diagonal stacking amortizing
    per-call setup and matvec dispatch across requests.
    """
    from repro.amp import AMPConfig, run_amp
    from repro.amp.batch_amp import decode_prefix_batch
    from repro.core.batch import MeasurementStream
    from repro.core.measurement import Measurements
    from repro.core.pooling import PoolingGraph

    n = 256 if smoke else 1024
    sessions = 8 if smoke else 16
    base_m = 150 if smoke else 500
    k = repro.sublinear_k(n, 0.25)
    gamma = 64  # sparse regime — the stacking-friendly cell
    channel = repro.ZChannel(0.1)
    config = AMPConfig(track_history=False)
    repeats = 1 if smoke else 3

    streams = []
    jobs = []
    for i in range(sessions):
        gen = np.random.default_rng(3000 + i)
        truth = repro.sample_ground_truth(n, k, gen)
        m = base_m + 7 * i  # heterogeneous prefixes, like live traffic
        stream = MeasurementStream(
            n, gamma, channel, truth, gen, max_m=m, initial_block=m
        )
        stream.grow_to(m)
        streams.append(stream)
        jobs.append((i, m))

    def batched():
        return decode_prefix_batch(
            jobs, streams, n, k, channel, gamma=gamma, config=config
        )

    def serial():
        out = []
        for i, m in jobs:
            indptr, agents, counts, results = streams[i].prefix(m)
            graph = PoolingGraph._unchecked(n, gamma, indptr, agents, counts)
            meas = Measurements(
                graph=graph, truth=streams[i].truth,
                channel=channel, results=results,
            )
            out.append(run_amp(meas, config=config))
        return out

    exact, scores = batched()
    reference = serial()
    for j, result in enumerate(reference):
        assert bool(exact[j]) == bool(result.exact)
        assert np.array_equal(scores[j], result.scores)

    wall_s, _ = _timed(batched, repeats)
    baseline_s, _ = _timed(serial, repeats)
    return {
        "case": "decode_service",
        "n": n,
        "k": k,
        "gamma": gamma,
        "sessions": sessions,
        "m_range": [jobs[0][1], jobs[-1][1]],
        "wall_s": round(wall_s, 4),
        "baseline": "standalone run_amp per session prefix",
        "baseline_s": round(baseline_s, 4),
        "speedup": round(baseline_s / wall_s, 2) if wall_s else None,
        "requests_per_s": round(sessions / wall_s, 1) if wall_s else None,
        "bit_identical": True,
    }


def run_perf_suite(smoke=False, workers=4, only=None):
    """Run the perf-trajectory cases; returns one JSON-ready entry.

    ``only`` (a case-name set) restricts the run — used to append a
    single new case's entry without re-timing the whole suite.
    """
    import os
    import platform
    import subprocess
    import time

    available = {
        "csr_dense_gamma_half_counting": lambda: _case_csr_dense(smoke),
        "csr_sparse_uint32_sort": lambda: _case_csr_sparse_u32(smoke),
        "fig2_sweep": lambda: _case_fig2_sweep(smoke, workers),
        "amp_sparse_full_scale": lambda: _case_amp_sparse(smoke),
        "amp_batch_sweep_cell": lambda: _case_amp_batch_sweep(smoke),
        "amp_batch_sparse_full_scale": lambda: (
            _case_amp_batch_sparse_poison(smoke)
        ),
        "amp_required_m": lambda: _case_amp_required_m(smoke),
        "sweep_pipeline": lambda: _case_sweep_pipeline(smoke, workers),
        "amp_fused_kernel": lambda: _case_amp_fused_kernel(smoke),
        "amp_matvec_fused": lambda: _case_amp_matvec_fused(smoke),
        "shm_dispatch_bytes": lambda: _case_shm_dispatch_bytes(smoke, workers),
        "sweep_resume_overhead": lambda: _case_sweep_resume_overhead(smoke),
        "decode_service": lambda: _case_decode_service(smoke),
    }
    if only:
        unknown = set(only) - set(available)
        if unknown:
            raise SystemExit(f"unknown cases {sorted(unknown)}; "
                             f"valid: {sorted(available)}")
        selected = [available[name] for name in available if name in only]
    else:
        selected = list(available.values())
    cases = [build() for build in selected]
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, cwd=os.path.dirname(__file__),
        ).stdout.strip() or None
    except OSError:
        commit = None
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "commit": commit,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "smoke": bool(smoke),
        "workers": workers,
        "cases": cases,
    }


def main(argv=None):
    import argparse
    import json
    import os

    default_out = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_perf_core.json",
    )
    parser = argparse.ArgumentParser(
        description="Append a perf-trajectory entry to BENCH_perf_core.json"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="shrunken cases for CI time budgets (~1 min)",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="worker processes for the sharded sweep case (default 4)",
    )
    parser.add_argument(
        "--case", action="append", default=None, dest="cases",
        help="run only this case (repeatable; default: all cases)",
    )
    parser.add_argument("--out", default=default_out, help="trajectory file")
    args = parser.parse_args(argv)

    entry = run_perf_suite(
        smoke=args.smoke, workers=args.workers, only=args.cases
    )
    if os.path.exists(args.out):
        with open(args.out) as fh:
            payload = json.load(fh)
    else:
        payload = {"schema": BENCH_JSON_SCHEMA, "entries": []}
    payload["entries"].append(entry)
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(json.dumps(entry, indent=2))
    print(f"appended entry #{len(payload['entries'])} to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
