"""Micro-benchmarks of the library's hot paths.

Two entry modes:

* **pytest-benchmark** (``pytest benchmarks/bench_perf_core.py``):
  classical throughput benchmarks (many rounds, statistics in the
  benchmark table): pooling-graph sampling, measurement, decoding,
  the incremental step, AMP, and sorting-network generation. The
  ``*_batch`` entries benchmark the vectorized engine of
  :mod:`repro.core.batch` against their legacy per-query counterparts.

* **perf-trajectory script** (``python benchmarks/bench_perf_core.py``):
  runs the end-to-end performance suite — dense-regime CSR
  construction (counting vs sort at the paper's ``Gamma = n/2``,
  ``n = 10^5``), a fig2-style required-queries sweep (legacy engine vs
  batch, serial vs sharded across ``--workers`` processes), and a
  full-scale sparse AMP run with the dense path poisoned — and appends
  one machine-readable entry (per-case wall time, speedup vs baseline,
  workers used, host info) to ``BENCH_perf_core.json`` at the repo
  root, so regressions across PRs stay visible. ``--smoke`` shrinks
  every case for CI time budgets.
"""

import numpy as np

import repro
from repro.amp import run_amp
from repro.core.batch import BatchTrialRunner, sample_pooling_graph_batch
from repro.core.incremental import IncrementalDecoder, required_queries
from repro.distributed.sorting import odd_even_mergesort


N, K, M = 10_000, 10, 500


def _instance(seed=0, n=N, k=K, m=M, channel=None):
    gen = np.random.default_rng(seed)
    truth = repro.sample_ground_truth(n, k, gen)
    graph = repro.sample_pooling_graph(n, m, rng=gen)
    meas = repro.measure(graph, truth, channel or repro.ZChannel(0.1), gen)
    return truth, graph, meas


def test_perf_sample_pooling_graph(benchmark):
    gen = np.random.default_rng(1)
    benchmark(lambda: repro.sample_pooling_graph(N, 100, rng=gen))


def test_perf_sample_pooling_graph_batch(benchmark):
    gen = np.random.default_rng(1)
    benchmark(lambda: sample_pooling_graph_batch(N, 100, rng=gen))


# Sparse-query regime (gamma << n, the regular-design ablations): here
# the legacy per-query loop is overhead-bound and batching shines
# (>10x); in the dense gamma = n/2 regime the speedup is ~2x because
# the element-wise sort dominates either way.


def test_perf_sample_pooling_graph_sparse(benchmark):
    gen = np.random.default_rng(1)
    benchmark(lambda: repro.sample_pooling_graph(N, 2000, 128, rng=gen))


def test_perf_sample_pooling_graph_sparse_batch(benchmark):
    gen = np.random.default_rng(1)
    benchmark(lambda: sample_pooling_graph_batch(N, 2000, 128, rng=gen))


def test_perf_measure_z_channel(benchmark):
    truth, graph, _ = _instance()
    gen = np.random.default_rng(2)
    channel = repro.ZChannel(0.1)
    benchmark(lambda: repro.measure(graph, truth, channel, gen))


def test_perf_greedy_decode(benchmark):
    _, _, meas = _instance()
    benchmark(lambda: repro.greedy_reconstruct(meas))


def test_perf_neighborhood_sums(benchmark):
    _, graph, meas = _instance()
    results = np.asarray(meas.results, dtype=float)
    benchmark(lambda: graph.neighborhood_sums(results))


def test_perf_incremental_step(benchmark):
    gen = np.random.default_rng(3)
    truth = repro.sample_ground_truth(N, K, gen)
    decoder = IncrementalDecoder(truth, repro.ZChannel(0.1))

    def step():
        decoder.add_query(gen)
        return decoder.is_successful()

    benchmark(step)


def test_perf_required_queries_legacy(benchmark):
    gen = np.random.default_rng(4)
    benchmark(lambda: required_queries(2_000, 6, repro.ZChannel(0.1), gen))


def test_perf_required_queries_chunked(benchmark):
    gen = np.random.default_rng(4)
    runner = BatchTrialRunner(2_000, 6, repro.ZChannel(0.1))
    benchmark(lambda: runner.required_queries(gen))


def test_perf_batch_trial_runner(benchmark):
    runner = BatchTrialRunner(N, K, repro.ZChannel(0.1))
    benchmark(lambda: runner.run_trials(M, trials=4, seed=0))


def test_perf_amp_full_run(benchmark):
    _, _, meas = _instance(n=1000, k=6, m=300)
    benchmark(lambda: run_amp(meas))


def test_perf_batcher_schedule_generation(benchmark):
    benchmark(lambda: odd_even_mergesort(1024))


# Dense-regime CSR construction beyond the uint16 radix fast path:
# compare the counting-sort construction (dispatched automatically for
# n > 2**16, gamma >= n/8) against the comparison-sort construction it
# replaces.


def test_perf_csr_dense_counting(benchmark):
    from repro.core.batch import _csr_from_draws_counting

    draws = np.random.default_rng(6).integers(0, 100_000, size=(64, 50_000))
    benchmark(lambda: _csr_from_draws_counting(draws, 100_000))


def test_perf_csr_dense_sort(benchmark):
    draws = np.random.default_rng(6).integers(0, 100_000, size=(64, 50_000))
    benchmark(lambda: _legacy_sort_csr(draws, 50_000))


# ---------------------------------------------------------------------
# Perf-trajectory script mode: python benchmarks/bench_perf_core.py
# ---------------------------------------------------------------------

BENCH_JSON_SCHEMA = 1


def _timed(fn, repeats=1):
    """Best-of-``repeats`` wall time of ``fn()`` (returns seconds, result)."""
    import time

    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _legacy_sort_csr(draws, gamma):
    """The pre-counting construction at n > 2**16: int64 comparison sort."""
    flat = np.sort(draws, axis=1).ravel()
    starts = np.empty(flat.size, dtype=bool)
    starts[0] = True
    np.not_equal(flat[1:], flat[:-1], out=starts[1:])
    starts[::gamma] = True
    idx = np.flatnonzero(starts)
    return flat[idx].astype(np.int64), np.diff(idx, append=flat.size)


def _case_csr_dense(smoke):
    """Counting vs old sort CSR construction at Gamma = n/2, n beyond uint16.

    On memory-bandwidth-starved hosts the two are near time-parity; the
    counting construction additionally avoids the sort's full ``(m,
    gamma)`` int64 sorted copy (recorded as ``sort_copy_mib_avoided``),
    which is the memory half of the dense-regime sampling ceiling.
    """
    from repro.core.batch import _csr_from_draws_counting, _use_counting_csr

    n = 70_000 if smoke else 100_000
    m = 64 if smoke else 400
    gamma = n // 2
    assert _use_counting_csr(n, gamma)
    draws = np.random.default_rng(6).integers(0, n, size=(m, gamma))
    repeats = 1 if smoke else 3
    baseline_s, (sort_agents, sort_counts) = _timed(
        lambda: _legacy_sort_csr(draws, gamma), repeats
    )
    wall_s, (_, agents, counts) = _timed(
        lambda: _csr_from_draws_counting(draws, n), repeats
    )
    assert np.array_equal(agents, sort_agents)
    assert np.array_equal(counts, sort_counts)
    return {
        "case": "csr_dense_gamma_half_counting",
        "n": n,
        "m": m,
        "gamma": gamma,
        "wall_s": round(wall_s, 4),
        "baseline": "int64 comparison-sort CSR (pre-PR construction)",
        "baseline_s": round(baseline_s, 4),
        "speedup": round(baseline_s / wall_s, 3) if wall_s else None,
        "sort_copy_mib_avoided": round(m * gamma * 8 / 2**20, 1),
    }


def _case_csr_sparse_u32(smoke):
    """uint32-narrowed sort vs old int64 sort in the sparse n > 2**16 regime."""
    from repro.core.batch import _csr_from_draws, _use_counting_csr

    n = 70_000 if smoke else 100_000
    m = 500 if smoke else 2000
    gamma = 1000
    assert not _use_counting_csr(n, gamma)
    draws = np.random.default_rng(7).integers(0, n, size=(m, gamma))
    repeats = 2 if smoke else 3
    baseline_s, (sort_agents, sort_counts) = _timed(
        lambda: _legacy_sort_csr(draws, gamma), repeats
    )
    wall_s, (_, agents, counts) = _timed(
        lambda: _csr_from_draws(draws, n), repeats
    )
    assert np.array_equal(agents, sort_agents)
    assert np.array_equal(counts, sort_counts)
    return {
        "case": "csr_sparse_uint32_sort",
        "n": n,
        "m": m,
        "gamma": gamma,
        "wall_s": round(wall_s, 4),
        "baseline": "int64 comparison-sort CSR (pre-PR construction)",
        "baseline_s": round(baseline_s, 4),
        "speedup": round(baseline_s / wall_s, 3) if wall_s else None,
    }


def _case_fig2_sweep(smoke, workers):
    """Fig2-style required-queries sweep: legacy vs batch vs sharded."""
    from repro.experiments import shutdown_pool
    from repro.experiments.runner import required_queries_trials

    n_values = (400, 1000) if smoke else (1000, 3000, 10_000)
    trials = 3 if smoke else 10
    channel = repro.ZChannel(0.1)

    def sweep(engine, w):
        out = []
        for n in n_values:
            k = repro.sublinear_k(n, 0.25)
            out.append(
                required_queries_trials(
                    n, k, channel, trials=trials, seed=2022,
                    engine=engine, workers=w,
                ).values
            )
        return out

    legacy_s, legacy_vals = _timed(lambda: sweep("legacy", 1))
    serial_s, serial_vals = _timed(lambda: sweep("batch", 1))
    # Warm the pool outside the timed region: interpreter start-up is a
    # one-time cost per session, not a per-sweep cost.
    required_queries_trials(
        100, 3, channel, trials=workers, seed=0, workers=workers
    )
    sharded_s, sharded_vals = _timed(lambda: sweep("batch", workers))
    shutdown_pool()
    assert sharded_vals == serial_vals  # bit-identical sharding
    return {
        "case": "fig2_sweep",
        "n_values": list(n_values),
        "trials": trials,
        "workers": workers,
        "wall_s": round(sharded_s, 4),
        "serial_batch_s": round(serial_s, 4),
        "baseline": "legacy engine, serial",
        "baseline_s": round(legacy_s, 4),
        "speedup": round(legacy_s / sharded_s, 3) if sharded_s else None,
        "speedup_vs_serial_batch": (
            round(serial_s / sharded_s, 3) if sharded_s else None
        ),
    }


def _case_amp_sparse(smoke):
    """Full-scale sparse AMP with the dense path poisoned."""
    from repro.amp import AMPConfig

    n = 20_000 if smoke else 100_000
    m = 100 if smoke else 300
    gen = np.random.default_rng(8)
    truth = repro.sample_ground_truth(n, repro.sublinear_k(n, 0.25), gen)
    graph = repro.sample_pooling_graph_batch(n, m, rng=gen)
    meas = repro.measure(graph, truth, repro.ZChannel(0.1), gen)

    def poisoned(self, dtype=np.float64):
        raise AssertionError("dense adjacency materialized on the AMP hot path")

    original = repro.PoolingGraph.adjacency_dense
    repro.PoolingGraph.adjacency_dense = poisoned
    try:
        wall_s, result = _timed(
            lambda: run_amp(meas, config=AMPConfig(max_iter=5))
        )
    finally:
        repro.PoolingGraph.adjacency_dense = original
    return {
        "case": "amp_sparse_full_scale",
        "n": n,
        "m": m,
        "iterations": result.meta["iterations"],
        "dense_materialized": False,
        "wall_s": round(wall_s, 4),
    }


def run_perf_suite(smoke=False, workers=4):
    """Run the perf-trajectory cases; returns one JSON-ready entry."""
    import os
    import platform
    import subprocess
    import time

    cases = [
        _case_csr_dense(smoke),
        _case_csr_sparse_u32(smoke),
        _case_fig2_sweep(smoke, workers),
        _case_amp_sparse(smoke),
    ]
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, cwd=os.path.dirname(__file__),
        ).stdout.strip() or None
    except OSError:
        commit = None
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "commit": commit,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "smoke": bool(smoke),
        "workers": workers,
        "cases": cases,
    }


def main(argv=None):
    import argparse
    import json
    import os

    default_out = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_perf_core.json",
    )
    parser = argparse.ArgumentParser(
        description="Append a perf-trajectory entry to BENCH_perf_core.json"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="shrunken cases for CI time budgets (~1 min)",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="worker processes for the sharded sweep case (default 4)",
    )
    parser.add_argument("--out", default=default_out, help="trajectory file")
    args = parser.parse_args(argv)

    entry = run_perf_suite(smoke=args.smoke, workers=args.workers)
    if os.path.exists(args.out):
        with open(args.out) as fh:
            payload = json.load(fh)
    else:
        payload = {"schema": BENCH_JSON_SCHEMA, "entries": []}
    payload["entries"].append(entry)
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(json.dumps(entry, indent=2))
    print(f"appended entry #{len(payload['entries'])} to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
