"""Micro-benchmarks of the library's hot paths (pytest-benchmark).

These are classical throughput benchmarks (many rounds, statistics in
the benchmark table): pooling-graph sampling, measurement, decoding,
the incremental step, AMP, and sorting-network generation.

The ``*_batch`` entries benchmark the vectorized engine of
:mod:`repro.core.batch` against their legacy per-query counterparts —
compare e.g. ``sample_pooling_graph`` vs ``sample_pooling_graph_batch``
and ``incremental_step`` vs ``required_queries_chunked`` rows in the
table to read off the speedup.
"""

import numpy as np

import repro
from repro.amp import run_amp
from repro.core.batch import BatchTrialRunner, sample_pooling_graph_batch
from repro.core.incremental import IncrementalDecoder, required_queries
from repro.distributed.sorting import odd_even_mergesort


N, K, M = 10_000, 10, 500


def _instance(seed=0, n=N, k=K, m=M, channel=None):
    gen = np.random.default_rng(seed)
    truth = repro.sample_ground_truth(n, k, gen)
    graph = repro.sample_pooling_graph(n, m, rng=gen)
    meas = repro.measure(graph, truth, channel or repro.ZChannel(0.1), gen)
    return truth, graph, meas


def test_perf_sample_pooling_graph(benchmark):
    gen = np.random.default_rng(1)
    benchmark(lambda: repro.sample_pooling_graph(N, 100, rng=gen))


def test_perf_sample_pooling_graph_batch(benchmark):
    gen = np.random.default_rng(1)
    benchmark(lambda: sample_pooling_graph_batch(N, 100, rng=gen))


# Sparse-query regime (gamma << n, the regular-design ablations): here
# the legacy per-query loop is overhead-bound and batching shines
# (>10x); in the dense gamma = n/2 regime the speedup is ~2x because
# the element-wise sort dominates either way.


def test_perf_sample_pooling_graph_sparse(benchmark):
    gen = np.random.default_rng(1)
    benchmark(lambda: repro.sample_pooling_graph(N, 2000, 128, rng=gen))


def test_perf_sample_pooling_graph_sparse_batch(benchmark):
    gen = np.random.default_rng(1)
    benchmark(lambda: sample_pooling_graph_batch(N, 2000, 128, rng=gen))


def test_perf_measure_z_channel(benchmark):
    truth, graph, _ = _instance()
    gen = np.random.default_rng(2)
    channel = repro.ZChannel(0.1)
    benchmark(lambda: repro.measure(graph, truth, channel, gen))


def test_perf_greedy_decode(benchmark):
    _, _, meas = _instance()
    benchmark(lambda: repro.greedy_reconstruct(meas))


def test_perf_neighborhood_sums(benchmark):
    _, graph, meas = _instance()
    results = np.asarray(meas.results, dtype=float)
    benchmark(lambda: graph.neighborhood_sums(results))


def test_perf_incremental_step(benchmark):
    gen = np.random.default_rng(3)
    truth = repro.sample_ground_truth(N, K, gen)
    decoder = IncrementalDecoder(truth, repro.ZChannel(0.1))

    def step():
        decoder.add_query(gen)
        return decoder.is_successful()

    benchmark(step)


def test_perf_required_queries_legacy(benchmark):
    gen = np.random.default_rng(4)
    benchmark(lambda: required_queries(2_000, 6, repro.ZChannel(0.1), gen))


def test_perf_required_queries_chunked(benchmark):
    gen = np.random.default_rng(4)
    runner = BatchTrialRunner(2_000, 6, repro.ZChannel(0.1))
    benchmark(lambda: runner.required_queries(gen))


def test_perf_batch_trial_runner(benchmark):
    runner = BatchTrialRunner(N, K, repro.ZChannel(0.1))
    benchmark(lambda: runner.run_trials(M, trials=4, seed=0))


def test_perf_amp_full_run(benchmark):
    _, _, meas = _instance(n=1000, k=6, m=300)
    benchmark(lambda: run_amp(meas))


def test_perf_batcher_schedule_generation(benchmark):
    benchmark(lambda: odd_even_mergesort(1024))
