"""Theorem 1 as a table: closed-form thresholds vs measured success.

The paper states Theorem 1 as formulas rather than a table; this bench
materializes the table (all regimes and channels on a parameter grid)
and validates it empirically: running the greedy decoder with
m = 1.5x the bound succeeds w.h.p., while m = 0.2x the bound fails, for
each channel family.
"""

import numpy as np

import repro
from repro.experiments.figures import FigureResult
from repro.experiments.runner import success_rate_curve


def _bounds_table() -> FigureResult:
    rows = []
    for n in (1000, 10_000, 100_000):
        for theta in (0.25, 0.5):
            for p in (0.0, 0.1, 0.3):
                rows.append({
                    "series": "sublinear-Z",
                    "n": n, "theta": theta, "p": p, "q": 0.0,
                    "bound_m": repro.theorem1_sublinear_z(n, theta, p),
                })
            for (p, q) in ((0.1, 0.01), (0.1, 0.1)):
                rows.append({
                    "series": "sublinear-GNC",
                    "n": n, "theta": theta, "p": p, "q": q,
                    "bound_m": repro.theorem1_sublinear_gnc(n, theta, p, q),
                })
        for zeta in (0.05, 0.2):
            for (p, q) in ((0.0, 0.0), (0.1, 0.01)):
                rows.append({
                    "series": "linear",
                    "n": n, "zeta": zeta, "p": p, "q": q,
                    "bound_m": repro.theorem1_linear(n, zeta, p, q),
                })
    return FigureResult(
        figure="theorem1_table",
        description="Theorem 1 query thresholds across regimes and channels",
        params={"eps": repro.DEFAULT_EPS},
        rows=rows,
    )


def test_theorem1_bounds_table(benchmark, emit):
    result = benchmark.pedantic(_bounds_table, rounds=1, iterations=1)
    emit(result)
    # Structural sanity: bounds positive, monotone in n within a series.
    by_cfg = {}
    for row in result.rows:
        assert row["bound_m"] > 0
        key = (row["series"], row.get("theta"), row.get("zeta"), row["p"], row["q"])
        by_cfg.setdefault(key, []).append(row["bound_m"])
    for values in by_cfg.values():
        assert values == sorted(values)


def test_theorem1_bound_is_achievable_z(benchmark):
    """Greedy with m = 1.5x bound succeeds; with m = 0.2x bound it fails."""
    n, theta, p = 1000, 0.25, 0.1
    k = repro.sublinear_k(n, theta)
    bound = repro.theorem1_sublinear_z(n, theta, p)

    def run():
        hi = success_rate_curve(
            n, k, repro.ZChannel(p), [int(1.5 * bound)], trials=20, seed=1
        )
        lo = success_rate_curve(
            n, k, repro.ZChannel(p), [int(0.2 * bound)], trials=20, seed=2
        )
        return hi.success_rates[0], lo.success_rates[0]

    hi_rate, lo_rate = benchmark.pedantic(run, rounds=1, iterations=1)
    assert hi_rate >= 0.9
    assert lo_rate <= 0.2


def test_theorem1_bound_is_achievable_linear(benchmark):
    n, zeta, p = 400, 0.05, 0.1
    k = repro.linear_k(n, zeta)
    bound = repro.theorem1_linear(n, zeta, p, 0.0)

    def run():
        hi = success_rate_curve(
            n, k, repro.ZChannel(p), [int(1.5 * bound)], trials=10, seed=3
        )
        return hi.success_rates[0]

    assert benchmark.pedantic(run, rounds=1, iterations=1) >= 0.8
