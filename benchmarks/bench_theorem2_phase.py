"""Theorem 2's phase transition in the noisy query model.

Theorem 2: with m queries and Gaussian noise N(0, lambda^2),

* lambda^2 = o(m / ln n)  -> recovery succeeds w.h.p. at the noiseless
  query budget;
* lambda^2 = Omega(m)     -> recovery fails with positive probability
  for ANY m.

The bench sweeps lambda^2 across the window [m/ln n, m] at fixed m and
shows the success rate collapsing from ~1 to ~0 — the predicted phase
transition — and records the series.
"""

import math

import numpy as np

import repro
from repro.experiments.figures import FigureResult
from repro.experiments.runner import success_rate_curve


def _phase_sweep() -> FigureResult:
    n, theta = 500, 0.25
    k = repro.sublinear_k(n, theta)
    # 3x the noiseless threshold: deep in the success phase for small
    # lambda, so the collapse we observe is driven by the noise alone.
    m = int(3.0 * repro.theorem2_sublinear(n, theta))
    lam2_grid = [
        0.02 * m / math.log(n),
        0.2 * m / math.log(n),
        m / math.log(n),
        0.2 * m,
        m,
        5 * m,
    ]
    rows = []
    for lam2 in lam2_grid:
        lam = math.sqrt(lam2)
        curve = success_rate_curve(
            n, k, repro.GaussianQueryNoise(lam), [m], trials=20, seed=99
        )
        rows.append({
            "series": "empirical",
            "lambda2_over_m": lam2 / m,
            "lambda": lam,
            "m": m,
            "success_rate": curve.success_rates[0],
            "overlap": curve.overlaps[0],
            "phase": repro.noisy_query_phase(lam, m, n),
        })
    return FigureResult(
        figure="theorem2_phase",
        description="noisy-query phase transition (n=%d, m=%d)" % (n, m),
        params={"n": n, "theta": theta, "m": m},
        rows=rows,
    )


def test_theorem2_phase_transition(benchmark, emit):
    result = benchmark.pedantic(_phase_sweep, rounds=1, iterations=1)
    emit(result)
    rows = result.rows
    # Success collapses monotonically (allowing small fluctuations).
    assert rows[0]["success_rate"] >= 0.9
    assert rows[0]["phase"] == "recoverable"
    assert rows[-1]["success_rate"] <= 0.1
    assert rows[-1]["phase"] == "failure"
    rates = [row["success_rate"] for row in rows]
    assert all(b <= a + 0.15 for a, b in zip(rates, rates[1:]))
