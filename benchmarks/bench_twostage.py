"""Extension bench: the two-stage algorithm (the paper's open question).

The conclusion of the paper asks whether "a two-step algorithm that
locally tries to correct errors ... performs even better". This bench
answers empirically: success-rate curves at n = 1000 (Z-channel,
p = 0.1/0.3) for greedy vs. two-stage vs. AMP. Expected result: the
two-stage transition sits well left of greedy's and approaches AMP's,
at one extra query-agent round-trip per correction round.
"""

import repro
from repro.experiments.figures import FigureResult
from repro.experiments.runner import success_rate_curve


def _sweep() -> FigureResult:
    n, theta, trials = 1000, 0.25, 15
    k = repro.sublinear_k(n, theta)
    m_values = [50, 100, 150, 200, 250, 300]
    rows = []
    for p in (0.1, 0.3):
        for algorithm in ("greedy", "twostage", "amp"):
            curve = success_rate_curve(
                n, k, repro.ZChannel(p), m_values,
                algorithm=algorithm, trials=trials, seed=2022,
            )
            for m, rate, overlap in zip(
                curve.m_values, curve.success_rates, curve.overlaps
            ):
                rows.append({
                    "series": f"{algorithm} p={p:g}",
                    "m": m,
                    "success_rate": rate,
                    "overlap": overlap,
                })
    return FigureResult(
        figure="twostage_comparison",
        description="greedy vs two-stage local correction vs AMP (n=1000)",
        params={"n": n, "k": k, "trials": trials},
        rows=rows,
    )


def test_twostage_beats_greedy_approaches_amp(benchmark, emit):
    result = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(result)

    def rates(label):
        return {row["m"]: row["success_rate"] for row in result.series(label)}

    for p in (0.1, 0.3):
        greedy = rates(f"greedy p={p:g}")
        two = rates(f"twostage p={p:g}")
        amp = rates(f"amp p={p:g}")
        # Two-stage dominates greedy across the grid (within noise).
        assert all(two[m] >= greedy[m] - 0.1 for m in greedy)
        # And strictly wins somewhere in the transition window.
        assert any(two[m] >= greedy[m] + 0.3 for m in greedy)
        # AMP remains the strongest baseline overall.
        assert sum(amp.values()) >= sum(two.values()) - 0.5
