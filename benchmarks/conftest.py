"""Shared fixtures for the benchmark harness.

Every figure benchmark saves its series (JSON + CSV) under
``benchmarks/results/`` and prints the paper-style table, so a
``pytest benchmarks/ --benchmark-only`` run regenerates all evaluation
data in one go. EXPERIMENTS.md is written against these outputs.
"""

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(results_dir, capsys):
    """Save a FigureResult and echo its table through captured stdout."""

    def _emit(result):
        result.save(results_dir)
        with capsys.disabled():
            print()
            print(result.render())
        return result

    return _emit
