"""CI chaos smoke: the sweep survives worker death, stragglers, and a
driver SIGKILL — and stays bit-identical to serial throughout.

Two scenarios:

1. **Elastic recovery.** Two localhost socket workers, both behind a
   :class:`~repro.experiments.faults.FaultyWorkerProxy`: one is killed
   after relaying two chunks, the other delays every reply. The driver
   must requeue the dead proxy's chunks, speculate around the
   straggler, and still produce exactly the serial result.

2. **Checkpoint resume.** A child driver runs the same plan with
   ``--checkpoint`` and is SIGKILLed as soon as the first chunk record
   lands on disk. Re-running the plan against the same checkpoint
   completes from the surviving records, bit-identical to an
   uninterrupted run.

Must live in a real file (not a stdin heredoc): the worker processes
start under the ``spawn`` method, which re-imports the driver's main
module and cannot do so for ``<stdin>``.

Run: ``PYTHONPATH=src python benchmarks/smoke_chaos_sweep.py``
"""

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import repro
from repro.experiments.faults import FaultyWorkerProxy
from repro.experiments.scheduler import SweepExecutor, SweepPlan
from repro.experiments.worker import start_local_workers


def chaos_plan() -> SweepPlan:
    plan = SweepPlan()
    plan.add_required_queries(
        150, 4, repro.ZChannel(0.1), trials=8, seed=11, check_every=4
    )
    plan.add_success_curve(
        120, 3, repro.NoiselessChannel(), [40, 80], trials=4, seed=7
    )
    return plan


def elastic_recovery(reference: str) -> None:
    hosts, shutdown = start_local_workers(2)
    doomed = FaultyWorkerProxy(hosts[0], kill_after_chunks=2).start()
    straggler = FaultyWorkerProxy(hosts[1], delay_reply=0.4).start()
    try:
        ex = SweepExecutor(
            backend="socket",
            hosts=[doomed.address, straggler.address],
            connect_retry=2.0,
            speculate=1.0,
        )
        got = ex.run(chaos_plan())
        assert repr(got) == reference, "chaos sweep diverged from serial"
        stats = ex.last_socket_stats
        print(f"elastic recovery ok: stats={stats}")
    finally:
        doomed.stop()
        straggler.stop()
        shutdown()


def checkpoint_resume(reference: str) -> None:
    with tempfile.TemporaryDirectory(prefix="chaos-ckpt-") as tmp:
        ckpt = Path(tmp)
        child = subprocess.Popen(
            [sys.executable, os.path.abspath(__file__), "--child", str(ckpt)],
            env=os.environ.copy(),
        )
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if list(ckpt.glob("plan-*/chunk_*.json")) or list(
                    ckpt.glob("plan-*/cell_*.json")
                ):
                    break
                if child.poll() is not None:
                    raise AssertionError(
                        "child driver finished before it could be killed; "
                        "slow it down or shrink the poll interval"
                    )
                time.sleep(0.02)
            else:
                raise AssertionError("no chunk record appeared within 120s")
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait(timeout=30)
        assert child.returncode != 0, "SIGKILLed child exited 0?"

        got = chaos_plan().run(backend="serial", checkpoint=ckpt)
        assert repr(got) == reference, "resumed sweep diverged from serial"
        print("checkpoint resume ok: driver killed once, resume bit-identical")


def child_main(ckpt: str) -> int:
    """Run the plan slowly enough that the parent can SIGKILL us after
    the first durable chunk but before the sweep completes."""
    import repro.experiments.scheduler as sched

    real = sched._run_chunk

    def slow_chunk(spec, kind, m, seeds):
        out = real(spec, kind, m, seeds)
        time.sleep(0.3)
        return out

    sched._run_chunk = slow_chunk
    chaos_plan().run(backend="serial", checkpoint=ckpt)
    return 0


def main() -> int:
    if len(sys.argv) == 3 and sys.argv[1] == "--child":
        return child_main(sys.argv[2])
    reference = repr(chaos_plan().run(backend="serial"))
    elastic_recovery(reference)
    checkpoint_resume(reference)
    print("chaos smoke ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
