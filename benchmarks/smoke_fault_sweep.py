"""CI smoke: fault-scenario sweep cells, bit-identical across backends.

Runs a four-cell :class:`~repro.experiments.scheduler.SweepPlan`
exercising every PR 8 fault axis — a corrupted success curve (mirror
flips), a message-drop ``distributed`` cell, a corrupted required-m
scan (erasures), and a ``twostage`` required-m cell — on the
``serial`` and ``process`` (workers=2) backends and asserts the
results are repr-identical: every fault realization is drawn from a
dedicated stream of the trial's child seed, so the backend, worker
count, and chunk layout cannot change a faulty run.

A second plan checks the monotone-degradation sanity: raising the
corruption rate at fixed m must not improve the greedy decoder's
overlap (beyond a small sampling tolerance).

Must live in a real file (not a stdin heredoc): the worker processes
start under the ``spawn`` method, which re-imports the driver's main
module and cannot do so for ``<stdin>``.

Run: ``PYTHONPATH=src python benchmarks/smoke_fault_sweep.py``
"""

import repro
from repro.core.corruption import CorruptionModel, FaultSpec
from repro.experiments import shutdown_pool
from repro.experiments.scheduler import SweepPlan


def build_plan() -> SweepPlan:
    plan = SweepPlan()
    plan.add_success_curve(
        50, 3, repro.ZChannel(0.1), [30, 60], trials=6, seed=123,
        corruption=CorruptionModel(flip_rate=0.1),
    )
    plan.add_success_curve(
        40, 3, repro.ZChannel(0.1), [30], algorithm="distributed",
        trials=4, seed=124, fault=FaultSpec(drop=0.2, delay=0.1, max_delay=2),
    )
    plan.add_required_queries(
        60, 3, repro.ZChannel(0.1), trials=4, seed=125, check_every=10,
        corruption=CorruptionModel(erasure_rate=0.1),
    )
    plan.add_required_queries(
        60, 3, repro.ZChannel(0.1), trials=3, seed=126, check_every=10,
        algorithm="twostage",
    )
    return plan


def build_degradation_plan() -> SweepPlan:
    plan = SweepPlan()
    for rate in (0.0, 0.4, 0.8):
        plan.add_success_curve(
            100, 3, repro.ZChannel(0.1), [80], trials=8, seed=42,
            corruption=CorruptionModel(erasure_rate=rate),
        )
    return plan


def main() -> int:
    try:
        serial = build_plan().run(backend="serial")
        process = build_plan().run(backend="process", workers=2)
        assert repr(serial) == repr(process), (
            "faulty sweep diverged between serial and process backends"
        )
        curves = build_degradation_plan().run(backend="process", workers=2)
        overlaps = [curve.overlaps[0] for curve in curves]
        assert all(
            b <= a + 0.05 for a, b in zip(overlaps, overlaps[1:])
        ), f"overlap not (weakly) monotone in the corruption rate: {overlaps}"
        print(
            "fault smoke ok:",
            serial[0].success_rates,
            serial[1].success_rates,
            serial[2].values,
            serial[3].values,
            overlaps,
        )
    finally:
        shutdown_pool()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
