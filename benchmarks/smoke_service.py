"""CI service smoke: the decode server survives a mid-stream SIGKILL
with every session bit-identical to standalone decoding.

Choreography:

1. Start a decode server on an ephemeral port with a durable state
   dir, plus ``JOBS`` concurrent client threads. Each thread opens its
   own session, measures its queries client-side, and streams them in
   blocks while issuing AMP decodes between blocks.
2. After every client has acked two blocks (barrier rendezvous), the
   server is SIGKILLed — no shutdown path runs — and restarted on the
   same port against the same state dir. Clients ride through the
   outage on their retry/backoff policy with idempotent request ids.
3. Once all threads finish, every session is verified serially against
   local references: the server's AMP scores must equal a standalone
   ``run_amp`` on the same query prefix bit-for-bit, and its greedy
   certificate must match an :class:`IncrementalDecoder` fed the same
   stream — proving the write-ahead replay reconstructed each session
   exactly and micro-batching across users stayed invisible.

Run: ``PYTHONPATH=src python benchmarks/smoke_service.py``
"""

import tempfile
import threading

import numpy as np

import repro
from repro.amp import AMPConfig, run_amp
from repro.core.incremental import IncrementalDecoder
from repro.service import ServiceClient
from repro.service.testing import start_server

N = 100
K = 4
GAMMA = 50
M_TOTAL = 60
BLOCKS = 6
JOBS = 4
CHANNEL_P = 0.1


def measure_queries(truth, rng, count):
    channel = repro.ZChannel(CHANNEL_P)
    sigma = truth.sigma.astype(np.int64)
    queries = []
    for _ in range(count):
        agents, counts = repro.sample_query(N, GAMMA, rng)
        total = int(np.dot(counts, sigma[agents]))
        result = float(
            channel.measure(np.asarray([total]), int(counts.sum()), rng)[0]
        )
        queries.append((agents.tolist(), counts.tolist(), result))
    return queries


def client_run(host, port, index, barrier, results):
    session_id = f"smoke-{index}"
    rng = np.random.default_rng(500 + index)
    truth = repro.sample_ground_truth(N, K, rng)
    queries = measure_queries(truth, rng, M_TOTAL)
    block = M_TOTAL // BLOCKS
    try:
        with ServiceClient(host, port, retry_budget=120.0) as client:
            client.open_session(
                session_id, N, truth.sigma.tolist(),
                channel={"kind": "z", "p": CHANNEL_P}, gamma=GAMMA,
            )
            for b in range(BLOCKS):
                client.ingest(session_id, queries[b * block:(b + 1) * block])
                if b == 1:
                    # Every client has two durable blocks: crash window.
                    barrier.wait(timeout=120)
                    barrier.wait(timeout=120)  # until the restart is up
                client.decode(session_id)
            amp = client.decode(session_id, return_scores=True)
            greedy = client.decode(session_id, algorithm="greedy")
        results[index] = {
            "truth": truth, "queries": queries, "amp": amp, "greedy": greedy,
        }
    except BaseException as exc:  # noqa: BLE001 - reported by the main thread
        results[index] = exc
        barrier.abort()


def verify(record):
    builder = repro.PoolingGraphBuilder(N, GAMMA)
    dec = IncrementalDecoder(record["truth"], repro.ZChannel(CHANNEL_P), GAMMA)
    measured = []
    for agents, counts, result in record["queries"]:
        builder.add_query(np.asarray(agents), np.asarray(counts))
        dec.ingest_query(np.asarray(agents), np.asarray(counts), result)
        measured.append(result)
    meas = repro.Measurements(
        graph=builder.build(), truth=record["truth"],
        channel=repro.ZChannel(CHANNEL_P), results=np.asarray(measured),
    )
    ref = run_amp(meas, config=AMPConfig(track_history=False))

    amp = record["amp"]
    assert amp["m"] == M_TOTAL, f"lost queries: m={amp['m']}"
    assert amp["degraded"] is False
    assert amp["exact"] == bool(ref.exact)
    assert np.array_equal(np.asarray(amp["scores"]), ref.scores), (
        "server AMP scores diverged from standalone run_amp"
    )
    greedy = record["greedy"]
    assert greedy["separation"] == float(dec.separation())
    assert greedy["separated"] == bool(dec.separation() > 0.0)


def main() -> int:
    state = tempfile.mkdtemp(prefix="repro-service-smoke-")
    server = start_server(state)
    barrier = threading.Barrier(JOBS + 1)
    results = [None] * JOBS
    threads = [
        threading.Thread(
            target=client_run,
            args=(server.host, server.port, i, barrier, results),
        )
        for i in range(JOBS)
    ]
    try:
        for t in threads:
            t.start()
        barrier.wait(timeout=120)  # all clients two blocks deep
        port = server.port
        server.kill()
        server = start_server(state, port=port)
        barrier.wait(timeout=120)  # release the clients into the outage
        for t in threads:
            t.join(timeout=240)
            assert not t.is_alive(), "client hung through the restart"
        for i, record in enumerate(results):
            if isinstance(record, BaseException):
                raise AssertionError(f"client {i} failed") from record
            verify(record)
        print(
            f"service smoke ok: {JOBS} sessions rode through a SIGKILL "
            "restart, all bit-identical to standalone decoding"
        )
        return 0
    finally:
        barrier.abort()
        server.stop()


if __name__ == "__main__":
    raise SystemExit(main())
