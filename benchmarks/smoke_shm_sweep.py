"""CI smoke: a mixed sweep through the shared-memory dispatch arena.

Runs a three-cell :class:`~repro.experiments.scheduler.SweepPlan`
(greedy required-queries, a success curve, and an AMP required-m
cell) on the ``process`` backend with ``shm=True`` and asserts the
results are bit-identical to the ``serial`` backend on the same plan —
the arena-dispatch path end to end, including the worker-side attach
with the resource tracker disarmed. Afterwards the driver must hold no
live arena (the executor unlinks in its ``finally`` block).

Must live in a real file (not a stdin heredoc): the worker processes
start under the ``spawn`` method, which re-imports the driver's main
module and cannot do so for ``<stdin>``.

Run: ``PYTHONPATH=src python benchmarks/smoke_shm_sweep.py``
"""

import repro
from repro.experiments import shm as shm_module
from repro.experiments import shutdown_pool
from repro.experiments.scheduler import SweepPlan


def build_plan() -> SweepPlan:
    plan = SweepPlan()
    plan.add_required_queries(
        150, 4, repro.ZChannel(0.1), trials=4, seed=11
    )
    plan.add_success_curve(
        120, 3, repro.NoiselessChannel(), [40, 80], trials=4, seed=7
    )
    plan.add_required_queries(
        150, 3, repro.ZChannel(0.05), trials=4, seed=3, algorithm="amp",
        check_every=10, max_m=300,
    )
    return plan


def main() -> int:
    try:
        shm_results = build_plan().run(
            backend="process", workers=2, shm=True
        )
        serial_results = build_plan().run(backend="serial")
        assert repr(shm_results) == repr(serial_results)
        assert not shm_module._live_arenas, "leaked shared-memory arena"
        print(
            "shm smoke ok:",
            shm_results[0].values,
            shm_results[1].success_rates,
            shm_results[2].values,
        )
    finally:
        shutdown_pool()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
