"""CI smoke: a two-cell sweep through the socket backend.

Spawns two localhost socket workers, runs a small two-cell
:class:`~repro.experiments.scheduler.SweepPlan` through the ``socket``
backend, and asserts the results are bit-identical to the ``serial``
backend on the same plan — the cross-host sharding path end to end.

Must live in a real file (not a stdin heredoc): the worker processes
start under the ``spawn`` method, which re-imports the driver's main
module and cannot do so for ``<stdin>``.

Run: ``PYTHONPATH=src python benchmarks/smoke_socket_sweep.py``
"""

import repro
from repro.experiments.scheduler import SweepPlan
from repro.experiments.worker import start_local_workers


def main() -> int:
    hosts, shutdown = start_local_workers(2)
    try:
        plan = SweepPlan()
        plan.add_required_queries(
            150, 4, repro.ZChannel(0.1), trials=4, seed=11
        )
        plan.add_success_curve(
            120, 3, repro.NoiselessChannel(), [40, 80], trials=4, seed=7
        )
        socket_results = plan.run(backend="socket", hosts=hosts)
        serial_results = plan.run(backend="serial")
        assert socket_results[0].values == serial_results[0].values
        assert socket_results[0].failures == serial_results[0].failures
        assert (
            socket_results[1].success_rates == serial_results[1].success_rates
        )
        assert socket_results[1].overlaps == serial_results[1].overlaps
        print(
            "socket smoke ok:",
            socket_results[0].values,
            socket_results[1].success_rates,
        )
    finally:
        shutdown()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
