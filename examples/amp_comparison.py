"""Greedy vs AMP: a miniature of the paper's Figure 6.

Both algorithms undergo a phase transition in the number of queries m;
AMP's transition sits at smaller m and is much narrower, while the
greedy algorithm needs only a single round of communication. The script
also shows what state evolution — AMP's theoretical companion —
predicts for each m.

Run:  python examples/amp_comparison.py        (~1 minute)
"""

import numpy as np

import repro
from repro.amp import BayesBernoulliDenoiser, predicted_success
from repro.experiments.runner import success_rate_curve
from repro.experiments.tables import render_table


def main() -> None:
    n = 1000
    theta = 0.25
    p = 0.1
    trials = 30
    m_values = [50, 100, 150, 200, 300, 400, 500]
    seed = 2022

    k = repro.sublinear_k(n, theta)
    channel = repro.ZChannel(p)
    print(f"n={n}, k={k}, Z-channel p={p}, {trials} trials per point")
    print(f"Theorem 1 threshold (eps=0.1): "
          f"{repro.theorem1_sublinear_z(n, theta, p, eps=0.1):.0f} queries\n")

    greedy = success_rate_curve(
        n, k, channel, m_values, algorithm="greedy", trials=trials, seed=seed
    )
    amp = success_rate_curve(
        n, k, channel, m_values, algorithm="amp", trials=trials, seed=seed
    )

    denoiser = BayesBernoulliDenoiser(k / n)
    rows = []
    for i, m in enumerate(m_values):
        se_ok = predicted_success(denoiser, k / n, delta=m / n)
        rows.append([
            m,
            f"{greedy.success_rates[i]:.2f}",
            f"{greedy.overlaps[i]:.2f}",
            f"{amp.success_rates[i]:.2f}",
            "recovers" if se_ok else "stuck",
        ])
    print(render_table(
        ["m", "greedy success", "greedy overlap", "AMP success",
         "state evolution"],
        rows,
    ))

    g50 = greedy.crossing(0.5)
    a50 = amp.crossing(0.5)
    print()
    if a50 is not None and g50 is not None:
        print(f"50% crossings — AMP: m~{a50}, greedy: m~{g50} "
              f"(AMP transitions ~{g50 / a50:.1f}x earlier, matching Fig. 6).")
    print("Note how the greedy overlap is already high well before exact "
          "recovery —\nthe paper's Fig. 7 observation that most 1-bits are "
          "found long before all are.")


if __name__ == "__main__":
    main()
