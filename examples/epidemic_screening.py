"""Pooled medical screening with imprecise lab equipment (noisy query model).

The paper's life-sciences motivation: samples are pooled by automated
pipetting machines and a biomedical test returns the total concentration
of a marker in the pool — i.e. (up to noise) the *number of infected
samples* in the pool. Pipetting and read-out inject Gaussian noise
``N(0, lambda^2)`` per pooled test.

The prevalence is sublinear (the paper cites UK HIV statistics
corresponding to theta ~ 0.1, and uses theta = 0.25 in simulations):
out of n = 2000 samples only k = n^0.25 = 7 are positive.

This script shows Theorem 2's phase transition hands-on:

* moderate noise (lambda^2 = o(m / ln n)) — pooling works: the
  required number of tests stays close to the noiseless case;
* overwhelming noise (lambda^2 = Omega(m)) — reconstruction collapses
  and no number of tests helps.

Run:  python examples/epidemic_screening.py
"""

import numpy as np

import repro
from repro.experiments.runner import required_queries_trials
from repro.experiments.tables import render_table


def main() -> None:
    n = 2000
    theta = 0.25
    k = repro.sublinear_k(n, theta)
    trials = 5
    seed = 7

    print(f"Screening n={n} samples, k={k} infected (theta={theta}).")
    print(f"Theorem 2 threshold (noiseless constants): "
          f"{repro.theorem2_sublinear(n, theta):.0f} pooled tests\n")

    rows = []
    for lam in (0.0, 1.0, 2.0, 3.0):
        channel = (
            repro.GaussianQueryNoise(lam) if lam > 0 else repro.NoiselessChannel()
        )
        sample = required_queries_trials(
            n, k, channel, trials=trials, seed=seed
        )
        rows.append([
            f"lambda={lam:g}",
            repro.noisy_query_phase(lam, max(1, int(sample.median or 1)), n)
            if sample.values else "n/a",
            f"{sample.median:.0f}" if sample.values else "never",
            sample.failures,
        ])
    print(render_table(
        ["noise level", "Theorem 2 phase", "median tests needed", "failed runs"],
        rows,
    ))

    # The failure phase: sigma(lambda^2) comparable to m. With m ~ 300
    # tests a noise std of lambda ~ 20 (lambda^2 = 400 >= m) drowns the
    # per-test signal; Theorem 2 predicts failure for ANY m.
    print("\nOverwhelming noise (lambda = 25):")
    big = required_queries_trials(
        n, k, repro.GaussianQueryNoise(25.0), trials=3, seed=seed, max_m=2000
    )
    if big.values:
        print(f"  unexpectedly recovered in {big.values} tests")
    else:
        print(f"  no recovery within 2000 tests in any of {big.failures} runs "
              "(Theorem 2, failure phase: lambda^2 = Omega(m))")


if __name__ == "__main__":
    main()
