"""Pooled medical screening as an online decode-service client.

The paper's life-sciences motivation: samples are pooled by automated
pipetting machines and a biomedical test returns (up to noise) the
*number of infected samples* in the pool; read-out noise is Gaussian,
``N(0, lambda^2)`` per pooled test. The prevalence is sublinear
(theta = 0.25 in the paper's simulations).

This version runs the paper's incremental-query procedure *as a
client of the decode service* (PR 10): the lab streams each batch of
pooled test results to a long-lived ``repro serve`` server, which
accumulates the session and answers certificate requests; the lab
stops at the first batch whose greedy certificate reports strict
score separation — the session's **required-m certificate**. Theorem
2's phase transition shows up as the certified test count staying
near the noiseless baseline for moderate noise and the certificate
never arriving once lambda^2 is comparable to m.

Run:  python examples/epidemic_screening.py [--quick] [--server HOST:PORT]
      (with no --server, a local server is started automatically)
"""

import argparse
import tempfile

import numpy as np

import repro
from repro.experiments.tables import render_table
from repro.service.client import ServiceClient


def measure_block(n, gamma, channel, truth, rng, count):
    """Pool and test ``count`` batches of samples (client-side lab work)."""
    sigma = truth.sigma.astype(np.int64)
    queries = []
    for _ in range(count):
        agents, counts = repro.sample_query(n, gamma, rng)
        infected = int(np.dot(counts, sigma[agents]))
        result = float(
            channel.measure(np.asarray([infected]), int(counts.sum()), rng)[0]
        )
        queries.append((agents.tolist(), counts.tolist(), result))
    return queries


def certify_required_m(client, session_id, n, gamma, channel, truth, rng,
                       *, block, max_m):
    """Stream pooled tests until the server certifies separation.

    Returns the certified required-m (granularity: one block), or
    ``None`` when the budget is exhausted without a certificate.
    """
    client.open_session(
        session_id, n, truth.sigma, channel=channel, gamma=gamma
    )
    m = 0
    while m < max_m:
        count = min(block, max_m - m)
        queries = measure_block(n, gamma, channel, truth, rng, count)
        m = client.ingest(session_id, queries)["m"]
        certificate = client.decode(session_id, algorithm="greedy")
        if certificate["separated"]:
            return m
    return None


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small instance for smoke tests")
    parser.add_argument("--server", default=None, metavar="HOST:PORT",
                        help="use a running decode server instead of "
                        "starting a local one")
    args = parser.parse_args()

    n = 400 if args.quick else 2000
    theta = 0.25
    k = repro.sublinear_k(n, theta)
    gamma = repro.default_gamma(n)
    lambdas = (0.0, 2.0) if args.quick else (0.0, 1.0, 2.0, 3.0)
    block = 32
    max_m = 400 if args.quick else 1500
    seed = 7

    print(f"Screening n={n} samples, k={k} infected (theta={theta}).")
    print(f"Theorem 2 threshold (noiseless constants): "
          f"{repro.theorem2_sublinear(n, theta):.0f} pooled tests")

    server = None
    if args.server:
        host, _, port = args.server.rpartition(":")
    else:
        from repro.service.testing import start_server

        server = start_server(tempfile.mkdtemp(prefix="repro-screening-"))
        host, port = server.host, server.port
        print(f"started local decode server on {host}:{port}")
    print()

    try:
        with ServiceClient(host, int(port)) as client:
            rows = []
            for lam in lambdas:
                channel = (
                    repro.GaussianQueryNoise(lam)
                    if lam > 0
                    else repro.NoiselessChannel()
                )
                rng = np.random.default_rng(seed)
                truth = repro.sample_ground_truth(n, k, rng)
                required = certify_required_m(
                    client, f"screening-lam{lam:g}", n, gamma, channel,
                    truth, rng, block=block, max_m=max_m,
                )
                rows.append([
                    f"lambda={lam:g}",
                    repro.noisy_query_phase(lam, required or max_m, n),
                    f"{required}" if required else f"none in {max_m}",
                ])
            print(render_table(
                ["noise level", "Theorem 2 phase",
                 "certified tests (required-m)"],
                rows,
            ))

            # The failure phase: lambda^2 comparable to m drowns the
            # per-test signal; the certificate never arrives.
            lam_big = 25.0
            rng = np.random.default_rng(seed)
            truth = repro.sample_ground_truth(n, k, rng)
            required = certify_required_m(
                client, "screening-overwhelming", n, gamma,
                repro.GaussianQueryNoise(lam_big), truth, rng,
                block=block, max_m=max_m,
            )
            print(f"\nOverwhelming noise (lambda = {lam_big:g}): "
                  + (f"unexpectedly certified at {required} tests"
                     if required else
                     f"no certificate within {max_m} tests "
                     "(Theorem 2, failure phase: lambda^2 = Omega(m))"))
    finally:
        if server is not None:
            server.stop()


if __name__ == "__main__":
    main()
