"""Distributed feature screening on an unreliable GPU cluster (noisy channel).

The paper's technological motivation: query nodes are GPUs that each
evaluate a neural network on a random subset of items and report how
many of them are "positive". Communication and evaluation are subject
to random bit flips — a positive read as negative with probability p
(and, in the general channel, a negative read as positive with
probability q). The Z-channel (q = 0) models the common case where
false positives are much rarer than false negatives.

This script runs the *actual distributed protocol* — query-node
broadcasts, per-agent score accumulation, and a Batcher sorting network
— on a simulated synchronous message-passing cluster, and reports the
communication bill alongside the reconstruction quality.

Run:  python examples/gpu_cluster.py
"""

import numpy as np

import repro
from repro.distributed import run_distributed_algorithm1
from repro.experiments.tables import render_kv, render_table


def main() -> None:
    n = 256  # items (power of two so we can also show the bitonic network)
    k = 8    # truly positive items
    m = 220  # GPU evaluation rounds (query nodes)
    p = 0.15
    seed = 3

    gen = np.random.default_rng(seed)
    truth = repro.sample_ground_truth(n, k, gen)
    graph = repro.sample_pooling_graph(n, m, rng=gen)
    channel = repro.ZChannel(p)
    measurements = repro.measure(graph, truth, channel, gen)

    print(render_kv("Cluster job", [
        ("items n", n),
        ("positives k", k),
        ("GPU queries m", m),
        ("items per query", graph.gamma),
        ("channel", channel.describe()),
    ]))
    print()

    rows = []
    for network in ("batcher", "bitonic", "transposition"):
        report = run_distributed_algorithm1(measurements, sorting_network=network)
        rows.append([
            network,
            report.sort_depth,
            report.metrics.rounds,
            report.metrics.messages,
            f"{report.metrics.bits / 8 / 1024:.1f} KiB",
            report.result.exact,
            f"{report.result.overlap:.2f}",
        ])
    print(render_table(
        ["sorting network", "sort depth", "rounds", "messages", "traffic",
         "exact", "overlap"],
        rows,
    ))
    print()
    print("All three networks compute the identical reconstruction; they "
          "trade\nround-latency (depth) against comparator count. "
          "Batcher's O(log^2 n)\ndepth is why the paper cites it for the "
          "sorting step of Algorithm 1.")

    # Sanity: the distributed run agrees with the vectorized decoder.
    vec = repro.greedy_reconstruct(measurements)
    dist = run_distributed_algorithm1(measurements).result
    assert np.array_equal(vec.estimate, dist.estimate)
    print("\nVerified: message-passing output is bit-identical to the "
          "vectorized decoder.")


if __name__ == "__main__":
    main()
