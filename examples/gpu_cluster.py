"""GPU-cluster telemetry as concurrent decode-service sessions.

The paper's technological motivation: query nodes are GPUs that each
evaluate a neural network on a random subset of items and report how
many of them are "positive", with reports subject to Z-channel noise
(a positive read as negative with probability p).

This version exercises the decode service (PR 10) the way the
ROADMAP's "millions of users" north star intends: several monitoring
agents stream their probe results *concurrently* into one long-lived
``repro serve`` server, which micro-batches their AMP decode requests
into a single ragged block-diagonal ``iterate_amp`` call. The example
then replays every session locally and asserts the service's AMP
scores and greedy certificate are **bit-identical** to standalone
:func:`repro.amp.run_amp` / :class:`repro.IncrementalDecoder` on the
same measurements — batching across users never changes a decode.

Run:  python examples/gpu_cluster.py [--quick] [--server HOST:PORT]
      (with no --server, a local server is started automatically)
"""

import argparse
import tempfile
import threading

import numpy as np

import repro
from repro.amp import AMPConfig, run_amp
from repro.service.client import ServiceClient


def simulate_job(host, port, session_id, n, k, m, p, seed, out):
    """One monitoring agent: sample, measure, stream, decode via service."""
    channel = repro.ZChannel(p)
    gamma = repro.default_gamma(n)
    rng = np.random.default_rng(seed)
    truth = repro.sample_ground_truth(n, k, rng)
    sigma = truth.sigma.astype(np.int64)

    queries = []
    for _ in range(m):
        agents, counts = repro.sample_query(n, gamma, rng)
        faulty = int(np.dot(counts, sigma[agents]))
        result = float(
            channel.measure(np.asarray([faulty]), int(counts.sum()), rng)[0]
        )
        queries.append((agents, counts, result))

    with ServiceClient(host, port) as client:
        client.open_session(session_id, n, truth.sigma, channel=channel)
        block = max(1, m // 4)
        for lo in range(0, m, block):
            client.ingest(
                session_id,
                [(a.tolist(), c.tolist(), r)
                 for a, c, r in queries[lo:lo + block]],
            )
        amp_response = client.decode(
            session_id, algorithm="amp", return_scores=True
        )
        greedy_response = client.decode(session_id, algorithm="greedy")

    out[session_id] = {
        "truth": truth,
        "channel": channel,
        "queries": queries,
        "amp": amp_response,
        "greedy": greedy_response,
    }


def local_reference(n, k, record):
    """Standalone AMP + greedy on the same measurements, no service."""
    builder = repro.PoolingGraphBuilder(n)
    results = []
    for agents, counts, result in record["queries"]:
        builder.add_query(agents, counts)
        results.append(result)
    meas = repro.Measurements(
        graph=builder.build(),
        truth=record["truth"],
        channel=record["channel"],
        results=np.asarray(results, dtype=np.float64),
    )
    amp = run_amp(meas, config=AMPConfig(track_history=False))
    decoder = repro.IncrementalDecoder(record["truth"], record["channel"])
    for agents, counts, result in record["queries"]:
        decoder.ingest_query(agents, counts, result)
    return amp, decoder


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small instance for smoke tests")
    parser.add_argument("--server", default=None, metavar="HOST:PORT",
                        help="use a running decode server instead of "
                        "starting a local one")
    args = parser.parse_args()

    n = 128 if args.quick else 256
    k = 6 if args.quick else 8
    m = 130 if args.quick else 220
    p = 0.15
    jobs = 2 if args.quick else 4

    print(f"Fleet of n={n} GPU jobs, k={k} faulty; {jobs} monitoring "
          f"agents, each streaming m={m} pooled probes "
          f"(Z-channel, p={p}).")

    server = None
    if args.server:
        host, _, port = args.server.rpartition(":")
        port = int(port)
    else:
        from repro.service.testing import start_server

        server = start_server(tempfile.mkdtemp(prefix="repro-cluster-"))
        host, port = server.host, server.port
        print(f"started local decode server on {host}:{port}")

    try:
        records = {}
        threads = [
            threading.Thread(
                target=simulate_job,
                args=(host, port, f"gpu-job-{i}", n, k, m, p, 3 + i,
                      records),
            )
            for i in range(jobs)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        print()
        all_ok = True
        for session_id in sorted(records):
            record = records[session_id]
            amp_ref, greedy_ref = local_reference(n, k, record)
            service_scores = np.asarray(record["amp"]["scores"])
            amp_identical = np.array_equal(
                service_scores, amp_ref.scores
            ) and record["amp"]["exact"] == bool(amp_ref.exact)
            greedy_identical = (
                record["greedy"]["separated"] == greedy_ref.is_successful()
                and record["greedy"]["separation"]
                == float(greedy_ref.separation())
            )
            all_ok = all_ok and amp_identical and greedy_identical
            print(f"{session_id}: AMP exact={record['amp']['exact']} "
                  f"(batch of {record['amp']['batch_size']}), "
                  f"greedy separated={record['greedy']['separated']}, "
                  f"bit-identical to local decode: "
                  f"AMP={amp_identical} greedy={greedy_identical}")

        with ServiceClient(host, port) as client:
            stats = client.stats()
        print(f"\nserver stats: {stats['decoded']} decodes in "
              f"{stats['batches']} batches "
              f"({stats['batched_requests']} batched), "
              f"{stats['sessions']} sessions")
        if not all_ok:
            raise SystemExit("service decode diverged from local decode")
        print("All sessions bit-identical to standalone decoding — "
              "micro-batching across users is a pure optimization.")
    finally:
        if server is not None:
            server.stop()


if __name__ == "__main__":
    main()
