"""Calibrating the noise channel from the data itself.

The paper assumes the channel parameters (p, q, lambda) are known
constants. This example shows the library's calibration workflow for
the realistic case where they are not:

1. estimate what is identifiable from the raw query results — the
   results are exactly Bin(Gamma, r) with effective read rate
   ``r = q + (k/n)(1-p-q)``, so one-parameter families (Z-channel,
   symmetric channel) and the Gaussian level come straight from the
   first two moments;
2. decode once with the fitted channel's oracle centering;
3. for the general (p, q) channel, regress the results on the decoded
   ``E1_hat`` per query (slope ``1-p-q``, intercept ``q Gamma``) —
   the decode-assisted step that resolves the (p, q) ambiguity.

Run:  python examples/noise_calibration.py
"""

import numpy as np

import repro
from repro.core.estimation import (
    estimate_effective_rate,
    estimate_general_channel,
    fit_channel,
)
from repro.experiments.tables import render_kv, render_table


def main() -> None:
    n, k, m = 1000, 30, 4000
    true_p, true_q = 0.15, 0.03
    seed = 21

    gen = np.random.default_rng(seed)
    truth = repro.sample_ground_truth(n, k, gen)
    graph = repro.sample_pooling_graph(n, m, rng=gen)
    channel = repro.NoisyChannel(true_p, true_q)
    meas = repro.measure(graph, truth, channel, gen)

    print(render_kv("Hidden channel (to be estimated)", [
        ("false-negative p", true_p),
        ("false-positive q", true_q),
        ("effective read rate r", f"{true_q + k / n * (1 - true_p - true_q):.4f}"),
    ]))
    print()

    # Step 1: what the marginal results identify.
    r_hat = estimate_effective_rate(meas.results, graph.gamma)
    print(f"Step 1 — moment estimate of the effective rate: r_hat = {r_hat:.4f}")
    print("        (p and q individually are NOT identifiable from the")
    print("         results alone: they are exactly Bin(Gamma, r) samples)\n")

    # Step 2: decode with the mean-calibrated oracle centering. Any
    # (p, q) with the right r gives the same centering, so we can use
    # the symmetric fit as a stand-in.
    stand_in = fit_channel("symmetric", meas)
    from repro.core.scores import centered_scores, expected_query_result

    psi = graph.neighborhood_sums(meas.results)
    scores = centered_scores(
        psi,
        graph.distinct_degrees(),
        k,
        mode="oracle",
        expected_result=expected_query_result(stand_in, n, k, graph.gamma),
    )
    estimate = repro.top_k_estimate(scores, k)
    exact = bool(np.array_equal(estimate, truth.sigma))
    print(f"Step 2 — decode with the calibrated centering: exact = {exact}")
    overlap = float(np.count_nonzero(estimate[truth.sigma == 1]) / k)
    print(f"         overlap = {overlap:.3f}\n")

    # Step 3: decode-assisted (p, q) regression.
    p_hat, q_hat = estimate_general_channel(meas, estimate)
    print("Step 3 — per-query regression on decoded E1_hat:")
    print(render_table(
        ["parameter", "true", "estimated"],
        [["p", true_p, f"{p_hat:.4f}"], ["q", true_q, f"{q_hat:.4f}"]],
    ))
    print()
    print("The fitted channel can now drive everything the known-parameter")
    print("pipeline does: Theorem 1 thresholds, oracle centering, AMP's")
    print("channel correction — without assuming p and q up front.")


if __name__ == "__main__":
    main()
