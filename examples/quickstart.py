"""Quickstart: reconstruct hidden bits from noisy pooled queries.

The minimal end-to-end tour of the library:

1. draw a ground truth (n agents, k of them hold bit 1),
2. draw the random pooling design (m queries of size n/2 each),
3. measure through a noisy channel (here: Z-channel, 10% of 1-bits
   flip to 0 when read),
4. reconstruct with the paper's greedy Algorithm 1 and with AMP,
5. compare against the Theorem 1 query threshold.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro.amp import run_amp
from repro.experiments.tables import render_kv


def main() -> None:
    n = 1000
    theta = 0.25  # sublinear regime: k = n^theta
    p = 0.1  # Z-channel false-negative rate
    m = 400  # number of pooled queries
    seed = 42

    k = repro.sublinear_k(n, theta)
    gen = np.random.default_rng(seed)

    truth = repro.sample_ground_truth(n, k, gen)
    graph = repro.sample_pooling_graph(n, m, rng=gen)
    channel = repro.ZChannel(p)
    measurements = repro.measure(graph, truth, channel, gen)

    greedy = repro.greedy_reconstruct(measurements)
    amp = run_amp(measurements)
    bound = repro.theorem1_sublinear_z(n, theta, p, eps=0.05)

    print(render_kv("Instance", [
        ("agents n", n),
        ("ones k (= n^0.25)", k),
        ("queries m", m),
        ("query size Gamma", graph.gamma),
        ("channel", channel.describe()),
        ("Theorem 1 threshold", f"{bound:.0f} queries"),
    ]))
    print()
    print(render_kv("Greedy (Algorithm 1)", [
        ("exact recovery", greedy.exact),
        ("overlap", f"{greedy.overlap:.3f}"),
        ("score separation", f"{greedy.meta['separation_margin']:.1f}"),
    ]))
    print()
    print(render_kv("AMP baseline", [
        ("exact recovery", amp.exact),
        ("overlap", f"{amp.overlap:.3f}"),
        ("iterations", amp.meta["iterations"]),
        ("converged", amp.meta["converged"]),
    ]))
    print()
    if greedy.exact:
        print(f"Greedy recovered all {k} hidden 1-bits from {m} noisy queries "
              f"(theory asks for ~{bound:.0f}).")
    else:
        print(f"Greedy misclassified {greedy.hamming_errors} agents — "
              f"try m above the Theorem 1 threshold of {bound:.0f}.")


if __name__ == "__main__":
    main()
