"""Heavy-hitter detection in network traffic (linear regime).

The paper's linear-regime motivation: in traffic monitoring a constant
fraction zeta of flows are "heavy". Out of n flows, k = zeta * n carry
the hidden bit 1; sum-queries over random flow subsets (e.g. sketch
counters) report how many heavy flows they contain, possibly through a
noisy channel.

This script contrasts the two regimes of Theorem 1: in the linear
regime the required number of queries scales like n ln n — far beyond
the k ln n of the sublinear regime — and the measured query counts
track the linear-regime bound.

Run:  python examples/traffic_monitoring.py
"""

import numpy as np

import repro
from repro.experiments.runner import required_queries_trials
from repro.experiments.tables import render_table


def main() -> None:
    zeta = 0.05  # 5% of flows are heavy hitters
    p = 0.05     # mild false-negative rate in the counters
    trials = 4
    seed = 11

    print(f"Linear regime: k = {zeta:.0%} of n flows are heavy, "
          f"Z-channel p={p}\n")
    rows = []
    for n in (200, 400, 800, 1600):
        k = repro.linear_k(n, zeta)
        channel = repro.ZChannel(p)
        sample = required_queries_trials(n, k, channel, trials=trials, seed=seed)
        bound = repro.theorem1_linear(n, zeta, p, 0.0, eps=0.05)
        sub_bound_same_k = repro.theorem2_sublinear(n, np.log(k) / np.log(n))
        rows.append([
            n,
            k,
            f"{sample.median:.0f}",
            f"{bound:.0f}",
            f"{sample.median / (n * np.log(n)):.3f}",
        ])
    print(render_table(
        ["flows n", "heavy k", "median m (measured)", "Thm 1 linear bound",
         "m / (n ln n)"],
        rows,
    ))
    print()
    print("The measured m grows ~ n ln n (last column roughly constant), an "
          "order\nof magnitude above the k ln n scaling of the sublinear "
          "regime — the\nprice of a constant fraction of heavy hitters "
          "(Theorem 1, linear case).")


if __name__ == "__main__":
    main()
