"""The paper's open question, answered empirically: local error correction.

The conclusion of the paper asks whether "a two-step algorithm that
locally tries to correct errors can be analyzed rigorously and performs
even better" than the one-shot greedy Algorithm 1. This example runs
the library's two-stage extension — greedy start, then iterative local
correction against the query residuals — in the transition window
where greedy alone struggles, and shows how few correction rounds it
takes to fix the remaining mistakes.

Run:  python examples/two_stage_correction.py
"""

import numpy as np

import repro
from repro.core.twostage import two_stage_reconstruct
from repro.experiments.tables import render_table


def main() -> None:
    n, theta, p = 1000, 0.25, 0.3
    k = repro.sublinear_k(n, theta)
    m = 180  # inside greedy's transition window for p = 0.3
    trials = 12

    print(f"n={n}, k={k}, Z-channel p={p}, m={m} queries, {trials} trials")
    print("(greedy alone succeeds rarely at this m; see Figure 6)\n")

    rows = []
    greedy_wins = twostage_wins = 0
    for seed in range(trials):
        gen = np.random.default_rng(1000 + seed)
        truth = repro.sample_ground_truth(n, k, gen)
        graph = repro.sample_pooling_graph(n, m, rng=gen)
        meas = repro.measure(graph, truth, repro.ZChannel(p), gen)

        greedy = repro.greedy_reconstruct(meas)
        two = two_stage_reconstruct(meas)
        greedy_wins += greedy.exact
        twostage_wins += two.exact
        rows.append([
            seed,
            greedy.hamming_errors,
            two.hamming_errors,
            two.meta["rounds"],
            "fixed" if (not greedy.exact and two.exact) else
            ("kept" if greedy.exact else "open"),
        ])

    print(render_table(
        ["trial", "greedy errors", "two-stage errors", "correction rounds",
         "outcome"],
        rows,
    ))
    print(f"\nexact recoveries — greedy: {greedy_wins}/{trials}, "
          f"two-stage: {twostage_wins}/{trials}")
    print("Each correction round costs one extra query->agent round trip — "
          "the same\ncommunication pattern as Algorithm 1's single round, "
          "repeated a handful of times.")


if __name__ == "__main__":
    main()
