"""repro — reproduction of "Distributed Reconstruction of Noisy Pooled Data".

Hahn-Klimroth & Kaaser, ICDCS 2022 (arXiv:2204.07491).

The public API re-exports the most commonly used pieces:

* problem substrate — :class:`GroundTruth`, :class:`PoolingGraph`,
  noise channels, :func:`measure`;
* algorithms — the greedy maximum-neighborhood decoder
  (:func:`greedy_reconstruct`, :class:`IncrementalDecoder`) and the
  :class:`~repro.amp.AMP` baseline;
* theory — Theorem 1/2 query thresholds (:func:`theorem1_bound`, ...);
* the distributed message-passing runtime lives in
  :mod:`repro.distributed`, the experiment harness (figure
  reproductions) in :mod:`repro.experiments`.

Quickstart::

    import repro

    truth = repro.sample_ground_truth(n=1000, k=repro.sublinear_k(1000, 0.25), rng=1)
    graph = repro.sample_pooling_graph(n=1000, m=400, rng=2)
    meas = repro.measure(graph, truth, repro.ZChannel(p=0.1), rng=3)
    result = repro.greedy_reconstruct(meas)
    print(result.exact, result.overlap)
"""

from repro.core import *  # noqa: F401,F403  (curated re-export, see repro.core.__all__)
from repro.core import __all__ as _core_all

__version__ = "1.0.0"

__all__ = list(_core_all) + ["__version__"]
