"""Module entry point: ``python -m repro``."""

import sys

from repro.cli import main

try:
    sys.exit(main())
except KeyboardInterrupt:
    # A long sweep interrupted mid-run exits cleanly; with
    # checkpointing on (REPRO_CHECKPOINT / --checkpoint), re-running
    # the same command resumes from the persisted chunks.
    print("\ninterrupted", file=sys.stderr)
    sys.exit(130)
