"""Approximate message passing baseline (paper, Section III).

AMP is the sequential algorithm the paper compares against in Figure 6;
it is conjectured optimal for dense-inference problems of this type.
This package provides:

* :func:`run_amp` — the Onsager-corrected AMP iteration on standardized
  pooled measurements;
* :func:`run_amp_batch` / :func:`run_amp_trials` — the block-diagonal
  batched runner for sweep-scale AMP (decode-identical to per-trial
  ``run_amp`` on the same spawned seeds);
* :func:`required_queries_amp` — the per-trial "smallest m on the
  check grid where AMP decodes exactly" scan: prefix replay of a
  once-sampled query stream plus a galloping bracket / stacked
  bisection, grid-exact against the brute-force linear scan
  (:func:`required_queries_amp_linear`);
* denoisers (:class:`BayesBernoulliDenoiser`,
  :class:`SoftThresholdDenoiser`);
* the kernel seam (:mod:`repro.amp.kernels`) — every AMP entry point
  takes ``kernel=`` (a name from :data:`KERNELS` or an
  :class:`AMPKernel` instance; default from the ``REPRO_KERNEL`` env
  var) selecting the compute backend for the inner array passes;
* :func:`state_evolution` — the scalar recursion predicting AMP's MSE
  trajectory.
"""

from repro.amp.amp import (
    AMPConfig,
    channel_corrected_results,
    default_denoiser,
    iterate_amp,
    run_amp,
    standardization_constants,
    standardize_system,
)
from repro.amp.batch_amp import (
    required_queries_amp,
    required_queries_amp_linear,
    run_amp_batch,
    run_amp_trials,
)
from repro.amp.distributed_amp import (
    CommunicationCost,
    amp_communication_cost,
    greedy_communication_cost,
    run_distributed_amp,
)
from repro.amp.denoisers import (
    BayesBernoulliDenoiser,
    Denoiser,
    SoftThresholdDenoiser,
)
from repro.amp.kernels import (
    KERNEL_ENV,
    KERNELS,
    AMPKernel,
    StackLayout,
    numba_available,
    resolve_kernel,
)
from repro.amp.state_evolution import (
    StateEvolutionResult,
    denoiser_mse,
    predicted_success,
    state_evolution,
)

__all__ = [
    "AMPConfig",
    "run_amp",
    "run_amp_batch",
    "run_amp_trials",
    "required_queries_amp",
    "required_queries_amp_linear",
    "standardize_system",
    "standardization_constants",
    "channel_corrected_results",
    "default_denoiser",
    "iterate_amp",
    "Denoiser",
    "BayesBernoulliDenoiser",
    "SoftThresholdDenoiser",
    "KERNEL_ENV",
    "KERNELS",
    "AMPKernel",
    "StackLayout",
    "numba_available",
    "resolve_kernel",
    "denoiser_mse",
    "state_evolution",
    "StateEvolutionResult",
    "predicted_success",
    "CommunicationCost",
    "greedy_communication_cost",
    "amp_communication_cost",
    "run_distributed_amp",
]
