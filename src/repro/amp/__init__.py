"""Approximate message passing baseline (paper, Section III).

AMP is the sequential algorithm the paper compares against in Figure 6;
it is conjectured optimal for dense-inference problems of this type.
This package provides:

* :func:`run_amp` — the Onsager-corrected AMP iteration on standardized
  pooled measurements;
* denoisers (:class:`BayesBernoulliDenoiser`,
  :class:`SoftThresholdDenoiser`);
* :func:`state_evolution` — the scalar recursion predicting AMP's MSE
  trajectory.
"""

from repro.amp.amp import AMPConfig, run_amp, standardize_system
from repro.amp.distributed_amp import (
    CommunicationCost,
    amp_communication_cost,
    greedy_communication_cost,
    run_distributed_amp,
)
from repro.amp.denoisers import (
    BayesBernoulliDenoiser,
    Denoiser,
    SoftThresholdDenoiser,
)
from repro.amp.state_evolution import (
    StateEvolutionResult,
    denoiser_mse,
    predicted_success,
    state_evolution,
)

__all__ = [
    "AMPConfig",
    "run_amp",
    "standardize_system",
    "Denoiser",
    "BayesBernoulliDenoiser",
    "SoftThresholdDenoiser",
    "denoiser_mse",
    "state_evolution",
    "StateEvolutionResult",
    "predicted_success",
    "CommunicationCost",
    "greedy_communication_cost",
    "amp_communication_cost",
    "run_distributed_amp",
]
