"""Approximate message passing for the pooled data problem (Section III).

The paper's update rules (Donoho-Maleki-Montanari form):

    sigma^{t+1} = eta_t(A^T z^t + sigma^t)
    z^t         = sigma_hat - A sigma^t
                  + (n/m) * (1/n) * sum_i eta'_{t-1}(A^T z^{t-1} + sigma^{t-1}) * z^{t-1}

where the last summand is the Onsager correction. These rules implicitly
assume a sensing matrix with zero-mean, ``O(1/sqrt(m))`` entries. The
raw pooling matrix has ``A_ij ~ Bin(Gamma, 1/n)`` entries (mean
``Gamma/n = 1/2``), so — as is standard for pooled data (cf. Alaoui et
al.) — we *standardize* the system before iterating:

1. channel correction (``p``/``q`` known, as the paper assumes):
   under the noisy channel ``E[sigma_hat_j | A, sigma] =
   q Gamma + (1-p-q) (A sigma)_j``, so
   ``y_raw = (sigma_hat - q Gamma) / (1 - p - q)``;
2. centering with the known ``k``:
   ``y_c = y_raw - Gamma k / n`` matches ``A_c = A - Gamma/n``;
3. scaling by ``s = sqrt(m * Gamma/n * (1 - 1/n))`` so the columns of
   ``A_s = A_c / s`` have (approximately) unit norm.

After standardization the effective model is ``y = A_s sigma + w`` and
the textbook AMP iteration applies, with the effective noise level
``tau_t`` estimated as ``||z^t|| / sqrt(m)``.

The final estimate is the top-``k`` of the last iterate (the number of
1-agents is known, exactly as for the greedy decoder).

Single-source kernel
--------------------
Standardization (:func:`channel_corrected_results`,
:func:`standardization_constants`) and the iteration itself
(:func:`iterate_amp`) are shared helpers: the dense and sparse paths of
:func:`run_amp` run the kernel on a one-trial stack, and the batched
runner (:mod:`repro.amp.batch_amp`) runs it on a ``T``-trial
block-diagonal stack — uniform-``m`` (one sweep cell) or, via the
``row_sizes`` parameter, heterogeneous-``m`` (the required-queries
prefix probes). Every kernel operation is row-independent —
reductions along the last axis of C-contiguous arrays (or pairwise
sums over contiguous flat segments in the ragged case), elementwise
broadcasts against per-trial ``(T, 1)`` scalars, and sequential
per-row CSR matvecs — so a trial's iterate sequence is bit-identical
no matter which stack (of any size or composition) it runs in.

The per-iteration array passes themselves live behind the pluggable
compute seam of :mod:`repro.amp.kernels`: :func:`iterate_amp` is one
stack-shape-agnostic driver (a :class:`~repro.amp.kernels.StackLayout`
describes uniform vs ragged) that alternates the backend's
``posterior_step`` / ``residual_step`` phases with the caller's
matvecs. The default ``numpy`` backend performs exactly the operations
this module's pre-seam loops performed — bit-identical by construction
— while ``kernel="numba"`` fuses each phase into one jitted loop and
``"numpy32"``/``"numba32"`` compute in float32 (both opt-in,
tolerance-tested; see the kernels module docstring).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.amp.denoisers import BayesBernoulliDenoiser, Denoiser
from repro.amp.kernels import (
    CSRStackOperator,
    MatvecOperator,
    StackLayout,
    resolve_kernel,
)
from repro.core.measurement import Measurements
from repro.core.noise import Channel, GaussianQueryNoise, NoiselessChannel, NoisyChannel
from repro.core.scores import top_k_estimate
from repro.core.types import ReconstructionResult, evaluate_estimate
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class AMPConfig:
    """Tuning knobs for the AMP iteration.

    Attributes
    ----------
    max_iter:
        Iteration budget (the paper notes AMP needs "many rounds").
    tol:
        Early-stopping threshold on ``||sigma^{t+1} - sigma^t||_2 /
        sqrt(n)``.
    damping:
        Convex damping factor in ``[0, 1)`` applied to the state updates
        (0 disables damping; small damping stabilizes finite-size runs).
    track_history:
        Record per-iteration MSE proxies in the result metadata.
    """

    max_iter: int = 50
    tol: float = 1e-7
    damping: float = 0.0
    track_history: bool = True

    def __post_init__(self) -> None:
        check_positive_int(self.max_iter, "max_iter")
        if not 0.0 <= self.damping < 1.0:
            raise ValueError(f"damping must lie in [0, 1), got {self.damping}")
        if self.tol < 0:
            raise ValueError(f"tol must be >= 0, got {self.tol}")


# -- standardization (single source for dense / sparse / batched) -------


def standardization_constants(n: int, m: int, gamma: int) -> Tuple[float, float]:
    """Centering constant ``c = Gamma/n`` and column scale ``s``.

    The standardized system is ``A_s = (A - c) / s`` with
    ``s = sqrt(m * c * (1 - 1/n))`` (approximately unit column norms).
    """
    c = gamma / n
    scale = float(np.sqrt(m * c * (1.0 - 1.0 / n)))
    return c, scale


def channel_corrected_results(
    results: np.ndarray, gamma: int, channel: Channel
) -> np.ndarray:
    """Invert the channel's affine bias on raw query results.

    Elementwise, so it applies equally to one trial's ``(m,)`` result
    vector and to a stacked ``(T, m)`` matrix of per-trial results.
    Returns a fresh float64 array; raises ``TypeError`` for channel
    types AMP does not support.
    """
    results = np.asarray(results, dtype=np.float64)
    if isinstance(channel, NoisyChannel):
        return (results - channel.q * gamma) / (1.0 - channel.p - channel.q)
    if isinstance(channel, (NoiselessChannel, GaussianQueryNoise)):
        return results.copy()
    raise TypeError(f"unsupported channel type: {type(channel).__name__}")


def standardize_system(
    adjacency: np.ndarray,
    results: np.ndarray,
    k: int,
    gamma: int,
    channel: Channel,
) -> "tuple[np.ndarray, np.ndarray]":
    """Channel-correct, center and scale ``(A, sigma_hat)`` for AMP.

    Returns the standardized pair ``(A_s, y)`` described in the module
    docstring. Raises ``TypeError`` for unsupported channel types.
    """
    adjacency = np.asarray(adjacency, dtype=np.float64)
    results = np.asarray(results, dtype=np.float64)
    m, n = adjacency.shape
    if results.shape != (m,):
        raise ValueError(f"results must have shape ({m},), got {results.shape}")
    y_raw = channel_corrected_results(results, gamma, channel)
    c, scale = standardization_constants(n, m, gamma)
    a_s = (adjacency - c) / scale
    y = (y_raw - c * k) / scale
    return a_s, y


def default_denoiser(n: int, k: int) -> Denoiser:
    """The Bayes-optimal denoiser under the problem prior ``pi = k/n``."""
    pi = min(max(k / n, 1e-12), 1 - 1e-12)
    return BayesBernoulliDenoiser(pi)


# -- iteration kernel ---------------------------------------------------


def iterate_amp(
    operator,
    y: np.ndarray,
    denoiser: Denoiser,
    config: AMPConfig,
    *,
    n: int,
    restrict: Optional[Callable[[np.ndarray], object]] = None,
    row_sizes: Optional[np.ndarray] = None,
    kernel=None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Optional[List[List[dict]]]]:
    """Run the AMP iteration on a stack of ``T`` standardized systems.

    Parameters
    ----------
    operator:
        The standardized stack operator — normally a
        :class:`~repro.amp.kernels.CSRStackOperator` (raw block-
        diagonal CSR plus centering/scales), which lets the kernel
        backend run the matvec pair inside the seam (scipy reference,
        fused CSR loop, or GPU). Any object with flat-vector
        ``matvec`` / ``rmatvec`` methods works (e.g. a
        :class:`~repro.amp.kernels.MatvecOperator` wrapping closures);
        such generic operators run through the kernels' reference
        phase implementations. ``matvec`` maps a ``(T*n,)`` stack of
        signal vectors to a ``(T*m,)`` stack of measurement vectors,
        ``rmatvec`` the reverse. For ``T = 1`` these are the ordinary
        per-trial maps. Under a float32 kernel the operator must
        produce the kernel dtype (cast the CSR data once; see
        :mod:`repro.amp.batch_amp`).
    y:
        Standardized measurements, shape ``(T, m)`` (one row per trial),
        or — with ``row_sizes`` — one flat concatenation of the
        per-trial measurement vectors.
    denoiser:
        Scalar denoiser; evaluated with a per-trial ``(T, 1)`` noise
        level so each row sees exactly its own ``tau``.
    n:
        Signal dimension per trial.
    restrict:
        Optional stack compaction hook. When at most half the remaining
        trials are still active the kernel drops converged rows and
        calls ``restrict(live)`` — ``live`` being the original indices
        of the surviving trials — to obtain the operator for the
        smaller stack. Compaction never changes any trial's iterates
        (every operation is row-independent); it only stops paying
        matvec time for trials that already froze.
    row_sizes:
        Per-trial measurement counts for a **heterogeneous-m** stack
        (the required-m prefix probes, where every trial runs a
        different query-count prefix of its stream). ``y`` is then the
        flat ``(sum(row_sizes),)`` concatenation of the per-trial
        standardized measurements, and matvec outputs / residuals are
        ragged flat stacks segmented by ``row_sizes``. ``None``
        (default) keeps the uniform-``m`` fast path.
    kernel:
        Compute backend for the per-iteration array passes: a name
        from :data:`repro.amp.kernels.KERNELS`, a ready
        :class:`~repro.amp.kernels.AMPKernel`, or ``None`` (the
        ``REPRO_KERNEL`` environment variable, else the bit-identical
        ``numpy`` reference).

    Returns
    -------
    (sigma, iterations, converged, histories):
        ``sigma`` is the ``(T, n)`` stack of final iterates (each
        trial's value frozen at its own stopping iteration),
        ``iterations``/``converged`` the per-trial counters and flags,
        and ``histories`` one per-iteration record list per trial (or
        ``None`` when ``config.track_history`` is off).

    Per-trial convergence uses the same rule as a standalone run: a
    trial whose step norm drops below ``config.tol`` freezes — its row
    stops being written — while the remaining trials keep iterating.

    Both stack shapes perform only row-independent operations (see the
    module docstring), so a trial's iterate sequence is bit-identical
    to a standalone one-trial run on the same standardized system no
    matter which stack — uniform or ragged, of any size — it runs in.
    The loop itself is one shape-agnostic driver: a
    :class:`~repro.amp.kernels.StackLayout` carries the per-trial
    standardization scalars and segment bounds, and the kernel's two
    matvec-inclusive phase methods (``adjoint_posterior`` /
    ``forward_residual``) do the entire iteration body — matvecs
    included — so a backend can fuse or offload the whole pass.
    """
    kern = resolve_kernel(kernel)
    if row_sizes is None:
        y = kern.as_working(y)
        total, m = y.shape
        layout = StackLayout.for_uniform(total, n, m, kern.dtype)
    else:
        row_sizes = np.asarray(row_sizes, dtype=np.int64)
        y = kern.as_working(y)
        total = row_sizes.size
        if y.shape != (int(row_sizes.sum()),):
            raise ValueError(
                f"flat y must have shape ({int(row_sizes.sum())},), "
                f"got {y.shape}"
            )
        layout = StackLayout.for_ragged(n, row_sizes, kern.dtype)

    live = np.arange(total)  # original trial ids of the current rows
    active = np.ones(total, dtype=bool)  # per current row
    sigma = np.zeros((total, n), dtype=kern.dtype)
    z = y.copy()
    out_sigma = np.zeros((total, n), dtype=kern.dtype)
    iterations = np.zeros(total, dtype=np.int64)
    converged = np.zeros(total, dtype=bool)
    histories: Optional[List[List[dict]]] = (
        [[] for _ in range(total)] if config.track_history else None
    )

    for t in range(config.max_iter):
        # Damping is skipped on the very first iteration (there is no
        # previous state worth mixing in) — the kernels receive the
        # effective factor so the phase methods stay stateless.
        damping = config.damping if t > 0 else 0.0

        sigma_new, onsager, tau, step = kern.adjoint_posterior(
            operator, denoiser, sigma, z, layout, damping
        )
        z_new = kern.forward_residual(
            operator, y, sigma_new, z, onsager, layout, damping
        )

        # Frozen rows must stay bit-frozen: their (discarded) updates
        # above were computed from stale state purely so the stacked
        # operators could run unmasked.
        inactive = ~active
        if inactive.any():
            sigma_new[inactive] = sigma[inactive]
            layout.restore_rows(z_new, z, inactive)

        if histories is not None:
            z_norms = kern.residual_norms(z_new, layout)
            for i in np.flatnonzero(active):
                histories[live[i]].append(
                    {
                        "iteration": t,
                        "tau": float(tau[i]),
                        "step": float(step[i]),
                        "residual_norm": float(z_norms[i]),
                    }
                )

        sigma = sigma_new
        z = z_new
        iterations[live[active]] = t + 1
        newly = active & (step < config.tol)
        if newly.any():
            converged[live[newly]] = True
            out_sigma[live[newly]] = sigma[newly]
            active &= ~newly
        if not active.any():
            break
        if restrict is not None and 2 * int(np.count_nonzero(active)) <= live.size:
            live = live[active]
            sigma = np.ascontiguousarray(sigma[active])
            z = layout.compact_measure(z, active)
            y = layout.compact_measure(y, active)
            layout = layout.restrict(active)
            active = np.ones(live.size, dtype=bool)
            operator = restrict(live)

    if active.any():  # trials that exhausted max_iter without converging
        out_sigma[live[active]] = sigma[active]
    return out_sigma, iterations, converged, histories


def run_amp(
    measurements: Measurements,
    *,
    denoiser: Optional[Denoiser] = None,
    config: Optional[AMPConfig] = None,
    sparse: Optional[bool] = True,
    kernel=None,
) -> ReconstructionResult:
    """Run AMP on a set of pooled measurements and decode by top-k.

    Parameters
    ----------
    measurements:
        Output of :func:`repro.core.measurement.measure`; the pooling
        graph, channel and ground truth travel along for evaluation.
    denoiser:
        Scalar denoiser; defaults to the Bayes-optimal
        :class:`BayesBernoulliDenoiser` with prior ``k/n``.
    config:
        Iteration parameters.
    sparse:
        Represent the pooling matrix sparsely and apply the centering
        as a rank-one correction on the fly, never materializing any
        dense ``m x n`` matrix — the default, which keeps AMP viable at
        the paper's full scale (``n = 10^5``, where the dense adjacency
        alone would be tens of GiB). Pass ``False`` to force the dense
        path (small-problem debugging; both paths compute identical
        iterates up to float round-off). ``None`` — the pre-sparse-era
        "choose automatically" sentinel — now also means sparse.
    kernel:
        Compute backend (see :mod:`repro.amp.kernels`): a name from
        :data:`~repro.amp.kernels.KERNELS`, a ready kernel instance,
        or ``None`` for the ``REPRO_KERNEL`` environment variable /
        bit-identical ``numpy`` default. Under a float32 kernel the
        adjacency data is cast once up front so the whole iteration —
        matvecs included — runs in float32.

    Returns
    -------
    ReconstructionResult
        With ``meta`` recording iterations, convergence flag, the
        kernel backend and the per-iteration history.

    For sweeps over many trials use
    :func:`repro.amp.batch_amp.run_amp_trials`, which stacks the trials
    into one block-diagonal system and reproduces this function's
    decode (estimate, exact, overlap, iterations) bit for bit.
    """
    config = config if config is not None else AMPConfig()
    kern = resolve_kernel(kernel)
    graph = measurements.graph
    n, m, k = graph.n, graph.m, measurements.k
    if m == 0:
        raise ValueError("AMP requires at least one query")
    if denoiser is None:
        denoiser = default_denoiser(n, k)
    if sparse is None:
        sparse = True

    # Standardization (see module docstring). The centered, scaled
    # matrix is A_s = (A - c) / s; both products are applied as the raw
    # product plus a rank-one correction, which keeps the sparse path
    # free of any dense m x n intermediate.
    y_raw = channel_corrected_results(
        measurements.results, graph.gamma, measurements.channel
    )
    c, scale = standardization_constants(n, m, graph.gamma)
    y = (y_raw - c * k) / scale
    adjacency = graph.adjacency_sparse() if sparse else graph.adjacency_dense()
    if kern.dtype != np.float64:
        adjacency = adjacency.astype(kern.dtype)
    if sparse:
        # The one-trial stack operator: its transpose is the free CSC
        # view (no O(nnz) tocsr() per call), and its reference
        # matvec/rmatvec perform the same pairwise sums and per-element
        # centering/scaling as the pre-seam closures — bit-identical —
        # while handing fused/GPU kernels the raw CSR arrays so the
        # matvec runs inside the seam.
        operator = CSRStackOperator(adjacency, n=n, c=c, scale=scale)
    else:
        adjacency_t = adjacency.T

        def matvec(x: np.ndarray) -> np.ndarray:
            return (adjacency @ x - c * x.sum()) / scale

        def rmatvec(z: np.ndarray) -> np.ndarray:
            return (adjacency_t @ z - c * z.sum()) / scale

        operator = MatvecOperator(matvec, rmatvec)

    stacked, iterations, converged, histories = iterate_amp(
        operator, y[None, :], denoiser, config, n=n, kernel=kern
    )
    scores = stacked[0]
    estimate = top_k_estimate(scores, k)
    truth = measurements.truth.sigma
    quality = evaluate_estimate(estimate, truth, scores)
    return ReconstructionResult(
        estimate=estimate,
        scores=scores,
        exact=quality["exact"],
        overlap=quality["overlap"],
        separated=quality["separated"],
        hamming_errors=quality["hamming_errors"],
        meta={
            "algorithm": "amp",
            "denoiser": denoiser.describe(),
            "iterations": int(iterations[0]),
            "converged": bool(converged[0]),
            "n": n,
            "m": m,
            "k": k,
            "channel": measurements.channel.describe(),
            "sparse": bool(sparse),
            "kernel": kern.name,
            "history": histories[0] if histories is not None else [],
        },
    )


__all__ = [
    "AMPConfig",
    "standardization_constants",
    "channel_corrected_results",
    "standardize_system",
    "default_denoiser",
    "iterate_amp",
    "run_amp",
]
