"""Approximate message passing for the pooled data problem (Section III).

The paper's update rules (Donoho-Maleki-Montanari form):

    sigma^{t+1} = eta_t(A^T z^t + sigma^t)
    z^t         = sigma_hat - A sigma^t
                  + (n/m) * (1/n) * sum_i eta'_{t-1}(A^T z^{t-1} + sigma^{t-1}) * z^{t-1}

where the last summand is the Onsager correction. These rules implicitly
assume a sensing matrix with zero-mean, ``O(1/sqrt(m))`` entries. The
raw pooling matrix has ``A_ij ~ Bin(Gamma, 1/n)`` entries (mean
``Gamma/n = 1/2``), so — as is standard for pooled data (cf. Alaoui et
al.) — we *standardize* the system before iterating:

1. channel correction (``p``/``q`` known, as the paper assumes):
   under the noisy channel ``E[sigma_hat_j | A, sigma] =
   q Gamma + (1-p-q) (A sigma)_j``, so
   ``y_raw = (sigma_hat - q Gamma) / (1 - p - q)``;
2. centering with the known ``k``:
   ``y_c = y_raw - Gamma k / n`` matches ``A_c = A - Gamma/n``;
3. scaling by ``s = sqrt(m * Gamma/n * (1 - 1/n))`` so the columns of
   ``A_s = A_c / s`` have (approximately) unit norm.

After standardization the effective model is ``y = A_s sigma + w`` and
the textbook AMP iteration applies, with the effective noise level
``tau_t`` estimated as ``||z^t|| / sqrt(m)``.

The final estimate is the top-``k`` of the last iterate (the number of
1-agents is known, exactly as for the greedy decoder).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.amp.denoisers import BayesBernoulliDenoiser, Denoiser, TAU_FLOOR
from repro.core.measurement import Measurements
from repro.core.noise import Channel, GaussianQueryNoise, NoiselessChannel, NoisyChannel
from repro.core.scores import top_k_estimate
from repro.core.types import ReconstructionResult, evaluate_estimate
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class AMPConfig:
    """Tuning knobs for the AMP iteration.

    Attributes
    ----------
    max_iter:
        Iteration budget (the paper notes AMP needs "many rounds").
    tol:
        Early-stopping threshold on ``||sigma^{t+1} - sigma^t||_2 /
        sqrt(n)``.
    damping:
        Convex damping factor in ``[0, 1)`` applied to the state updates
        (0 disables damping; small damping stabilizes finite-size runs).
    track_history:
        Record per-iteration MSE proxies in the result metadata.
    """

    max_iter: int = 50
    tol: float = 1e-7
    damping: float = 0.0
    track_history: bool = True

    def __post_init__(self) -> None:
        check_positive_int(self.max_iter, "max_iter")
        if not 0.0 <= self.damping < 1.0:
            raise ValueError(f"damping must lie in [0, 1), got {self.damping}")
        if self.tol < 0:
            raise ValueError(f"tol must be >= 0, got {self.tol}")


def standardize_system(
    adjacency: np.ndarray,
    results: np.ndarray,
    k: int,
    gamma: int,
    channel: Channel,
) -> "tuple[np.ndarray, np.ndarray]":
    """Channel-correct, center and scale ``(A, sigma_hat)`` for AMP.

    Returns the standardized pair ``(A_s, y)`` described in the module
    docstring. Raises ``TypeError`` for unsupported channel types.
    """
    adjacency = np.asarray(adjacency, dtype=np.float64)
    results = np.asarray(results, dtype=np.float64)
    m, n = adjacency.shape
    if results.shape != (m,):
        raise ValueError(f"results must have shape ({m},), got {results.shape}")

    if isinstance(channel, NoisyChannel):
        y_raw = (results - channel.q * gamma) / (1.0 - channel.p - channel.q)
    elif isinstance(channel, (NoiselessChannel, GaussianQueryNoise)):
        y_raw = results.copy()
    else:
        raise TypeError(f"unsupported channel type: {type(channel).__name__}")

    mean_entry = gamma / n
    scale = np.sqrt(m * mean_entry * (1.0 - 1.0 / n))
    a_s = (adjacency - mean_entry) / scale
    y = (y_raw - mean_entry * k) / scale
    return a_s, y


def run_amp(
    measurements: Measurements,
    *,
    denoiser: Optional[Denoiser] = None,
    config: Optional[AMPConfig] = None,
    sparse: Optional[bool] = True,
) -> ReconstructionResult:
    """Run AMP on a set of pooled measurements and decode by top-k.

    Parameters
    ----------
    measurements:
        Output of :func:`repro.core.measurement.measure`; the pooling
        graph, channel and ground truth travel along for evaluation.
    denoiser:
        Scalar denoiser; defaults to the Bayes-optimal
        :class:`BayesBernoulliDenoiser` with prior ``k/n``.
    config:
        Iteration parameters.
    sparse:
        Represent the pooling matrix sparsely and apply the centering
        as a rank-one correction on the fly, never materializing any
        dense ``m x n`` matrix — the default, which keeps AMP viable at
        the paper's full scale (``n = 10^5``, where the dense adjacency
        alone would be tens of GiB). Pass ``False`` to force the dense
        path (small-problem debugging; both paths compute identical
        iterates up to float round-off). ``None`` — the pre-sparse-era
        "choose automatically" sentinel — now also means sparse.

    Returns
    -------
    ReconstructionResult
        With ``meta`` recording iterations, convergence flag and the
        per-iteration history.
    """
    config = config if config is not None else AMPConfig()
    graph = measurements.graph
    n, m, k = graph.n, graph.m, measurements.k
    if m == 0:
        raise ValueError("AMP requires at least one query")
    if denoiser is None:
        pi = min(max(k / n, 1e-12), 1 - 1e-12)
        denoiser = BayesBernoulliDenoiser(pi)
    if sparse is None:
        sparse = True

    # Standardization (see module docstring). The centered, scaled
    # matrix is A_s = (A - c) / s; both products are applied as the raw
    # product plus a rank-one correction, which keeps the sparse path
    # free of any dense m x n intermediate.
    if isinstance(measurements.channel, NoisyChannel):
        ch = measurements.channel
        y_raw = (np.asarray(measurements.results, dtype=np.float64)
                 - ch.q * graph.gamma) / (1.0 - ch.p - ch.q)
    elif isinstance(measurements.channel, (NoiselessChannel, GaussianQueryNoise)):
        y_raw = np.asarray(measurements.results, dtype=np.float64).copy()
    else:
        raise TypeError(
            f"unsupported channel type: {type(measurements.channel).__name__}"
        )
    c = graph.gamma / n
    scale = np.sqrt(m * c * (1.0 - 1.0 / n))
    y = (y_raw - c * k) / scale
    adjacency = graph.adjacency_sparse() if sparse else graph.adjacency_dense()
    adjacency_t = adjacency.T.tocsr() if sparse else adjacency.T

    def matvec(x: np.ndarray) -> np.ndarray:
        return (adjacency @ x - c * x.sum()) / scale

    def rmatvec(z: np.ndarray) -> np.ndarray:
        return (adjacency_t @ z - c * z.sum()) / scale

    sigma_est = np.zeros(n, dtype=np.float64)
    z = y.copy()
    onsager_factor = 0.0
    history: List[dict] = []
    converged = False
    iterations = 0

    for t in range(config.max_iter):
        iterations = t + 1
        tau = max(float(np.linalg.norm(z) / np.sqrt(m)), TAU_FLOOR)
        r = rmatvec(z) + sigma_est
        sigma_new = denoiser(r, tau)
        if config.damping > 0.0 and t > 0:
            sigma_new = (1.0 - config.damping) * sigma_new + config.damping * sigma_est

        # Onsager coefficient for the *next* residual update.
        onsager_factor = (n / m) * float(np.mean(denoiser.derivative(r, tau)))

        z_new = y - matvec(sigma_new) + onsager_factor * z
        if config.damping > 0.0 and t > 0:
            z_new = (1.0 - config.damping) * z_new + config.damping * z

        step = float(np.linalg.norm(sigma_new - sigma_est) / np.sqrt(n))
        if config.track_history:
            history.append(
                {"iteration": t, "tau": tau, "step": step,
                 "residual_norm": float(np.linalg.norm(z_new))}
            )
        sigma_est = sigma_new
        z = z_new
        if step < config.tol:
            converged = True
            break

    scores = sigma_est
    estimate = top_k_estimate(scores, k)
    truth = measurements.truth.sigma
    quality = evaluate_estimate(estimate, truth, scores)
    return ReconstructionResult(
        estimate=estimate,
        scores=scores,
        exact=quality["exact"],
        overlap=quality["overlap"],
        separated=quality["separated"],
        hamming_errors=quality["hamming_errors"],
        meta={
            "algorithm": "amp",
            "denoiser": denoiser.describe(),
            "iterations": iterations,
            "converged": converged,
            "n": n,
            "m": m,
            "k": k,
            "channel": measurements.channel.describe(),
            "sparse": bool(sparse),
            "history": history,
        },
    )


__all__ = ["AMPConfig", "standardize_system", "run_amp"]
