"""Batched AMP: block-diagonal trial stacking for sweep-scale runs.

The experiment harness runs AMP as Monte-Carlo sweeps of independent
trials over one ``(n, k, channel, m)`` cell. Running :func:`run_amp`
once per trial pays, per trial, a fresh CSR build plus — per
iteration — a dozen small numpy/scipy dispatches. This module stacks
``T`` trials' pooling graphs into a **single block-diagonal CSR**
(column indices shifted by ``t * n``, one ``indptr`` of length
``T*m + 1``) so each AMP iteration is one sparse matvec on a ``(T*n,)``
state vector, with ``tau``, the Onsager coefficients, denoiser
applications, damping and step norms computed on ``(T, ·)`` reshapes.

Bit-identity contract
---------------------
Every trial's iterate sequence — and therefore its decoded
``estimate``/``exact``/``overlap``/``iterations`` — is identical to a
standalone :func:`repro.amp.run_amp` call on the same spawned child
seed, for any stack size:

* the sampling prologue of :func:`run_amp_trials` consumes each
  trial's child generator exactly like the legacy per-trial loop
  (truth, graph, channel noise, in that order);
* the shared kernel (:func:`repro.amp.amp.iterate_amp`) performs only
  row-independent operations, and a block-diagonal CSR matvec computes
  each output coordinate by the same sequential sum as the per-trial
  matrix;
* per-trial convergence freezes a trial's rows (masked update) at the
  same iteration the standalone run would stop, and the kernel
  compacts the stack — rebuilding the block-diagonal operators for the
  surviving trials — once at most half the trials remain active.

``tests/test_amp_batch.py`` pins the equivalence across channels,
mixed per-trial iteration counts and stack sizes.

The module also hosts the AMP **required-queries scan**
(:func:`required_queries_amp`): per trial, the smallest check-grid m
whose prefix-measured query stream decodes exactly, located by prefix
replay of a once-sampled stream plus a galloping bracket / stacked
bisection over heterogeneous-m block-diagonal probe stacks — see the
function docstring and :class:`_RequiredMSearch` for the contract.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.amp.amp import (
    AMPConfig,
    channel_corrected_results,
    default_denoiser,
    iterate_amp,
    run_amp,
    standardization_constants,
)
from repro.amp.denoisers import Denoiser
from repro.amp.kernels import AMPKernel, CSRStackOperator, resolve_kernel
from repro.core.batch import (
    DEFAULT_BLOCK_ELEMENTS,
    DEFAULT_INITIAL_BLOCK,
    MeasurementStream,
    ReplayedStream,
    sample_pooling_graph_batch,
)
from repro.core.ground_truth import sample_ground_truth
from repro.core.incremental import default_max_queries
from repro.core.measurement import Measurements, measure
from repro.core.noise import Channel
from repro.core.pooling import PoolingGraph, default_gamma
from repro.core.scores import decode_top_k_stacked
from repro.core.types import ReconstructionResult, RequiredQueriesResult
from repro.utils.rng import RngLike, normalize_rng
from repro.utils.validation import check_positive_int

#: soft cap on stacked CSR incidences per kernel invocation;
#: :func:`run_amp_trials` splits longer trial lists into consecutive
#: stacks of this footprint (~0.5 GiB of data+index arrays), which has
#: no effect on any trial's output — only on peak memory.
DEFAULT_STACK_ELEMENTS = 2**25

#: expected per-trial incidences above which :func:`run_amp_trials`
#: runs standalone ``run_amp`` per trial instead of stacking: past this
#: size a trial's own matvec is memory-bound (scipy dispatch and numpy
#: per-op overhead are noise), so stacking only adds the O(nnz)
#: block-diagonal assembly and the frozen-row matvec waste. Below it
#: the per-op overhead dominates and stacking wins (up to ~2.5x on the
#: bench host). Either path returns bit-identical results (shared
#: kernel), so the dispatch is invisible in every output.
STACK_NNZ_CUTOFF = 2**18


def _default_batch_config() -> AMPConfig:
    """Sweep-scale default: identical iteration, no per-iteration history.

    Direct :func:`repro.amp.run_amp` calls keep ``track_history=True``;
    the batched entry points default it off because a sweep retains
    only the decode outcome per trial and the history dicts would be
    O(iterations) dead weight in every ``ReconstructionResult.meta``.
    """
    return AMPConfig(track_history=False)


def _stack_blocks(
    blocks: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]],
    cols: int,
    dtype=np.float64,
):
    """Assemble per-trial CSR triples into one block-diagonal CSR.

    ``blocks[t]`` holds trial ``t``'s ``(indptr, indices, data)`` with
    ``cols`` columns; per-block row counts may differ (required-m
    prefix probes stack heterogeneous-``m`` blocks). The stacked matrix
    has shape ``(sum(rows_t), T*cols)`` with trial ``t``'s column
    indices shifted by ``t * cols``. Row contents (order and values)
    are exactly the per-trial rows, so a matvec on the stack computes
    every output coordinate by the same sequential sum as the per-trial
    matvec. ``dtype`` is the stacked data dtype — float64 (default)
    for the bit-identical path, float32 under a float32 kernel.
    """
    from scipy import sparse

    trials = len(blocks)
    nnz = np.array([indices.size for _, indices, _ in blocks], dtype=np.int64)
    offsets = np.concatenate(([0], np.cumsum(nnz)))
    rows = np.array([indptr.size - 1 for indptr, _, _ in blocks], dtype=np.int64)
    row_offsets = np.concatenate(([0], np.cumsum(rows)))
    # int32 indices halve the matvec's index traffic (and match what
    # scipy would downcast to); they must fit both the column ids and
    # the cumulative incidence counts stored in indptr.
    index_dtype = (
        np.int32
        if max(trials * cols, int(offsets[-1])) < 2**31
        else np.int64
    )
    indptr = np.empty(int(row_offsets[-1]) + 1, dtype=index_dtype)
    indptr[0] = 0
    data = np.empty(offsets[-1], dtype=dtype)
    indices = np.empty(offsets[-1], dtype=index_dtype)
    for t, (block_indptr, block_indices, block_data) in enumerate(blocks):
        lo, hi = offsets[t], offsets[t + 1]
        data[lo:hi] = block_data
        indices[lo:hi] = block_indices
        indices[lo:hi] += t * cols
        indptr[row_offsets[t] + 1 : row_offsets[t + 1] + 1] = block_indptr[1:] + lo
    return sparse.csr_matrix(
        (data, indices, indptr), shape=(int(row_offsets[-1]), trials * cols)
    )


class _StackedOperators:
    """Block-diagonal standardized operators over per-trial CSR blocks.

    Holds the raw per-trial CSR triples and materializes, for any
    subset of trials, the stacked forward map ``x -> (A x - c s_t)/scale``
    and its adjoint as a :class:`~repro.amp.kernels.CSRStackOperator`
    for the kernel seam. The centering is applied as a rank-one
    correction per trial block, so no dense matrix is ever formed (the
    sparse-path contract of ``run_amp`` extends to the whole stack).

    The adjoint is the stacked matrix's free CSC transpose view — its
    matvec scatters only within each trial's own output segment (the
    block-diagonal structure keeps it cache-local) and matches the
    converted-CSR matvec in speed without paying any O(nnz) ``tocsr``
    conversion, exactly mirroring the per-trial :func:`~repro.amp.run_amp`
    adjoint so stacked and standalone iterates stay bit-identical.
    """

    def __init__(
        self,
        blocks: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]],
        n: int,
        m: int,
        c: float,
        scale: float,
        dtype=np.float64,
    ):
        self.blocks = list(blocks)
        self.n = n
        self.m = m
        self.c = c
        # Plain floats are weak scalars: under a float32 kernel the
        # standardization constants never upcast the working arrays.
        self.scale = float(scale)
        self.dtype = np.dtype(dtype)

    def operators(self, idx: Sequence[int]) -> CSRStackOperator:
        """Build the stack operator for the trial subset ``idx``."""
        chosen = [int(i) for i in idx]
        # the fill loop casts int64 counts to the data dtype on assignment
        a = _stack_blocks([self.blocks[i] for i in chosen], self.n, self.dtype)
        return CSRStackOperator(a, n=self.n, c=self.c, scale=self.scale)


def run_amp_batch(
    measurements: Sequence[Measurements],
    *,
    denoiser: Optional[Denoiser] = None,
    config: Optional[AMPConfig] = None,
    kernel=None,
) -> List[ReconstructionResult]:
    """Run AMP on many same-cell measurement sets as one stacked system.

    All entries must share ``(n, m, k, gamma)`` and the channel (same
    description) — the shape of one sweep cell. Returns one
    :class:`ReconstructionResult` per entry, in order, each identical
    in decode (estimate, exact, overlap, iterations) to
    ``run_amp(measurements[t], ...)`` with the same denoiser/config.

    ``config`` defaults to ``AMPConfig(track_history=False)`` (see
    :func:`_default_batch_config`); pass an explicit config with
    ``track_history=True`` to retain per-iteration records. ``kernel``
    selects the compute backend (see :mod:`repro.amp.kernels`); under
    a float32 kernel the stacked CSR data is built in float32.
    """
    if not measurements:
        return []
    config = config if config is not None else _default_batch_config()
    kern = resolve_kernel(kernel)
    first = measurements[0]
    n, m, k = first.n, first.m, first.k
    gamma = first.graph.gamma
    channel_desc = first.channel.describe()
    if m == 0:
        raise ValueError("AMP requires at least one query")
    for meas in measurements:
        if (meas.n, meas.m, meas.k, meas.graph.gamma) != (n, m, k, gamma):
            raise ValueError(
                "all measurements in a batch must share (n, m, k, gamma); got "
                f"({meas.n}, {meas.m}, {meas.k}, {meas.graph.gamma}) vs "
                f"({n}, {m}, {k}, {gamma})"
            )
        if meas.channel.describe() != channel_desc:
            raise ValueError(
                "all measurements in a batch must share the channel; got "
                f"{meas.channel.describe()!r} vs {channel_desc!r}"
            )
    if denoiser is None:
        denoiser = default_denoiser(n, k)

    trials = len(measurements)
    c, scale = standardization_constants(n, m, gamma)
    results_2d = np.empty((trials, m), dtype=np.float64)
    for t, meas in enumerate(measurements):
        results_2d[t] = meas.results
    y = (channel_corrected_results(results_2d, gamma, first.channel) - c * k) / scale

    stacked = _StackedOperators(
        [(meas.graph.indptr, meas.graph.agents, meas.graph.counts)
         for meas in measurements],
        n, m, c, scale, dtype=kern.dtype,
    )
    scores, iterations, converged, histories = iterate_amp(
        stacked.operators(np.arange(trials)), y, denoiser, config, n=n,
        restrict=stacked.operators, kernel=kern,
    )

    sigma_truth = np.empty((trials, n), dtype=np.int8)
    for t, meas in enumerate(measurements):
        sigma_truth[t] = meas.truth.sigma
    estimate, errors, overlap, margins = decode_top_k_stacked(
        scores, sigma_truth, k
    )
    denoiser_desc = denoiser.describe()
    out: List[ReconstructionResult] = []
    for t in range(trials):
        out.append(
            ReconstructionResult(
                estimate=estimate[t],
                scores=scores[t],
                exact=bool(errors[t] == 0),
                overlap=float(overlap[t]),
                separated=bool(margins[t] > 0.0),
                hamming_errors=int(errors[t]),
                meta={
                    "algorithm": "amp",
                    "engine": "batch",
                    "denoiser": denoiser_desc,
                    "iterations": int(iterations[t]),
                    "converged": bool(converged[t]),
                    "n": n,
                    "m": m,
                    "k": k,
                    "channel": channel_desc,
                    "sparse": True,
                    "kernel": kern.name,
                    "history": histories[t] if histories is not None else [],
                },
            )
        )
    return out


def _expected_trial_nnz(n: int, m: int, gamma: int) -> float:
    """Expected distinct incidences of one trial's pooling graph.

    ``m * n * (1 - (1 - 1/n)^gamma)`` — deterministic in
    ``(n, m, gamma)``, so every dispatch decision derived from it is
    independent of the sampled graphs.
    """
    return max(1.0, m * n * (1.0 - (1.0 - 1.0 / n) ** gamma))


def _stack_size(n: int, m: int, gamma: int, stack_elements: int) -> int:
    """Trials per stack under the incidence-element budget."""
    return max(1, int(stack_elements // _expected_trial_nnz(n, m, gamma)))


def run_amp_trials(
    n: int,
    k: int,
    channel: Channel,
    m: int,
    seeds: Sequence[RngLike],
    *,
    gamma: Optional[int] = None,
    denoiser: Optional[Denoiser] = None,
    config: Optional[AMPConfig] = None,
    stack_elements: int = DEFAULT_STACK_ELEMENTS,
    kernel=None,
) -> List[ReconstructionResult]:
    """Sample and batch-decode one AMP trial per seed.

    Each seed's trial consumes its generator exactly like the legacy
    per-trial loop of the experiment harness — ground truth, pooling
    graph, channel noise, in that order — and is then decoded through
    the stacked kernel, so ``run_amp_trials(...)[t]`` reproduces the
    decode of a standalone ``run_amp`` on trial ``t``'s seed bit for
    bit. This is the entry point both the serial sweep path and the
    multiprocess chunk workers use (a contiguous chunk of a larger
    seed list yields the same per-trial results, so sharded sweeps
    stay bit-identical to serial ones).

    Long seed lists are processed in consecutive stacks bounded by
    ``stack_elements`` incidences (peak-memory control only). Cells
    whose expected per-trial incidence count exceeds
    :data:`STACK_NNZ_CUTOFF` run standalone ``run_amp`` per trial
    instead — there a single trial's matvec is already memory-bound
    and stacking only adds assembly cost; the dispatch never changes
    any output (shared kernel, bit-identical either way). ``kernel``
    selects the compute backend for every trial, stacked or standalone
    (see :mod:`repro.amp.kernels`).
    """
    n = check_positive_int(n, "n")
    m = check_positive_int(m, "m")
    gamma = default_gamma(n) if gamma is None else check_positive_int(gamma, "gamma")
    out: List[ReconstructionResult] = []
    if not seeds:
        return out
    config = config if config is not None else _default_batch_config()
    kern = resolve_kernel(kernel)
    if _expected_trial_nnz(n, m, gamma) > STACK_NNZ_CUTOFF:
        for seed in seeds:
            gen = normalize_rng(seed)
            truth = sample_ground_truth(n, k, gen)
            graph = sample_pooling_graph_batch(n, m, gamma, gen)
            out.append(
                run_amp(
                    measure(graph, truth, channel, gen),
                    denoiser=denoiser,
                    config=config,
                    kernel=kern,
                )
            )
        return out
    stack = _stack_size(n, m, gamma, stack_elements)
    for lo in range(0, len(seeds), stack):
        batch: List[Measurements] = []
        for seed in seeds[lo : lo + stack]:
            gen = normalize_rng(seed)
            truth = sample_ground_truth(n, k, gen)
            graph = sample_pooling_graph_batch(n, m, gamma, gen)
            batch.append(measure(graph, truth, channel, gen))
        out.extend(
            run_amp_batch(batch, denoiser=denoiser, config=config, kernel=kern)
        )
    return out


# -- driver-prepared chunks (shared-memory arena dispatch) --------------


def sample_amp_cell_chunk(
    n: int,
    k: int,
    channel: Channel,
    m: int,
    seeds: Sequence[RngLike],
    *,
    gamma: Optional[int] = None,
    dtype=np.float64,
) -> Dict[str, np.ndarray]:
    """Sample one fixed-``m`` AMP chunk and stack its CSR once (driver side).

    Consumes each seed's generator exactly like the sampling prologue
    of :func:`run_amp_trials` — ground truth, pooling graph, channel
    noise, in that order — then assembles the chunk's single
    block-diagonal CSR with :func:`_stack_blocks`. The returned array
    dict (stacked ``indptr``/``indices``/``data`` plus per-trial
    ``results`` and ``truth`` sigma rows) is what the sweep driver
    publishes into the :class:`~repro.experiments.shm.SweepArena`;
    :func:`run_amp_prepared` decodes it without any worker-side
    sampling or stacking. ``dtype`` must match the kernel the workers
    will resolve (float32 under a float32 backend).
    """
    gamma = default_gamma(n) if gamma is None else gamma
    trials = len(seeds)
    blocks: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    results = np.empty((trials, m), dtype=np.float64)
    sigma = np.empty((trials, n), dtype=np.int8)
    for t, seed in enumerate(seeds):
        gen = normalize_rng(seed)
        truth = sample_ground_truth(n, k, gen)
        graph = sample_pooling_graph_batch(n, m, gamma, gen)
        meas = measure(graph, truth, channel, gen)
        blocks.append((graph.indptr, graph.agents, graph.counts))
        results[t] = meas.results
        sigma[t] = truth.sigma
    a = _stack_blocks(blocks, n, dtype)
    return {
        "indptr": a.indptr,
        "indices": a.indices,
        "data": a.data,
        "results": results,
        "truth": sigma,
    }


def run_amp_prepared(
    n: int,
    k: int,
    channel: Channel,
    m: int,
    arrays: Dict[str, np.ndarray],
    *,
    gamma: Optional[int] = None,
    denoiser: Optional[Denoiser] = None,
    config: Optional[AMPConfig] = None,
    kernel=None,
) -> List[Tuple[bool, float]]:
    """Decode a driver-prepared fixed-``m`` chunk; ``(exact, overlap)`` rows.

    The worker half of :func:`sample_amp_cell_chunk`: rebuilds the
    chunk's block-diagonal scipy CSR directly on the (read-only,
    zero-copy) array views — no resampling, no re-stacking — and runs
    one stacked :func:`~repro.amp.amp.iterate_amp` call through the
    kernel seam. Per-trial outcomes are identical to
    :func:`run_amp_trials` on the same seeds: the stack-composition
    and compaction contracts make every trial's decode independent of
    how its stack was assembled (compaction is skipped here — with the
    whole chunk in one stack there is no per-stack operator rebuild to
    save).
    """
    from scipy import sparse

    gamma = default_gamma(n) if gamma is None else gamma
    config = config if config is not None else _default_batch_config()
    kern = resolve_kernel(kernel)
    if denoiser is None:
        denoiser = default_denoiser(n, k)
    sigma_truth = arrays["truth"]
    trials = sigma_truth.shape[0]
    c, scale = standardization_constants(n, m, gamma)
    y = (
        channel_corrected_results(arrays["results"], gamma, channel) - c * k
    ) / scale
    a = sparse.csr_matrix(
        (arrays["data"], arrays["indices"], arrays["indptr"]),
        shape=(trials * m, trials * n),
    )
    operator = CSRStackOperator(a, n=n, c=c, scale=scale)
    scores, _, _, _ = iterate_amp(
        operator, y, denoiser, config, n=n, kernel=kern
    )
    _, errors, overlap, _ = decode_top_k_stacked(scores, sigma_truth, k)
    return [
        (bool(e == 0), float(o)) for e, o in zip(errors, overlap)
    ]


# -- required-queries scan: galloping bracket + stacked bisection -------

#: verify-phase probes a trial contributes per stacked round; larger
#: waves stack better, smaller ones exit earlier on non-monotone
#: profiles — either value returns the identical stopping m.
VERIFY_WAVE = 8


class _PrefixStackOperators:
    """Standardized block-diagonal operators over heterogeneous-m prefixes.

    Like :class:`_StackedOperators`, but every block is a *prefix* of a
    different trial's query stream, so per-block row counts ``m_j`` —
    and with them the standardization scales ``s_j = sqrt(m_j * c *
    (1 - 1/n))`` — differ. The centering and scaling become per-trial
    vectors broadcast onto the flat ragged stack; per coordinate the
    arithmetic is exactly the standalone ``(A x - c s) / scale``, so the
    stacked iterates stay bit-identical to per-prefix ``run_amp`` runs.
    (:class:`_StackedOperators` is the uniform-``m`` scalar special
    case of this; the two must stay arithmetically aligned — the
    bit-identity tests in ``tests/test_amp_batch.py`` and
    ``tests/test_amp_required.py`` pin both against ``run_amp``.)
    """

    def __init__(
        self,
        prefixes: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]],
        n: int,
        m_per: np.ndarray,
        c: float,
        scales: np.ndarray,
        dtype=np.float64,
    ):
        self.prefixes = list(prefixes)
        self.n = n
        self.m_per = np.asarray(m_per, dtype=np.int64)
        self.c = c
        self.scales = np.asarray(scales, dtype=np.float64)
        self.dtype = np.dtype(dtype)

    def operators(self, idx: Sequence[int]) -> CSRStackOperator:
        """Build the ragged stack operator for the probe subset ``idx``."""
        chosen = [int(i) for i in idx]
        m_per = self.m_per[chosen]
        scales = self.scales[chosen]
        a = _stack_blocks(
            [self.prefixes[i] for i in chosen], self.n, self.dtype
        )
        return CSRStackOperator(
            a, n=self.n, c=self.c, m_per=m_per, scales=scales
        )


#: verify modes of the required-m search (see :class:`_RequiredMSearch`)
VERIFY_MODES = ("full", "window", "none")


class _RequiredMSearch:
    """One trial's gallop -> bisect -> verify search over the check grid.

    The search locates ``min{g on the grid : AMP decodes the g-query
    prefix exactly}`` with three phases:

    1. **gallop** — probe ``step, 2*step, 4*step, ...`` (clamped to the
       last grid point) until the first success brackets the answer;
    2. **bisect** — standard bisection inside the bracket, assuming the
       quasi-monotone recovery profile, shrinking the smallest known
       success (the *candidate*);
    3. **verify** — probe still-unresolved grid points below the
       candidate, in ascending waves. Because each wave is the lowest
       pending chunk, the first wave containing a success yields the
       scan's answer outright, and an all-fail verify certifies the
       candidate.

    The ``verify`` mode sets how much of the grid below the candidate
    the third phase sweeps — the exactness/cost dial of the scan:

    * ``"full"`` — every unresolved grid point below the candidate
      (and, on a failed gallop, the whole grid). The result is
      *identical to a brute-force ascending scan by construction*,
      monotone profile or not: every grid point below the returned m
      has been probed and failed. Probe count matches the brute-force
      scan's (the certificate below the answer is the same set of
      probes), so the savings over the naive loop come from prefix
      replay and stacking, not probe count.
    * ``"window"`` — only the galloping bracket window ``(last failed
      gallop point, candidate)``. Exact for every profile whose
      non-monotone dropouts lie inside the bracket (the common
      near-threshold case); a success hiding at or below a *failed
      gallop point* would be missed.
    * ``"none"`` — trust quasi-monotonicity outright: the bisection
      boundary is the answer (the bisection invariant already pins
      ``candidate - step`` as a probed failure, which is all the
      ISSUE-style downward linear-verify would re-check). Sublinearly
      many probes — the sweep-scale mode; on fine check grids this is
      orders of magnitude less matvec work than the per-grid-point
      loop.

    Probes are never repeated, and each phase transition depends only
    on this trial's own probe outcomes — which is what lets the driver
    stack many trials' probes into shared rounds without any
    cross-trial coupling.
    """

    GALLOP, BISECT, VERIFY, DONE = "gallop", "bisect", "verify", "done"

    def __init__(self, step: int, grid_max: int, verify: str = "full"):
        if verify not in VERIFY_MODES:
            raise ValueError(
                f"unknown verify mode {verify!r}; valid: {VERIFY_MODES}"
            )
        self.step = step
        self.grid_max = grid_max
        self.verify = verify
        self.results: Dict[int, bool] = {}
        self.required_m: Optional[int] = None
        self.candidate: Optional[int] = None
        self._lo = 0  # highest grid point known to fail below the bracket
        self._gallop_lo = 0  # highest *gallop* probe that failed
        self._next: Optional[int] = None
        self._pending: List[int] = []
        if grid_max < step:  # no checkable grid point within the budget
            self.phase = self.DONE
        else:
            self.phase = self.GALLOP
            self._next = step

    @property
    def done(self) -> bool:
        return self.phase == self.DONE

    @property
    def checks(self) -> int:
        return len(self.results)

    def next_probes(self, budget: int) -> List[int]:
        """Grid points this trial wants probed in the coming round."""
        if self.phase in (self.GALLOP, self.BISECT):
            return [self._next]
        if self.phase == self.VERIFY:
            return self._pending[:budget]
        return []

    def record(self, m: int, exact: bool) -> None:
        self.results[m] = exact

    def advance(self) -> None:
        """Fold the round's recorded probes into the next phase."""
        if self.phase == self.GALLOP:
            m = self._next
            if self.results[m]:
                self.candidate = m
                self._bisect_or_verify()
            elif m >= self.grid_max:
                self._gallop_lo = m
                self._enter_verify()
            else:
                self._lo = m
                self._gallop_lo = m
                self._next = min(2 * m, self.grid_max)
        elif self.phase == self.BISECT:
            m = self._next
            if self.results[m]:
                self.candidate = m
            else:
                self._lo = m
            self._bisect_or_verify()
        elif self.phase == self.VERIFY:
            probed = [g for g in self._pending if g in self.results]
            successes = [g for g in probed if self.results[g]]
            if successes:
                # The wave was the lowest pending chunk, so everything
                # below its first success is a resolved failure.
                self._finish(min(successes))
            else:
                self._pending = self._pending[len(probed):]
                if not self._pending:
                    self._finish(self.candidate)

    def _bisect_or_verify(self) -> None:
        step = self.step
        if self.candidate - self._lo > step:
            self.phase = self.BISECT
            mid_idx = (self._lo // step + self.candidate // step) // 2
            self._next = mid_idx * step
        else:
            self._enter_verify()

    def _enter_verify(self) -> None:
        if self.verify == "none":
            self._finish(self.candidate)
            return
        if self.candidate is None:
            # Gallop exhausted the grid without any success.
            if self.verify == "window":
                # The failed gallop points are trusted as the profile's
                # shape; nothing below them gets swept.
                self._finish(None)
                return
            floor = 0
            upper = self.grid_max + self.step
        else:
            floor = self._gallop_lo if self.verify == "window" else 0
            upper = self.candidate
        self._pending = [
            g
            for g in range(floor + self.step, upper, self.step)
            if g not in self.results
        ]
        if self._pending:
            self.phase = self.VERIFY
        else:
            self._finish(self.candidate)

    def _finish(self, required_m: Optional[int]) -> None:
        self.required_m = required_m
        self.phase = self.DONE


def _decode_prefix_stack(
    jobs: Sequence[Tuple[int, int]],
    streams: Sequence[MeasurementStream],
    n: int,
    k: int,
    gamma: int,
    channel: Channel,
    denoiser: Denoiser,
    config: AMPConfig,
    kernel: Optional[AMPKernel] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Decode one stacked round of ``(trial, m)`` prefix probes.

    Builds the heterogeneous-m block-diagonal system from the trials'
    retained streams (free prefix views — no resampling, no
    re-measurement) and runs one batched :func:`iterate_amp` call.
    Returns ``(exact, scores)`` with one entry/row per job; each job's
    decode is bit-identical to a standalone :func:`run_amp` on the same
    prefix data.
    """
    trials = len(jobs)
    m_per = np.array([m for _, m in jobs], dtype=np.int64)
    c = gamma / n
    scales = np.empty(trials, dtype=np.float64)
    prefixes: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    y_parts: List[np.ndarray] = []
    sigma_truth = np.empty((trials, n), dtype=np.int8)
    for j, (i, m) in enumerate(jobs):
        indptr, agents, counts, results = streams[i].prefix(m)
        prefixes.append((indptr, agents, counts))
        scales[j] = standardization_constants(n, m, gamma)[1]
        y_parts.append(
            (channel_corrected_results(results, gamma, channel) - c * k)
            / scales[j]
        )
        sigma_truth[j] = streams[i].truth.sigma
    kern = resolve_kernel(kernel)
    y = np.concatenate(y_parts)
    ops = _PrefixStackOperators(prefixes, n, m_per, c, scales, dtype=kern.dtype)
    scores, _, _, _ = iterate_amp(
        ops.operators(np.arange(trials)),
        y,
        denoiser,
        config,
        n=n,
        restrict=ops.operators,
        row_sizes=m_per,
        kernel=kern,
    )
    _, errors, _, _ = decode_top_k_stacked(scores, sigma_truth, k)
    return errors == 0, scores


def decode_prefix_batch(
    jobs: Sequence[Tuple[int, int]],
    streams: Sequence,
    n: int,
    k: int,
    channel: Channel,
    *,
    gamma: Optional[int] = None,
    denoiser: Optional[Denoiser] = None,
    config: Optional[AMPConfig] = None,
    kernel: Optional[AMPKernel] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Decode many stream prefixes in one ragged block-diagonal AMP call.

    The public request-batching seam of the heterogeneous-m stacking
    path: ``jobs`` is a list of ``(stream_index, m)`` pairs and
    ``streams`` any prefix-replayable streams sharing ``(n, gamma,
    channel)`` — :class:`~repro.core.batch.MeasurementStream`,
    :class:`~repro.core.batch.ReplayedStream`, or the online decode
    service's :class:`~repro.core.batch.SessionStream`, whose
    concurrent sessions' decode requests stack here into a single
    :func:`iterate_amp` call. Returns ``(exact, scores)`` with one
    flag / score row per job; each job's decode is bit-identical to a
    standalone :func:`run_amp` on the same prefix, so batching across
    sessions is invisible in every output.
    """
    gamma = gamma if gamma is not None else default_gamma(n)
    if denoiser is None:
        denoiser = default_denoiser(n, k)
    config = config if config is not None else _default_batch_config()
    if not jobs:
        return np.zeros(0, dtype=bool), np.zeros((0, n), dtype=np.float64)
    for i, m in jobs:
        if m < 1:
            raise ValueError(f"prefix decode requires m >= 1, got {m}")
        streams[i].grow_to(m)
    return _decode_prefix_stack(
        jobs, streams, n, k, gamma, channel, denoiser, config, kernel
    )


def _probe_standalone(
    stream: MeasurementStream,
    m: int,
    n: int,
    gamma: int,
    channel: Channel,
    denoiser: Denoiser,
    config: AMPConfig,
    kernel: Optional[AMPKernel] = None,
) -> bool:
    """Standalone ``run_amp`` probe of one trial's ``m``-query prefix."""
    indptr, agents, counts, results = stream.prefix(m)
    graph = PoolingGraph._unchecked(n, gamma, indptr, agents, counts)
    meas = Measurements(
        graph=graph, truth=stream.truth, channel=channel, results=results
    )
    return bool(
        run_amp(meas, denoiser=denoiser, config=config, kernel=kernel).exact
    )


def _run_probe_round(
    jobs: Sequence[Tuple[int, int]],
    streams: Sequence[MeasurementStream],
    n: int,
    k: int,
    gamma: int,
    channel: Channel,
    denoiser: Denoiser,
    config: AMPConfig,
    stack_elements: int,
    kernel: Optional[AMPKernel] = None,
) -> List[bool]:
    """Execute one round of probes; returns exact flags aligned with jobs.

    Probes whose prefix incidence count exceeds
    :data:`STACK_NNZ_CUTOFF` run standalone ``run_amp`` (their matvec
    is memory-bound; stacking would only add assembly cost), the rest
    stack into consecutive block-diagonal batches bounded by
    ``stack_elements`` incidences. The dispatch never changes a probe's
    outcome (shared kernel, bit-identical either way).
    """
    flags: List[Optional[bool]] = [None] * len(jobs)
    stacked: List[int] = []
    for j, (i, m) in enumerate(jobs):
        streams[i].grow_to(m)
        if int(streams[i].indptr[m]) > STACK_NNZ_CUTOFF:
            flags[j] = _probe_standalone(
                streams[i], m, n, gamma, channel, denoiser, config, kernel
            )
        else:
            stacked.append(j)
    lo = 0
    while lo < len(stacked):
        budget = 0
        hi = lo
        while hi < len(stacked):
            j = stacked[hi]
            i, m = jobs[j]
            nnz = int(streams[i].indptr[m])
            if hi > lo and budget + nnz > stack_elements:
                break
            budget += nnz
            hi += 1
        pack = stacked[lo:hi]
        exact, _ = _decode_prefix_stack(
            [jobs[j] for j in pack],
            streams, n, k, gamma, channel, denoiser, config, kernel,
        )
        for j, ok in zip(pack, exact):
            flags[j] = bool(ok)
        lo = hi
    return flags  # type: ignore[return-value]


def _required_meta(
    channel: Channel,
    gamma: int,
    max_m: int,
    check_every: int,
    denoiser: Denoiser,
    engine: str,
) -> Dict[str, object]:
    return {
        "algorithm": "amp",
        "channel": channel.describe(),
        "gamma": gamma,
        "max_m": max_m,
        "check_every": check_every,
        "denoiser": denoiser.describe(),
        "engine": engine,
    }


def required_queries_amp(
    n: int,
    k: int,
    channel: Channel,
    seeds: Sequence[RngLike],
    *,
    gamma: Optional[int] = None,
    max_m: Optional[int] = None,
    check_every: int = 1,
    verify: str = "full",
    denoiser: Optional[Denoiser] = None,
    config: Optional[AMPConfig] = None,
    initial_block: int = DEFAULT_INITIAL_BLOCK,
    block_elements: int = DEFAULT_BLOCK_ELEMENTS,
    stack_elements: int = DEFAULT_STACK_ELEMENTS,
    kernel=None,
) -> List[RequiredQueriesResult]:
    """Smallest m per trial at which AMP decodes exactly (Figures 2-5).

    For every seed, samples the trial's query stream **once** in
    geometric-growth blocks (:class:`~repro.core.batch.
    MeasurementStream`) and replays row-prefixes of it: a probe at
    ``m'`` is a free ``indptr[:m'+1]`` slice plus the matching results
    slice. The stopping m is located per trial with a galloping upper
    bracket followed by bisection and a verify sweep of the
    still-unresolved grid points below the candidate
    (:class:`_RequiredMSearch`). With the default ``verify="full"``
    the returned m is **identical to a brute-force ascending scan**
    that runs standalone :func:`run_amp` at every ``check_every``
    multiple of the same trial's prefix data
    (:func:`required_queries_amp_linear` — pinned in
    ``tests/test_amp_required.py``); ``verify="window"`` sweeps only
    the galloping bracket, and ``verify="none"`` trusts the
    quasi-monotone recovery profile outright and returns the bisection
    boundary with sublinearly many probes (the sweep-scale fast mode —
    see :class:`_RequiredMSearch` for the exactness/cost dial).

    Execution is *stacked*: each probe round collects all still-active
    trials' pending probes — heterogeneous per-trial m — into one
    block-diagonal CSR and runs a single batched
    :func:`~repro.amp.amp.iterate_amp` call (consecutive stacks bounded
    by ``stack_elements`` incidences; memory-bound probes above
    :data:`STACK_NNZ_CUTOFF` run standalone). Every trial is a pure
    function of its child seed — probe schedules depend only on the
    trial's own outcomes, and stacked iterates are bit-identical to
    standalone ones — so contiguous chunks of a larger seed list
    reproduce the same per-trial results, keeping sharded scans
    (``workers=N``) bit-identical to serial ones.

    Returns one :class:`~repro.core.types.RequiredQueriesResult` per
    seed, in order; ``checks`` counts the distinct probes spent.
    """
    n = check_positive_int(n, "n")
    k = check_positive_int(k, "k")
    check_every = check_positive_int(check_every, "check_every")
    gamma = default_gamma(n) if gamma is None else check_positive_int(gamma, "gamma")
    if max_m is None:
        max_m = default_max_queries(n, k, channel)
    if denoiser is None:
        denoiser = default_denoiser(n, k)
    config = config if config is not None else _default_batch_config()
    kern = resolve_kernel(kernel)
    if not seeds:
        return []
    step = check_every
    grid_max = (max_m // step) * step
    meta = _required_meta(channel, gamma, max_m, check_every, denoiser, "batch")
    meta["verify"] = verify
    meta["kernel"] = kern.name

    searches = [_RequiredMSearch(step, grid_max, verify) for _ in seeds]
    streams: List[MeasurementStream] = []
    for seed in seeds:
        gen = normalize_rng(seed)
        truth = sample_ground_truth(n, k, gen)
        streams.append(
            MeasurementStream(
                n,
                gamma,
                channel,
                truth,
                gen,
                max_m=max_m,
                initial_block=initial_block,
                block_elements=block_elements,
                retain=True,
            )
        )

    _drive_required_scan(
        searches, streams, n, k, gamma, channel, denoiser, config,
        stack_elements, kern,
    )
    return [
        RequiredQueriesResult(
            required_m=search.required_m,
            n=n,
            k=k,
            succeeded=search.required_m is not None,
            checks=search.checks,
            meta=meta,
        )
        for search in searches
    ]


def _drive_required_scan(
    searches: Sequence[_RequiredMSearch],
    streams: Sequence[MeasurementStream],
    n: int,
    k: int,
    gamma: int,
    channel: Channel,
    denoiser: Denoiser,
    config: AMPConfig,
    stack_elements: int,
    kern: AMPKernel,
) -> None:
    """Run every trial's search to completion over shared probe rounds.

    The round loop of :func:`required_queries_amp`, factored so the
    replayed scan (:func:`required_queries_amp_replayed`) can drive it
    over :class:`~repro.core.batch.ReplayedStream` views instead of
    live :class:`~repro.core.batch.MeasurementStream` objects — the
    probe scheduling, stacking and decode never touch the stream's
    growth machinery beyond ``grow_to``/``prefix``/``indptr``/``truth``.
    """
    while True:
        jobs: List[Tuple[int, int]] = []
        for i, search in enumerate(searches):
            if not search.done:
                jobs.extend((i, m) for m in search.next_probes(VERIFY_WAVE))
        if not jobs:
            break
        flags = _run_probe_round(
            jobs, streams, n, k, gamma, channel, denoiser, config,
            stack_elements, kern,
        )
        touched = []
        for (i, m), ok in zip(jobs, flags):
            searches[i].record(m, ok)
            if i not in touched:
                touched.append(i)
        for i in touched:
            searches[i].advance()


def sample_required_stream_chunk(
    n: int,
    k: int,
    channel: Channel,
    seeds: Sequence[RngLike],
    *,
    gamma: Optional[int] = None,
    max_m: Optional[int] = None,
    check_every: int = 1,
    initial_block: int = DEFAULT_INITIAL_BLOCK,
    block_elements: int = DEFAULT_BLOCK_ELEMENTS,
) -> Dict[str, np.ndarray]:
    """Grow one required-m chunk's streams to the full grid (driver side).

    Consumes each seed exactly like :func:`required_queries_amp`'s
    prologue (ground truth, then a retained
    :class:`~repro.core.batch.MeasurementStream` with the same block
    schedule), grows every stream to the last grid point, and packs
    the ``grid_max``-prefixes into flat arrays: per-trial ``indptr``
    rows, concatenated ``agents``/``counts`` with ``edge_offsets``
    boundaries, ``results`` rows and ``truth`` sigma rows. The
    prefix-independence contract makes every prefix of the published
    arrays identical to what a lazily grown scan would have probed, so
    :func:`required_queries_amp_replayed` on these arrays reproduces
    :func:`required_queries_amp` on the same seeds exactly.
    """
    n = check_positive_int(n, "n")
    gamma = default_gamma(n) if gamma is None else gamma
    if max_m is None:
        max_m = default_max_queries(n, k, channel)
    step = check_positive_int(check_every, "check_every")
    grid_max = (max_m // step) * step
    trials = len(seeds)
    indptr_rows = np.empty((trials, grid_max + 1), dtype=np.int64)
    results_rows = np.empty((trials, grid_max), dtype=np.float64)
    sigma = np.empty((trials, n), dtype=np.int8)
    edge_offsets = np.zeros(trials + 1, dtype=np.int64)
    agents_parts: List[np.ndarray] = []
    counts_parts: List[np.ndarray] = []
    for t, seed in enumerate(seeds):
        gen = normalize_rng(seed)
        truth = sample_ground_truth(n, k, gen)
        stream = MeasurementStream(
            n,
            gamma,
            channel,
            truth,
            gen,
            max_m=max_m,
            initial_block=initial_block,
            block_elements=block_elements,
            retain=True,
        )
        stream.grow_to(grid_max)
        indptr, agents, counts, results = stream.prefix(grid_max)
        indptr_rows[t] = indptr
        results_rows[t] = results
        sigma[t] = truth.sigma
        agents_parts.append(agents)
        counts_parts.append(counts)
        edge_offsets[t + 1] = edge_offsets[t] + agents.size
    return {
        "indptr": indptr_rows,
        "edge_offsets": edge_offsets,
        "agents": (
            np.concatenate(agents_parts)
            if agents_parts
            else np.zeros(0, dtype=np.int64)
        ),
        "counts": (
            np.concatenate(counts_parts)
            if counts_parts
            else np.zeros(0, dtype=np.int64)
        ),
        "results": results_rows,
        "truth": sigma,
    }


def required_queries_amp_replayed(
    n: int,
    k: int,
    channel: Channel,
    arrays: Dict[str, np.ndarray],
    *,
    gamma: Optional[int] = None,
    max_m: Optional[int] = None,
    check_every: int = 1,
    verify: str = "full",
    denoiser: Optional[Denoiser] = None,
    config: Optional[AMPConfig] = None,
    stack_elements: int = DEFAULT_STACK_ELEMENTS,
    kernel=None,
) -> List[RequiredQueriesResult]:
    """Required-m scan over driver-published, fully grown stream arrays.

    The worker half of :func:`sample_required_stream_chunk`: wraps the
    (read-only, zero-copy) array views in
    :class:`~repro.core.batch.ReplayedStream` objects and drives the
    identical search machinery as :func:`required_queries_amp` — the
    only difference is that the streams were grown by the sweep driver
    and attached from the shared-memory arena instead of being sampled
    here. Returns the same per-trial
    :class:`~repro.core.types.RequiredQueriesResult` values.
    """
    from repro.core.ground_truth import GroundTruth

    n = check_positive_int(n, "n")
    k = check_positive_int(k, "k")
    check_every = check_positive_int(check_every, "check_every")
    gamma = default_gamma(n) if gamma is None else check_positive_int(gamma, "gamma")
    if max_m is None:
        max_m = default_max_queries(n, k, channel)
    if denoiser is None:
        denoiser = default_denoiser(n, k)
    config = config if config is not None else _default_batch_config()
    kern = resolve_kernel(kernel)
    step = check_every
    grid_max = (max_m // step) * step
    meta = _required_meta(channel, gamma, max_m, check_every, denoiser, "batch")
    meta["verify"] = verify
    meta["kernel"] = kern.name

    edge_offsets = arrays["edge_offsets"]
    trials = arrays["truth"].shape[0]
    streams = [
        ReplayedStream(
            n,
            gamma,
            GroundTruth(arrays["truth"][t]),
            arrays["indptr"][t],
            arrays["agents"][edge_offsets[t] : edge_offsets[t + 1]],
            arrays["counts"][edge_offsets[t] : edge_offsets[t + 1]],
            arrays["results"][t],
        )
        for t in range(trials)
    ]
    searches = [_RequiredMSearch(step, grid_max, verify) for _ in range(trials)]
    _drive_required_scan(
        searches, streams, n, k, gamma, channel, denoiser, config,
        stack_elements, kern,
    )
    return [
        RequiredQueriesResult(
            required_m=search.required_m,
            n=n,
            k=k,
            succeeded=search.required_m is not None,
            checks=search.checks,
            meta=meta,
        )
        for search in searches
    ]


def required_queries_amp_linear(
    n: int,
    k: int,
    channel: Channel,
    seeds: Sequence[RngLike],
    *,
    gamma: Optional[int] = None,
    max_m: Optional[int] = None,
    check_every: int = 1,
    denoiser: Optional[Denoiser] = None,
    config: Optional[AMPConfig] = None,
    initial_block: int = DEFAULT_INITIAL_BLOCK,
    block_elements: int = DEFAULT_BLOCK_ELEMENTS,
    kernel=None,
) -> List[RequiredQueriesResult]:
    """Brute-force per-grid-point linear scan — the required-m reference.

    Probes every ``check_every`` multiple in ascending order with a
    standalone :func:`run_amp` on the trial's prefix data until the
    first exact decode. This is the semantic definition
    :func:`required_queries_amp` reproduces (and is pinned against);
    it also serves as the ``engine="legacy"`` path of
    ``required_queries_trials(algorithm="amp")``. Orders of magnitude
    more matvec work at sweep scale — use the stacked scan for real
    runs.
    """
    n = check_positive_int(n, "n")
    k = check_positive_int(k, "k")
    check_every = check_positive_int(check_every, "check_every")
    gamma = default_gamma(n) if gamma is None else check_positive_int(gamma, "gamma")
    if max_m is None:
        max_m = default_max_queries(n, k, channel)
    if denoiser is None:
        denoiser = default_denoiser(n, k)
    config = config if config is not None else _default_batch_config()
    kern = resolve_kernel(kernel)
    step = check_every
    grid_max = (max_m // step) * step
    meta = _required_meta(channel, gamma, max_m, check_every, denoiser, "legacy")
    meta["kernel"] = kern.name
    out: List[RequiredQueriesResult] = []
    for seed in seeds:
        gen = normalize_rng(seed)
        truth = sample_ground_truth(n, k, gen)
        stream = MeasurementStream(
            n,
            gamma,
            channel,
            truth,
            gen,
            max_m=max_m,
            initial_block=initial_block,
            block_elements=block_elements,
            retain=True,
        )
        required: Optional[int] = None
        checks = 0
        for g in range(step, grid_max + 1, step):
            stream.grow_to(g)
            checks += 1
            if _probe_standalone(
                stream, g, n, gamma, channel, denoiser, config, kern
            ):
                required = g
                break
        out.append(
            RequiredQueriesResult(
                required_m=required,
                n=n,
                k=k,
                succeeded=required is not None,
                checks=checks,
                meta=meta,
            )
        )
    return out


__all__ = [
    "DEFAULT_STACK_ELEMENTS",
    "STACK_NNZ_CUTOFF",
    "VERIFY_MODES",
    "VERIFY_WAVE",
    "decode_prefix_batch",
    "run_amp_batch",
    "run_amp_trials",
    "run_amp_prepared",
    "sample_amp_cell_chunk",
    "sample_required_stream_chunk",
    "required_queries_amp",
    "required_queries_amp_linear",
    "required_queries_amp_replayed",
]
