"""Batched AMP: block-diagonal trial stacking for sweep-scale runs.

The experiment harness runs AMP as Monte-Carlo sweeps of independent
trials over one ``(n, k, channel, m)`` cell. Running :func:`run_amp`
once per trial pays, per trial, a fresh CSR build plus — per
iteration — a dozen small numpy/scipy dispatches. This module stacks
``T`` trials' pooling graphs into a **single block-diagonal CSR**
(column indices shifted by ``t * n``, one ``indptr`` of length
``T*m + 1``) so each AMP iteration is one sparse matvec on a ``(T*n,)``
state vector, with ``tau``, the Onsager coefficients, denoiser
applications, damping and step norms computed on ``(T, ·)`` reshapes.

Bit-identity contract
---------------------
Every trial's iterate sequence — and therefore its decoded
``estimate``/``exact``/``overlap``/``iterations`` — is identical to a
standalone :func:`repro.amp.run_amp` call on the same spawned child
seed, for any stack size:

* the sampling prologue of :func:`run_amp_trials` consumes each
  trial's child generator exactly like the legacy per-trial loop
  (truth, graph, channel noise, in that order);
* the shared kernel (:func:`repro.amp.amp.iterate_amp`) performs only
  row-independent operations, and a block-diagonal CSR matvec computes
  each output coordinate by the same sequential sum as the per-trial
  matrix;
* per-trial convergence freezes a trial's rows (masked update) at the
  same iteration the standalone run would stop, and the kernel
  compacts the stack — rebuilding the block-diagonal operators for the
  surviving trials — once at most half the trials remain active.

``tests/test_amp_batch.py`` pins the equivalence across channels,
mixed per-trial iteration counts and stack sizes.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.amp.amp import (
    AMPConfig,
    channel_corrected_results,
    default_denoiser,
    iterate_amp,
    run_amp,
    standardization_constants,
)
from repro.amp.denoisers import Denoiser
from repro.core.batch import sample_pooling_graph_batch
from repro.core.ground_truth import sample_ground_truth
from repro.core.measurement import Measurements, measure
from repro.core.noise import Channel
from repro.core.pooling import default_gamma
from repro.core.scores import decode_top_k_stacked
from repro.core.types import ReconstructionResult
from repro.utils.rng import RngLike, normalize_rng
from repro.utils.validation import check_positive_int

#: soft cap on stacked CSR incidences per kernel invocation;
#: :func:`run_amp_trials` splits longer trial lists into consecutive
#: stacks of this footprint (~0.5 GiB of data+index arrays), which has
#: no effect on any trial's output — only on peak memory.
DEFAULT_STACK_ELEMENTS = 2**25

#: expected per-trial incidences above which :func:`run_amp_trials`
#: runs standalone ``run_amp`` per trial instead of stacking: past this
#: size a trial's own matvec is memory-bound (scipy dispatch and numpy
#: per-op overhead are noise), so stacking only adds the O(nnz)
#: block-diagonal assembly and the frozen-row matvec waste. Below it
#: the per-op overhead dominates and stacking wins (up to ~2.5x on the
#: bench host). Either path returns bit-identical results (shared
#: kernel), so the dispatch is invisible in every output.
STACK_NNZ_CUTOFF = 2**18


def _default_batch_config() -> AMPConfig:
    """Sweep-scale default: identical iteration, no per-iteration history.

    Direct :func:`repro.amp.run_amp` calls keep ``track_history=True``;
    the batched entry points default it off because a sweep retains
    only the decode outcome per trial and the history dicts would be
    O(iterations) dead weight in every ``ReconstructionResult.meta``.
    """
    return AMPConfig(track_history=False)


def _stack_blocks(
    blocks: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]],
    rows: int,
    cols: int,
):
    """Assemble per-trial CSR triples into one block-diagonal CSR.

    ``blocks[t]`` holds trial ``t``'s ``(indptr, indices, data)`` of
    shape ``(rows, cols)``; the stacked matrix has shape
    ``(T*rows, T*cols)`` with trial ``t``'s column indices shifted by
    ``t * cols``. Row contents (order and values) are exactly the
    per-trial rows, so a matvec on the stack computes every output
    coordinate by the same sequential sum as the per-trial matvec.
    """
    from scipy import sparse

    trials = len(blocks)
    nnz = np.array([indices.size for _, indices, _ in blocks], dtype=np.int64)
    offsets = np.concatenate(([0], np.cumsum(nnz)))
    # int32 indices halve the matvec's index traffic (and match what
    # scipy would downcast to); they must fit both the column ids and
    # the cumulative incidence counts stored in indptr.
    index_dtype = (
        np.int32
        if max(trials * cols, int(offsets[-1])) < 2**31
        else np.int64
    )
    indptr = np.empty(trials * rows + 1, dtype=index_dtype)
    indptr[0] = 0
    data = np.empty(offsets[-1], dtype=np.float64)
    indices = np.empty(offsets[-1], dtype=index_dtype)
    for t, (block_indptr, block_indices, block_data) in enumerate(blocks):
        lo, hi = offsets[t], offsets[t + 1]
        data[lo:hi] = block_data
        indices[lo:hi] = block_indices
        indices[lo:hi] += t * cols
        indptr[t * rows + 1 : (t + 1) * rows + 1] = block_indptr[1:] + lo
    return sparse.csr_matrix(
        (data, indices, indptr), shape=(trials * rows, trials * cols)
    )


class _StackedOperators:
    """Block-diagonal standardized operators over per-trial CSR blocks.

    Holds the raw per-trial CSR triples and materializes, for any
    subset of trials, the stacked forward map ``x -> (A x - c s_t)/scale``
    and its adjoint as flat-vector callables for the kernel. The
    centering is applied as a rank-one correction per trial block, so
    no dense matrix is ever formed (the sparse-path contract of
    ``run_amp`` extends to the whole stack).

    The adjoint is the stacked matrix's free CSC transpose view — its
    matvec scatters only within each trial's own output segment (the
    block-diagonal structure keeps it cache-local) and matches the
    converted-CSR matvec in speed without paying any O(nnz) ``tocsr``
    conversion, exactly mirroring the per-trial :func:`~repro.amp.run_amp`
    adjoint so stacked and standalone iterates stay bit-identical.
    """

    def __init__(
        self,
        blocks: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]],
        n: int,
        m: int,
        c: float,
        scale: float,
    ):
        self.blocks = list(blocks)
        self.n = n
        self.m = m
        self.c = c
        self.scale = scale

    def operators(
        self, idx: Sequence[int]
    ) -> Tuple[Callable[[np.ndarray], np.ndarray], Callable[[np.ndarray], np.ndarray]]:
        """Build ``(matvec, rmatvec)`` for the trial subset ``idx``."""
        n, m, c, scale = self.n, self.m, self.c, self.scale
        chosen = [int(i) for i in idx]
        trials = len(chosen)
        # the fill loop casts int64 counts to float64 on assignment
        a = _stack_blocks([self.blocks[i] for i in chosen], m, n)
        a_t = a.T

        def matvec(x: np.ndarray) -> np.ndarray:
            s = x.reshape(trials, n).sum(axis=1)
            return (a @ x - c * np.repeat(s, m)) / scale

        def rmatvec(z: np.ndarray) -> np.ndarray:
            s = z.reshape(trials, m).sum(axis=1)
            return (a_t @ z - c * np.repeat(s, n)) / scale

        return matvec, rmatvec


def run_amp_batch(
    measurements: Sequence[Measurements],
    *,
    denoiser: Optional[Denoiser] = None,
    config: Optional[AMPConfig] = None,
) -> List[ReconstructionResult]:
    """Run AMP on many same-cell measurement sets as one stacked system.

    All entries must share ``(n, m, k, gamma)`` and the channel (same
    description) — the shape of one sweep cell. Returns one
    :class:`ReconstructionResult` per entry, in order, each identical
    in decode (estimate, exact, overlap, iterations) to
    ``run_amp(measurements[t], ...)`` with the same denoiser/config.

    ``config`` defaults to ``AMPConfig(track_history=False)`` (see
    :func:`_default_batch_config`); pass an explicit config with
    ``track_history=True`` to retain per-iteration records.
    """
    if not measurements:
        return []
    config = config if config is not None else _default_batch_config()
    first = measurements[0]
    n, m, k = first.n, first.m, first.k
    gamma = first.graph.gamma
    channel_desc = first.channel.describe()
    if m == 0:
        raise ValueError("AMP requires at least one query")
    for meas in measurements:
        if (meas.n, meas.m, meas.k, meas.graph.gamma) != (n, m, k, gamma):
            raise ValueError(
                "all measurements in a batch must share (n, m, k, gamma); got "
                f"({meas.n}, {meas.m}, {meas.k}, {meas.graph.gamma}) vs "
                f"({n}, {m}, {k}, {gamma})"
            )
        if meas.channel.describe() != channel_desc:
            raise ValueError(
                "all measurements in a batch must share the channel; got "
                f"{meas.channel.describe()!r} vs {channel_desc!r}"
            )
    if denoiser is None:
        denoiser = default_denoiser(n, k)

    trials = len(measurements)
    c, scale = standardization_constants(n, m, gamma)
    results_2d = np.empty((trials, m), dtype=np.float64)
    for t, meas in enumerate(measurements):
        results_2d[t] = meas.results
    y = (channel_corrected_results(results_2d, gamma, first.channel) - c * k) / scale

    stacked = _StackedOperators(
        [(meas.graph.indptr, meas.graph.agents, meas.graph.counts)
         for meas in measurements],
        n, m, c, scale,
    )
    matvec, rmatvec = stacked.operators(np.arange(trials))
    scores, iterations, converged, histories = iterate_amp(
        matvec, rmatvec, y, denoiser, config, n=n, restrict=stacked.operators
    )

    sigma_truth = np.empty((trials, n), dtype=np.int8)
    for t, meas in enumerate(measurements):
        sigma_truth[t] = meas.truth.sigma
    estimate, errors, overlap, margins = decode_top_k_stacked(
        scores, sigma_truth, k
    )
    denoiser_desc = denoiser.describe()
    out: List[ReconstructionResult] = []
    for t in range(trials):
        out.append(
            ReconstructionResult(
                estimate=estimate[t],
                scores=scores[t],
                exact=bool(errors[t] == 0),
                overlap=float(overlap[t]),
                separated=bool(margins[t] > 0.0),
                hamming_errors=int(errors[t]),
                meta={
                    "algorithm": "amp",
                    "engine": "batch",
                    "denoiser": denoiser_desc,
                    "iterations": int(iterations[t]),
                    "converged": bool(converged[t]),
                    "n": n,
                    "m": m,
                    "k": k,
                    "channel": channel_desc,
                    "sparse": True,
                    "history": histories[t] if histories is not None else [],
                },
            )
        )
    return out


def _expected_trial_nnz(n: int, m: int, gamma: int) -> float:
    """Expected distinct incidences of one trial's pooling graph.

    ``m * n * (1 - (1 - 1/n)^gamma)`` — deterministic in
    ``(n, m, gamma)``, so every dispatch decision derived from it is
    independent of the sampled graphs.
    """
    return max(1.0, m * n * (1.0 - (1.0 - 1.0 / n) ** gamma))


def _stack_size(n: int, m: int, gamma: int, stack_elements: int) -> int:
    """Trials per stack under the incidence-element budget."""
    return max(1, int(stack_elements // _expected_trial_nnz(n, m, gamma)))


def run_amp_trials(
    n: int,
    k: int,
    channel: Channel,
    m: int,
    seeds: Sequence[RngLike],
    *,
    gamma: Optional[int] = None,
    denoiser: Optional[Denoiser] = None,
    config: Optional[AMPConfig] = None,
    stack_elements: int = DEFAULT_STACK_ELEMENTS,
) -> List[ReconstructionResult]:
    """Sample and batch-decode one AMP trial per seed.

    Each seed's trial consumes its generator exactly like the legacy
    per-trial loop of the experiment harness — ground truth, pooling
    graph, channel noise, in that order — and is then decoded through
    the stacked kernel, so ``run_amp_trials(...)[t]`` reproduces the
    decode of a standalone ``run_amp`` on trial ``t``'s seed bit for
    bit. This is the entry point both the serial sweep path and the
    multiprocess chunk workers use (a contiguous chunk of a larger
    seed list yields the same per-trial results, so sharded sweeps
    stay bit-identical to serial ones).

    Long seed lists are processed in consecutive stacks bounded by
    ``stack_elements`` incidences (peak-memory control only). Cells
    whose expected per-trial incidence count exceeds
    :data:`STACK_NNZ_CUTOFF` run standalone ``run_amp`` per trial
    instead — there a single trial's matvec is already memory-bound
    and stacking only adds assembly cost; the dispatch never changes
    any output (shared kernel, bit-identical either way).
    """
    n = check_positive_int(n, "n")
    m = check_positive_int(m, "m")
    gamma = default_gamma(n) if gamma is None else check_positive_int(gamma, "gamma")
    out: List[ReconstructionResult] = []
    if not seeds:
        return out
    config = config if config is not None else _default_batch_config()
    if _expected_trial_nnz(n, m, gamma) > STACK_NNZ_CUTOFF:
        for seed in seeds:
            gen = normalize_rng(seed)
            truth = sample_ground_truth(n, k, gen)
            graph = sample_pooling_graph_batch(n, m, gamma, gen)
            out.append(
                run_amp(
                    measure(graph, truth, channel, gen),
                    denoiser=denoiser,
                    config=config,
                )
            )
        return out
    stack = _stack_size(n, m, gamma, stack_elements)
    for lo in range(0, len(seeds), stack):
        batch: List[Measurements] = []
        for seed in seeds[lo : lo + stack]:
            gen = normalize_rng(seed)
            truth = sample_ground_truth(n, k, gen)
            graph = sample_pooling_graph_batch(n, m, gamma, gen)
            batch.append(measure(graph, truth, channel, gen))
        out.extend(
            run_amp_batch(batch, denoiser=denoiser, config=config)
        )
    return out


__all__ = [
    "DEFAULT_STACK_ELEMENTS",
    "STACK_NNZ_CUTOFF",
    "run_amp_batch",
    "run_amp_trials",
]
