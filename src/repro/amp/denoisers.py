"""Denoiser families ``eta_t`` for approximate message passing.

AMP applies a scalar function coordinate-wise to the effective
observation ``r = A^T z + sigma_hat`` which, in the large-system limit,
behaves like ``sigma + tau * Z`` with ``Z ~ N(0,1)`` (the key AMP
decoupling property). A denoiser therefore maps a noisy scalar
observation to an estimate of the signal coordinate and must expose its
derivative for the Onsager correction term.

Two denoisers are provided:

* :class:`BayesBernoulliDenoiser` — the posterior mean under the pooled
  data prior ``sigma_i ~ Bernoulli(pi)`` with ``pi = k/n``. This is the
  minimum-MSE choice for the problem and the default for the Figure 6
  comparison.
* :class:`SoftThresholdDenoiser` — the classical compressed-sensing
  soft threshold of Donoho-Maleki-Montanari, used by ablation A4.

Dtype contract
--------------
Every method computes in the dtype of its input: float64 inputs (the
default everywhere) run the exact arithmetic they always ran, while
float32 inputs — produced by the opt-in float32 AMP kernels
(:mod:`repro.amp.kernels`) — stay float32 end to end instead of being
silently upcast through float64 intermediates. The scalar constants a
denoiser bakes in (prior log-odds, threshold multipliers) are kept as
Python floats, which NumPy treats as weak scalars: they never promote
a float32 array. The exponent clip is dtype-dependent
(:meth:`Denoiser.exp_clip_for`) because ``exp(88)`` already overflows
float32.

Fused-kernel form
-----------------
:meth:`Denoiser.kernel_form` exposes the denoiser as a flat
``(kind, parameters)`` pair so the fused native kernels can inline the
value *and* derivative computation in one loop over the stack without
calling back into Python per segment. Denoisers without a fused form
return ``None`` and run through the NumPy phase implementation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Tuple

import numpy as np

from repro.utils.validation import check_fraction, check_positive

#: numerical floor for the effective noise level tau
TAU_FLOOR = 1e-8

#: exponent clip to keep exp() finite in float64
_EXP_CLIP = 500.0

#: exponent clip for float32 computation (exp(89) overflows float32)
_EXP_CLIP32 = 80.0


def _working_dtype(x: np.ndarray) -> np.dtype:
    """Computation dtype for an input: float32 stays, all else float64."""
    if np.asarray(x).dtype == np.float32:
        return np.dtype(np.float32)
    return np.dtype(np.float64)


def _floor_tau(tau, dtype=np.float64) -> np.ndarray:
    """Clamp the effective noise level at :data:`TAU_FLOOR`.

    ``tau`` may be a scalar (one trial) or an array broadcastable
    against ``x`` — the stacked AMP kernel passes a per-trial ``(T, 1)``
    column so every row of a trial stack sees exactly its own noise
    level. Both forms produce bit-identical per-element arithmetic.
    ``dtype`` is the caller's working dtype (float64 default — the
    pre-float32-era arithmetic unchanged).
    """
    return np.maximum(np.asarray(tau, dtype=dtype), TAU_FLOOR)


class Denoiser(ABC):
    """A scalar denoiser ``eta(x; tau)`` applied coordinate-wise.

    ``tau`` is the effective noise level: a scalar for a single trial,
    or any array broadcastable against ``x`` (the batched AMP kernel
    uses a per-trial ``(T, 1)`` column on ``(T, n)`` stacks).
    """

    @abstractmethod
    def __call__(self, x: np.ndarray, tau) -> np.ndarray:
        """Estimate the signal from ``x ~ sigma + tau Z``."""

    @abstractmethod
    def derivative(self, x: np.ndarray, tau) -> np.ndarray:
        """``d eta / dx`` evaluated coordinate-wise (Onsager term)."""

    def value_and_derivative(self, x: np.ndarray, tau):
        """``(eta(x), d eta / dx)`` in one evaluation.

        The AMP kernel needs both on the same ``(x, tau)`` every
        iteration; denoisers whose derivative reuses the value (the
        Bayes posterior mean) override this to share the expensive
        part. The default evaluates the two methods separately. Both
        results are bit-identical to the individual calls — overriding
        only removes redundant recomputation, never changes arithmetic.
        """
        return self(x, tau), self.derivative(x, tau)

    def kernel_form(self) -> Optional[Tuple[str, Tuple[float, ...]]]:
        """Flat ``(kind, parameters)`` form for fused native kernels.

        ``kind`` names the fused value+derivative loop a native
        backend may implement for this family and ``parameters`` are
        its scalar constants (plain floats, ready to pass into a
        jitted function). ``None`` (the default) means "no fused form"
        — the backend falls back to the NumPy phase implementation,
        which evaluates :meth:`value_and_derivative` vectorized.
        """
        return None

    @staticmethod
    def exp_clip_for(dtype) -> float:
        """Largest safe ``exp()`` argument magnitude for ``dtype``."""
        if np.dtype(dtype) == np.float32:
            return _EXP_CLIP32
        return _EXP_CLIP

    @abstractmethod
    def describe(self) -> str:
        """Short human-readable description."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.describe()})"


class BayesBernoulliDenoiser(Denoiser):
    """Posterior-mean denoiser for a ``Bernoulli(pi)`` prior.

    With prior ``P(sigma=1) = pi`` and Gaussian observation
    ``x = sigma + tau Z``,

        eta(x) = P(sigma=1 | x)
               = 1 / (1 + ((1-pi)/pi) * exp((1 - 2x) / (2 tau^2)))

    and, because ``sigma`` is 0/1-valued, the derivative is the scaled
    posterior variance ``eta (1 - eta) / tau^2``.
    """

    def __init__(self, pi: float):
        self.pi = check_fraction(pi, "pi")
        # A Python float: a weak scalar under NumPy promotion, so it
        # never upcasts a float32 stack (float64 arithmetic unchanged).
        self._log_odds_prior = float(np.log((1.0 - self.pi) / self.pi))

    def __call__(self, x: np.ndarray, tau) -> np.ndarray:
        dtype = _working_dtype(x)
        x = np.asarray(x, dtype=dtype)
        tau = _floor_tau(tau, dtype)
        exponent = self._log_odds_prior + (1.0 - 2.0 * x) / (2.0 * tau * tau)
        clip = self.exp_clip_for(dtype)
        exponent = np.clip(exponent, -clip, clip)
        return 1.0 / (1.0 + np.exp(exponent))

    def derivative(self, x: np.ndarray, tau) -> np.ndarray:
        tau = _floor_tau(tau, _working_dtype(x))
        eta = self(x, tau)
        return eta * (1.0 - eta) / (tau * tau)

    def value_and_derivative(self, x: np.ndarray, tau):
        """Share the posterior mean between value and derivative.

        ``derivative`` is ``eta (1 - eta) / tau^2`` — recomputing
        ``eta`` (an exp over the whole stack) for it doubled the
        denoiser cost of every AMP iteration. One evaluation feeds
        both; the returned arrays are bit-identical to the separate
        calls (same inputs, same operations).
        """
        tau = _floor_tau(tau, _working_dtype(x))
        eta = self(x, tau)
        return eta, eta * (1.0 - eta) / (tau * tau)

    def kernel_form(self) -> Tuple[str, Tuple[float, ...]]:
        return ("bayes-bernoulli", (self._log_odds_prior,))

    def posterior_variance(self, x: np.ndarray, tau) -> np.ndarray:
        """``Var(sigma | x) = eta (1 - eta)`` for the 0/1 prior."""
        eta = self(x, tau)
        return eta * (1.0 - eta)

    def describe(self) -> str:
        return f"bayes-bernoulli(pi={self.pi:g})"


class SoftThresholdDenoiser(Denoiser):
    """Soft thresholding ``eta(x) = sign(x) max(|x| - alpha tau, 0)``.

    ``alpha`` tunes the threshold in units of the effective noise level;
    the classical sparsity-agnostic choice is around 1-3.
    """

    def __init__(self, alpha: float = 1.5):
        self.alpha = float(check_positive(alpha, "alpha"))

    def __call__(self, x: np.ndarray, tau) -> np.ndarray:
        dtype = _working_dtype(x)
        x = np.asarray(x, dtype=dtype)
        tau = _floor_tau(tau, dtype)
        threshold = self.alpha * tau
        return np.sign(x) * np.maximum(np.abs(x) - threshold, 0.0)

    def derivative(self, x: np.ndarray, tau) -> np.ndarray:
        dtype = _working_dtype(x)
        x = np.asarray(x, dtype=dtype)
        tau = _floor_tau(tau, dtype)
        return (np.abs(x) > self.alpha * tau).astype(dtype)

    def kernel_form(self) -> Tuple[str, Tuple[float, ...]]:
        return ("soft-threshold", (self.alpha,))

    def describe(self) -> str:
        return f"soft-threshold(alpha={self.alpha:g})"


__all__ = [
    "Denoiser",
    "BayesBernoulliDenoiser",
    "SoftThresholdDenoiser",
    "TAU_FLOOR",
]
