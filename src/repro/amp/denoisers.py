"""Denoiser families ``eta_t`` for approximate message passing.

AMP applies a scalar function coordinate-wise to the effective
observation ``r = A^T z + sigma_hat`` which, in the large-system limit,
behaves like ``sigma + tau * Z`` with ``Z ~ N(0,1)`` (the key AMP
decoupling property). A denoiser therefore maps a noisy scalar
observation to an estimate of the signal coordinate and must expose its
derivative for the Onsager correction term.

Two denoisers are provided:

* :class:`BayesBernoulliDenoiser` — the posterior mean under the pooled
  data prior ``sigma_i ~ Bernoulli(pi)`` with ``pi = k/n``. This is the
  minimum-MSE choice for the problem and the default for the Figure 6
  comparison.
* :class:`SoftThresholdDenoiser` — the classical compressed-sensing
  soft threshold of Donoho-Maleki-Montanari, used by ablation A4.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.utils.validation import check_fraction, check_positive

#: numerical floor for the effective noise level tau
TAU_FLOOR = 1e-8

#: exponent clip to keep exp() finite in float64
_EXP_CLIP = 500.0


def _floor_tau(tau) -> np.ndarray:
    """Clamp the effective noise level at :data:`TAU_FLOOR`.

    ``tau`` may be a scalar (one trial) or an array broadcastable
    against ``x`` — the stacked AMP kernel passes a per-trial ``(T, 1)``
    column so every row of a trial stack sees exactly its own noise
    level. Both forms produce bit-identical per-element arithmetic.
    """
    return np.maximum(np.asarray(tau, dtype=np.float64), TAU_FLOOR)


class Denoiser(ABC):
    """A scalar denoiser ``eta(x; tau)`` applied coordinate-wise.

    ``tau`` is the effective noise level: a scalar for a single trial,
    or any array broadcastable against ``x`` (the batched AMP kernel
    uses a per-trial ``(T, 1)`` column on ``(T, n)`` stacks).
    """

    @abstractmethod
    def __call__(self, x: np.ndarray, tau) -> np.ndarray:
        """Estimate the signal from ``x ~ sigma + tau Z``."""

    @abstractmethod
    def derivative(self, x: np.ndarray, tau) -> np.ndarray:
        """``d eta / dx`` evaluated coordinate-wise (Onsager term)."""

    def value_and_derivative(self, x: np.ndarray, tau):
        """``(eta(x), d eta / dx)`` in one evaluation.

        The AMP kernel needs both on the same ``(x, tau)`` every
        iteration; denoisers whose derivative reuses the value (the
        Bayes posterior mean) override this to share the expensive
        part. The default evaluates the two methods separately. Both
        results are bit-identical to the individual calls — overriding
        only removes redundant recomputation, never changes arithmetic.
        """
        return self(x, tau), self.derivative(x, tau)

    @abstractmethod
    def describe(self) -> str:
        """Short human-readable description."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.describe()})"


class BayesBernoulliDenoiser(Denoiser):
    """Posterior-mean denoiser for a ``Bernoulli(pi)`` prior.

    With prior ``P(sigma=1) = pi`` and Gaussian observation
    ``x = sigma + tau Z``,

        eta(x) = P(sigma=1 | x)
               = 1 / (1 + ((1-pi)/pi) * exp((1 - 2x) / (2 tau^2)))

    and, because ``sigma`` is 0/1-valued, the derivative is the scaled
    posterior variance ``eta (1 - eta) / tau^2``.
    """

    def __init__(self, pi: float):
        self.pi = check_fraction(pi, "pi")
        self._log_odds_prior = np.log((1.0 - self.pi) / self.pi)

    def __call__(self, x: np.ndarray, tau) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        tau = _floor_tau(tau)
        exponent = self._log_odds_prior + (1.0 - 2.0 * x) / (2.0 * tau * tau)
        exponent = np.clip(exponent, -_EXP_CLIP, _EXP_CLIP)
        return 1.0 / (1.0 + np.exp(exponent))

    def derivative(self, x: np.ndarray, tau) -> np.ndarray:
        tau = _floor_tau(tau)
        eta = self(x, tau)
        return eta * (1.0 - eta) / (tau * tau)

    def value_and_derivative(self, x: np.ndarray, tau):
        """Share the posterior mean between value and derivative.

        ``derivative`` is ``eta (1 - eta) / tau^2`` — recomputing
        ``eta`` (an exp over the whole stack) for it doubled the
        denoiser cost of every AMP iteration. One evaluation feeds
        both; the returned arrays are bit-identical to the separate
        calls (same inputs, same operations).
        """
        tau = _floor_tau(tau)
        eta = self(x, tau)
        return eta, eta * (1.0 - eta) / (tau * tau)

    def posterior_variance(self, x: np.ndarray, tau) -> np.ndarray:
        """``Var(sigma | x) = eta (1 - eta)`` for the 0/1 prior."""
        eta = self(x, tau)
        return eta * (1.0 - eta)

    def describe(self) -> str:
        return f"bayes-bernoulli(pi={self.pi:g})"


class SoftThresholdDenoiser(Denoiser):
    """Soft thresholding ``eta(x) = sign(x) max(|x| - alpha tau, 0)``.

    ``alpha`` tunes the threshold in units of the effective noise level;
    the classical sparsity-agnostic choice is around 1-3.
    """

    def __init__(self, alpha: float = 1.5):
        self.alpha = check_positive(alpha, "alpha")

    def __call__(self, x: np.ndarray, tau) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        tau = _floor_tau(tau)
        threshold = self.alpha * tau
        return np.sign(x) * np.maximum(np.abs(x) - threshold, 0.0)

    def derivative(self, x: np.ndarray, tau) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        tau = _floor_tau(tau)
        return (np.abs(x) > self.alpha * tau).astype(np.float64)

    def describe(self) -> str:
        return f"soft-threshold(alpha={self.alpha:g})"


__all__ = [
    "Denoiser",
    "BayesBernoulliDenoiser",
    "SoftThresholdDenoiser",
    "TAU_FLOOR",
]
