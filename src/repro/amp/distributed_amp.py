"""Distributed AMP: the message-passing reading of the AMP iteration.

The paper remarks that AMP "has an intuitive description in a
distributed message passing environment. However, the communication
overhead becomes substantial rendering (unmodified) AMP inefficient in
this setting [32]". This module makes that claim quantitative.

Execution model: one AMP iteration consists of

1. every query node sends its current residual ``z_j`` to all of its
   *distinct* neighbor agents (``|∂*a_j|`` messages per query);
2. every agent folds the residuals into its local estimate
   (the ``A^T z + sigma`` step plus the denoiser) and sends the updated
   estimate back to each of its distinct queries;
3. every query recomputes its residual, including the Onsager term,
   for which the network aggregates the mean denoiser derivative (we
   charge one broadcast per iteration for this global constant — a
   convergecast/broadcast tree costs ``O(n)`` messages).

So every AMP iteration moves ``2 |E*| + n`` messages, where ``|E*|`` is
the number of distinct (query, agent) incidences — the same traffic as
Algorithm 1's *entire* broadcast phase, repeated once per iteration.
:func:`communication_cost` tabulates both algorithms' bills; the
comparison bench (``benchmarks/bench_communication.py``) reports the
ratio next to the success rates, grounding the paper's efficiency
argument in numbers.

For the iterate values this module reuses the exact vectorized AMP
(:func:`repro.amp.run_amp`) — the distributed schedule exchanges the
same quantities in the same order, so simulating it message-by-message
would reproduce identical numbers while being dramatically slower; we
simulate the *cost model* exactly and the *values* vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.amp.amp import AMPConfig, run_amp
from repro.core.measurement import Measurements
from repro.core.types import ReconstructionResult
from repro.distributed.sorting.batcher import make_sorting_network

#: bits per scalar on the wire (matching repro.distributed.messages)
_SCALAR_BITS = 64


@dataclass(frozen=True)
class CommunicationCost:
    """Message/bit/round bill of one algorithm on one instance."""

    algorithm: str
    rounds: int
    messages: int
    bits: int

    def per_agent_messages(self, n: int) -> float:
        return self.messages / n


def greedy_communication_cost(measurements: Measurements) -> CommunicationCost:
    """Exact communication bill of distributed Algorithm 1.

    Query broadcast (one message per distinct incidence) + sorting
    network (two messages per comparator) + k rank announcements;
    rounds = sorting depth + 3 (see :mod:`repro.distributed.protocol`).
    """
    graph = measurements.graph
    schedule = make_sorting_network("batcher", graph.n)
    broadcast = int(graph.distinct_sizes().sum())
    sort_msgs = 2 * schedule.size
    announcements = measurements.k
    messages = broadcast + sort_msgs + announcements
    bits = (
        broadcast * 2 * _SCALAR_BITS
        + sort_msgs * 3 * _SCALAR_BITS
        + announcements * _SCALAR_BITS
    )
    return CommunicationCost(
        algorithm="greedy",
        rounds=schedule.depth + 3,
        messages=messages,
        bits=bits,
    )


def amp_communication_cost(
    measurements: Measurements, iterations: int
) -> CommunicationCost:
    """Communication bill of message-passing AMP for ``iterations`` rounds.

    Per iteration: residual broadcast (|E*| messages), estimate
    return (|E*| messages), and an O(n) convergecast/broadcast for the
    Onsager mean. A final top-k selection reuses the greedy sorting
    phase (Batcher network + announcements).
    """
    graph = measurements.graph
    incidences = int(graph.distinct_sizes().sum())
    per_iteration = 2 * incidences + graph.n
    schedule = make_sorting_network("batcher", graph.n)
    sort_msgs = 2 * schedule.size + measurements.k
    messages = iterations * per_iteration + sort_msgs
    bits = messages * 2 * _SCALAR_BITS
    # Each iteration costs 3 network rounds (residuals out, estimates
    # back, Onsager aggregate); sorting adds depth + 2.
    rounds = 3 * iterations + schedule.depth + 2
    return CommunicationCost(
        algorithm="amp", rounds=rounds, messages=messages, bits=bits
    )


@dataclass(frozen=True)
class DistributedAMPReport:
    """Reconstruction + communication bill of distributed AMP."""

    result: ReconstructionResult
    cost: CommunicationCost


def run_distributed_amp(
    measurements: Measurements,
    *,
    config: Optional[AMPConfig] = None,
    kernel=None,
) -> DistributedAMPReport:
    """Run AMP and attach its distributed communication bill.

    The iterate values come from the exact vectorized implementation;
    the cost model charges the message-passing schedule described in
    the module docstring for the number of iterations actually used.
    ``kernel`` selects the compute backend exactly as in
    :func:`~repro.amp.run_amp` (the cost model is backend-independent:
    it charges the schedule, not the arithmetic).
    """
    result = run_amp(measurements, config=config, kernel=kernel)
    cost = amp_communication_cost(measurements, result.meta["iterations"])
    meta = dict(result.meta)
    meta.update(
        {
            "algorithm": "amp-distributed",
            "rounds": cost.rounds,
            "messages": cost.messages,
            "bits": cost.bits,
        }
    )
    annotated = ReconstructionResult(
        estimate=result.estimate,
        scores=result.scores,
        exact=result.exact,
        overlap=result.overlap,
        separated=result.separated,
        hamming_errors=result.hamming_errors,
        meta=meta,
    )
    return DistributedAMPReport(result=annotated, cost=cost)


__all__ = [
    "CommunicationCost",
    "greedy_communication_cost",
    "amp_communication_cost",
    "DistributedAMPReport",
    "run_distributed_amp",
]
