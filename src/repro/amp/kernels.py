"""Pluggable compute kernels for the AMP iteration.

Every AMP path in the library — standalone :func:`repro.amp.run_amp`,
the block-diagonal batched runner, and the heterogeneous-m
required-queries probe stacks — funnels through one iteration driver
(:func:`repro.amp.amp.iterate_amp`). This module is the compute seam
underneath that driver: the per-iteration array passes are grouped
into two phase calls an :class:`AMPKernel` backend implements,

``posterior_step``
    everything between the adjoint matvec and the forward matvec —
    per-trial effective noise ``tau`` from residual segment sums, the
    denoiser value+derivative, damping, the Onsager coefficient and
    the step norm;
``residual_step``
    everything after the forward matvec — the residual update
    ``z' = y - A sigma + onsager * z`` plus damping,

with the sparse matvec itself staying outside the seam (it is the one
operation that cannot fuse across the phase boundary). A
:class:`StackLayout` value describes the trial stack — uniform
``(T, m)`` or ragged ``row_sizes`` — so one driver and one kernel
interface cover both stack shapes.

Backends
--------
``numpy`` (default)
    The reference kernel: performs exactly the array operations the
    pre-seam loops performed, in the same order, in float64 — its
    outputs are **bit-identical by construction** to the pre-refactor
    implementation (pinned against captured goldens in
    ``tests/test_kernels.py``).
``numpy32``
    The same operations computed in float32 end to end (inputs are
    cast once at the seam; the denoisers honor the input dtype).
    Opt-in, tolerance-tested — halves the memory traffic of every
    pass.
``numba`` / ``numba32``
    Optional fused backend: each phase runs as one jitted loop over
    the ragged segment bounds — segment sums, denoiser, damping,
    Onsager and step norm in a single pass over the stack, with the
    denoiser inlined from its flat :meth:`repro.amp.denoisers.
    Denoiser.kernel_form` parameters (no Python callback per segment).
    Requires the ``numba`` package; when it is missing,
    :func:`resolve_kernel` warns once and falls back to the matching
    NumPy kernel, so ``REPRO_KERNEL=numba`` is always safe to export.
    Accumulation order inside a fused loop differs from NumPy's
    pairwise sums, so these backends are equivalence-tested within
    tolerance, not bit-identical.

Selection
---------
``resolve_kernel(kernel)`` resolves, in precedence order: an explicit
:class:`AMPKernel` instance or name passed as ``kernel=`` to any AMP
entry point, then the :data:`REPRO_KERNEL` environment variable, then
``"numpy"``. The environment route reaches process-pool workers for
free (spawned workers inherit the environment), so exporting
``REPRO_KERNEL`` switches every backend of a sweep at once.
"""

from __future__ import annotations

import os
import warnings
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.amp.denoisers import TAU_FLOOR, Denoiser

#: environment variable consulted when ``kernel`` is not given
KERNEL_ENV = "REPRO_KERNEL"

#: registered kernel backend names (see the module docstring)
KERNELS = ("numpy", "numpy32", "numba", "numba32")


# -- stack layout --------------------------------------------------------


class StackLayout:
    """Shape descriptor for one AMP trial stack.

    Unifies the two stack forms the iteration driver runs on: the
    uniform ``(T, m)`` stack (every trial shares one query count) and
    the ragged flat stack segmented by per-trial ``row_sizes`` (the
    required-m prefix probes). Kernels read per-trial standardization
    scalars — ``sqrt_m``, ``n/m`` — from the layout; the layout stores
    them in the kernel's dtype so a float32 kernel never silently
    promotes through a float64 scalar.

    For the float64 reference kernel the stored scalars are exactly
    the values the pre-seam loops computed inline (``np.sqrt(m)``,
    ``n / m``, ``np.sqrt(m_cur.astype(float64))``, ``n / m_cur``), so
    layout-mediated arithmetic is bit-identical to the originals.
    """

    def __init__(
        self,
        *,
        rows: int,
        n: int,
        dtype: np.dtype,
        m: Optional[int] = None,
        m_cur: Optional[np.ndarray] = None,
    ) -> None:
        self.rows = rows
        self.n = n
        self.dtype = np.dtype(dtype)
        self.m = m
        self.m_cur = m_cur
        self.uniform = m_cur is None
        if self.uniform:
            self.sqrt_m = self.dtype.type(np.sqrt(m))
            self.nm_ratio = self.dtype.type(n / m)
        else:
            self.sqrt_m = np.sqrt(m_cur.astype(np.float64)).astype(
                self.dtype, copy=False
            )
            self.nm_ratio = (n / m_cur).astype(self.dtype, copy=False)
        self.sqrt_n = self.dtype.type(np.sqrt(n))
        self._bounds: Optional[np.ndarray] = None

    @classmethod
    def for_uniform(cls, rows: int, n: int, m: int, dtype) -> "StackLayout":
        return cls(rows=rows, n=n, dtype=dtype, m=m)

    @classmethod
    def for_ragged(cls, n: int, row_sizes: np.ndarray, dtype) -> "StackLayout":
        m_cur = np.asarray(row_sizes, dtype=np.int64)
        return cls(rows=m_cur.size, n=n, dtype=dtype, m_cur=m_cur)

    @property
    def bounds(self) -> np.ndarray:
        """Flat-stack segment boundaries ``[0, m_0, m_0+m_1, ...]``.

        Built lazily: the uniform NumPy path never touches them, while
        the fused backends loop over them for both stack shapes.
        """
        if self._bounds is None:
            if self.uniform:
                self._bounds = np.arange(
                    self.rows + 1, dtype=np.int64
                ) * int(self.m)
            else:
                bounds = np.empty(self.rows + 1, dtype=np.int64)
                bounds[0] = 0
                np.cumsum(self.m_cur, out=bounds[1:])
                self._bounds = bounds
        return self._bounds

    def per_row(self, value) -> np.ndarray:
        """Broadcast a layout scalar (or pass a vector) to ``(rows,)``."""
        if np.ndim(value) == 0:
            return np.full(self.rows, value, dtype=self.dtype)
        return np.ascontiguousarray(value, dtype=self.dtype)

    def restrict(self, active: np.ndarray) -> "StackLayout":
        """Layout for the surviving rows after stack compaction."""
        rows = int(np.count_nonzero(active))
        if self.uniform:
            return StackLayout(rows=rows, n=self.n, dtype=self.dtype, m=self.m)
        layout = StackLayout(
            rows=rows, n=self.n, dtype=self.dtype, m_cur=self.m_cur[active]
        )
        # Slice (not recompute) the standardization vectors, exactly
        # like the pre-seam compaction did.
        layout.sqrt_m = self.sqrt_m[active]
        layout.nm_ratio = self.nm_ratio[active]
        return layout

    def compact_measure(self, arr: np.ndarray, active: np.ndarray) -> np.ndarray:
        """Drop frozen rows from a measurement-side array (``y``/``z``)."""
        if self.uniform:
            return np.ascontiguousarray(arr[active])
        bounds = self.bounds
        return np.concatenate(
            [arr[bounds[i] : bounds[i + 1]] for i in np.flatnonzero(active)]
        )

    def restore_rows(
        self, dst: np.ndarray, src: np.ndarray, inactive: np.ndarray
    ) -> None:
        """Copy frozen rows of a measurement-side array back into ``dst``."""
        if self.uniform:
            dst[inactive] = src[inactive]
            return
        bounds = self.bounds
        for i in np.flatnonzero(inactive):
            dst[bounds[i] : bounds[i + 1]] = src[bounds[i] : bounds[i + 1]]


# -- kernel interface ----------------------------------------------------


class AMPKernel:
    """One backend of the AMP compute seam (the NumPy reference).

    The float64 instance of this class *is* the pre-refactor
    implementation: each method performs the identical NumPy
    operations, in the identical order, that the uniform and ragged
    ``iterate_amp`` loops previously inlined — which is what makes the
    default kernel bit-identical by construction. Subclasses override
    the phase methods with fused implementations.
    """

    def __init__(self, dtype=np.float64, name: str = "numpy") -> None:
        self.dtype = np.dtype(dtype)
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, dtype={self.dtype})"

    def as_working(self, arr: np.ndarray) -> np.ndarray:
        """Cast an input array to the kernel dtype (the one cast point)."""
        return np.ascontiguousarray(arr, dtype=self.dtype)

    def segment_square_sums(
        self, arr: np.ndarray, layout: StackLayout
    ) -> np.ndarray:
        """Per-trial ``sum(arr_i^2)`` over the stack's segments.

        Uniform stacks reduce along the last axis of the ``(T, m)``
        array; ragged stacks use per-segment pairwise sums on
        contiguous views, with the all-equal-length fast path reducing
        via one reshape (both orderings match a standalone run's
        single-row reduction bit for bit — see
        :func:`repro.amp.amp.iterate_amp`).
        """
        if layout.uniform:
            return np.sum(arr * arr, axis=1)
        flat = arr * arr
        m_cur = layout.m_cur
        if m_cur.size and (m_cur == m_cur[0]).all():
            return np.sum(flat.reshape(m_cur.size, int(m_cur[0])), axis=1)
        bounds = layout.bounds
        return np.array(
            [flat[bounds[i] : bounds[i + 1]].sum() for i in range(layout.rows)]
        )

    def posterior_step(
        self,
        denoiser: Denoiser,
        rmv: np.ndarray,
        sigma: np.ndarray,
        z: np.ndarray,
        layout: StackLayout,
        damping: float,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The pre-matvec phase of one AMP iteration.

        Consumes the adjoint matvec output ``rmv`` (flat) and the
        current state; returns ``(sigma_new, onsager, tau, step)``:
        the (damped) denoised iterate, the Onsager coefficient for the
        coming residual update, the per-trial effective noise level,
        and the per-trial step norm ``||sigma' - sigma|| / sqrt(n)``.
        ``damping`` is the effective factor for *this* iteration
        (the driver passes 0 on the first one).
        """
        tau = np.maximum(
            np.sqrt(self.segment_square_sums(z, layout)) / layout.sqrt_m,
            TAU_FLOOR,
        )
        r = rmv.reshape(layout.rows, layout.n) + sigma
        # One shared evaluation: the derivative of the Bayes denoiser
        # reuses eta, and both arrays equal the separate calls bit for
        # bit (see Denoiser.value_and_derivative).
        sigma_new, deriv = denoiser.value_and_derivative(r, tau[:, None])
        if damping > 0.0:
            sigma_new = (1.0 - damping) * sigma_new + damping * sigma
        # Onsager coefficient for the *next* residual update (from the
        # undamped derivative).
        onsager = layout.nm_ratio * np.mean(deriv, axis=1)
        diff = sigma_new - sigma
        step = np.sqrt(np.sum(diff * diff, axis=1)) / layout.sqrt_n
        return sigma_new, onsager, tau, step

    def residual_step(
        self,
        y: np.ndarray,
        mv: np.ndarray,
        z: np.ndarray,
        onsager: np.ndarray,
        layout: StackLayout,
        damping: float,
    ) -> np.ndarray:
        """The post-matvec phase: Onsager-corrected residual update."""
        if layout.uniform:
            z_new = y - mv.reshape(layout.rows, layout.m) + onsager[:, None] * z
        else:
            z_new = y - mv + np.repeat(onsager, layout.m_cur) * z
        if damping > 0.0:
            z_new = (1.0 - damping) * z_new + damping * z
        return z_new

    def residual_norms(self, z: np.ndarray, layout: StackLayout) -> np.ndarray:
        """Per-trial ``||z||_2`` (history tracking)."""
        return np.sqrt(self.segment_square_sums(z, layout))


# -- numba backend -------------------------------------------------------

_NUMBA_AVAILABLE: Optional[bool] = None


def numba_available() -> bool:
    """Whether the optional ``numba`` package is importable (cached)."""
    global _NUMBA_AVAILABLE
    if _NUMBA_AVAILABLE is None:
        try:
            import numba  # noqa: F401

            _NUMBA_AVAILABLE = True
        except ImportError:
            _NUMBA_AVAILABLE = False
    return _NUMBA_AVAILABLE


_numba_functions: Optional[Dict[str, Callable]] = None


def _get_numba_functions() -> Dict[str, Callable]:
    """Compile (once) the fused jitted loops; import-gated on numba."""
    global _numba_functions
    if _numba_functions is not None:
        return _numba_functions
    import math

    import numba

    @numba.njit(cache=True)
    def seg_sq_sums(flat, bounds):
        rows = bounds.shape[0] - 1
        out = np.empty(rows, dtype=flat.dtype)
        for i in range(rows):
            acc = 0.0
            for j in range(bounds[i], bounds[i + 1]):
                acc += flat[j] * flat[j]
            out[i] = acc
        return out

    @numba.njit(cache=True)
    def bayes_posterior(
        rmv, sigma, z_flat, bounds, sqrt_m, nm_ratio, sqrt_n,
        log_odds, exp_clip, tau_floor, damping,
    ):
        # One pass per trial: residual segment sum -> tau -> inlined
        # Bayes posterior mean + derivative -> damping -> Onsager ->
        # step norm. No Python callback, no intermediate stack arrays.
        rows, n = sigma.shape
        sigma_new = np.empty_like(sigma)
        onsager = np.empty(rows, dtype=sigma.dtype)
        tau = np.empty(rows, dtype=sigma.dtype)
        step = np.empty(rows, dtype=sigma.dtype)
        for i in range(rows):
            acc = 0.0
            for j in range(bounds[i], bounds[i + 1]):
                acc += z_flat[j] * z_flat[j]
            t = math.sqrt(acc) / sqrt_m[i]
            if t < tau_floor:
                t = tau_floor
            tau[i] = t
            half_inv_t2 = 1.0 / (2.0 * t * t)
            deriv_sum = 0.0
            step_sum = 0.0
            base = i * n
            for j in range(n):
                x = rmv[base + j] + sigma[i, j]
                e = log_odds + (1.0 - 2.0 * x) * half_inv_t2
                if e > exp_clip:
                    e = exp_clip
                elif e < -exp_clip:
                    e = -exp_clip
                eta = 1.0 / (1.0 + math.exp(e))
                deriv_sum += eta * (1.0 - eta)
                value = eta
                if damping > 0.0:
                    value = (1.0 - damping) * eta + damping * sigma[i, j]
                d = value - sigma[i, j]
                step_sum += d * d
                sigma_new[i, j] = value
            onsager[i] = nm_ratio[i] * (deriv_sum / (t * t) / n)
            step[i] = math.sqrt(step_sum) / sqrt_n
        return sigma_new, onsager, tau, step

    @numba.njit(cache=True)
    def soft_threshold_posterior(
        rmv, sigma, z_flat, bounds, sqrt_m, nm_ratio, sqrt_n,
        alpha, tau_floor, damping,
    ):
        rows, n = sigma.shape
        sigma_new = np.empty_like(sigma)
        onsager = np.empty(rows, dtype=sigma.dtype)
        tau = np.empty(rows, dtype=sigma.dtype)
        step = np.empty(rows, dtype=sigma.dtype)
        for i in range(rows):
            acc = 0.0
            for j in range(bounds[i], bounds[i + 1]):
                acc += z_flat[j] * z_flat[j]
            t = math.sqrt(acc) / sqrt_m[i]
            if t < tau_floor:
                t = tau_floor
            tau[i] = t
            threshold = alpha * t
            deriv_sum = 0.0
            step_sum = 0.0
            base = i * n
            for j in range(n):
                x = rmv[base + j] + sigma[i, j]
                mag = abs(x) - threshold
                if mag > 0.0:
                    value = mag if x > 0.0 else -mag
                    deriv_sum += 1.0
                else:
                    value = 0.0
                if damping > 0.0:
                    value = (1.0 - damping) * value + damping * sigma[i, j]
                d = value - sigma[i, j]
                step_sum += d * d
                sigma_new[i, j] = value
            onsager[i] = nm_ratio[i] * (deriv_sum / n)
            step[i] = math.sqrt(step_sum) / sqrt_n
        return sigma_new, onsager, tau, step

    @numba.njit(cache=True)
    def residual(y_flat, mv, z_flat, onsager, bounds, damping):
        z_new = np.empty_like(z_flat)
        rows = onsager.shape[0]
        for i in range(rows):
            o = onsager[i]
            for j in range(bounds[i], bounds[i + 1]):
                value = y_flat[j] - mv[j] + o * z_flat[j]
                if damping > 0.0:
                    value = (1.0 - damping) * value + damping * z_flat[j]
                z_new[j] = value
        return z_new

    _numba_functions = {
        "seg_sq_sums": seg_sq_sums,
        "bayes-bernoulli": bayes_posterior,
        "soft-threshold": soft_threshold_posterior,
        "residual": residual,
    }
    return _numba_functions


class NumbaKernel(AMPKernel):
    """Fused backend: one jitted loop per phase over the segment bounds.

    The posterior phase inlines the denoiser from its flat
    :meth:`~repro.amp.denoisers.Denoiser.kernel_form` parameters;
    denoisers without a registered fused form fall back to the NumPy
    phase implementation (inherited), which keeps every denoiser
    correct under this backend. Fused accumulation is sequential (not
    NumPy's pairwise sums), so outputs are tolerance-equivalent to the
    reference kernel, not bit-identical.
    """

    def __init__(self, dtype=np.float64, name: str = "numba") -> None:
        super().__init__(dtype, name)
        self._functions = _get_numba_functions()

    def segment_square_sums(
        self, arr: np.ndarray, layout: StackLayout
    ) -> np.ndarray:
        return self._functions["seg_sq_sums"](
            np.ascontiguousarray(arr).reshape(-1), layout.bounds
        )

    def posterior_step(self, denoiser, rmv, sigma, z, layout, damping):
        form = denoiser.kernel_form()
        if form is None or form[0] not in self._functions:
            return super().posterior_step(
                denoiser, rmv, sigma, z, layout, damping
            )
        kind, params = form
        # The float32 exp clip never loosens a float64 run: the kernel
        # dtype decides, matching the NumPy denoiser's dtype rule.
        exp_clip = Denoiser.exp_clip_for(self.dtype)
        fused = self._functions[kind]
        args = params + (float(exp_clip),) if kind == "bayes-bernoulli" else params
        return fused(
            np.ascontiguousarray(rmv),
            np.ascontiguousarray(sigma),
            np.ascontiguousarray(z).reshape(-1),
            layout.bounds,
            layout.per_row(layout.sqrt_m),
            layout.per_row(layout.nm_ratio),
            float(layout.sqrt_n),
            *args,
            float(TAU_FLOOR),
            float(damping),
        )

    def residual_step(self, y, mv, z, onsager, layout, damping):
        z_new = self._functions["residual"](
            np.ascontiguousarray(y).reshape(-1),
            np.ascontiguousarray(mv),
            np.ascontiguousarray(z).reshape(-1),
            np.ascontiguousarray(onsager),
            layout.bounds,
            float(damping),
        )
        return z_new.reshape(y.shape)


# -- registry ------------------------------------------------------------

_fallback_warned = False


def _numpy_fallback(name: str) -> AMPKernel:
    """Graceful degrade when numba is requested but not installed."""
    global _fallback_warned
    if not _fallback_warned:
        warnings.warn(
            f"AMP kernel {name!r} requested but numba is not installed; "
            "falling back to the NumPy reference kernel (identical "
            "results, no fusion). Install numba to enable the fused "
            "backend.",
            RuntimeWarning,
            stacklevel=3,
        )
        _fallback_warned = True
    if name.endswith("32"):
        return AMPKernel(np.float32, "numpy32")
    return AMPKernel(np.float64, "numpy")


def _make_kernel(name: str) -> AMPKernel:
    if name == "numpy":
        return AMPKernel(np.float64, "numpy")
    if name == "numpy32":
        return AMPKernel(np.float32, "numpy32")
    if name in ("numba", "numba32"):
        if not numba_available():
            return _numpy_fallback(name)
        dtype = np.float32 if name == "numba32" else np.float64
        return NumbaKernel(dtype, name)
    raise ValueError(f"unknown AMP kernel {name!r}; valid: {KERNELS}")


#: resolved-kernel cache: backends are stateless, one instance per name
_kernel_cache: Dict[str, AMPKernel] = {}


def resolve_kernel(kernel=None) -> AMPKernel:
    """Resolve a kernel request into an :class:`AMPKernel` instance.

    Precedence: an explicit :class:`AMPKernel` instance passes
    through; an explicit name string wins over the environment; then
    the :data:`REPRO_KERNEL` environment variable; then ``"numpy"``.
    A ``numba`` request without numba installed warns once and returns
    the NumPy kernel of the matching precision.
    """
    if isinstance(kernel, AMPKernel):
        return kernel
    name = kernel if kernel is not None else os.environ.get(KERNEL_ENV) or None
    if name is None:
        name = "numpy"
    if name not in _kernel_cache:
        _kernel_cache[name] = _make_kernel(str(name))
    return _kernel_cache[name]


__all__ = [
    "KERNEL_ENV",
    "KERNELS",
    "StackLayout",
    "AMPKernel",
    "NumbaKernel",
    "numba_available",
    "resolve_kernel",
]
