"""Pluggable compute kernels for the AMP iteration.

Every AMP path in the library — standalone :func:`repro.amp.run_amp`,
the block-diagonal batched runner, and the heterogeneous-m
required-queries probe stacks — funnels through one iteration driver
(:func:`repro.amp.amp.iterate_amp`). This module is the compute seam
underneath that driver: the per-iteration array passes are grouped
into two phase calls an :class:`AMPKernel` backend implements,

``adjoint_posterior``
    the adjoint matvec plus everything before the forward matvec —
    ``rmv = A_s^T z``, the per-trial effective noise ``tau`` from
    residual segment sums, the denoiser value+derivative, damping, the
    Onsager coefficient and the step norm;
``forward_residual``
    the forward matvec plus the residual update
    ``z' = y - A_s sigma + onsager * z`` and damping.

The matvec pair lives *inside* the seam: the driver hands each phase a
:class:`CSRStackOperator` (the standardized block-diagonal stack in
raw CSR form), and the backend decides how to apply it — the reference
kernel delegates to the operator's scipy CSR / CSC-view products (the
exact pre-seam closures), the fused backend runs one jitted CSR
segment loop per phase with the adjacent array passes inlined (no
``(T*m,)``/``(T*n,)`` intermediates), and the GPU backend keeps a
cached device copy of the stack. The narrower ``posterior_step`` /
``residual_step`` phase methods remain as the matvec-free inner
halves; generic operators (e.g. the dense debugging path's
:class:`MatvecOperator`) run through them unchanged. A
:class:`StackLayout` value describes the trial stack — uniform
``(T, m)`` or ragged ``row_sizes`` — so one driver and one kernel
interface cover both stack shapes.

Backends
--------
``numpy`` (default)
    The reference kernel: performs exactly the array operations the
    pre-seam loops performed, in the same order, in float64 — its
    outputs are **bit-identical by construction** to the pre-refactor
    implementation (pinned against captured goldens in
    ``tests/test_kernels.py``).
``numpy32``
    The same operations computed in float32 end to end (inputs are
    cast once at the seam; the denoisers honor the input dtype).
    Opt-in, tolerance-tested — halves the memory traffic of every
    pass.
``numba`` / ``numba32``
    Optional fused backend: each phase runs as one jitted loop over
    the ragged segment bounds — the CSR matvec, segment sums,
    denoiser, damping, Onsager and step norm in a single pass over the
    stack, with the denoiser inlined from its flat
    :meth:`repro.amp.denoisers.Denoiser.kernel_form` parameters (no
    Python callback per segment, no flat matvec intermediates).
    Requires the ``numba`` package; when it is missing,
    :func:`resolve_kernel` warns once and falls back to the matching
    NumPy kernel, so ``REPRO_KERNEL=numba`` is always safe to export.
    Accumulation order inside a fused loop differs from NumPy's
    pairwise sums, so these backends are equivalence-tested within
    tolerance, not bit-identical.
``cupy`` / ``cupy32``
    Optional GPU backend on the same phase interface: the stacked CSR
    is copied to the device once per operator (cached on the
    operator), and both phases run as cupy array programs mirroring
    the reference arithmetic, returning host arrays at the seam.
    Requires the ``cupy`` package; when it is missing the resolver
    degrades exactly like the numba fallback — one warning per
    process, then the matching-precision NumPy kernel — so
    ``REPRO_KERNEL=cupy`` is always safe to export. GPU reductions
    reorder sums, so these backends are tolerance-equivalent, never
    bit-identical.

Selection
---------
``resolve_kernel(kernel)`` resolves, in precedence order: an explicit
:class:`AMPKernel` instance or name passed as ``kernel=`` to any AMP
entry point, then the :data:`REPRO_KERNEL` environment variable, then
``"numpy"``. The environment route reaches process-pool workers for
free (spawned workers inherit the environment), so exporting
``REPRO_KERNEL`` switches every backend of a sweep at once.
"""

from __future__ import annotations

import os
import warnings
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.amp.denoisers import TAU_FLOOR, Denoiser

#: environment variable consulted when ``kernel`` is not given
KERNEL_ENV = "REPRO_KERNEL"

#: registered kernel backend names (see the module docstring)
KERNELS = ("numpy", "numpy32", "numba", "numba32", "cupy", "cupy32")


# -- stack layout --------------------------------------------------------


class StackLayout:
    """Shape descriptor for one AMP trial stack.

    Unifies the two stack forms the iteration driver runs on: the
    uniform ``(T, m)`` stack (every trial shares one query count) and
    the ragged flat stack segmented by per-trial ``row_sizes`` (the
    required-m prefix probes). Kernels read per-trial standardization
    scalars — ``sqrt_m``, ``n/m`` — from the layout; the layout stores
    them in the kernel's dtype so a float32 kernel never silently
    promotes through a float64 scalar.

    For the float64 reference kernel the stored scalars are exactly
    the values the pre-seam loops computed inline (``np.sqrt(m)``,
    ``n / m``, ``np.sqrt(m_cur.astype(float64))``, ``n / m_cur``), so
    layout-mediated arithmetic is bit-identical to the originals.
    """

    def __init__(
        self,
        *,
        rows: int,
        n: int,
        dtype: np.dtype,
        m: Optional[int] = None,
        m_cur: Optional[np.ndarray] = None,
    ) -> None:
        self.rows = rows
        self.n = n
        self.dtype = np.dtype(dtype)
        self.m = m
        self.m_cur = m_cur
        self.uniform = m_cur is None
        if self.uniform:
            self.sqrt_m = self.dtype.type(np.sqrt(m))
            self.nm_ratio = self.dtype.type(n / m)
        else:
            self.sqrt_m = np.sqrt(m_cur.astype(np.float64)).astype(
                self.dtype, copy=False
            )
            self.nm_ratio = (n / m_cur).astype(self.dtype, copy=False)
        self.sqrt_n = self.dtype.type(np.sqrt(n))
        self._bounds: Optional[np.ndarray] = None

    @classmethod
    def for_uniform(cls, rows: int, n: int, m: int, dtype) -> "StackLayout":
        return cls(rows=rows, n=n, dtype=dtype, m=m)

    @classmethod
    def for_ragged(cls, n: int, row_sizes: np.ndarray, dtype) -> "StackLayout":
        m_cur = np.asarray(row_sizes, dtype=np.int64)
        return cls(rows=m_cur.size, n=n, dtype=dtype, m_cur=m_cur)

    @property
    def bounds(self) -> np.ndarray:
        """Flat-stack segment boundaries ``[0, m_0, m_0+m_1, ...]``.

        Built lazily: the uniform NumPy path never touches them, while
        the fused backends loop over them for both stack shapes.
        """
        if self._bounds is None:
            if self.uniform:
                self._bounds = np.arange(
                    self.rows + 1, dtype=np.int64
                ) * int(self.m)
            else:
                bounds = np.empty(self.rows + 1, dtype=np.int64)
                bounds[0] = 0
                np.cumsum(self.m_cur, out=bounds[1:])
                self._bounds = bounds
        return self._bounds

    def per_row(self, value) -> np.ndarray:
        """Broadcast a layout scalar (or pass a vector) to ``(rows,)``."""
        if np.ndim(value) == 0:
            return np.full(self.rows, value, dtype=self.dtype)
        return np.ascontiguousarray(value, dtype=self.dtype)

    def restrict(self, active: np.ndarray) -> "StackLayout":
        """Layout for the surviving rows after stack compaction."""
        rows = int(np.count_nonzero(active))
        if self.uniform:
            return StackLayout(rows=rows, n=self.n, dtype=self.dtype, m=self.m)
        layout = StackLayout(
            rows=rows, n=self.n, dtype=self.dtype, m_cur=self.m_cur[active]
        )
        # Slice (not recompute) the standardization vectors, exactly
        # like the pre-seam compaction did.
        layout.sqrt_m = self.sqrt_m[active]
        layout.nm_ratio = self.nm_ratio[active]
        return layout

    def compact_measure(self, arr: np.ndarray, active: np.ndarray) -> np.ndarray:
        """Drop frozen rows from a measurement-side array (``y``/``z``)."""
        if self.uniform:
            return np.ascontiguousarray(arr[active])
        bounds = self.bounds
        return np.concatenate(
            [arr[bounds[i] : bounds[i + 1]] for i in np.flatnonzero(active)]
        )

    def restore_rows(
        self, dst: np.ndarray, src: np.ndarray, inactive: np.ndarray
    ) -> None:
        """Copy frozen rows of a measurement-side array back into ``dst``."""
        if self.uniform:
            dst[inactive] = src[inactive]
            return
        bounds = self.bounds
        for i in np.flatnonzero(inactive):
            dst[bounds[i] : bounds[i + 1]] = src[bounds[i] : bounds[i + 1]]


# -- stack operators -----------------------------------------------------


class MatvecOperator:
    """Adapter wrapping plain ``(matvec, rmatvec)`` flat-vector callables.

    Used by paths that have no raw CSR stack to expose (the dense
    debugging path of :func:`repro.amp.run_amp`); every kernel applies
    it through the generic phase implementations.
    """

    def __init__(self, matvec, rmatvec) -> None:
        self._matvec = matvec
        self._rmatvec = rmatvec

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self._matvec(x)

    def rmatvec(self, z: np.ndarray) -> np.ndarray:
        return self._rmatvec(z)


class CSRStackOperator:
    """Standardized block-diagonal trial stack in raw CSR form.

    Carries everything a backend needs to apply the standardized
    forward map ``x -> (A x - c s_t) / scale_t`` and its adjoint
    itself: the stacked raw adjacency ``a`` (a scipy CSR matrix over
    the column-shifted block-diagonal arrays, shape
    ``(sum(m_t), T*n)``), the centering constant ``c`` and the
    per-trial standardization scales. ``m_per=None`` declares the
    uniform stack (every trial shares ``m`` and one scalar ``scale``);
    otherwise the stack is the ragged heterogeneous-m form with
    per-trial ``scales``.

    :meth:`matvec` / :meth:`rmatvec` are the scipy reference
    implementations — verbatim the pre-seam closure bodies of the
    batched operators (and, for ``T = 1``, bit-identical to the
    standalone ``run_amp`` closures: same pairwise sums over the same
    contiguous data, same per-element centering and scaling) — which
    is what keeps the default kernel's in-seam matvec pinned to the
    captured goldens. Fused and GPU backends bypass them and read the
    raw ``a.indptr`` / ``a.indices`` / ``a.data`` arrays directly;
    they may cache derived device state on the instance (see
    :class:`CupyKernel`). The transpose is the free CSC view, exactly
    as before.
    """

    def __init__(
        self,
        a,
        *,
        n: int,
        c: float,
        scale: Optional[float] = None,
        m_per: Optional[np.ndarray] = None,
        scales: Optional[np.ndarray] = None,
    ) -> None:
        self.a = a
        self.a_t = a.T
        self.n = int(n)
        self.trials = a.shape[1] // self.n
        self.c = c
        self.uniform = m_per is None
        self.dtype = np.dtype(a.dtype)
        if self.uniform:
            if scale is None:
                raise ValueError("uniform stacks require scale=")
            self.m = a.shape[0] // max(self.trials, 1)
            self.scale = float(scale)
        else:
            if scales is None:
                raise ValueError("ragged stacks require scales=")
            self.m_per = np.asarray(m_per, dtype=np.int64)
            self.scales = np.asarray(scales, dtype=np.float64)
            self.bounds = np.concatenate(([0], np.cumsum(self.m_per)))
            # Per-trial scale vectors in the working dtype: float64
            # stays the exact pre-float32 arithmetic, float32 avoids
            # the silent promotion a float64 divisor would cause under
            # NEP 50.
            self.row_scale = np.repeat(self.scales, self.m_per).astype(
                self.dtype, copy=False
            )
            self.scales_col = self.scales.astype(self.dtype, copy=False)[
                :, None
            ]

    def per_trial_scales(self) -> np.ndarray:
        """Float64 ``(T,)`` standardization scales (fused backends)."""
        if self.uniform:
            return np.full(self.trials, self.scale, dtype=np.float64)
        return self.scales

    def matvec(self, x: np.ndarray) -> np.ndarray:
        trials, n, c = self.trials, self.n, self.c
        s = x.reshape(trials, n).sum(axis=1)
        if self.uniform:
            return (self.a @ x - c * np.repeat(s, self.m)) / self.scale
        return (self.a @ x - c * np.repeat(s, self.m_per)) / self.row_scale

    def rmatvec(self, z: np.ndarray) -> np.ndarray:
        trials, n, c = self.trials, self.n, self.c
        if self.uniform:
            s = z.reshape(trials, self.m).sum(axis=1)
            return (self.a_t @ z - c * np.repeat(s, n)) / self.scale
        bounds = self.bounds
        s = np.array(
            [z[bounds[i] : bounds[i + 1]].sum() for i in range(trials)]
        )
        # Column side is uniform (n per trial): broadcast the
        # per-trial centering/scale on a (T, n) view — the same
        # per-element arithmetic as a flat np.repeat, without the
        # (T*n,) repeat temporaries every iteration.
        out = (self.a_t @ z).reshape(trials, n)
        return ((out - (c * s)[:, None]) / self.scales_col).reshape(-1)


# -- kernel interface ----------------------------------------------------


class AMPKernel:
    """One backend of the AMP compute seam (the NumPy reference).

    The float64 instance of this class *is* the pre-refactor
    implementation: each method performs the identical NumPy
    operations, in the identical order, that the uniform and ragged
    ``iterate_amp`` loops previously inlined — which is what makes the
    default kernel bit-identical by construction. Subclasses override
    the phase methods with fused implementations.
    """

    def __init__(self, dtype=np.float64, name: str = "numpy") -> None:
        self.dtype = np.dtype(dtype)
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, dtype={self.dtype})"

    def as_working(self, arr: np.ndarray) -> np.ndarray:
        """Cast an input array to the kernel dtype (the one cast point)."""
        return np.ascontiguousarray(arr, dtype=self.dtype)

    def segment_square_sums(
        self, arr: np.ndarray, layout: StackLayout
    ) -> np.ndarray:
        """Per-trial ``sum(arr_i^2)`` over the stack's segments.

        Uniform stacks reduce along the last axis of the ``(T, m)``
        array; ragged stacks use per-segment pairwise sums on
        contiguous views, with the all-equal-length fast path reducing
        via one reshape (both orderings match a standalone run's
        single-row reduction bit for bit — see
        :func:`repro.amp.amp.iterate_amp`).
        """
        if layout.uniform:
            return np.sum(arr * arr, axis=1)
        flat = arr * arr
        m_cur = layout.m_cur
        if m_cur.size and (m_cur == m_cur[0]).all():
            return np.sum(flat.reshape(m_cur.size, int(m_cur[0])), axis=1)
        bounds = layout.bounds
        return np.array(
            [flat[bounds[i] : bounds[i + 1]].sum() for i in range(layout.rows)]
        )

    def posterior_step(
        self,
        denoiser: Denoiser,
        rmv: np.ndarray,
        sigma: np.ndarray,
        z: np.ndarray,
        layout: StackLayout,
        damping: float,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The pre-matvec phase of one AMP iteration.

        Consumes the adjoint matvec output ``rmv`` (flat) and the
        current state; returns ``(sigma_new, onsager, tau, step)``:
        the (damped) denoised iterate, the Onsager coefficient for the
        coming residual update, the per-trial effective noise level,
        and the per-trial step norm ``||sigma' - sigma|| / sqrt(n)``.
        ``damping`` is the effective factor for *this* iteration
        (the driver passes 0 on the first one).
        """
        tau = np.maximum(
            np.sqrt(self.segment_square_sums(z, layout)) / layout.sqrt_m,
            TAU_FLOOR,
        )
        r = rmv.reshape(layout.rows, layout.n) + sigma
        # One shared evaluation: the derivative of the Bayes denoiser
        # reuses eta, and both arrays equal the separate calls bit for
        # bit (see Denoiser.value_and_derivative).
        sigma_new, deriv = denoiser.value_and_derivative(r, tau[:, None])
        if damping > 0.0:
            sigma_new = (1.0 - damping) * sigma_new + damping * sigma
        # Onsager coefficient for the *next* residual update (from the
        # undamped derivative).
        onsager = layout.nm_ratio * np.mean(deriv, axis=1)
        diff = sigma_new - sigma
        step = np.sqrt(np.sum(diff * diff, axis=1)) / layout.sqrt_n
        return sigma_new, onsager, tau, step

    def residual_step(
        self,
        y: np.ndarray,
        mv: np.ndarray,
        z: np.ndarray,
        onsager: np.ndarray,
        layout: StackLayout,
        damping: float,
    ) -> np.ndarray:
        """The post-matvec phase: Onsager-corrected residual update."""
        if layout.uniform:
            z_new = y - mv.reshape(layout.rows, layout.m) + onsager[:, None] * z
        else:
            z_new = y - mv + np.repeat(onsager, layout.m_cur) * z
        if damping > 0.0:
            z_new = (1.0 - damping) * z_new + damping * z
        return z_new

    def residual_norms(self, z: np.ndarray, layout: StackLayout) -> np.ndarray:
        """Per-trial ``||z||_2`` (history tracking)."""
        return np.sqrt(self.segment_square_sums(z, layout))

    # -- matvec-inclusive phases (the full-iteration seam) --------------

    def adjoint_posterior(
        self,
        op,
        denoiser: Denoiser,
        sigma: np.ndarray,
        z: np.ndarray,
        layout: StackLayout,
        damping: float,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Adjoint matvec plus :meth:`posterior_step` in one phase call.

        The reference implementation applies the operator's own
        ``rmatvec`` (the pre-seam scipy arithmetic, bit-identical by
        construction) and feeds the result into the matvec-free inner
        phase; fused/GPU subclasses override this to run the matvec
        inside their own loop.
        """
        rmv = op.rmatvec(z.reshape(-1))
        return self.posterior_step(denoiser, rmv, sigma, z, layout, damping)

    def forward_residual(
        self,
        op,
        y: np.ndarray,
        sigma_new: np.ndarray,
        z: np.ndarray,
        onsager: np.ndarray,
        layout: StackLayout,
        damping: float,
    ) -> np.ndarray:
        """Forward matvec plus :meth:`residual_step` in one phase call."""
        mv = op.matvec(sigma_new.reshape(-1))
        return self.residual_step(y, mv, z, onsager, layout, damping)


# -- numba backend -------------------------------------------------------

_NUMBA_AVAILABLE: Optional[bool] = None


def numba_available() -> bool:
    """Whether the optional ``numba`` package is importable (cached)."""
    global _NUMBA_AVAILABLE
    if _NUMBA_AVAILABLE is None:
        try:
            import numba  # noqa: F401

            _NUMBA_AVAILABLE = True
        except ImportError:
            _NUMBA_AVAILABLE = False
    return _NUMBA_AVAILABLE


_numba_functions: Optional[Dict[str, Callable]] = None


def _get_numba_functions() -> Dict[str, Callable]:
    """Compile (once) the fused jitted loops; import-gated on numba."""
    global _numba_functions
    if _numba_functions is not None:
        return _numba_functions
    import math

    import numba

    @numba.njit(cache=True)
    def seg_sq_sums(flat, bounds):
        rows = bounds.shape[0] - 1
        out = np.empty(rows, dtype=flat.dtype)
        for i in range(rows):
            acc = 0.0
            for j in range(bounds[i], bounds[i + 1]):
                acc += flat[j] * flat[j]
            out[i] = acc
        return out

    @numba.njit(cache=True)
    def bayes_posterior(
        rmv, sigma, z_flat, bounds, sqrt_m, nm_ratio, sqrt_n,
        log_odds, exp_clip, tau_floor, damping,
    ):
        # One pass per trial: residual segment sum -> tau -> inlined
        # Bayes posterior mean + derivative -> damping -> Onsager ->
        # step norm. No Python callback, no intermediate stack arrays.
        rows, n = sigma.shape
        sigma_new = np.empty_like(sigma)
        onsager = np.empty(rows, dtype=sigma.dtype)
        tau = np.empty(rows, dtype=sigma.dtype)
        step = np.empty(rows, dtype=sigma.dtype)
        for i in range(rows):
            acc = 0.0
            for j in range(bounds[i], bounds[i + 1]):
                acc += z_flat[j] * z_flat[j]
            t = math.sqrt(acc) / sqrt_m[i]
            if t < tau_floor:
                t = tau_floor
            tau[i] = t
            half_inv_t2 = 1.0 / (2.0 * t * t)
            deriv_sum = 0.0
            step_sum = 0.0
            base = i * n
            for j in range(n):
                x = rmv[base + j] + sigma[i, j]
                e = log_odds + (1.0 - 2.0 * x) * half_inv_t2
                if e > exp_clip:
                    e = exp_clip
                elif e < -exp_clip:
                    e = -exp_clip
                eta = 1.0 / (1.0 + math.exp(e))
                deriv_sum += eta * (1.0 - eta)
                value = eta
                if damping > 0.0:
                    value = (1.0 - damping) * eta + damping * sigma[i, j]
                d = value - sigma[i, j]
                step_sum += d * d
                sigma_new[i, j] = value
            onsager[i] = nm_ratio[i] * (deriv_sum / (t * t) / n)
            step[i] = math.sqrt(step_sum) / sqrt_n
        return sigma_new, onsager, tau, step

    @numba.njit(cache=True)
    def soft_threshold_posterior(
        rmv, sigma, z_flat, bounds, sqrt_m, nm_ratio, sqrt_n,
        alpha, tau_floor, damping,
    ):
        rows, n = sigma.shape
        sigma_new = np.empty_like(sigma)
        onsager = np.empty(rows, dtype=sigma.dtype)
        tau = np.empty(rows, dtype=sigma.dtype)
        step = np.empty(rows, dtype=sigma.dtype)
        for i in range(rows):
            acc = 0.0
            for j in range(bounds[i], bounds[i + 1]):
                acc += z_flat[j] * z_flat[j]
            t = math.sqrt(acc) / sqrt_m[i]
            if t < tau_floor:
                t = tau_floor
            tau[i] = t
            threshold = alpha * t
            deriv_sum = 0.0
            step_sum = 0.0
            base = i * n
            for j in range(n):
                x = rmv[base + j] + sigma[i, j]
                mag = abs(x) - threshold
                if mag > 0.0:
                    value = mag if x > 0.0 else -mag
                    deriv_sum += 1.0
                else:
                    value = 0.0
                if damping > 0.0:
                    value = (1.0 - damping) * value + damping * sigma[i, j]
                d = value - sigma[i, j]
                step_sum += d * d
                sigma_new[i, j] = value
            onsager[i] = nm_ratio[i] * (deriv_sum / n)
            step[i] = math.sqrt(step_sum) / sqrt_n
        return sigma_new, onsager, tau, step

    @numba.njit(cache=True)
    def residual(y_flat, mv, z_flat, onsager, bounds, damping):
        z_new = np.empty_like(z_flat)
        rows = onsager.shape[0]
        for i in range(rows):
            o = onsager[i]
            for j in range(bounds[i], bounds[i + 1]):
                value = y_flat[j] - mv[j] + o * z_flat[j]
                if damping > 0.0:
                    value = (1.0 - damping) * value + damping * z_flat[j]
                z_new[j] = value
        return z_new

    # -- in-seam CSR variants: the matvec fused into the phase loop ----
    #
    # Each trial's adjoint matvec scatters into one reusable (n,)
    # buffer (re-zeroed for free as the posterior pass consumes it),
    # and the forward matvec gathers per row straight into the
    # residual update — no (T*n,)/(T*m,) matvec intermediates ever
    # materialize. Standardization (centering c, per-trial scale) is
    # applied inline, so the whole iteration stays inside one loop.

    @numba.njit(cache=True)
    def csr_bayes_posterior(
        indptr, indices, data, sigma, z_flat, bounds, scales, c,
        sqrt_m, nm_ratio, sqrt_n, log_odds, exp_clip, tau_floor, damping,
    ):
        rows, n = sigma.shape
        sigma_new = np.empty_like(sigma)
        onsager = np.empty(rows, dtype=sigma.dtype)
        tau = np.empty(rows, dtype=sigma.dtype)
        step = np.empty(rows, dtype=sigma.dtype)
        rmv = np.zeros(n, dtype=np.float64)
        for i in range(rows):
            zsum = 0.0
            acc = 0.0
            base = i * n
            for r in range(bounds[i], bounds[i + 1]):
                zr = z_flat[r]
                zsum += zr
                acc += zr * zr
                for e in range(indptr[r], indptr[r + 1]):
                    rmv[indices[e] - base] += data[e] * zr
            t = math.sqrt(acc) / sqrt_m[i]
            if t < tau_floor:
                t = tau_floor
            tau[i] = t
            half_inv_t2 = 1.0 / (2.0 * t * t)
            centered = c * zsum
            scale = scales[i]
            deriv_sum = 0.0
            step_sum = 0.0
            for j in range(n):
                x = (rmv[j] - centered) / scale + sigma[i, j]
                rmv[j] = 0.0  # free per-trial reset of the scatter buffer
                e_ = log_odds + (1.0 - 2.0 * x) * half_inv_t2
                if e_ > exp_clip:
                    e_ = exp_clip
                elif e_ < -exp_clip:
                    e_ = -exp_clip
                eta = 1.0 / (1.0 + math.exp(e_))
                deriv_sum += eta * (1.0 - eta)
                value = eta
                if damping > 0.0:
                    value = (1.0 - damping) * eta + damping * sigma[i, j]
                d = value - sigma[i, j]
                step_sum += d * d
                sigma_new[i, j] = value
            onsager[i] = nm_ratio[i] * (deriv_sum / (t * t) / n)
            step[i] = math.sqrt(step_sum) / sqrt_n
        return sigma_new, onsager, tau, step

    @numba.njit(cache=True)
    def csr_soft_threshold_posterior(
        indptr, indices, data, sigma, z_flat, bounds, scales, c,
        sqrt_m, nm_ratio, sqrt_n, alpha, tau_floor, damping,
    ):
        rows, n = sigma.shape
        sigma_new = np.empty_like(sigma)
        onsager = np.empty(rows, dtype=sigma.dtype)
        tau = np.empty(rows, dtype=sigma.dtype)
        step = np.empty(rows, dtype=sigma.dtype)
        rmv = np.zeros(n, dtype=np.float64)
        for i in range(rows):
            zsum = 0.0
            acc = 0.0
            base = i * n
            for r in range(bounds[i], bounds[i + 1]):
                zr = z_flat[r]
                zsum += zr
                acc += zr * zr
                for e in range(indptr[r], indptr[r + 1]):
                    rmv[indices[e] - base] += data[e] * zr
            t = math.sqrt(acc) / sqrt_m[i]
            if t < tau_floor:
                t = tau_floor
            tau[i] = t
            threshold = alpha * t
            centered = c * zsum
            scale = scales[i]
            deriv_sum = 0.0
            step_sum = 0.0
            for j in range(n):
                x = (rmv[j] - centered) / scale + sigma[i, j]
                rmv[j] = 0.0
                mag = abs(x) - threshold
                if mag > 0.0:
                    value = mag if x > 0.0 else -mag
                    deriv_sum += 1.0
                else:
                    value = 0.0
                if damping > 0.0:
                    value = (1.0 - damping) * value + damping * sigma[i, j]
                d = value - sigma[i, j]
                step_sum += d * d
                sigma_new[i, j] = value
            onsager[i] = nm_ratio[i] * (deriv_sum / n)
            step[i] = math.sqrt(step_sum) / sqrt_n
        return sigma_new, onsager, tau, step

    @numba.njit(cache=True)
    def csr_residual(
        indptr, indices, data, sigma, y_flat, z_flat, onsager,
        bounds, scales, c, damping,
    ):
        rows, n = sigma.shape
        z_new = np.empty_like(z_flat)
        for i in range(rows):
            s = 0.0
            for j in range(n):
                s += sigma[i, j]
            centered = c * s
            scale = scales[i]
            o = onsager[i]
            base = i * n
            for r in range(bounds[i], bounds[i + 1]):
                acc = 0.0
                for e in range(indptr[r], indptr[r + 1]):
                    acc += data[e] * sigma[i, indices[e] - base]
                mv = (acc - centered) / scale
                value = y_flat[r] - mv + o * z_flat[r]
                if damping > 0.0:
                    value = (1.0 - damping) * value + damping * z_flat[r]
                z_new[r] = value
        return z_new

    _numba_functions = {
        "seg_sq_sums": seg_sq_sums,
        "bayes-bernoulli": bayes_posterior,
        "soft-threshold": soft_threshold_posterior,
        "residual": residual,
        "csr-bayes-bernoulli": csr_bayes_posterior,
        "csr-soft-threshold": csr_soft_threshold_posterior,
        "csr-residual": csr_residual,
    }
    return _numba_functions


class NumbaKernel(AMPKernel):
    """Fused backend: one jitted loop per phase over the segment bounds.

    The posterior phase inlines the denoiser from its flat
    :meth:`~repro.amp.denoisers.Denoiser.kernel_form` parameters;
    denoisers without a registered fused form fall back to the NumPy
    phase implementation (inherited), which keeps every denoiser
    correct under this backend. Fused accumulation is sequential (not
    NumPy's pairwise sums), so outputs are tolerance-equivalent to the
    reference kernel, not bit-identical.
    """

    def __init__(self, dtype=np.float64, name: str = "numba") -> None:
        super().__init__(dtype, name)
        self._functions = _get_numba_functions()

    def segment_square_sums(
        self, arr: np.ndarray, layout: StackLayout
    ) -> np.ndarray:
        return self._functions["seg_sq_sums"](
            np.ascontiguousarray(arr).reshape(-1), layout.bounds
        )

    def posterior_step(self, denoiser, rmv, sigma, z, layout, damping):
        form = denoiser.kernel_form()
        if form is None or form[0] not in self._functions:
            return super().posterior_step(
                denoiser, rmv, sigma, z, layout, damping
            )
        kind, params = form
        # The float32 exp clip never loosens a float64 run: the kernel
        # dtype decides, matching the NumPy denoiser's dtype rule.
        exp_clip = Denoiser.exp_clip_for(self.dtype)
        fused = self._functions[kind]
        args = params + (float(exp_clip),) if kind == "bayes-bernoulli" else params
        return fused(
            np.ascontiguousarray(rmv),
            np.ascontiguousarray(sigma),
            np.ascontiguousarray(z).reshape(-1),
            layout.bounds,
            layout.per_row(layout.sqrt_m),
            layout.per_row(layout.nm_ratio),
            float(layout.sqrt_n),
            *args,
            float(TAU_FLOOR),
            float(damping),
        )

    def residual_step(self, y, mv, z, onsager, layout, damping):
        z_new = self._functions["residual"](
            np.ascontiguousarray(y).reshape(-1),
            np.ascontiguousarray(mv),
            np.ascontiguousarray(z).reshape(-1),
            np.ascontiguousarray(onsager),
            layout.bounds,
            float(damping),
        )
        return z_new.reshape(y.shape)

    def adjoint_posterior(self, op, denoiser, sigma, z, layout, damping):
        form = denoiser.kernel_form()
        fused_kind = None if form is None else "csr-" + form[0]
        if (
            not isinstance(op, CSRStackOperator)
            or fused_kind not in self._functions
        ):
            # Generic operators (and unregistered denoisers) run the
            # scipy matvec plus the rmv-based fused posterior — the
            # exact pre-in-seam behavior.
            return super().adjoint_posterior(
                op, denoiser, sigma, z, layout, damping
            )
        kind, params = form
        exp_clip = Denoiser.exp_clip_for(self.dtype)
        args = (
            params + (float(exp_clip),)
            if kind == "bayes-bernoulli"
            else params
        )
        a = op.a
        return self._functions[fused_kind](
            a.indptr,
            a.indices,
            a.data,
            np.ascontiguousarray(sigma),
            np.ascontiguousarray(z).reshape(-1),
            layout.bounds,
            op.per_trial_scales(),
            float(op.c),
            layout.per_row(layout.sqrt_m),
            layout.per_row(layout.nm_ratio),
            float(layout.sqrt_n),
            *args,
            float(TAU_FLOOR),
            float(damping),
        )

    def forward_residual(self, op, y, sigma_new, z, onsager, layout, damping):
        if not isinstance(op, CSRStackOperator):
            return super().forward_residual(
                op, y, sigma_new, z, onsager, layout, damping
            )
        a = op.a
        z_new = self._functions["csr-residual"](
            a.indptr,
            a.indices,
            a.data,
            np.ascontiguousarray(sigma_new),
            np.ascontiguousarray(y).reshape(-1),
            np.ascontiguousarray(z).reshape(-1),
            np.ascontiguousarray(onsager),
            layout.bounds,
            op.per_trial_scales(),
            float(op.c),
            float(damping),
        )
        return z_new.reshape(y.shape)


# -- cupy backend --------------------------------------------------------

_CUPY_AVAILABLE: Optional[bool] = None


def cupy_available() -> bool:
    """Whether the optional ``cupy`` package is importable (cached)."""
    global _CUPY_AVAILABLE
    if _CUPY_AVAILABLE is None:
        try:
            import cupy  # noqa: F401

            _CUPY_AVAILABLE = True
        except ImportError:
            _CUPY_AVAILABLE = False
    return _CUPY_AVAILABLE


class CupyKernel(AMPKernel):
    """GPU backend: both phases as cupy array programs on a device CSR.

    The stacked matrix is copied to the device once per operator and
    cached on it (``_cupy_state``); the adjoint is materialized as a
    device CSR once (cupy's CSC matvec path is not competitive), which
    doubles device nnz storage but amortizes over every iteration.
    Inputs cross the host/device boundary at the phase seam only:
    each phase uploads the current state, runs the full pass —
    adjoint matvec, segment sums, inlined denoiser, damping, Onsager,
    step norm (or forward matvec + residual) — on the device, and
    returns host arrays, so the driver and decode stay untouched.

    Denoisers without a registered :meth:`~repro.amp.denoisers.
    Denoiser.kernel_form`, and generic (non-CSR) operators, fall back
    to the inherited NumPy phases — correct for every denoiser, same
    contract as :class:`NumbaKernel`. GPU reductions reorder sums, so
    this backend is tolerance-equivalent, never bit-identical.
    """

    def __init__(self, dtype=np.float64, name: str = "cupy") -> None:
        super().__init__(dtype, name)
        import cupy

        self._cp = cupy

    def _device_state(self, op: CSRStackOperator) -> Dict[str, object]:
        state = getattr(op, "_cupy_state", None)
        if state is not None:
            return state
        cp = self._cp
        from cupyx.scipy import sparse as cupy_sparse

        a = cupy_sparse.csr_matrix(
            (
                cp.asarray(op.a.data),
                cp.asarray(op.a.indices),
                cp.asarray(op.a.indptr),
            ),
            shape=op.a.shape,
        )
        state = {
            "a": a,
            "a_t": a.T.tocsr(),
            "scales": cp.asarray(op.per_trial_scales()),
        }
        if not op.uniform:
            state["m_per"] = cp.asarray(op.m_per)
            state["row_scale"] = cp.asarray(op.row_scale)
        op._cupy_state = state
        return state

    def adjoint_posterior(self, op, denoiser, sigma, z, layout, damping):
        form = denoiser.kernel_form()
        if (
            not isinstance(op, CSRStackOperator)
            or form is None
            or form[0] not in ("bayes-bernoulli", "soft-threshold")
        ):
            return super().adjoint_posterior(
                op, denoiser, sigma, z, layout, damping
            )
        cp = self._cp
        state = self._device_state(op)
        rows, n = layout.rows, layout.n
        z_d = cp.asarray(np.ascontiguousarray(z)).reshape(-1)
        sigma_d = cp.asarray(np.ascontiguousarray(sigma))
        if layout.uniform:
            z2 = z_d.reshape(rows, layout.m)
            zsum = z2.sum(axis=1)
            zsq = (z2 * z2).sum(axis=1)
        else:
            bounds_d = cp.asarray(layout.bounds)
            csum = cp.concatenate(
                (cp.zeros(1, dtype=z_d.dtype), cp.cumsum(z_d))
            )
            c2 = cp.concatenate(
                (cp.zeros(1, dtype=z_d.dtype), cp.cumsum(z_d * z_d))
            )
            zsum = csum[bounds_d[1:]] - csum[bounds_d[:-1]]
            zsq = c2[bounds_d[1:]] - c2[bounds_d[:-1]]
        sqrt_m_d = cp.asarray(layout.per_row(layout.sqrt_m))
        tau = cp.maximum(cp.sqrt(zsq) / sqrt_m_d, TAU_FLOOR)
        scales_d = state["scales"]
        rmv = state["a_t"] @ z_d
        r = (
            (rmv.reshape(rows, n) - (op.c * zsum)[:, None])
            / scales_d[:, None]
        ) + sigma_d
        kind, params = form
        tau_sq = tau * tau
        if kind == "bayes-bernoulli":
            (log_odds,) = params
            clip = float(Denoiser.exp_clip_for(self.dtype))
            expo = cp.clip(
                log_odds + (1.0 - 2.0 * r) / (2.0 * tau_sq)[:, None],
                -clip,
                clip,
            )
            value = 1.0 / (1.0 + cp.exp(expo))
            deriv = value * (1.0 - value) / tau_sq[:, None]
        else:
            (alpha,) = params
            thresh = (alpha * tau)[:, None]
            value = cp.sign(r) * cp.maximum(cp.abs(r) - thresh, 0.0)
            deriv = (cp.abs(r) > thresh).astype(sigma_d.dtype)
        if damping > 0.0:
            sigma_new = (1.0 - damping) * value + damping * sigma_d
        else:
            sigma_new = value
        nm_d = cp.asarray(layout.per_row(layout.nm_ratio))
        onsager = nm_d * deriv.mean(axis=1)
        diff = sigma_new - sigma_d
        step = cp.sqrt((diff * diff).sum(axis=1)) / layout.sqrt_n
        return (
            cp.asnumpy(sigma_new),
            cp.asnumpy(onsager),
            cp.asnumpy(tau),
            cp.asnumpy(step),
        )

    def forward_residual(self, op, y, sigma_new, z, onsager, layout, damping):
        if not isinstance(op, CSRStackOperator):
            return super().forward_residual(
                op, y, sigma_new, z, onsager, layout, damping
            )
        cp = self._cp
        state = self._device_state(op)
        rows, n = layout.rows, layout.n
        x_d = cp.asarray(np.ascontiguousarray(sigma_new)).reshape(-1)
        z_d = cp.asarray(np.ascontiguousarray(z))
        y_d = cp.asarray(np.ascontiguousarray(y))
        o_d = cp.asarray(np.ascontiguousarray(onsager))
        s = x_d.reshape(rows, n).sum(axis=1)
        mv = state["a"] @ x_d
        if layout.uniform:
            mv_std = (
                mv.reshape(rows, layout.m) - (op.c * s)[:, None]
            ) / op.scale
            z_new = y_d - mv_std + o_d[:, None] * z_d
        else:
            m_per_d = state["m_per"]
            mv_std = (mv - op.c * cp.repeat(s, m_per_d)) / state["row_scale"]
            z_new = y_d - mv_std + cp.repeat(o_d, m_per_d) * z_d
        if damping > 0.0:
            z_new = (1.0 - damping) * z_new + damping * z_d
        return cp.asnumpy(z_new).reshape(y.shape)


# -- registry ------------------------------------------------------------

#: accelerator families (package name -> warned flag): the fallback
#: warning fires once per missing package per process, not once per
#: resolve and not once per kernel-name spelling
_fallback_warned: Dict[str, bool] = {}


def _numpy_fallback(name: str, package: str) -> AMPKernel:
    """Graceful degrade when an accelerator backend is not installed."""
    substitute = "numpy32" if name.endswith("32") else "numpy"
    if not _fallback_warned.get(package):
        warnings.warn(
            f"AMP kernel {name!r} requested but {package} is not "
            f"installed; falling back to the matching-precision NumPy "
            f"reference kernel ({name} -> {substitute}: identical "
            f"semantics, no fused/accelerated passes). Install "
            f"{package} to enable the backend.",
            RuntimeWarning,
            stacklevel=3,
        )
        _fallback_warned[package] = True
    if substitute == "numpy32":
        return AMPKernel(np.float32, "numpy32")
    return AMPKernel(np.float64, "numpy")


def _make_kernel(name: str) -> AMPKernel:
    if name == "numpy":
        return AMPKernel(np.float64, "numpy")
    if name == "numpy32":
        return AMPKernel(np.float32, "numpy32")
    if name in ("numba", "numba32"):
        if not numba_available():
            return _numpy_fallback(name, "numba")
        dtype = np.float32 if name == "numba32" else np.float64
        return NumbaKernel(dtype, name)
    if name in ("cupy", "cupy32"):
        if not cupy_available():
            return _numpy_fallback(name, "cupy")
        dtype = np.float32 if name == "cupy32" else np.float64
        return CupyKernel(dtype, name)
    raise ValueError(f"unknown AMP kernel {name!r}; valid: {KERNELS}")


#: resolved-kernel cache: backends are stateless, one instance per name
_kernel_cache: Dict[str, AMPKernel] = {}


def resolve_kernel(kernel=None) -> AMPKernel:
    """Resolve a kernel request into an :class:`AMPKernel` instance.

    Precedence: an explicit :class:`AMPKernel` instance passes
    through; an explicit name string wins over the environment; then
    the :data:`REPRO_KERNEL` environment variable; then ``"numpy"``.
    A ``numba`` request without numba installed warns once and returns
    the NumPy kernel of the matching precision.
    """
    if isinstance(kernel, AMPKernel):
        return kernel
    name = kernel if kernel is not None else os.environ.get(KERNEL_ENV) or None
    if name is None:
        name = "numpy"
    if name not in _kernel_cache:
        _kernel_cache[name] = _make_kernel(str(name))
    return _kernel_cache[name]


__all__ = [
    "KERNEL_ENV",
    "KERNELS",
    "StackLayout",
    "MatvecOperator",
    "CSRStackOperator",
    "AMPKernel",
    "NumbaKernel",
    "CupyKernel",
    "numba_available",
    "cupy_available",
    "resolve_kernel",
]
