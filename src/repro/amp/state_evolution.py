"""State evolution: the scalar recursion tracking AMP's effective noise.

In the large-system limit the AMP iterate ``A^T z^t + sigma^t`` behaves
like ``sigma + tau_t Z`` with ``Z ~ N(0, 1)``, and the effective noise
level follows the *state evolution* recursion

    tau_{t+1}^2 = sigma_w^2 + (1/delta) * mse(eta_t, tau_t),
    mse(eta, tau) = E[(eta(sigma + tau Z) - sigma)^2],

where ``delta = m/n`` is the undersampling ratio and ``sigma_w^2`` the
(standardized) measurement-noise variance. For the pooled data prior
``sigma ~ Bernoulli(pi)`` the expectation is evaluated by Gauss-Hermite
quadrature — no sampling involved.

State evolution predicts AMP's per-iteration MSE without running the
algorithm; ablation A4 checks the prediction against simulated AMP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.amp.denoisers import Denoiser
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
)

#: number of Gauss-Hermite nodes used for the Gaussian expectations
_GH_NODES = 61


def denoiser_mse(denoiser: Denoiser, pi: float, tau: float) -> float:
    """``E[(eta(sigma + tau Z) - sigma)^2]`` for ``sigma ~ Bernoulli(pi)``.

    Computed with Gauss-Hermite quadrature (exact for polynomial
    integrands, excellent for the smooth denoisers used here).
    """
    pi = check_fraction(pi, "pi")
    tau = check_positive(tau, "tau")
    nodes, weights = np.polynomial.hermite_e.hermegauss(_GH_NODES)
    weights = weights / np.sqrt(2.0 * np.pi)

    # sigma = 1 branch
    est_one = denoiser(1.0 + tau * nodes, tau)
    mse_one = float(np.sum(weights * (est_one - 1.0) ** 2))
    # sigma = 0 branch
    est_zero = denoiser(tau * nodes, tau)
    mse_zero = float(np.sum(weights * est_zero**2))
    return pi * mse_one + (1.0 - pi) * mse_zero


@dataclass(frozen=True)
class StateEvolutionResult:
    """Trajectory of the state evolution recursion."""

    tau2: List[float]
    mse: List[float]

    @property
    def fixed_point_mse(self) -> float:
        """MSE at the last computed iteration."""
        return self.mse[-1]

    @property
    def iterations(self) -> int:
        return len(self.mse)


def state_evolution(
    denoiser: Denoiser,
    pi: float,
    delta: float,
    sigma_w2: float = 0.0,
    *,
    iterations: int = 30,
    tau2_init: float | None = None,
    tol: float = 1e-12,
) -> StateEvolutionResult:
    """Iterate the state evolution recursion.

    Parameters
    ----------
    denoiser:
        The scalar denoiser AMP will use.
    pi:
        Signal sparsity ``k/n``.
    delta:
        Undersampling ratio ``m/n``.
    sigma_w2:
        Standardized measurement-noise variance (0 for noiseless).
    iterations:
        Maximum number of recursion steps.
    tau2_init:
        Initial ``tau_0^2``; defaults to the cold-start value
        ``sigma_w2 + pi (1 - pi) / delta + pi^2/delta`` implied by
        ``sigma^0 = 0`` (the full second moment of the signal enters the
        initial residual).
    tol:
        Stop when ``|tau2_{t+1} - tau2_t|`` falls below this.
    """
    pi = check_fraction(pi, "pi")
    delta = check_positive(delta, "delta")
    sigma_w2 = check_non_negative(sigma_w2, "sigma_w2")
    check_positive_int(iterations, "iterations")

    if tau2_init is None:
        # E[sigma^2] = pi for the Bernoulli prior; sigma^0 = 0 means the
        # initial per-measurement error is the full signal energy / delta.
        tau2 = sigma_w2 + pi / delta
    else:
        tau2 = check_positive(tau2_init, "tau2_init")

    from repro.amp.denoisers import TAU_FLOOR

    tau2_hist: List[float] = [tau2]
    mse_hist: List[float] = []
    for _ in range(iterations):
        mse = denoiser_mse(denoiser, pi, max(float(np.sqrt(tau2)), TAU_FLOOR))
        mse_hist.append(mse)
        tau2_next = sigma_w2 + mse / delta
        tau2_hist.append(tau2_next)
        if abs(tau2_next - tau2) < tol:
            tau2 = tau2_next
            break
        tau2 = tau2_next
    return StateEvolutionResult(tau2=tau2_hist, mse=mse_hist)


def predicted_success(
    denoiser: Denoiser,
    pi: float,
    delta: float,
    sigma_w2: float = 0.0,
    *,
    mse_threshold: float = 1e-6,
    iterations: int = 200,
) -> bool:
    """Whether state evolution predicts (near-)perfect recovery.

    Success is declared when the fixed-point MSE drops below
    ``mse_threshold`` — the SE analogue of the paper's exact-recovery
    criterion.
    """
    result = state_evolution(denoiser, pi, delta, sigma_w2, iterations=iterations)
    return result.fixed_point_mse < mse_threshold


__all__ = [
    "denoiser_mse",
    "StateEvolutionResult",
    "state_evolution",
    "predicted_success",
]
