"""Command-line interface: ``python -m repro <figure> [options]``.

Regenerates any paper figure's data from the terminal, e.g.::

    python -m repro fig2 --trials 5 --n-max 10000
    python -m repro fig6 --trials 25 --out results/

Use ``--full-scale`` to run the paper's complete grids (slow: the
original sweeps extend to n = 10^5) and ``--workers N`` to shard the
trials over N processes (``0`` = one per CPU) with bit-identical
output.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.figures import FIGURES, run_figure
from repro.experiments.stats import geometric_space


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce figures from 'Distributed Reconstruction of "
        "Noisy Pooled Data' (ICDCS 2022)",
    )
    parser.add_argument(
        "figure",
        choices=sorted(FIGURES) + ["all"],
        help="which figure to regenerate (or 'all')",
    )
    parser.add_argument("--trials", type=int, default=None, help="trials per point")
    parser.add_argument("--seed", type=int, default=2022, help="root seed")
    parser.add_argument(
        "--n-min", type=int, default=100, help="smallest n on the grid (figs 2-4)"
    )
    parser.add_argument(
        "--n-max", type=int, default=10_000, help="largest n on the grid (figs 2-4)"
    )
    parser.add_argument(
        "--n-points", type=int, default=9, help="points on the n grid (figs 2-4)"
    )
    parser.add_argument(
        "--check-every",
        type=int,
        default=1,
        help="success-check stride of the incremental simulator",
    )
    parser.add_argument(
        "--full-scale",
        action="store_true",
        help="use the paper's full grids (n up to 1e5, 100 trials)",
    )
    parser.add_argument(
        "--engine",
        choices=("batch", "legacy"),
        default="batch",
        help="simulation engine: vectorized batch (default; stacks "
        "greedy trials and runs AMP sweeps block-diagonally) or the "
        "original per-query/per-trial loops — both produce identical "
        "results for the same seed",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for trial sharding; 0 = one per CPU "
        "(default: the REPRO_WORKERS env var, else 1 = serial); "
        "results are bit-identical for any worker count",
    )
    parser.add_argument("--out", type=str, default=None, help="save JSON/CSV here")
    parser.add_argument(
        "--plot",
        action="store_true",
        help="render an ASCII plot of the figure's series",
    )
    return parser


#: per-figure plot axes: (x_key, y_key, log_x, log_y)
_PLOT_AXES = {
    "fig2": ("n", "required_m_median", True, True),
    "fig3": ("n", "required_m_median", True, True),
    "fig4": ("n", "required_m_median", True, True),
    "fig5": ("n", "median", True, True),
    "fig6": ("m", "success_rate", False, False),
    "fig7": ("m", "overlap", False, False),
}


def _figure_kwargs(args: argparse.Namespace, name: str) -> dict:
    kwargs: dict = {
        "seed": args.seed,
        "engine": args.engine,
        "workers": args.workers,
    }
    if args.full_scale:
        if name in ("fig2", "fig3", "fig4"):
            kwargs["n_values"] = geometric_space(100, 100_000, 13)
            kwargs["trials"] = args.trials or 10
            kwargs["check_every"] = args.check_every
        elif name == "fig5":
            kwargs["n_values"] = (1_000, 10_000, 100_000)
            kwargs["trials"] = args.trials or 50
            kwargs["check_every"] = args.check_every
        else:
            kwargs["trials"] = args.trials or 100
    else:
        if name in ("fig2", "fig3", "fig4"):
            kwargs["n_values"] = geometric_space(args.n_min, args.n_max, args.n_points)
            kwargs["check_every"] = args.check_every
        if name == "fig5":
            kwargs["check_every"] = args.check_every
        if args.trials is not None:
            kwargs["trials"] = args.trials
    return kwargs


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    names = sorted(FIGURES) if args.figure == "all" else [args.figure]
    for name in names:
        started = time.perf_counter()
        result = run_figure(name, **_figure_kwargs(args, name))
        elapsed = time.perf_counter() - started
        print(result.render())
        if args.plot:
            from repro.experiments.plots import plot_figure_result

            x_key, y_key, log_x, log_y = _PLOT_AXES[name]
            print()
            print(
                plot_figure_result(
                    result, x_key=x_key, y_key=y_key, log_x=log_x, log_y=log_y
                )
            )
        print(f"[{name}] completed in {elapsed:.1f}s")
        if args.out:
            result.save(args.out)
            print(f"[{name}] saved to {args.out}/{name}.json|.csv")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
