"""Command-line interface: ``python -m repro <command> [options]``.

Regenerates any paper figure's data from the terminal, e.g.::

    python -m repro fig2 --trials 5 --n-max 10000
    python -m repro fig6 --trials 25 --out results/

and exposes the sweep primitives directly::

    python -m repro required-queries --algorithm amp --n 2000 \
        --channel z --p 0.1 --check-every 8 --workers 4
    python -m repro threshold --algorithm amp --n 1000

The fault-scenario figures put corrupted measurements and unreliable
networks on the same sweep engine (seeded per trial, bit-identical on
every backend)::

    python -m repro robustness_degradation --fault-kind erasure \
        --fault-rate 0.0 0.2 0.4 0.6 0.8
    python -m repro robustness_loss --drop 0.0 0.1 0.3 0.5
    python -m repro robustness_comm --n-values 64 128 256

Use ``--full-scale`` to run the paper's complete grids (slow: the
original sweeps extend to n = 10^5) and ``--workers N`` to shard the
trials over N processes (``0`` = one per CPU) with bit-identical
output. ``--backend socket`` ships a sweep's chunks to remote worker
hosts (start one per host with ``python -m repro worker serve``, list
them in ``REPRO_HOSTS``). Algorithm choice lists come from the
runner's shared constants
(:data:`repro.experiments.runner.ALGORITHMS` /
:data:`~repro.experiments.runner.REQUIRED_QUERIES_ALGORITHMS`), so the
subcommands can never drift apart.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.amp.kernels import KERNEL_ENV, KERNELS
from repro.experiments.figures import FIGURES, run_figure
from repro.experiments.runner import ALGORITHMS, REQUIRED_QUERIES_ALGORITHMS
from repro.experiments.scheduler import BACKENDS
from repro.experiments.shm import SHM_ENV
from repro.experiments.stats import geometric_space
from repro.experiments.worker import DEFAULT_PORT as DEFAULT_WORKER_PORT

#: channel constructors selectable on the command line
CHANNELS = ("z", "noiseless", "gaussian", "noisy")

#: corruption kinds of the degradation figure (CorruptionModel fields)
CORRUPTION_KINDS = ("erasure", "flip", "outlier", "dead")


def _probability(text: str) -> float:
    """argparse type for fault-rate flags: a probability in [0, 1]."""
    from repro.utils.validation import check_probability

    try:
        return check_probability(float(text), "probability", allow_one=True)
    except (TypeError, ValueError) as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _instance_parent() -> argparse.ArgumentParser:
    """Shared instance/channel options of the sweep subcommands."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--n", type=int, default=1000, help="number of agents")
    parent.add_argument(
        "--k",
        type=int,
        default=None,
        help="number of 1-agents (default: sublinear n**theta)",
    )
    parent.add_argument(
        "--theta", type=float, default=0.25, help="sublinear exponent for k"
    )
    parent.add_argument(
        "--channel",
        choices=CHANNELS,
        default="z",
        help="noise channel (default: Z-channel)",
    )
    parent.add_argument(
        "--p", type=float, default=0.1, help="flip probability (z / noisy)"
    )
    parent.add_argument(
        "--q", type=float, default=0.05, help="false-positive rate (noisy)"
    )
    parent.add_argument(
        "--lam", type=float, default=1.0, help="noise scale lambda (gaussian)"
    )
    parent.add_argument("--gamma", type=int, default=None, help="query size Gamma")
    parent.add_argument("--seed", type=int, default=2022, help="root seed")
    parent.add_argument("--out", type=str, default=None, help="save JSON here")
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce figures from 'Distributed Reconstruction of "
        "Noisy Pooled Data' (ICDCS 2022)",
    )
    sub = parser.add_subparsers(dest="command", required=True, metavar="command")

    # -- figure-style subcommands (fig2 .. fig7, all, ablation_design) --
    # One shared parent for the execution/output flags so the figure
    # and ablation subcommands can never drift apart on them; a second
    # parent holds the fig2-7 grid knobs the ablation does not accept.
    execution = argparse.ArgumentParser(add_help=False)
    execution.add_argument(
        "--trials", type=int, default=None, help="trials per point"
    )
    execution.add_argument("--seed", type=int, default=2022, help="root seed")
    execution.add_argument(
        "--engine",
        choices=("batch", "legacy"),
        default="batch",
        help="simulation engine: vectorized batch (default; stacks "
        "greedy trials and runs AMP sweeps block-diagonally) or the "
        "original per-query/per-trial loops — both produce identical "
        "results for the same seed",
    )
    execution.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for trial sharding; 0 = one per CPU "
        "(default: the REPRO_WORKERS env var, else 1 = serial); "
        "results are bit-identical for any worker count",
    )
    execution.add_argument(
        "--backend",
        choices=BACKENDS,
        default=None,
        help="sweep execution backend (default: the REPRO_BACKEND env "
        "var, else process when --workers > 1, serial otherwise); "
        "socket ships chunks to the REPRO_HOSTS workers — results are "
        "bit-identical on every backend",
    )
    execution.add_argument(
        "--kernel",
        choices=KERNELS,
        default=None,
        help="AMP compute backend (default: the REPRO_KERNEL env var, "
        "else numpy); float64 kernels are bit-identical, the *32 "
        "variants trade bit-identity for float32 throughput",
    )
    execution.add_argument(
        "--shm",
        action="store_true",
        default=None,
        help="dispatch process-backend chunks through a shared-memory "
        "arena instead of the pool pipe (default: the REPRO_SHM env "
        "var); bit-identical output",
    )
    execution.add_argument(
        "--checkpoint",
        type=str,
        default=None,
        help="checkpoint directory for crash-safe resume: finished "
        "chunks and cells persist as they land and a re-run of the "
        "same sweep skips them (default: the REPRO_CHECKPOINT env "
        "var); results are bit-identical with or without",
    )
    execution.add_argument(
        "--auth-token",
        type=str,
        default=None,
        help="shared cluster token authenticating socket-backend wire "
        "frames via HMAC (default: the REPRO_AUTH_TOKEN env var); "
        "set the same token on every worker host",
    )
    execution.add_argument(
        "--out", type=str, default=None, help="save JSON/CSV here"
    )
    execution.add_argument(
        "--plot",
        action="store_true",
        help="render an ASCII plot of the result's series",
    )

    figures = argparse.ArgumentParser(add_help=False)
    figures.add_argument(
        "--n-min", type=int, default=100, help="smallest n on the grid (figs 2-4)"
    )
    figures.add_argument(
        "--n-max", type=int, default=10_000, help="largest n on the grid (figs 2-4)"
    )
    figures.add_argument(
        "--n-points", type=int, default=9, help="points on the n grid (figs 2-4)"
    )
    figures.add_argument(
        "--check-every",
        type=int,
        default=1,
        help="success-check stride of the incremental simulator",
    )
    figures.add_argument(
        "--algorithms",
        nargs="+",
        choices=REQUIRED_QUERIES_ALGORITHMS,
        default=None,
        help="required-m stopping rules to plot side by side (figs 2-5; "
        "default: greedy only)",
    )
    figures.add_argument(
        "--full-scale",
        action="store_true",
        help="use the paper's full grids (n up to 1e5, 100 trials)",
    )
    paper_figures = sorted(name for name in FIGURES if name.startswith("fig"))
    for name in paper_figures + ["all"]:
        fig_parser = sub.add_parser(
            name,
            parents=[execution, figures],
            help=(
                "regenerate all paper figures (fig2-fig7; the design "
                "ablation has its own subcommand)"
                if name == "all"
                else f"regenerate {name}"
            ),
        )
        fig_parser.set_defaults(figure=name)

    # -- design ablation: shares the execution flags but has its own
    # grid knobs (the fig2-7 n-grid / check-every / algorithms flags
    # do not apply and are rejected rather than silently ignored) -----
    ablation = sub.add_parser(
        "ablation_design",
        parents=[execution],
        help="pooling-design ablation: required m (success-rate "
        "crossing) for the with-replacement multigraph vs the "
        "constant-column-weight regular design, at matched edge budget",
    )
    ablation.add_argument(
        "--n-values", type=int, nargs="+", default=None,
        help="agent counts, one success-curve cell per (design, n) "
        "(default: 300 600 1200)",
    )
    ablation.add_argument(
        "--m-points", type=int, default=10,
        help="points on each per-n geometric m grid",
    )
    ablation.set_defaults(figure="ablation_design")

    # -- fault-scenario figures: dedicated parsers (the fig2-7 grid
    # knobs do not apply); fault rates are validated probabilities ------
    degradation = sub.add_parser(
        "robustness_degradation",
        parents=[execution],
        help="decoder degradation under rising measurement corruption: "
        "greedy vs AMP vs the channel-corrected two-stage repair path, "
        "one seeded corruption realization per trial",
    )
    degradation.add_argument(
        "--n", type=int, default=None, help="number of agents (default 300)"
    )
    degradation.add_argument(
        "--m", type=int, default=None,
        help="fixed query budget (default 0.6 n, above the clean "
        "phase transition)",
    )
    degradation.add_argument(
        "--fault-kind", choices=CORRUPTION_KINDS, default="erasure",
        help="corruption applied post-channel: erasure = results go "
        "missing, flip = adversarial mirror flips, outlier = "
        "heavy-tailed Cauchy shifts, dead = pool-agents die and their "
        "queries vanish",
    )
    degradation.add_argument(
        "--fault-rate", type=_probability, nargs="+", default=None,
        metavar="P",
        help="corruption rates in [0, 1], one sweep cell per "
        "(algorithm, rate) (default: 0.0 0.2 0.4 0.6 0.8)",
    )
    degradation.add_argument(
        "--algorithms", nargs="+", choices=REQUIRED_QUERIES_ALGORITHMS,
        default=None,
        help="decoders to compare (default: greedy amp twostage)",
    )
    degradation.set_defaults(figure="robustness_degradation")

    loss = sub.add_parser(
        "robustness_loss",
        parents=[execution],
        help="Algorithm 1 under query-broadcast message loss: seeded "
        "per-trial drop/delay faults on the distributed protocol, "
        "network metrics folded into the curve",
    )
    loss.add_argument(
        "--n", type=int, default=None, help="number of agents (default 128)"
    )
    loss.add_argument(
        "--m", type=int, default=None, help="query budget (default 220)"
    )
    loss.add_argument(
        "--drop", type=_probability, nargs="+", default=None, metavar="P",
        help="message drop probabilities in [0, 1], one distributed "
        "cell each (default: 0.0 0.1 0.3 0.5 0.7)",
    )
    loss.add_argument(
        "--delay", type=_probability, default=None, metavar="P",
        help="per-message delay probability (default 0; requires "
        "--max-delay >= 1)",
    )
    loss.add_argument(
        "--max-delay", type=int, default=None,
        help="largest extra delivery delay in rounds (default 0)",
    )
    loss.set_defaults(figure="robustness_loss")

    comm = sub.add_parser(
        "robustness_comm",
        parents=[execution],
        help="communication bill vs n: Algorithm 1 vs message-passing "
        "AMP at the same query budget (rounds / messages / bits from "
        "the network simulator)",
    )
    comm.add_argument(
        "--n-values", type=int, nargs="+", default=None,
        help="agent counts, one distributed and one distributed_amp "
        "cell each (default: 64 128 256)",
    )
    comm.add_argument(
        "--m-fraction", type=float, default=None,
        help="query budget per cell as a fraction of n (default 0.4)",
    )
    comm.set_defaults(figure="robustness_comm")

    # -- required-queries -----------------------------------------------
    instance = _instance_parent()
    rq = sub.add_parser(
        "required-queries",
        parents=[instance],
        help="required-m sweep: smallest m per trial under the chosen "
        "stopping rule (greedy separation or exact AMP decode)",
    )
    rq.add_argument(
        "--algorithm",
        choices=REQUIRED_QUERIES_ALGORITHMS,
        default="greedy",
        help="stopping rule (shared constant with the other subcommands)",
    )
    rq.add_argument("--trials", type=int, default=10, help="independent trials")
    rq.add_argument(
        "--check-every", type=int, default=1, help="success-check stride"
    )
    rq.add_argument(
        "--max-m", type=int, default=None, help="query budget per trial"
    )
    rq.add_argument(
        "--verify",
        choices=("full", "window", "none"),
        default="full",
        help="AMP scan verify mode: full = brute-force-identical "
        "certificate sweep (default), window = galloping-bracket sweep, "
        "none = trust the quasi-monotone profile (fastest)",
    )
    rq.add_argument(
        "--engine",
        choices=("batch", "legacy"),
        default="batch",
        help="batch = chunked/stacked scan, legacy = per-query loop or "
        "brute-force linear AMP scan; stopping m's are identical for "
        "greedy and for AMP under --verify full (the window/none modes "
        "trade that guarantee for fewer probes)",
    )
    rq.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (0 = one per CPU); bit-identical output",
    )
    rq.add_argument(
        "--backend",
        choices=BACKENDS,
        default=None,
        help="sweep execution backend (serial / process / socket); "
        "bit-identical output on every backend",
    )
    rq.add_argument(
        "--kernel",
        choices=KERNELS,
        default=None,
        help="AMP compute backend (AMP algorithm only; float64 kernels "
        "are bit-identical, the *32 variants are float32)",
    )
    rq.add_argument(
        "--shm",
        action="store_true",
        default=None,
        help="shared-memory chunk dispatch on the process backend; "
        "bit-identical output",
    )
    rq.add_argument(
        "--checkpoint",
        type=str,
        default=None,
        help="checkpoint directory for crash-safe resume (default: "
        "the REPRO_CHECKPOINT env var)",
    )
    rq.add_argument(
        "--auth-token",
        type=str,
        default=None,
        help="shared token for socket-backend frame HMAC (default: "
        "the REPRO_AUTH_TOKEN env var)",
    )

    # -- threshold ------------------------------------------------------
    th = sub.add_parser(
        "threshold",
        parents=[instance],
        help="success-probability threshold search (bracket + bisection "
        "over fresh instances)",
    )
    th.add_argument(
        "--algorithm",
        choices=ALGORITHMS,
        default="greedy",
        help="reconstruction algorithm (shared constant with the other "
        "subcommands)",
    )
    th.add_argument("--trials", type=int, default=20, help="trials per probe")
    th.add_argument(
        "--level", type=float, default=0.5, help="target success probability"
    )
    th.add_argument("--m-init", type=int, default=8, help="first bracket probe")
    th.add_argument("--m-cap", type=int, default=None, help="largest probe")
    th.add_argument(
        "--tolerance", type=int, default=4, help="bisection stopping width"
    )
    th.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes per probe (0 = one per CPU)",
    )
    th.add_argument(
        "--backend",
        choices=BACKENDS,
        default=None,
        help="sweep execution backend for the probe sweeps",
    )

    # -- worker ---------------------------------------------------------
    worker = sub.add_parser(
        "worker",
        help="sweep-engine socket worker (cross-host trial sharding)",
    )
    worker_sub = worker.add_subparsers(
        dest="worker_command", required=True, metavar="action"
    )
    serve = worker_sub.add_parser(
        "serve",
        help="serve chunk requests over TCP until interrupted; point "
        "sweeps at this host via --backend socket and REPRO_HOSTS",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default 127.0.0.1; use 0.0.0.0 to "
        "accept remote drivers — trusted networks only, the wire "
        "format is pickle)",
    )
    serve.add_argument(
        "--port", type=int, default=None,
        help=f"TCP port (default {DEFAULT_WORKER_PORT}; 0 = ephemeral)",
    )
    serve.add_argument(
        "--auth-token",
        type=str,
        default=None,
        help="shared cluster token for frame HMAC authentication "
        "(default: the REPRO_AUTH_TOKEN env var; with neither set, "
        "frames carry an integrity-only tag and any same-version "
        "driver is accepted)",
    )

    # -- decode service --------------------------------------------------
    svc = sub.add_parser(
        "serve",
        help="online decode service: long-lived server keeping one "
        "incremental decode session per client and micro-batching "
        "concurrent AMP decode requests into single stacked calls "
        "(bit-identical to standalone decodes); sessions persist to "
        "--state-dir and survive crashes",
    )
    svc.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default 127.0.0.1; use 0.0.0.0 to "
        "accept remote clients — trusted networks only, the wire "
        "format is pickle)",
    )
    svc.add_argument(
        "--port", type=int, default=None,
        help="TCP port (default %(default)s -> service default; "
        "0 = ephemeral, printed in the ready banner)",
    )
    svc.add_argument(
        "--state-dir", default=None,
        help="directory for durable session records (atomic "
        "write-then-rename); omit for in-memory sessions that do NOT "
        "survive a restart",
    )
    svc.add_argument(
        "--max-queue", type=int, default=None,
        help="decode queue bound; requests beyond it are shed with a "
        "retryable 'overloaded' error (default REPRO_SERVICE_MAX_QUEUE "
        "or 64)",
    )
    svc.add_argument(
        "--degrade-depth", type=int, default=None,
        help="queue depth at which AMP decodes degrade to the instant "
        "greedy scorer with degraded=True (default "
        "REPRO_SERVICE_DEGRADE_DEPTH or 16)",
    )
    svc.add_argument(
        "--max-batch", type=int, default=None,
        help="max decode requests stacked into one batched AMP call "
        "(default REPRO_SERVICE_MAX_BATCH or 16)",
    )
    svc.add_argument(
        "--deadline", type=float, default=None,
        help="default per-request decode budget in seconds; expired "
        "requests get a retryable 'deadline_exceeded' error (default "
        "REPRO_SERVICE_DEADLINE or unlimited)",
    )
    svc.add_argument(
        "--auth-token", type=str, default=None,
        help="shared token for frame HMAC authentication (default: "
        "the REPRO_AUTH_TOKEN env var)",
    )
    return parser


def _channel_from_args(args: argparse.Namespace):
    from repro.core.noise import (
        GaussianQueryNoise,
        NoiselessChannel,
        NoisyChannel,
        ZChannel,
    )

    if args.channel == "noiseless":
        return NoiselessChannel()
    if args.channel == "z":
        return ZChannel(args.p)
    if args.channel == "gaussian":
        return GaussianQueryNoise(args.lam)
    return NoisyChannel(args.p, args.q)


def _resolve_k(args: argparse.Namespace) -> int:
    if args.k is not None:
        return args.k
    from repro.core.ground_truth import sublinear_k

    return sublinear_k(args.n, args.theta)


def _run_required_queries(args: argparse.Namespace) -> int:
    from repro.experiments.runner import required_queries_trials
    from repro.experiments.tables import render_kv

    channel = _channel_from_args(args)
    k = _resolve_k(args)
    started = time.perf_counter()
    sample = required_queries_trials(
        args.n,
        k,
        channel,
        trials=args.trials,
        seed=args.seed,
        max_m=args.max_m,
        check_every=args.check_every,
        gamma=args.gamma,
        algorithm=args.algorithm,
        verify=args.verify,
        engine=args.engine,
        workers=args.workers,
        backend=args.backend,
        kernel=args.kernel,
        shm=args.shm,
    )
    elapsed = time.perf_counter() - started
    print(
        render_kv(
            f"required-queries ({sample.algorithm})",
            [
                ("algorithm", sample.algorithm),
                ("n", sample.n),
                ("k", sample.k),
                ("channel", sample.channel),
                ("trials", sample.trials),
                ("failures", sample.failures),
                ("required_m_median", sample.median),
                ("required_m_mean", sample.mean),
                ("values", sample.values),
            ],
        )
    )
    print(f"[required-queries] completed in {elapsed:.1f}s")
    if args.out:
        from pathlib import Path

        from repro.experiments.storage import save_json

        path = Path(args.out) / f"required_queries_{sample.algorithm}.json"
        save_json(path, sample)
        print(f"[required-queries] saved to {path}")
    return 0


def _run_threshold(args: argparse.Namespace) -> int:
    from repro.experiments.search import success_probability_threshold
    from repro.experiments.tables import render_kv

    channel = _channel_from_args(args)
    k = _resolve_k(args)
    started = time.perf_counter()
    estimate = success_probability_threshold(
        args.n,
        k,
        channel,
        level=args.level,
        trials=args.trials,
        seed=args.seed,
        algorithm=args.algorithm,
        m_init=args.m_init,
        m_cap=args.m_cap,
        tolerance=args.tolerance,
        gamma=args.gamma,
        workers=args.workers,
        backend=args.backend,
    )
    elapsed = time.perf_counter() - started
    print(
        render_kv(
            f"threshold ({args.algorithm})",
            [
                ("algorithm", args.algorithm),
                ("n", args.n),
                ("k", k),
                ("channel", channel.describe()),
                ("level", estimate.level),
                ("threshold_m", estimate.threshold_m),
                ("probes", len(estimate.probes)),
            ],
        )
    )
    print(f"[threshold] completed in {elapsed:.1f}s")
    if args.out:
        from pathlib import Path

        from repro.experiments.storage import save_json

        path = Path(args.out) / f"threshold_{args.algorithm}.json"
        save_json(path, estimate)
        print(f"[threshold] saved to {path}")
    return 0


def _run_worker(args: argparse.Namespace) -> int:
    from repro.experiments.worker import AUTH_TOKEN_ENV, serve_worker

    port = DEFAULT_WORKER_PORT if args.port is None else args.port
    token = args.auth_token or os.environ.get(AUTH_TOKEN_ENV) or None
    auth = (
        "authenticated (shared token)"
        if token
        else f"integrity-only — set {AUTH_TOKEN_ENV} for authentication"
    )
    try:
        serve_worker(
            args.host,
            port,
            token=token,
            ready=lambda bound: print(
                f"[worker] serving sweep chunks on {args.host}:{bound} "
                f"[{auth}] (Ctrl-C to stop)",
                flush=True,
            ),
        )
    except KeyboardInterrupt:
        print("[worker] stopped", flush=True)
    except OSError as exc:
        # serve_worker propagates bind/listen failures with the
        # address attached; surface them as a clean CLI error instead
        # of a traceback (the port is busy, the interface is wrong...).
        print(f"[worker] error: {exc}", file=sys.stderr, flush=True)
        return 1
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    from repro.experiments.worker import AUTH_TOKEN_ENV
    from repro.service.server import DEFAULT_PORT as DEFAULT_SERVICE_PORT
    from repro.service.server import serve as serve_decode

    port = DEFAULT_SERVICE_PORT if args.port is None else args.port
    token = args.auth_token or os.environ.get(AUTH_TOKEN_ENV) or None
    auth = (
        "authenticated (shared token)"
        if token
        else f"integrity-only — set {AUTH_TOKEN_ENV} for authentication"
    )
    state = args.state_dir or "in-memory (no --state-dir: no crash recovery)"
    try:
        serve_decode(
            args.host,
            port,
            args.state_dir,
            token=token,
            max_queue=args.max_queue,
            degrade_depth=args.degrade_depth,
            max_batch=args.max_batch,
            default_deadline=args.deadline,
            ready=lambda host, bound: print(
                f"[serve] decode service listening on {host}:{bound} "
                f"[{auth}] state={state} (Ctrl-C to stop)",
                flush=True,
            ),
        )
    except KeyboardInterrupt:
        print("[serve] stopped", flush=True)
    except OSError as exc:
        print(f"[serve] error: {exc}", file=sys.stderr, flush=True)
        return 1
    return 0


#: per-figure plot axes: (x_key, y_key, log_x, log_y)
_PLOT_AXES = {
    "fig2": ("n", "required_m_median", True, True),
    "fig3": ("n", "required_m_median", True, True),
    "fig4": ("n", "required_m_median", True, True),
    "fig5": ("n", "median", True, True),
    "fig6": ("m", "success_rate", False, False),
    "fig7": ("m", "overlap", False, False),
    "ablation_design": ("n", "required_m_p50", True, True),
    "robustness_degradation": ("fault_rate", "success_rate", False, False),
    "robustness_loss": ("drop_rate", "overlap", False, False),
    "robustness_comm": ("n", "mean_messages", True, True),
}


def _figure_kwargs(args: argparse.Namespace, name: str) -> dict:
    kwargs: dict = {
        "seed": args.seed,
        "engine": args.engine,
        "workers": args.workers,
        "backend": args.backend,
    }
    if name == "ablation_design":
        # The ablation's dedicated parser: its own (design, n) grid
        # knobs instead of the shared fig2-7 flags.
        if args.trials is not None:
            kwargs["trials"] = args.trials
        if args.n_values is not None:
            kwargs["n_values"] = tuple(args.n_values)
        kwargs["m_points"] = args.m_points
        return kwargs
    if name.startswith("robustness_"):
        # Dedicated parsers as well; the figure functions have no
        # engine seam (corrupted/distributed cells run the legacy
        # per-trial loop by construction).
        kwargs.pop("engine", None)
        if args.trials is not None:
            kwargs["trials"] = args.trials
        optional = {
            "robustness_degradation": (
                ("n", "n"),
                ("m", "m"),
                ("fault_kind", "kind"),
                ("fault_rate", "fault_rates"),
                ("algorithms", "algorithms"),
            ),
            "robustness_loss": (
                ("n", "n"),
                ("m", "m"),
                ("drop", "drop_rates"),
                ("delay", "delay"),
                ("max_delay", "max_delay"),
            ),
            "robustness_comm": (
                ("n_values", "n_values"),
                ("m_fraction", "m_fraction"),
            ),
        }[name]
        for attr, key in optional:
            value = getattr(args, attr)
            if value is not None:
                kwargs[key] = tuple(value) if isinstance(value, list) else value
        return kwargs
    if args.full_scale:
        if name in ("fig2", "fig3", "fig4"):
            kwargs["n_values"] = geometric_space(100, 100_000, 13)
            kwargs["trials"] = args.trials or 10
            kwargs["check_every"] = args.check_every
        elif name == "fig5":
            kwargs["n_values"] = (1_000, 10_000, 100_000)
            kwargs["trials"] = args.trials or 50
            kwargs["check_every"] = args.check_every
        else:
            kwargs["trials"] = args.trials or 100
    else:
        if name in ("fig2", "fig3", "fig4"):
            kwargs["n_values"] = geometric_space(args.n_min, args.n_max, args.n_points)
            kwargs["check_every"] = args.check_every
        if name == "fig5":
            kwargs["check_every"] = args.check_every
        if args.trials is not None:
            kwargs["trials"] = args.trials
    if args.algorithms is not None and name in ("fig2", "fig3", "fig4", "fig5"):
        kwargs["algorithms"] = tuple(args.algorithms)
    return kwargs


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    # The figure pipelines resolve kernel/shm from the environment (the
    # runner has no per-figure plumbing for them), and spawned pool
    # workers inherit the variables either way — so the flags become
    # env vars before any dispatch.
    if getattr(args, "kernel", None) is not None:
        os.environ[KERNEL_ENV] = args.kernel
    if getattr(args, "shm", None):
        os.environ[SHM_ENV] = "1"
    if getattr(args, "checkpoint", None):
        from repro.experiments.checkpoint import CHECKPOINT_ENV

        os.environ[CHECKPOINT_ENV] = args.checkpoint
    if getattr(args, "auth_token", None) and args.command not in (
        "worker", "serve"
    ):
        from repro.experiments.worker import AUTH_TOKEN_ENV

        os.environ[AUTH_TOKEN_ENV] = args.auth_token
    if args.command == "required-queries":
        return _run_required_queries(args)
    if args.command == "threshold":
        return _run_threshold(args)
    if args.command == "worker":
        return _run_worker(args)
    if args.command == "serve":
        return _run_serve(args)
    # `all` regenerates the paper's figures; the design ablation is an
    # add-on pipeline with its own grid and runs only by name.
    if args.figure == "all":
        names = sorted(name for name in FIGURES if name.startswith("fig"))
    else:
        names = [args.figure]
    for name in names:
        started = time.perf_counter()
        result = run_figure(name, **_figure_kwargs(args, name))
        elapsed = time.perf_counter() - started
        print(result.render())
        if args.plot:
            from repro.experiments.plots import plot_figure_result

            x_key, y_key, log_x, log_y = _PLOT_AXES[name]
            print()
            print(
                plot_figure_result(
                    result, x_key=x_key, y_key=y_key, log_x=log_x, log_y=log_y
                )
            )
        print(f"[{name}] completed in {elapsed:.1f}s")
        if args.out:
            result.save(args.out)
            print(f"[{name}] saved to {args.out}/{name}.json|.csv")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
