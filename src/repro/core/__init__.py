"""Core pooled-data substrate and the paper's greedy algorithm.

The core package implements the problem model of Section II (ground
truths, pooling designs, noise channels, measurements), the greedy
maximum-neighborhood decoder of Section III (Algorithm 1) in batch and
incremental form, and the theoretical query thresholds of Section IV
(Theorems 1 and 2).
"""

from repro.core.bounds import (
    DEFAULT_EPS,
    GAMMA_CONST,
    counting_lower_bound,
    noisy_query_phase,
    queries_from_density,
    theorem1_bound,
    theorem1_linear,
    theorem1_sublinear_gnc,
    theorem1_sublinear_z,
    theorem2_bound,
    theorem2_linear,
    theorem2_sublinear,
)
from repro.core.ground_truth import (
    GroundTruth,
    linear_k,
    regime_k,
    sample_ground_truth,
    sample_linear,
    sample_sublinear,
    sublinear_k,
)
from repro.core.batch import (
    BatchTrialRunner,
    first_success_m,
    sample_pooling_graph_batch,
)
from repro.core.chunking import chunk_bounds, chunk_sequence
from repro.core.corruption import (
    CorruptionModel,
    CorruptionReport,
    FaultSpec,
    apply_corruption,
    corruption_rng,
    network_fault_rng,
)
from repro.core.estimation import (
    channel_moments,
    effective_read_rate,
    estimate_effective_rate,
    measurement_sizes,
    estimate_gaussian_noise,
    estimate_general_channel,
    estimate_symmetric_channel,
    estimate_z_channel,
    fit_channel,
)
from repro.core.greedy import greedy_reconstruct, run_greedy_trial
from repro.core.incremental import (
    IncrementalDecoder,
    default_max_queries,
    required_queries,
)
from repro.core.measurement import Measurements, measure, measure_query
from repro.core.noise import (
    Channel,
    GaussianQueryNoise,
    NoiselessChannel,
    NoisyChannel,
    ZChannel,
    effective_channel_regime,
    make_channel,
)
from repro.core.pooling import (
    PoolingGraph,
    PoolingGraphBuilder,
    default_gamma,
    sample_pooling_graph,
    sample_query,
    sample_regular_design,
)
from repro.core.scores import (
    CENTERING_MODES,
    centered_scores,
    expected_query_result,
    scores_from_measurements,
    separation_margin,
    top_k_estimate,
)
from repro.core.twostage import (
    TwoStageConfig,
    channel_corrected_results,
    two_stage_reconstruct,
)
from repro.core.types import (
    ReconstructionResult,
    RequiredQueriesResult,
    evaluate_estimate,
)

__all__ = [
    # ground truth
    "GroundTruth",
    "sample_ground_truth",
    "sample_sublinear",
    "sample_linear",
    "sublinear_k",
    "linear_k",
    "regime_k",
    # pooling
    "PoolingGraph",
    "PoolingGraphBuilder",
    "sample_pooling_graph",
    "sample_pooling_graph_batch",
    "sample_query",
    "sample_regular_design",
    "default_gamma",
    # batch engine
    "BatchTrialRunner",
    "first_success_m",
    # chunking (sharded execution support)
    "chunk_bounds",
    "chunk_sequence",
    # noise
    "Channel",
    "NoiselessChannel",
    "NoisyChannel",
    "ZChannel",
    "GaussianQueryNoise",
    "make_channel",
    "effective_channel_regime",
    # measurement
    "Measurements",
    "measure",
    "measure_query",
    # fault scenarios (measurement corruption + network-fault specs)
    "CorruptionModel",
    "CorruptionReport",
    "FaultSpec",
    "apply_corruption",
    "corruption_rng",
    "network_fault_rng",
    # channel estimation
    "channel_moments",
    "effective_read_rate",
    "measurement_sizes",
    "estimate_effective_rate",
    "estimate_z_channel",
    "estimate_symmetric_channel",
    "estimate_general_channel",
    "estimate_gaussian_noise",
    "fit_channel",
    # scores / greedy
    "CENTERING_MODES",
    "centered_scores",
    "expected_query_result",
    "scores_from_measurements",
    "top_k_estimate",
    "separation_margin",
    "greedy_reconstruct",
    "run_greedy_trial",
    # two-stage extension
    "TwoStageConfig",
    "two_stage_reconstruct",
    "channel_corrected_results",
    # incremental
    "IncrementalDecoder",
    "required_queries",
    "default_max_queries",
    # bounds
    "GAMMA_CONST",
    "DEFAULT_EPS",
    "queries_from_density",
    "theorem1_bound",
    "theorem1_sublinear_z",
    "theorem1_sublinear_gnc",
    "theorem1_linear",
    "theorem2_bound",
    "theorem2_sublinear",
    "theorem2_linear",
    "counting_lower_bound",
    "noisy_query_phase",
    # results
    "ReconstructionResult",
    "RequiredQueriesResult",
    "evaluate_estimate",
]
