"""Vectorized batch simulation engine for the paper's experiments.

The figure pipelines (Figs. 2-5) historically simulated one query node
at a time: :func:`~repro.core.pooling.sample_pooling_graph` runs one
``np.unique`` per query, and
:meth:`~repro.core.incremental.IncrementalDecoder.add_query` makes one
RNG call per query. Both loops dominate every benchmark. This module
replaces them with batched equivalents:

* :func:`sample_pooling_graph_batch` draws all ``m * gamma`` edges with
  a **single** ``rng.integers`` call and assembles the CSR layout with
  one (radix) sort + a vectorized boundary scan instead of ``m``
  Python iterations;
* :class:`BatchTrialRunner` runs many independent trials
  (graph -> measure -> score -> decode) with per-trial child seeds,
  stacking the decode/evaluate stages into single array operations
  across trials, and provides a **chunked** incremental simulator that
  samples queries in geometric-growth blocks while still reporting the
  *exact* first-success stopping ``m`` (the paper's query-by-query
  stopping semantics) via a certificate-pruned prefix scan;
* :func:`first_success_m` replays pre-measured data and reports the
  first query count with strictly separated scores — the scan core
  shared with the chunked simulator.

Seed compatibility
------------------
NumPy's ``Generator`` draws bounded integers, binomials and normals
element by element from the underlying bit stream, so one batched call
consumes the stream exactly like the equivalent sequence of per-query
calls.  Consequently:

* ``sample_pooling_graph_batch(n, m, gamma, rng)`` returns the *same
  graph* as the legacy per-query ``sample_pooling_graph`` for the same
  seed;
* ``BatchTrialRunner.run_trials`` reproduces the legacy
  truth/graph/measure/decode trial loop bit for bit (same per-trial
  spawned seeds, same results);
* the chunked simulator reproduces the legacy per-query
  ``required_queries`` stopping ``m`` exactly for channels that draw no
  per-query noise (the noiseless channel).  Channels that do draw
  noise consume the stream in block order rather than query order, so
  the chunked run is a different — equally valid and deterministic —
  sample of the same process.

``tests/test_batch.py`` pins all of these equivalences.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.chunking import chunk_bounds
from repro.core.ground_truth import GroundTruth, sample_ground_truth
from repro.core.incremental import default_max_queries
from repro.core.noise import Channel, NoiselessChannel
from repro.core.pooling import PoolingGraph, default_gamma, sample_pooling_graph
from repro.core.scores import decode_top_k_stacked, expected_query_result
from repro.core.types import ReconstructionResult, RequiredQueriesResult
from repro.utils import config
from repro.utils.rng import RngLike, normalize_rng, spawn_rngs
from repro.utils.validation import check_positive_int

#: soft cap on incidence-array elements a chunked block may touch;
#: bounds the peak memory of a block at a few dozen MiB.
DEFAULT_BLOCK_ELEMENTS = 2**22

#: first block size of the chunked incremental simulator; blocks then
#: grow geometrically (doubling) up to the element cap.
DEFAULT_INITIAL_BLOCK = 32

#: largest agent-id value np.sort still radix-sorts (16-bit integers);
#: above it the row sort falls back to a comparison sort
_RADIX_MAX_N = 2**16

#: environment variable bounding the threads of the counting-sort CSR
#: scatter; ``1`` switches the threaded path off entirely.
CSR_THREADS_ENV = "REPRO_CSR_THREADS"

#: minimum per-call histogram work (``rows * (n + gamma)`` elements)
#: before the counting scatter fans out across threads — below this the
#: pool start-up outweighs any overlap.
_CSR_THREAD_MIN_ELEMENTS = 2**24


def _csr_threads() -> int:
    """Thread budget for the counting-sort scatter.

    ``REPRO_CSR_THREADS`` wins when set (``1`` = off switch, forcing
    the serial row loop); otherwise a conservative default of up to 4
    threads, capped at the CPU count. The scatter is embarrassingly
    column-parallel — each row's histogram touches disjoint output —
    so the thread count never changes the constructed triple.
    """
    threads = config.env_int(CSR_THREADS_ENV, minimum=1)
    if threads is not None:
        return threads
    return min(4, os.cpu_count() or 1)


def _use_counting_csr(n: int, gamma: int) -> bool:
    """Dense-regime dispatch rule for the CSR construction.

    The counting construction takes over when (a) queries are dense
    enough that the per-query histogram is well filled —
    ``gamma >= n/8`` — and (b) there is no radix fast path for the row
    sort (``n > 2**16`` overflows 16-bit ids, leaving only the
    comparison sort). In that regime it matches or beats the
    comparison sort in time (O(gamma + n) per query instead of
    O(gamma log gamma)) and needs only an O(n) transient histogram
    instead of the sort's full ``(b, gamma)`` sorted copy — the memory
    half of the dense-regime sampling ceiling. Below 2**16 the uint16
    radix sort is measurably faster than counting at every density, so
    it keeps the job.
    """
    return n > _RADIX_MAX_N and 8 * gamma >= n


def _counting_rows(
    draws: np.ndarray, n: int, lo: int, hi: int
) -> Tuple[List[np.ndarray], List[np.ndarray], np.ndarray]:
    """Histogram-scatter rows ``lo:hi`` of ``draws`` into CSR pieces.

    Returns per-row distinct-agent and multiplicity arrays plus the
    per-row sizes — the unit of work of the counting construction,
    shared by the serial loop and the threaded fan-out (rows touch
    disjoint outputs, so any row partition assembles to the same
    triple).
    """
    agents_parts: List[np.ndarray] = []
    counts_parts: List[np.ndarray] = []
    sizes = np.empty(hi - lo, dtype=np.int64)
    for i in range(lo, hi):
        grid = np.bincount(draws[i], minlength=n)
        distinct = np.flatnonzero(grid)
        agents_parts.append(distinct)
        counts_parts.append(grid[distinct])
        sizes[i - lo] = distinct.size
    return agents_parts, counts_parts, sizes


def _csr_from_draws_counting(
    draws: np.ndarray, n: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Counting-sort (bincount) CSR construction for the dense regime.

    Histograms each query's draws with ``bincount`` instead of sorting
    the row: the nonzero histogram cells, read in increasing agent
    order, are exactly the query's distinct incidences with their
    multiplicities — the same CSR triple (and the same edge multiset)
    as the sort-based construction, from the same draws. The O(n)
    histogram is transient per row, so peak memory stays at the output
    size rather than a full sorted copy of ``draws``.

    Large constructions fan the row loop out across a thread pool
    (column-parallel scatter; see :func:`_csr_threads` and the
    ``REPRO_CSR_THREADS`` off switch). Row chunks are assembled in row
    order, so the threaded triple is identical to the serial one.
    """
    b, gamma = draws.shape
    threads = _csr_threads()
    if (
        threads > 1
        and b >= 2 * threads
        and b * (n + gamma) >= _CSR_THREAD_MIN_ELEMENTS
    ):
        from concurrent.futures import ThreadPoolExecutor

        bounds = chunk_bounds(b, threads)
        with ThreadPoolExecutor(max_workers=len(bounds)) as pool:
            parts = list(
                pool.map(lambda span: _counting_rows(draws, n, *span), bounds)
            )
        agents_parts = [arr for part in parts for arr in part[0]]
        counts_parts = [arr for part in parts for arr in part[1]]
        sizes = np.concatenate([part[2] for part in parts])
    else:
        agents_parts, counts_parts, sizes = _counting_rows(draws, n, 0, b)
    indptr = np.empty(b + 1, dtype=np.int64)
    indptr[0] = 0
    np.cumsum(sizes, out=indptr[1:])
    return indptr, np.concatenate(agents_parts), np.concatenate(counts_parts)


def _csr_from_draws(draws: np.ndarray, n: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Collapse raw edge draws ``(b, gamma)`` into the CSR triple.

    Each row is sorted, and runs of equal values become one distinct
    incidence with a multiplicity — the batched equivalent of the
    per-query ``np.unique(..., return_counts=True)``. Agent ids below
    2**16 take a radix-sort fast path (roughly 2x faster than the
    comparison sort for the paper's dense ``gamma = n/2`` queries).
    Dense queries over larger agent sets dispatch to the sort-free
    counting construction (see :func:`_use_counting_csr`); the
    remaining sparse large-``n`` case narrows to uint32 before the
    comparison sort (~1.5x — the sort is memory-bound). All paths
    return the identical triple.
    """
    b, gamma = draws.shape
    if _use_counting_csr(n, gamma):
        return _csr_from_draws_counting(draws, n)
    if n <= _RADIX_MAX_N:
        flat = np.sort(draws.astype(np.uint16), axis=1, kind="stable").ravel()
    elif n <= 2**32:
        flat = np.sort(draws.astype(np.uint32), axis=1).ravel()
    else:
        flat = np.sort(draws, axis=1).ravel()
    starts = np.empty(flat.size, dtype=bool)
    starts[0] = True
    np.not_equal(flat[1:], flat[:-1], out=starts[1:])
    starts[::gamma] = True  # value runs never cross query boundaries
    idx = np.flatnonzero(starts)
    agents = flat[idx].astype(np.int64)
    counts = np.diff(idx, append=flat.size)
    indptr = np.empty(b + 1, dtype=np.int64)
    indptr[0] = 0
    indptr[1:] = np.searchsorted(idx, np.arange(gamma, b * gamma + 1, gamma))
    return indptr, agents, counts


def sample_pooling_graph_batch(
    n: int,
    m: int,
    gamma: Optional[int] = None,
    rng: RngLike = None,
    *,
    with_replacement: bool = True,
) -> PoolingGraph:
    """Draw a pooling graph from the paper's model in one vectorized pass.

    Seed-compatible with :func:`~repro.core.pooling.sample_pooling_graph`:
    for the same ``rng`` state both functions return identical graphs,
    because a single ``integers`` call of shape ``(m, gamma)`` consumes
    the generator exactly like ``m`` sequential per-query calls.

    The ``with_replacement=False`` ablation design draws each query
    without replacement; that path has no batched ``Generator``
    primitive with the same stream, so it delegates to the legacy
    per-query sampler to keep seed compatibility.
    """
    n = check_positive_int(n, "n")
    m = check_positive_int(m, "m", minimum=0)
    gamma = default_gamma(n) if gamma is None else check_positive_int(gamma, "gamma")
    if not with_replacement:
        return sample_pooling_graph(n, m, gamma, rng, with_replacement=False)
    if m == 0:
        return PoolingGraph(
            n=n,
            gamma=gamma,
            indptr=np.zeros(1, dtype=np.int64),
            agents=np.zeros(0, dtype=np.int64),
            counts=np.zeros(0, dtype=np.int64),
        )
    gen = normalize_rng(rng)
    draws = gen.integers(0, n, size=(m, gamma))
    indptr, agents, counts = _csr_from_draws(draws, n)
    # The construction guarantees the CSR invariants, so skip the
    # multi-pass __post_init__ validation on this hot path.
    return PoolingGraph._unchecked(n, gamma, indptr, agents, counts)


class MeasurementStream:
    """Block-grown, prefix-sliceable measured query stream of one trial.

    Samples one trial's query stream in geometric-growth blocks — each
    block is a single ``rng.integers`` draw collapsed to CSR plus one
    vectorized channel measurement — exactly the generator-consumption
    order of the chunked incremental simulator. Both incremental
    consumers share it:

    * the greedy required-queries path drives :meth:`next_block` and
      scans each block as it appears (``retain=False`` — nothing is
      stored, matching the legacy streaming memory profile);
    * the AMP required-m scan (:func:`repro.amp.batch_amp.
      required_queries_amp`) drives :meth:`grow_to` with ``retain=True``
      and replays **prefixes**: the pooling graph at ``m'`` queries is a
      row-prefix of the graph at ``m >= m'``, so :meth:`prefix` is a
      free ``indptr[:m'+1]`` / ``agents[:indptr[m']]`` slice plus the
      matching results slice — no resampling, no re-measurement.

    Determinism contract: the block schedule (sizes and order) is a
    pure function of ``(initial_block, block_elements, gamma, k,
    max_m)``, and growth only ever appends blocks, so the stream's
    first ``m`` queries — and therefore every prefix probe — are
    identical no matter which consumer drives the growth or how far
    past ``m`` it grows. A trial is thus a pure function of its child
    seed, which is what keeps sharded and stacked required-m scans
    bit-identical to serial ones.
    """

    def __init__(
        self,
        n: int,
        gamma: int,
        channel: Channel,
        truth: GroundTruth,
        gen: RngLike = None,
        *,
        max_m: int,
        initial_block: int = DEFAULT_INITIAL_BLOCK,
        block_elements: int = DEFAULT_BLOCK_ELEMENTS,
        retain: bool = True,
    ):
        self.n = check_positive_int(n, "n")
        self.gamma = check_positive_int(gamma, "gamma")
        self.channel = channel
        self.truth = truth
        self.gen = normalize_rng(gen)
        self.max_m = check_positive_int(max_m, "max_m", minimum=0)
        self.retain = retain
        self._sigma64 = truth.sigma.astype(np.int64)
        # Bound the per-block incidence arrays (b * gamma) AND the
        # greedy scanner's (b, k) ones-prefix matrix — one shared
        # schedule for both consumers.
        self._cap = max(1, block_elements // max(self.gamma, truth.k, 1))
        self._block = min(check_positive_int(initial_block, "initial_block"), self._cap)
        self.m_done = 0
        # Retained blocks accumulate in per-block part lists and are
        # concatenated lazily on first prefix access after growth —
        # eager per-block concatenation would re-copy the whole stream
        # on every append, going quadratic once block growth hits the
        # element cap (dense gamma at paper scale).
        self._edges = 0
        self._indptr_parts: List[np.ndarray] = [np.zeros(1, dtype=np.int64)]
        self._agents_parts: List[np.ndarray] = []
        self._counts_parts: List[np.ndarray] = []
        self._results_parts: List[np.ndarray] = []
        self._consolidated = None

    def next_block(self):
        """Sample and measure the next block of the stream.

        Returns ``(lo, indptr, agents, counts, results)`` — the block's
        0-based starting query index plus its *local* CSR triple and
        raw channel results — or ``None`` once ``max_m`` queries exist.
        In retain mode the block is also appended to the stream arrays.
        """
        if self.m_done >= self.max_m:
            return None
        b = min(self._block, self.max_m - self.m_done)
        draws = self.gen.integers(0, self.n, size=(b, self.gamma))
        indptr, agents, counts = _csr_from_draws(draws, self.n)
        weighted = counts * self._sigma64[agents]
        e1 = np.add.reduceat(weighted, indptr[:-1])
        results = self.channel.measure(e1, self.gamma, self.gen)
        lo = self.m_done
        self.m_done += b
        self._block = min(self._block * 2, self._cap)
        if self.retain:
            self._indptr_parts.append(indptr[1:] + self._edges)
            self._edges += int(indptr[-1])
            self._agents_parts.append(agents)
            self._counts_parts.append(counts)
            self._results_parts.append(np.asarray(results, dtype=np.float64))
            self._consolidated = None
        return lo, indptr, agents, counts, results

    def grow_to(self, m: int) -> None:
        """Ensure the first ``min(m, max_m)`` queries exist (retain mode)."""
        target = min(m, self.max_m)
        while self.m_done < target:
            self.next_block()

    def _consolidate(self):
        if self._consolidated is None:
            self._consolidated = (
                np.concatenate(self._indptr_parts),
                (
                    np.concatenate(self._agents_parts)
                    if self._agents_parts
                    else np.zeros(0, dtype=np.int64)
                ),
                (
                    np.concatenate(self._counts_parts)
                    if self._counts_parts
                    else np.zeros(0, dtype=np.int64)
                ),
                (
                    np.concatenate(self._results_parts)
                    if self._results_parts
                    else np.zeros(0, dtype=np.float64)
                ),
            )
        return self._consolidated

    @property
    def indptr(self) -> np.ndarray:
        """Consolidated CSR ``indptr`` of the retained stream."""
        return self._consolidate()[0]

    @property
    def agents(self) -> np.ndarray:
        """Consolidated distinct-agent ids of the retained stream."""
        return self._consolidate()[1]

    @property
    def counts(self) -> np.ndarray:
        """Consolidated incidence multiplicities of the retained stream."""
        return self._consolidate()[2]

    @property
    def results(self) -> np.ndarray:
        """Consolidated channel results of the retained stream."""
        return self._consolidate()[3]

    def prefix(self, m: int):
        """CSR triple + results views of the first ``m`` queries.

        Returns ``(indptr, agents, counts, results)`` slices — views
        into the retained stream, so a probe at ``m`` costs no copies.
        """
        if not self.retain:
            raise ValueError("prefix replay requires a retained stream")
        if m > self.m_done:
            raise ValueError(
                f"prefix m={m} exceeds the grown stream length {self.m_done}"
            )
        edges = int(self.indptr[m])
        return (
            self.indptr[: m + 1],
            self.agents[:edges],
            self.counts[:edges],
            self.results[:m],
        )


class ReplayedStream:
    """Prefix-replay view over a fully grown, externally stored stream.

    Mirrors the prefix-replay surface of :class:`MeasurementStream`
    (``prefix`` / ``grow_to`` / the consolidated array properties /
    ``truth``) on arrays that were grown *elsewhere*: the driver of a
    shared-memory sweep grows each trial's stream once, publishes the
    consolidated arrays into the sweep arena, and workers wrap the
    attached read-only views in this class instead of resampling the
    stream. The determinism contract of :class:`MeasurementStream`
    (a stream's first ``m`` queries are identical no matter how far
    past ``m`` it has grown) is exactly what makes the replayed
    prefixes bit-identical to the ones the worker would have sampled
    itself from the same child seed.

    ``grow_to`` within the stored length is a no-op; growing past it
    raises — a replayed stream carries no generator to extend it, and
    a consumer probing beyond the published prefix is a driver-side
    eligibility bug, not something to paper over.
    """

    def __init__(
        self,
        n: int,
        gamma: int,
        truth: GroundTruth,
        indptr: np.ndarray,
        agents: np.ndarray,
        counts: np.ndarray,
        results: np.ndarray,
    ):
        self.n = n
        self.gamma = gamma
        self.truth = truth
        self.retain = True
        self.m_done = int(indptr.size - 1)
        self._indptr = indptr
        self._agents = agents
        self._counts = counts
        self._results = results

    @property
    def indptr(self) -> np.ndarray:
        return self._indptr

    @property
    def agents(self) -> np.ndarray:
        return self._agents

    @property
    def counts(self) -> np.ndarray:
        return self._counts

    @property
    def results(self) -> np.ndarray:
        return self._results

    def grow_to(self, m: int) -> None:
        if m > self.m_done:
            raise ValueError(
                f"replayed stream holds {self.m_done} queries and cannot "
                f"grow to {m}"
            )

    def prefix(self, m: int):
        """CSR triple + results views of the first ``m`` stored queries."""
        if m > self.m_done:
            raise ValueError(
                f"prefix m={m} exceeds the replayed stream length "
                f"{self.m_done}"
            )
        edges = int(self._indptr[m])
        return (
            self._indptr[: m + 1],
            self._agents[:edges],
            self._counts[:edges],
            self._results[:m],
        )


class SessionStream:
    """Append-fed measured query stream with the prefix-replay surface.

    The online decode service's server-side twin of
    :class:`MeasurementStream`: a session's queries arrive from a
    client over the wire — already sampled and measured elsewhere —
    and :meth:`append` feeds them in, in arrival order. The stream
    surface everything downstream consumes (``prefix`` / ``grow_to`` /
    the consolidated array properties / ``truth``) is identical, so
    the ragged block-diagonal stacking in :mod:`repro.amp.batch_amp`
    decodes a session prefix bit-identically to a standalone run on
    the same queries.

    Determinism/recovery contract (the service's crash-recovery
    foundation): the stream is append-only and ``prefix(m)`` depends
    only on the first ``m`` appended queries, so a session restored
    from a durable record by re-appending its queries in the original
    order is indistinguishable from the uninterrupted stream — same
    arrays, same float accumulation order downstream.
    """

    def __init__(self, n: int, gamma: int, truth: GroundTruth):
        self.n = check_positive_int(n, "n")
        self.gamma = check_positive_int(gamma, "gamma")
        if truth.sigma.size != self.n:
            raise ValueError(
                f"truth has {truth.sigma.size} agents, expected n={n}"
            )
        self.truth = truth
        self.retain = True
        self.m_done = 0
        self._edges = 0
        self._indptr_parts: List[np.ndarray] = [np.zeros(1, dtype=np.int64)]
        self._agents_parts: List[np.ndarray] = []
        self._counts_parts: List[np.ndarray] = []
        self._results_parts: List[np.ndarray] = []
        self._consolidated = None

    def append(self, agents, counts, result: float) -> int:
        """Append one measured query; returns its 0-based index.

        ``agents``/``counts`` are the query's distinct-agent CSR row
        (multiplicities summing to ``gamma``), ``result`` the raw
        channel measurement — the same row shape
        :meth:`repro.core.incremental.IncrementalDecoder.ingest_query`
        takes, so one wire payload can feed both consumers.
        """
        agents = np.ascontiguousarray(agents, dtype=np.int64)
        counts = np.ascontiguousarray(counts, dtype=np.int64)
        if agents.ndim != 1 or counts.ndim != 1 or agents.size != counts.size:
            raise ValueError(
                "agents and counts must be 1-D arrays of equal length"
            )
        if agents.size:
            if agents.min() < 0 or agents.max() >= self.n:
                raise ValueError(f"agent ids must lie in [0, {self.n})")
            if counts.min() < 1:
                raise ValueError("incidence counts must be >= 1")
        if int(counts.sum()) != self.gamma:
            raise ValueError(
                f"query incidences must sum to gamma={self.gamma}, "
                f"got {int(counts.sum())}"
            )
        self._indptr_parts.append(
            np.array([self._edges + agents.size], dtype=np.int64)
        )
        self._edges += int(agents.size)
        self._agents_parts.append(agents)
        self._counts_parts.append(counts)
        self._results_parts.append(np.array([result], dtype=np.float64))
        self._consolidated = None
        self.m_done += 1
        return self.m_done - 1

    def _consolidate(self):
        if self._consolidated is None:
            self._consolidated = (
                np.concatenate(self._indptr_parts),
                (
                    np.concatenate(self._agents_parts)
                    if self._agents_parts
                    else np.zeros(0, dtype=np.int64)
                ),
                (
                    np.concatenate(self._counts_parts)
                    if self._counts_parts
                    else np.zeros(0, dtype=np.int64)
                ),
                (
                    np.concatenate(self._results_parts)
                    if self._results_parts
                    else np.zeros(0, dtype=np.float64)
                ),
            )
        return self._consolidated

    @property
    def indptr(self) -> np.ndarray:
        """Consolidated CSR ``indptr`` of the appended stream."""
        return self._consolidate()[0]

    @property
    def agents(self) -> np.ndarray:
        """Consolidated distinct-agent ids of the appended stream."""
        return self._consolidate()[1]

    @property
    def counts(self) -> np.ndarray:
        """Consolidated incidence multiplicities of the appended stream."""
        return self._consolidate()[2]

    @property
    def results(self) -> np.ndarray:
        """Consolidated channel results of the appended stream."""
        return self._consolidate()[3]

    def grow_to(self, m: int) -> None:
        """No-op within the appended length; growing past it raises.

        A session stream has no generator — new queries come only from
        the client — so a consumer asking for more than was appended is
        a caller bug, not something to paper over.
        """
        if m > self.m_done:
            raise ValueError(
                f"session stream holds {self.m_done} queries and cannot "
                f"grow to {m}"
            )

    def prefix(self, m: int):
        """CSR triple + results views of the first ``m`` appended queries."""
        if m > self.m_done:
            raise ValueError(
                f"prefix m={m} exceeds the appended stream length "
                f"{self.m_done}"
            )
        edges = int(self.indptr[m])
        return (
            self.indptr[: m + 1],
            self.agents[:edges],
            self.counts[:edges],
            self.results[:m],
        )


class _SuccessScanner:
    """Exact first-success scan with a lazy zeros-maximum certificate.

    Checking strict score separation after every query costs O(n) per
    query in the legacy loop, and a dense O(block x n) cumulative
    matrix would make blocks no cheaper. The scanner instead tracks,
    per block of queries:

    * exact prefix scores of all ``k`` 1-agents (a ``(b, k)``
      cumulative sum — ``k`` is tiny in every regime of the paper), and
    * exact prefix scores of one *champion* 0-agent (the current
      zeros-argmax).

    The zeros maximum is always >= the champion's score, so every
    prefix whose 1-agent minimum does not beat the champion is
    certified unsuccessful without touching the other ``n - k - 1``
    agents. Only prefixes that do beat the champion get an exact
    O(n + incidences) check, and a failed check promotes that prefix's
    zeros-argmax to champion — each exact check either terminates the
    run or strictly improves the certificate, so pre-threshold blocks
    cost O(incidences) total.

    Within a block, the suspicion test and the exact check use the same
    floating-point groupings (partial sum plus carried-in scores), so
    the certificate itself has no rounding slack. Across blocks the
    carried scores are accumulated blockwise (``s + sum(block)``)
    rather than query by query, which is exact — and hence identical
    to :class:`~repro.core.incremental.IncrementalDecoder` — whenever
    the deltas are half-integers (integer-valued channels under
    ``half_k`` centering). For float deltas (Gaussian noise, oracle
    centering) scores agree only up to ~1 ulp of associativity error,
    so a stopping decision sitting within rounding of a score tie may
    in principle differ from the sequential scan or vary with the
    block size.
    """

    def __init__(self, truth: GroundTruth):
        self.n = truth.n
        self.ones_idx = truth.ones
        self.zeros_idx = truth.zeros
        self.scores = np.zeros(self.n, dtype=np.float64)
        self._one_col = np.zeros(self.n, dtype=np.int64)
        self._one_col[self.ones_idx] = np.arange(self.ones_idx.size)
        self._one_flag = np.zeros(self.n, dtype=bool)
        self._one_flag[self.ones_idx] = True

    def scan(
        self,
        indptr: np.ndarray,
        agents: np.ndarray,
        deltas: np.ndarray,
        checkable: np.ndarray,
    ) -> Optional[int]:
        """Scan one block; return the first successful prefix index.

        ``deltas`` are the per-query centered result increments and
        ``checkable[t]`` flags the prefixes where the stopping rule may
        fire (the ``check_every`` stride). On success, returns the
        0-based block index ``t`` (scores are left untouched — the run
        is over); otherwise ingests the whole block into ``scores`` and
        returns ``None``.
        """
        b = indptr.size - 1
        rows = np.repeat(np.arange(b), np.diff(indptr))
        d_inc = deltas[rows]
        if self.ones_idx.size == 0 or self.zeros_idx.size == 0:
            # Degenerate truths separate vacuously (margin +inf).
            hits = np.flatnonzero(checkable)
            if hits.size:
                return int(hits[0])
        else:
            k = self.ones_idx.size
            sel = self._one_flag[agents]
            ones_prefix = np.zeros((b, k), dtype=np.float64)
            ones_prefix[rows[sel], self._one_col[agents[sel]]] = d_inc[sel]
            np.cumsum(ones_prefix, axis=0, out=ones_prefix)
            ones_prefix += self.scores[self.ones_idx]
            ones_min = ones_prefix.min(axis=1)
            champion = self.zeros_idx[np.argmax(self.scores[self.zeros_idx])]
            t0 = 0
            ts = np.arange(b)
            while True:
                champ_sel = agents == champion
                champ_prefix = np.zeros(b, dtype=np.float64)
                champ_prefix[rows[champ_sel]] = d_inc[champ_sel]
                np.cumsum(champ_prefix, out=champ_prefix)
                champ_prefix += self.scores[champion]
                cand = np.flatnonzero(checkable & (ones_min > champ_prefix) & (ts >= t0))
                if cand.size == 0:
                    break
                t = int(cand[0])
                hi = int(indptr[t + 1])
                scores_t = self.scores + np.bincount(
                    agents[:hi], weights=d_inc[:hi], minlength=self.n
                )
                if scores_t[self.ones_idx].min() > scores_t[self.zeros_idx].max():
                    return t
                champion = self.zeros_idx[np.argmax(scores_t[self.zeros_idx])]
                t0 = t + 1
        self.scores += np.bincount(agents, weights=d_inc, minlength=self.n)
        return None


def first_success_m(
    graph: PoolingGraph,
    truth: GroundTruth,
    results: np.ndarray,
    *,
    centering: str = "half_k",
    channel: Optional[Channel] = None,
    check_every: int = 1,
    block_elements: int = DEFAULT_BLOCK_ELEMENTS,
) -> Optional[int]:
    """Replay pre-measured data; return the first separated query count.

    Scans the queries of ``graph`` in order, maintaining the running
    centered scores, and returns the smallest ``m`` (a multiple of
    ``check_every``) at which the scores of 1-agents and 0-agents are
    strictly separated — what feeding the data query by query into
    :class:`~repro.core.incremental.IncrementalDecoder` and checking
    ``is_successful`` after each step reports; the match is exact for
    half-integer deltas (integer-valued channels under ``half_k``
    centering) and up to floating-point associativity (~1 ulp of the
    scores) otherwise (see :class:`_SuccessScanner`). Returns ``None``
    when no checked prefix separates.
    """
    check_every = check_positive_int(check_every, "check_every")
    if graph.n != truth.n:
        raise ValueError(f"graph has n={graph.n} agents but truth has n={truth.n}")
    results = np.asarray(results, dtype=np.float64)
    if results.shape != (graph.m,):
        raise ValueError(f"results must have shape ({graph.m},), got {results.shape}")
    if centering == "half_k":
        offset = truth.k / 2.0
    elif centering == "oracle":
        if channel is None:
            raise ValueError("oracle centering requires the channel")
        offset = expected_query_result(channel, graph.n, truth.k, graph.gamma)
    else:
        raise ValueError(
            f"unknown centering {centering!r}; valid: ('half_k', 'oracle')"
        )
    deltas = results - offset
    scanner = _SuccessScanner(truth)
    block = max(1, block_elements // max(int(graph.gamma), truth.k, 1))
    for lo in range(0, graph.m, block):
        hi = min(lo + block, graph.m)
        e_lo = int(graph.indptr[lo])
        e_hi = int(graph.indptr[hi])
        ms = np.arange(lo + 1, hi + 1)
        t = scanner.scan(
            graph.indptr[lo : hi + 1] - e_lo,
            graph.agents[e_lo:e_hi],
            deltas[lo:hi],
            ms % check_every == 0,
        )
        if t is not None:
            return int(ms[t])
    return None


class BatchTrialRunner:
    """Vectorized many-trial simulation for one ``(n, k, channel)`` cell.

    Two entry points, both returning the same result types as the
    legacy per-query code paths:

    * :meth:`run_trials` — fixed-``m`` reconstruction trials
      (graph -> measure -> score -> decode), sampled with per-trial
      child seeds and decoded/evaluated as one stacked computation.
      Bit-for-bit identical to running the legacy
      truth/graph/measure/:func:`~repro.core.greedy.greedy_reconstruct`
      loop over ``spawn_rngs(seed, trials)``.
    * :meth:`required_queries` — the chunked incremental simulator:
      queries are sampled in geometric-growth blocks (one RNG call per
      block instead of per query) and the exact stopping ``m`` is
      located with the certificate-pruned prefix scan of
      :class:`_SuccessScanner`, preserving the paper's query-by-query
      stopping semantics.
    """

    def __init__(
        self,
        n: int,
        k: int,
        channel: Optional[Channel] = None,
        *,
        gamma: Optional[int] = None,
        centering: str = "half_k",
        initial_block: int = DEFAULT_INITIAL_BLOCK,
        block_elements: int = DEFAULT_BLOCK_ELEMENTS,
    ):
        self.n = check_positive_int(n, "n")
        self.k = check_positive_int(k, "k")
        self.channel = channel if channel is not None else NoiselessChannel()
        self.gamma = default_gamma(n) if gamma is None else check_positive_int(gamma, "gamma")
        if centering not in ("half_k", "oracle"):
            raise ValueError(
                f"unknown centering {centering!r}; valid: ('half_k', 'oracle')"
            )
        self.centering = centering
        self._initial_block = check_positive_int(initial_block, "initial_block")
        self._block_elements = check_positive_int(block_elements, "block_elements")

    def _offset(self) -> float:
        if self.centering == "oracle":
            return expected_query_result(self.channel, self.n, self.k, self.gamma)
        return self.k / 2.0

    # -- fixed-m stacked trials -----------------------------------------

    def run_trials(
        self, m: int, trials: int, seed: RngLike = 0
    ) -> List[ReconstructionResult]:
        """Run ``trials`` independent fixed-``m`` greedy reconstructions.

        Sampling stays per-trial (each trial owns a spawned child seed,
        so any single trial can be reproduced in isolation), but
        top-``k`` decoding and evaluation run stacked across all trials.
        """
        check_positive_int(trials, "trials")
        return self.run_trials_seeded(m, spawn_rngs(seed, trials))

    def run_trials_seeded(
        self, m: int, seeds: Sequence[RngLike]
    ) -> List[ReconstructionResult]:
        """Fixed-``m`` trials on explicitly supplied per-trial seeds.

        ``seeds`` holds one pre-spawned seed (or generator) per trial —
        the entry point the multiprocess scheduler
        (:mod:`repro.experiments.parallel`) uses to run a contiguous
        chunk of a larger trial list: every trial's result depends only
        on its own seed, so sharding the seed list and concatenating
        the chunk outputs reproduces :meth:`run_trials` bit for bit.
        """
        m = check_positive_int(m, "m", minimum=0)
        trials = len(seeds)
        if trials == 0:
            return []
        n, k, offset = self.n, self.k, self._offset()
        scores = np.empty((trials, n), dtype=np.float64)
        sigma = np.empty((trials, n), dtype=np.int8)
        for t, seed_t in enumerate(seeds):
            gen = normalize_rng(seed_t)
            truth = sample_ground_truth(n, k, gen)
            graph = sample_pooling_graph_batch(n, m, self.gamma, gen)
            e1 = graph.edges_into_ones(truth.sigma)
            results = self.channel.measure(e1, graph.query_sizes(), gen)
            psi = graph.neighborhood_sums(results)
            delta_star = graph.distinct_degrees()
            scores[t] = psi - delta_star.astype(np.float64) * offset
            sigma[t] = truth.sigma
        estimate, errors, overlap, margins = decode_top_k_stacked(
            scores, sigma, k
        )
        out: List[ReconstructionResult] = []
        for t in range(trials):
            margin = float(margins[t])
            out.append(
                ReconstructionResult(
                    estimate=estimate[t],
                    scores=scores[t],
                    exact=bool(errors[t] == 0),
                    overlap=float(overlap[t]),
                    separated=bool(margin > 0.0),
                    hamming_errors=int(errors[t]),
                    meta={
                        "algorithm": "greedy",
                        "engine": "batch",
                        "centering": self.centering,
                        "n": n,
                        "m": m,
                        "k": k,
                        "channel": self.channel.describe(),
                        "separation_margin": margin,
                    },
                )
            )
        return out

    # -- chunked incremental simulation ---------------------------------

    def required_queries(
        self,
        rng: RngLike = None,
        *,
        max_m: Optional[int] = None,
        check_every: int = 1,
        truth: Optional[GroundTruth] = None,
    ) -> RequiredQueriesResult:
        """Chunked required-number-of-queries run (Figures 2-5).

        Samples query blocks of geometrically growing size with one RNG
        call per block, measures them through the channel in one
        vectorized call, and locates the exact first query count with
        strictly separated scores — the same stopping rule (and, for
        channels that draw no per-query noise, the same stopping ``m``
        for the same seed) as the legacy per-query
        :func:`~repro.core.incremental.required_queries`.
        """
        check_every = check_positive_int(check_every, "check_every")
        gen = normalize_rng(rng)
        if truth is None:
            truth = sample_ground_truth(self.n, self.k, gen)
        elif truth.n != self.n or truth.k != self.k:
            raise ValueError(
                f"provided truth has (n={truth.n}, k={truth.k}), expected "
                f"(n={self.n}, k={self.k})"
            )
        if max_m is None:
            max_m = default_max_queries(self.n, self.k, self.channel)
        offset = self._offset()
        scanner = _SuccessScanner(truth)
        # The shared block-grown stream (sampling + measurement); the
        # greedy scan consumes blocks as they appear and retains nothing.
        stream = MeasurementStream(
            self.n,
            self.gamma,
            self.channel,
            truth,
            gen,
            max_m=max_m,
            initial_block=self._initial_block,
            block_elements=self._block_elements,
            retain=False,
        )
        meta = {
            "channel": self.channel.describe(),
            "gamma": self.gamma,
            "max_m": max_m,
            "engine": "batch",
        }
        checks = 0
        while True:
            block = stream.next_block()
            if block is None:
                break
            lo, indptr, agents, counts, results = block
            deltas = np.asarray(results, dtype=np.float64) - offset
            ms = np.arange(lo + 1, lo + indptr.size)
            checkable = ms % check_every == 0
            t = scanner.scan(indptr, agents, deltas, checkable)
            if t is not None:
                return RequiredQueriesResult(
                    required_m=int(ms[t]),
                    n=self.n,
                    k=self.k,
                    succeeded=True,
                    checks=checks + int(np.count_nonzero(checkable[: t + 1])),
                    meta=meta,
                )
            checks += int(np.count_nonzero(checkable))
        return RequiredQueriesResult(
            required_m=None,
            n=self.n,
            k=self.k,
            succeeded=False,
            checks=checks,
            meta=meta,
        )

    def required_queries_trials(
        self,
        trials: int,
        seed: RngLike = 0,
        *,
        max_m: Optional[int] = None,
        check_every: int = 1,
    ) -> List[RequiredQueriesResult]:
        """Repeated chunked runs on independent per-trial child seeds."""
        check_positive_int(trials, "trials")
        return [
            self.required_queries(gen, max_m=max_m, check_every=check_every)
            for gen in spawn_rngs(seed, trials)
        ]


__all__ = [
    "CSR_THREADS_ENV",
    "DEFAULT_BLOCK_ELEMENTS",
    "DEFAULT_INITIAL_BLOCK",
    "sample_pooling_graph_batch",
    "first_success_m",
    "MeasurementStream",
    "ReplayedStream",
    "SessionStream",
    "BatchTrialRunner",
]
