"""Closed-form query thresholds (Theorems 1 and 2 of the paper).

All bounds return the number of queries ``m`` (as a float — callers
round up) above which Algorithm 1 succeeds w.h.p.

Notation: ``gamma_const = 1 - exp(-1/2)`` (the paper's ``γ``),
``theta`` the sublinear exponent (``k = n**theta``), ``zeta`` the linear
density (``k = zeta * n``), ``p``/``q`` the channel's false-negative /
false-positive rates, ``lam`` the Gaussian noise level.

Theorem 1 (noisy channel model):

* sublinear, Z-channel (``q = 0``)::

      m >= (4γ + ε) (1 + sqrt(θ))² / (1 - p) · k ln n

* sublinear, general noisy channel (``q > 0``)::

      m >= (4γ + ε) q (1 + sqrt(θ))² / (1 - p - q)² · n ln n

* linear (Z and general)::

      m >= (16γ + ε) (q + ζ(1 - p - q)) / (1 - p - q)² · n ln n

  Note: the theorem *statement* prints the numerator as
  ``(q + (1-p-q)) ζ`` while the proof (Section IV-C, linear case)
  derives ``q + ζ(1-p-q)``; the two coincide at ``q = 0`` and the proof
  version matches the noiseless special case of Theorem 2, so we
  implement the proof version.

Theorem 2 (noisy query model), valid when ``λ² = o(m / ln n)``:

* sublinear:  ``m >= (4γ + ε)(1 + sqrt(θ))² k ln n``
* linear:     ``m >= (16γ + ε) ζ n ln n``

and reconstruction fails with positive probability for any ``m`` when
``λ² = Ω(m)``.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive_int,
    check_probability,
)

#: the paper's γ = 1 - e^{-1/2} ≈ 0.3935
GAMMA_CONST: float = 1.0 - math.exp(-0.5)

#: default slack ε used by the paper's dashed theory lines (Fig. 2)
DEFAULT_EPS: float = 0.05


def _check_channel(p: float, q: float) -> None:
    check_probability(p, "p")
    check_probability(q, "q")
    if p + q >= 1.0:
        raise ValueError(f"the theorems require p + q < 1, got p={p}, q={q}")


def queries_from_density(d: float, k: int, n: int) -> float:
    """The paper's parametrization ``m = d · k · ln n``."""
    return d * k * math.log(n)


def theorem1_sublinear_z(
    n: int, theta: float, p: float, eps: float = DEFAULT_EPS
) -> float:
    """Theorem 1, sublinear regime, Z-channel (``q = 0``)."""
    n = check_positive_int(n, "n", minimum=2)
    theta = check_fraction(theta, "theta")
    _check_channel(p, 0.0)
    check_non_negative(eps, "eps")
    k = n**theta
    c = (4.0 * GAMMA_CONST + eps) * (1.0 + math.sqrt(theta)) ** 2 / (1.0 - p)
    return c * k * math.log(n)


def theorem1_sublinear_gnc(
    n: int, theta: float, p: float, q: float, eps: float = DEFAULT_EPS
) -> float:
    """Theorem 1, sublinear regime, general noisy channel (``q > 0``).

    For ``q == 0`` this degenerates to 0; use
    :func:`theorem1_sublinear_z` for the Z-channel, or the dispatcher
    :func:`theorem1_bound` which returns the max of both branches
    (matching the remark after Theorem 1: sub-``k/n`` values of ``q``
    behave like ``q = 0``).
    """
    n = check_positive_int(n, "n", minimum=2)
    theta = check_fraction(theta, "theta")
    _check_channel(p, q)
    check_non_negative(eps, "eps")
    c = (
        (4.0 * GAMMA_CONST + eps)
        * q
        * (1.0 + math.sqrt(theta)) ** 2
        / (1.0 - p - q) ** 2
    )
    return c * n * math.log(n)


def theorem1_linear(
    n: int, zeta: float, p: float, q: float, eps: float = DEFAULT_EPS
) -> float:
    """Theorem 1, linear regime (Z and general noisy channel)."""
    n = check_positive_int(n, "n", minimum=2)
    zeta = check_fraction(zeta, "zeta")
    _check_channel(p, q)
    check_non_negative(eps, "eps")
    c = (
        (16.0 * GAMMA_CONST + eps)
        * (q + zeta * (1.0 - p - q))
        / (1.0 - p - q) ** 2
    )
    return c * n * math.log(n)


def theorem1_bound(
    n: int,
    *,
    p: float,
    q: float,
    theta: Optional[float] = None,
    zeta: Optional[float] = None,
    eps: float = DEFAULT_EPS,
) -> float:
    """Dispatch Theorem 1 by regime.

    Exactly one of ``theta`` (sublinear) / ``zeta`` (linear) must be
    given. In the sublinear regime with ``q > 0`` the returned bound is
    the max of the Z-branch and the GNC branch: for small ``q`` (below
    order ``k/n``) the channel behaves like the Z-channel (remark after
    Theorem 1), so the binding constraint is whichever is larger.
    """
    if (theta is None) == (zeta is None):
        raise ValueError("specify exactly one of theta (sublinear) or zeta (linear)")
    if zeta is not None:
        return theorem1_linear(n, zeta, p, q, eps)
    if q == 0.0:
        return theorem1_sublinear_z(n, theta, p, eps)
    return max(
        theorem1_sublinear_z(n, theta, p, eps),
        theorem1_sublinear_gnc(n, theta, p, q, eps),
    )


def theorem2_sublinear(n: int, theta: float, eps: float = DEFAULT_EPS) -> float:
    """Theorem 2, sublinear regime (valid when ``λ² = o(m / ln n)``)."""
    n = check_positive_int(n, "n", minimum=2)
    theta = check_fraction(theta, "theta")
    check_non_negative(eps, "eps")
    k = n**theta
    return (4.0 * GAMMA_CONST + eps) * (1.0 + math.sqrt(theta)) ** 2 * k * math.log(n)


def theorem2_linear(n: int, zeta: float, eps: float = DEFAULT_EPS) -> float:
    """Theorem 2, linear regime (valid when ``λ² = o(m / ln n)``)."""
    n = check_positive_int(n, "n", minimum=2)
    zeta = check_fraction(zeta, "zeta")
    check_non_negative(eps, "eps")
    return (16.0 * GAMMA_CONST + eps) * zeta * n * math.log(n)


def theorem2_bound(
    n: int,
    *,
    theta: Optional[float] = None,
    zeta: Optional[float] = None,
    eps: float = DEFAULT_EPS,
) -> float:
    """Dispatch Theorem 2 by regime."""
    if (theta is None) == (zeta is None):
        raise ValueError("specify exactly one of theta (sublinear) or zeta (linear)")
    if theta is not None:
        return theorem2_sublinear(n, theta, eps)
    return theorem2_linear(n, zeta, eps)


def counting_lower_bound(n: int, k: int, gamma: Optional[int] = None) -> float:
    """Information-theoretic (counting) lower bound on ``m``.

    Any non-adaptive scheme must distinguish all ``C(n, k)`` ground
    truths; a single query returns a value in ``{0, ..., Gamma}`` and
    hence carries at most ``log2(Gamma + 1)`` bits, so

        m >= log2 C(n, k) / log2(Gamma + 1)

    even with unlimited computational power and no noise. This folklore
    bound contextualizes Theorem 1: the greedy algorithm's
    ``O(k ln n)`` queries are a polylogarithmic factor above it.
    """
    n = check_positive_int(n, "n")
    k = check_positive_int(k, "k", minimum=0)
    if k > n:
        raise ValueError(f"k must be <= n, got k={k}, n={n}")
    if gamma is None:
        gamma = max(1, n // 2)
    gamma = check_positive_int(gamma, "gamma")
    if k in (0, n):
        return 0.0
    log2_binom = (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    ) / math.log(2.0)
    return log2_binom / math.log2(gamma + 1)


def noisy_query_phase(lam: float, m: int, n: int) -> str:
    """Classify the noisy-query phase for finite instances.

    Theorem 2's conditions are asymptotic (``λ² = o(m/ln n)`` succeeds,
    ``λ² = Ω(m)`` fails). For a concrete instance we report:

    * ``"recoverable"``  if ``λ² <= m / ln(n)``,
    * ``"failure"``      if ``λ² >= m``,
    * ``"intermediate"`` otherwise.
    """
    lam = check_non_negative(lam, "lam")
    m = check_positive_int(m, "m")
    n = check_positive_int(n, "n", minimum=2)
    lam2 = lam * lam
    if lam2 >= m:
        return "failure"
    if lam2 <= m / math.log(n):
        return "recoverable"
    return "intermediate"


__all__ = [
    "GAMMA_CONST",
    "DEFAULT_EPS",
    "queries_from_density",
    "theorem1_sublinear_z",
    "theorem1_sublinear_gnc",
    "theorem1_linear",
    "theorem1_bound",
    "theorem2_sublinear",
    "theorem2_linear",
    "theorem2_bound",
    "counting_lower_bound",
    "noisy_query_phase",
]
