"""Deterministic contiguous chunking for sharded trial execution.

The experiment harness shards embarrassingly-parallel trial lists
across worker processes (:mod:`repro.experiments.parallel`). Because
every trial owns an independent pre-spawned child seed, the *only*
requirement on the partition is that it preserves trial order, so that
concatenating the chunk results reproduces the serial output exactly.
These helpers produce that canonical partition: contiguous chunks whose
sizes differ by at most one, larger chunks first.

The helpers are pure and deterministic — the same ``(total, chunks)``
always yields the same bounds — which keeps sharded runs bit-identical
regardless of worker count, scheduling order, or platform.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.utils.validation import check_non_negative_int, check_positive_int

__all__ = ["chunk_bounds", "chunk_sequence"]


def chunk_bounds(total: int, chunks: int) -> List[Tuple[int, int]]:
    """Split ``range(total)`` into at most ``chunks`` contiguous spans.

    Returns ``(start, stop)`` half-open bounds covering ``0..total`` in
    order, with no empty spans: when ``total < chunks`` only ``total``
    spans are produced. Sizes differ by at most one and the larger
    spans come first, so ``chunk_bounds(10, 4)`` is
    ``[(0, 3), (3, 6), (6, 8), (8, 10)]``.
    """
    total = check_non_negative_int(total, "total")
    chunks = check_positive_int(chunks, "chunks")
    chunks = min(chunks, total)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for i in range(chunks):
        size = total // chunks + (1 if i < total % chunks else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def chunk_sequence(items: Sequence, chunks: int) -> List[Sequence]:
    """Partition ``items`` into at most ``chunks`` order-preserving slices.

    ``sum(chunk_sequence(items, c), start=[])`` equals ``list(items)``
    for any ``c >= 1`` — the property the sharded schedulers rely on
    when merging worker results back into trial order.
    """
    return [items[lo:hi] for lo, hi in chunk_bounds(len(items), chunks)]
