"""Fault scenarios for the *modeled* system: corrupted measurements.

The paper assumes an honest noise channel and reliable links. This
module perturbs that model — adversarial result flips, heavy-tailed
outliers, erased query results, dead pool-agents whose queries vanish —
as a first-class, deterministic sweep dimension:

* :class:`CorruptionModel` is a frozen, picklable spec of post-channel
  measurement corruption, applied to a :class:`~repro.core.measurement.
  Measurements` object by :func:`apply_corruption`;
* :class:`FaultSpec` is the matching frozen spec for *network* faults
  (message drop/delay in the distributed protocol), built into a seeded
  :class:`~repro.distributed.network.FaultModel` per trial;
* the seeding rule below makes every fault realization a pure function
  of the trial's child seed, extending the repo's bit-identity
  invariant (any backend / worker count / chunk layout reproduces the
  identical faulty run) to faults.

Seeding rule
------------
Each trial already owns a child :class:`numpy.random.SeedSequence`
spawned by the sweep plan. Fault randomness must be independent of the
trial's instance randomness (truth, graph, channel noise) *without*
consuming draws from the trial generator — and without calling
``seq.spawn()``, which mutates the sequence's spawn counter and would
make plan reuse order-dependent. Instead a dedicated stream is derived
by extending the spawn key with a fixed tag::

    SeedSequence(entropy=seq.entropy,
                 spawn_key=seq.spawn_key + (STREAM_KEY,))

Two distinct tags keep the measurement-corruption stream and the
network-fault stream independent (a cell can carry both specs):
:func:`corruption_rng` and :func:`network_fault_rng`. Trial-spawned
children never collide with these streams — ``spawn()`` assigns
ascending small integers, the tags are large fixed constants.

Corruption semantics
--------------------
:func:`apply_corruption` applies the stages in a fixed, documented
order, each stage drawing full-length vectorized uniforms over all
``m`` queries (so realizations are independent of any chunk layout):

1. **dead agents** — each of the ``n`` agents dies independently with
   ``dead_agent_rate``; every query touching a dead agent is dropped
   (its result never arrives);
2. **erasures** — each query result is independently lost with
   ``erasure_rate``;
3. **adversarial flips** — each surviving result is independently
   flipped with ``flip_rate``: integer-valued channels mirror the
   count (``y -> size - y``, the worst-case sign-inverting adversary),
   Gaussian channels negate (``y -> -y``);
4. **heavy-tailed outliers** — with ``outlier_rate`` a query result
   gains ``outlier_scale`` times a standard-Cauchy draw (undetectable
   by variance-based filters).

Stages with zero rate consume no draws, so a model's realization is a
pure function of ``(model, rng)``; the null model is a bit-identical
no-op. Dropped queries (stages 1-2) are removed as CSR rows — the
corrupted graph never invents edges, it only forgets queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.measurement import Measurements
from repro.core.pooling import PoolingGraph
from repro.utils.rng import RngLike
from repro.utils.validation import check_non_negative, check_probability

#: spawn-key tag of the measurement-corruption stream ("corr" in ASCII)
CORRUPTION_STREAM_KEY = 0x636F7272

#: spawn-key tag of the network-fault stream ("netw" in ASCII)
NETWORK_STREAM_KEY = 0x6E657477


def fault_stream(
    seed: RngLike, stream_key: int
) -> np.random.SeedSequence:
    """Derive the dedicated fault ``SeedSequence`` for one trial.

    Extends the trial seed's spawn key with ``stream_key`` instead of
    calling ``spawn()`` — no state is mutated, so deriving the stream
    any number of times (or never) cannot change any other draw.
    """
    if not isinstance(seed, np.random.SeedSequence):
        seed = np.random.SeedSequence(seed)
    return np.random.SeedSequence(
        entropy=seed.entropy,
        spawn_key=tuple(seed.spawn_key) + (int(stream_key),),
    )


def corruption_rng(seed: RngLike) -> np.random.Generator:
    """The trial's measurement-corruption generator (see module docs)."""
    return np.random.default_rng(fault_stream(seed, CORRUPTION_STREAM_KEY))


def network_fault_rng(seed: RngLike) -> np.random.Generator:
    """The trial's network-fault generator (see module docs)."""
    return np.random.default_rng(fault_stream(seed, NETWORK_STREAM_KEY))


@dataclass(frozen=True)
class CorruptionModel:
    """Spec of post-channel measurement corruption (picklable, frozen).

    All rates are probabilities in ``[0, 1]``; the all-zero model is a
    guaranteed no-op (:attr:`is_null`). Being frozen and hashable, the
    spec embeds directly in sweep cell specs and the checkpoint plan
    fingerprint.
    """

    #: adversarial flip probability per query result
    flip_rate: float = 0.0
    #: heavy-tailed (Cauchy) outlier probability per query result
    outlier_rate: float = 0.0
    #: scale of the Cauchy outlier additive term
    outlier_scale: float = 5.0
    #: erasure (lost result) probability per query
    erasure_rate: float = 0.0
    #: death probability per pool agent (dead agents' queries vanish)
    dead_agent_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "flip_rate", "outlier_rate", "erasure_rate", "dead_agent_rate"
        ):
            check_probability(getattr(self, name), name, allow_one=True)
        check_non_negative(self.outlier_scale, "outlier_scale")

    @property
    def is_null(self) -> bool:
        """Whether applying the model is guaranteed to be a no-op."""
        return (
            self.flip_rate == 0.0
            and self.outlier_rate == 0.0
            and self.erasure_rate == 0.0
            and self.dead_agent_rate == 0.0
        )

    def describe(self) -> str:
        """Compact label naming only the active stages."""
        parts = []
        if self.dead_agent_rate:
            parts.append(f"dead={self.dead_agent_rate:g}")
        if self.erasure_rate:
            parts.append(f"erase={self.erasure_rate:g}")
        if self.flip_rate:
            parts.append(f"flip={self.flip_rate:g}")
        if self.outlier_rate:
            parts.append(
                f"outlier={self.outlier_rate:g}x{self.outlier_scale:g}"
            )
        return "corruption(" + ", ".join(parts) + ")" if parts else "none"


@dataclass(frozen=True)
class FaultSpec:
    """Spec of network faults for distributed sweep cells (frozen).

    The picklable counterpart of :class:`~repro.distributed.network.
    FaultModel`: a cell spec carries the rates, and each trial builds a
    live model seeded from its own child seed (:meth:`build` with
    :func:`network_fault_rng`). Faults are restricted to the query
    broadcasts (``QueryResultMessage``) — Algorithm 1's sorting network
    requires reliable compare-exchange links.
    """

    #: message drop probability
    drop: float = 0.0
    #: message delay probability
    delay: float = 0.0
    #: maximum extra delivery delay in rounds (required when delay > 0)
    max_delay: int = 0

    def __post_init__(self) -> None:
        check_probability(self.drop, "drop", allow_one=True)
        check_probability(self.delay, "delay", allow_one=True)
        if self.delay > 0.0 and self.max_delay < 1:
            raise ValueError("delay > 0 requires max_delay >= 1")

    @property
    def is_null(self) -> bool:
        return self.drop == 0.0 and self.delay == 0.0

    def describe(self) -> str:
        parts = []
        if self.drop:
            parts.append(f"drop={self.drop:g}")
        if self.delay:
            parts.append(f"delay={self.delay:g}<={self.max_delay}")
        return "fault(" + ", ".join(parts) + ")" if parts else "none"

    def build(self, rng: RngLike):
        """Instantiate a seeded live fault model for one trial."""
        from repro.distributed.messages import QueryResultMessage
        from repro.distributed.network import FaultModel

        return FaultModel(
            drop_probability=self.drop,
            delay_probability=self.delay,
            max_delay=self.max_delay,
            affected_types=(QueryResultMessage,),
            rng=rng,
        )


@dataclass(frozen=True)
class CorruptionReport:
    """Outcome of applying a :class:`CorruptionModel` to measurements.

    ``measurements`` is the corrupted object the decoder sees (dropped
    queries removed). The remaining fields are aligned to the
    *original* query indices so prefix-replay scans can corrupt a full
    retained stream once and carve probe prefixes out of the
    realization: ``kept[j]`` says whether original query ``j``
    survived, and ``results_full[j]`` is its (possibly flipped /
    outlier-shifted) result value regardless of survival.
    """

    measurements: Measurements
    kept: np.ndarray
    results_full: np.ndarray
    flipped: int = 0
    outliers: int = 0
    erased: int = 0
    dead_agents: int = 0
    dropped_queries: int = 0


def _drop_rows(
    graph: PoolingGraph, kept: np.ndarray
) -> Tuple[PoolingGraph, np.ndarray]:
    """Remove the masked-out CSR rows; returns (graph, edge mask)."""
    row_sizes = np.diff(graph.indptr)
    edge_mask = np.repeat(kept, row_sizes)
    new_indptr = np.zeros(int(kept.sum()) + 1, dtype=np.int64)
    np.cumsum(row_sizes[kept], out=new_indptr[1:])
    return (
        PoolingGraph._unchecked(
            graph.n,
            graph.gamma,
            new_indptr,
            graph.agents[edge_mask],
            graph.counts[edge_mask],
        ),
        edge_mask,
    )


def apply_corruption(
    measurements: Measurements,
    model: Optional[CorruptionModel],
    rng: RngLike,
) -> CorruptionReport:
    """Apply ``model`` to ``measurements``; see the module docstring.

    ``rng`` must be the trial's dedicated corruption generator
    (:func:`corruption_rng` on the trial's child seed) so the
    realization is a pure function of the child seed — the sweep
    engine's bit-identity contract. A ``None`` or null model returns
    the original object untouched (bit-identical fast path).
    """
    graph = measurements.graph
    m = graph.m
    if model is None or model.is_null:
        return CorruptionReport(
            measurements=measurements,
            kept=np.ones(m, dtype=bool),
            results_full=measurements.results,
        )
    rng = (
        rng
        if isinstance(rng, np.random.Generator)
        else np.random.default_rng(rng)
    )
    corrupted = np.array(measurements.results, dtype=np.float64)
    kept = np.ones(m, dtype=bool)
    dead_agents = 0

    # 1. dead agents: their queries never report.
    if model.dead_agent_rate:
        dead = rng.random(graph.n) < model.dead_agent_rate
        dead_agents = int(dead.sum())
        if dead_agents:
            flags = dead[graph.agents]
            row_sizes = np.diff(graph.indptr)
            nonempty = row_sizes > 0
            touched = np.zeros(m, dtype=bool)
            if flags.size:
                touched[nonempty] = (
                    np.add.reduceat(flags, graph.indptr[:-1][nonempty]) > 0
                )
            kept &= ~touched

    # 2. erasures: per-query result loss.
    erased = 0
    if model.erasure_rate:
        erase_mask = rng.random(m) < model.erasure_rate
        erased = int(erase_mask.sum())
        kept &= ~erase_mask

    # 3. adversarial flips: mirror counting channels, negate Gaussian.
    flipped = 0
    if model.flip_rate:
        flip_mask = rng.random(m) < model.flip_rate
        flipped = int(flip_mask.sum())
        if measurements.channel.integer_valued:
            sizes = graph.query_sizes()
            corrupted[flip_mask] = (
                sizes[flip_mask] - corrupted[flip_mask]
            )
        else:
            corrupted[flip_mask] = -corrupted[flip_mask]

    # 4. heavy-tailed outliers: additive scaled Cauchy.
    outliers = 0
    if model.outlier_rate:
        out_mask = rng.random(m) < model.outlier_rate
        # Full-length draw: query j's outlier value never depends on
        # which other queries drew one.
        cauchy = rng.standard_cauchy(m)
        outliers = int(out_mask.sum())
        corrupted[out_mask] += model.outlier_scale * cauchy[out_mask]

    if kept.all():
        new_graph, new_results = graph, corrupted
    else:
        new_graph, _ = _drop_rows(graph, kept)
        new_results = corrupted[kept]
    return CorruptionReport(
        measurements=Measurements(
            graph=new_graph,
            truth=measurements.truth,
            channel=measurements.channel,
            results=new_results,
        ),
        kept=kept,
        results_full=corrupted,
        flipped=flipped,
        outliers=outliers,
        erased=erased,
        dead_agents=dead_agents,
        dropped_queries=int(m - kept.sum()),
    )


__all__ = [
    "CORRUPTION_STREAM_KEY",
    "NETWORK_STREAM_KEY",
    "CorruptionModel",
    "CorruptionReport",
    "FaultSpec",
    "apply_corruption",
    "corruption_rng",
    "fault_stream",
    "network_fault_rng",
]
