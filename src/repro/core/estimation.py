"""Channel-parameter estimation from query results.

The paper assumes the channel parameters ``p``/``q`` (and the Gaussian
noise level ``lambda``) are *known constants*. In practice they must be
calibrated from data. This module provides the estimators — and makes
an identifiability fact explicit:

**The marginal query results identify only one channel parameter.**
Each of a query's ``Gamma`` edges lands on a 1-agent with probability
``kappa = k/n`` independently (uniform sampling with replacement) and
is read through the channel independently, so a query result is
*exactly* ``Bin(Gamma, r)`` with the effective read rate

    r = q + kappa (1 - p - q).

Any ``(p, q)`` pair with the same ``r`` produces identically
distributed results; ``(p, q)`` can therefore not be recovered from the
results alone. Three practical estimators follow:

* one-parameter families (Z-channel ``q = 0``, symmetric ``p = q``) are
  identified by the result **mean** (closed forms below);
* the Gaussian noise level is identified by the **excess variance**
  over the binomial baseline ``Gamma kappa (1 - kappa)``;
* the general ``(p, q)`` channel is identified **after decoding**: with
  an estimate ``sigma_hat`` of the hidden bits, each query's edges into
  estimated 1-agents ``E1_hat`` are observable and the conditional mean
  ``E[s | E1] = q Gamma + (1 - p - q) E1`` is a line whose slope and
  intercept give ``p`` and ``q`` (ordinary least squares across
  queries).

The fitted channel plugs into the oracle score centering — note that
the centering only needs ``r`` (the mean), which is always
identifiable, so decoding quality never depends on resolving the
``(p, q)`` ambiguity.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.measurement import Measurements
from repro.core.noise import (
    Channel,
    GaussianQueryNoise,
    NoisyChannel,
    ZChannel,
)
from repro.utils.validation import check_positive_int


def _moments(results: np.ndarray) -> Tuple[float, float]:
    results = np.asarray(results, dtype=np.float64)
    if results.size < 2:
        raise ValueError("need at least 2 query results to estimate a channel")
    return float(results.mean()), float(results.var(ddof=1))


def _normalize_sizes(gamma, results: np.ndarray):
    """Coerce ``gamma`` into either a scalar size or a per-query array.

    Estimators accept the nominal scalar ``Gamma`` (the paper's
    fixed-size design — the fast path, no per-query bookkeeping) or an
    array of realized per-query sizes for variable-size designs.
    Empty queries (size 0) are valid data — a regular design routinely
    leaves some queries without agents. Returns ``(sizes, scalar)``
    where ``scalar`` is the uniform size or ``None`` when sizes
    genuinely vary.
    """
    if np.ndim(gamma) == 0:
        return None, check_positive_int(gamma, "gamma")
    sizes = np.asarray(gamma)
    if sizes.shape != np.shape(results):
        raise ValueError(
            f"per-query sizes must match results shape {np.shape(results)}, "
            f"got {sizes.shape}"
        )
    if sizes.size and sizes.min() < 0:
        raise ValueError("per-query sizes must be >= 0")
    if not np.all(np.mod(sizes, 1) == 0):
        raise TypeError("per-query sizes must be integers")
    sizes = sizes.astype(np.float64)
    if sizes.size and sizes[0] >= 1 and np.all(sizes == sizes[0]):
        return None, int(sizes[0])
    return sizes, None


def measurement_sizes(measurements: Measurements):
    """The realized per-query sizes of a measurement set.

    Returns the scalar ``gamma`` when all queries have the nominal
    fixed size (the paper's design — lets estimators take their
    closed-form fast path) and the full ``query_sizes()`` array
    otherwise (variable-size designs such as
    :func:`~repro.core.pooling.sample_regular_design`, where using the
    nominal expected size would bias every moment-based estimator).
    """
    sizes = measurements.graph.query_sizes()
    _, scalar = _normalize_sizes(sizes, sizes)
    return scalar if scalar is not None else sizes


def effective_read_rate(p: float, q: float, kappa: float) -> float:
    """``r = q + kappa (1 - p - q)``: the per-edge observed-one rate."""
    return q + kappa * (1.0 - p - q)


def channel_moments(
    p: float, q: float, gamma: int, kappa: float
) -> Tuple[float, float]:
    """Exact mean and variance of a query result: ``Bin(Gamma, r)``."""
    r = effective_read_rate(p, q, kappa)
    return gamma * r, gamma * r * (1.0 - r)


def estimate_effective_rate(results: np.ndarray, gamma) -> float:
    """The always-identifiable parameter: ``r_hat = sum(s) / sum(sizes)``.

    ``gamma`` is the scalar query size for the paper's fixed design
    (where the estimator reduces to ``mean / Gamma``) or the array of
    realized per-query sizes for variable-size designs — the ratio
    estimator stays unbiased there, whereas dividing by the nominal
    expected size would not.
    """
    sizes, scalar = _normalize_sizes(gamma, results)
    if scalar is not None:
        mean, _ = _moments(results)
        return float(np.clip(mean / scalar, 0.0, 1.0))
    if np.size(results) < 2:
        raise ValueError("need at least 2 query results to estimate a channel")
    total = sizes.sum()
    if total == 0:
        raise ValueError("all queries are empty; cannot estimate a read rate")
    return float(np.clip(np.asarray(results, dtype=np.float64).sum() / total, 0.0, 1.0))


def estimate_z_channel(results: np.ndarray, gamma, k: int, n: int) -> float:
    """Estimate the Z-channel flip rate ``p`` from the result mean.

    With ``q = 0``, ``r = kappa (1 - p)`` so
    ``p_hat = 1 - r_hat / kappa``, clipped into ``[0, 1)``.
    ``gamma`` may be the scalar fixed query size or the realized
    per-query sizes (see :func:`estimate_effective_rate`).
    """
    k = check_positive_int(k, "k")
    n = check_positive_int(n, "n")
    kappa = k / n
    r_hat = estimate_effective_rate(results, gamma)
    return float(np.clip(1.0 - r_hat / kappa, 0.0, 1.0 - 1e-9))


def estimate_symmetric_channel(
    results: np.ndarray, gamma, k: int, n: int
) -> float:
    """Estimate ``p = q`` from the result mean.

    ``r = p + kappa (1 - 2p)`` gives
    ``p_hat = (r_hat - kappa) / (1 - 2 kappa)`` (``kappa != 1/2``).
    ``gamma`` may be the scalar fixed query size or the realized
    per-query sizes (see :func:`estimate_effective_rate`).
    """
    k = check_positive_int(k, "k")
    n = check_positive_int(n, "n")
    kappa = k / n
    if abs(1.0 - 2.0 * kappa) < 1e-9:
        raise ValueError("symmetric channel is unidentifiable at kappa = 1/2")
    r_hat = estimate_effective_rate(results, gamma)
    p_hat = (r_hat - kappa) / (1.0 - 2.0 * kappa)
    return float(np.clip(p_hat, 0.0, 0.5 - 1e-9))


def estimate_general_channel(
    measurements: Measurements, sigma_hat: np.ndarray
) -> Tuple[float, float]:
    """Decode-assisted ``(p, q)`` estimation by per-query regression.

    Given an estimate ``sigma_hat`` of the hidden bits (e.g. from the
    greedy decoder), each query's edges into estimated 1-agents
    ``E1_hat_j`` are observable, and

        E[s_j | E1_j] = q Gamma + (1 - p - q) E1_j

    is a line in ``E1``: ordinary least squares of the results on
    ``E1_hat`` yields ``slope = 1 - p - q`` and
    ``intercept = q Gamma``, hence ``q_hat = intercept / Gamma`` and
    ``p_hat = 1 - slope - q_hat``. Estimates are projected onto the
    admissible region ``p, q >= 0``, ``p + q < 1``.

    The quality of the estimate tracks the quality of ``sigma_hat``
    (the marginal results alone cannot identify the pair — see the
    module docstring).
    """
    graph = measurements.graph
    sigma_hat = np.asarray(sigma_hat)
    if sigma_hat.shape != (graph.n,):
        raise ValueError(
            f"sigma_hat must have shape ({graph.n},), got {sigma_hat.shape}"
        )
    e1_hat = graph.edges_into_ones(sigma_hat).astype(np.float64)
    results = np.asarray(measurements.results, dtype=np.float64)
    if results.size < 2 or np.ptp(e1_hat) == 0:
        raise ValueError(
            "need >= 2 queries with varying E1_hat to fit the regression"
        )
    sizes, scalar = _normalize_sizes(graph.query_sizes(), results)
    if scalar is not None:
        # Fixed-size fast path: E[s | E1] = q Gamma + (1 - p - q) E1 is
        # a line in E1 whose intercept is q times the realized size.
        slope, intercept = np.polyfit(e1_hat, results, deg=1)
        q_hat = intercept / scalar
    else:
        # Variable-size designs: the intercept itself scales with the
        # per-query size, E[s_j] = q size_j + (1 - p - q) E1_j, so fit
        # both regressors without a free intercept.
        design = np.column_stack([e1_hat, sizes])
        if np.linalg.matrix_rank(design) < 2:
            # e.g. sigma_hat = all-ones makes E1_hat == sizes; the
            # minimum-norm lstsq split would silently return garbage.
            raise ValueError(
                "need E1_hat varying independently of the query sizes to "
                "fit the regression"
            )
        (slope, q_hat), *_ = np.linalg.lstsq(design, results, rcond=None)
    p_hat = 1.0 - slope - q_hat
    q_hat = float(np.clip(q_hat, 0.0, 1.0 - 1e-6))
    p_hat = float(np.clip(p_hat, 0.0, 1.0 - 1e-6))
    if p_hat + q_hat >= 1.0:
        excess = (p_hat + q_hat) - (1.0 - 1e-6)
        p_hat = max(p_hat - excess / 2, 0.0)
        q_hat = max(q_hat - excess / 2, 0.0)
    return p_hat, q_hat


def estimate_gaussian_noise(
    results: np.ndarray, gamma, k: int, n: int
) -> float:
    """Estimate ``lambda`` from the excess result variance.

    Fixed-size fast path (scalar ``gamma``): the exact sum is
    ``Bin(Gamma, kappa)`` with variance ``Gamma kappa (1 - kappa)``;
    anything above it is measurement noise, so
    ``lambda_hat^2 = Var[s] - Gamma kappa (1 - kappa)``, floored at 0.

    With realized per-query sizes (array ``gamma``) the exact sum is a
    size mixture: conditionally ``Bin(size_j, kappa)``, so the baseline
    becomes ``mean(size) kappa (1 - kappa) + kappa^2 Var[size]`` (law of
    total variance) — using the nominal expected size would misattribute
    the size fluctuations to the Gaussian term.
    """
    k = check_positive_int(k, "k")
    n = check_positive_int(n, "n")
    _, var = _moments(results)
    kappa = k / n
    sizes, scalar = _normalize_sizes(gamma, results)
    if scalar is not None:
        baseline = scalar * kappa * (1.0 - kappa)
    else:
        baseline = sizes.mean() * kappa * (1.0 - kappa) + kappa**2 * sizes.var(ddof=1)
    lam2 = var - baseline
    return float(np.sqrt(max(lam2, 0.0)))


def fit_channel(
    kind: str,
    measurements: Measurements,
    sigma_hat: "np.ndarray | None" = None,
) -> Channel:
    """Fit a channel of the given family to observed measurements.

    ``kind`` is one of ``"z"``, ``"symmetric"``, ``"general"`` or
    ``"gaussian"``. The general family additionally requires
    ``sigma_hat`` (a decoded bit estimate; see
    :func:`estimate_general_channel`). Returns a ready-to-use
    :class:`Channel` — e.g. for noise-aware (oracle) score centering
    without assuming known parameters.

    Estimation runs against the *realized* per-query sizes
    (:meth:`~repro.core.pooling.PoolingGraph.query_sizes`): for the
    paper's fixed design that collapses to the scalar ``gamma`` fast
    path, while variable-size designs (``sample_regular_design``) get
    unbiased moments instead of the nominal expected size.
    """
    results = measurements.results
    gamma, k, n = measurement_sizes(measurements), measurements.k, measurements.n
    kind = kind.lower()
    if kind == "z":
        return ZChannel(estimate_z_channel(results, gamma, k, n))
    if kind == "symmetric":
        p = estimate_symmetric_channel(results, gamma, k, n)
        return NoisyChannel(p, p)
    if kind == "general":
        if sigma_hat is None:
            raise ValueError(
                "fitting the general (p, q) channel requires sigma_hat: the "
                "marginal results identify only the effective rate r"
            )
        p, q = estimate_general_channel(measurements, sigma_hat)
        return NoisyChannel(p, q)
    if kind == "gaussian":
        return GaussianQueryNoise(estimate_gaussian_noise(results, gamma, k, n))
    raise ValueError(
        f"unknown channel family {kind!r}; valid: z, symmetric, general, gaussian"
    )


__all__ = [
    "effective_read_rate",
    "channel_moments",
    "measurement_sizes",
    "estimate_effective_rate",
    "estimate_z_channel",
    "estimate_symmetric_channel",
    "estimate_general_channel",
    "estimate_gaussian_noise",
    "fit_channel",
]
