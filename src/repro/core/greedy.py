"""Vectorized greedy reconstruction (the paper's Algorithm 1).

This module implements the *maximum neighborhood algorithm* as a batch
decoder over a fixed set of measurements:

1. every query broadcasts its (noisy) result to its distinct neighbors;
2. every agent accumulates the neighborhood sum ``Psi_i`` and the
   distinct degree ``Delta*_i``;
3. agents are ranked by the centered score ``Psi_i - Delta*_i * k/2``;
4. the ``k`` top-ranked agents output bit 1, all others bit 0.

The faithful message-passing execution of the same algorithm lives in
:mod:`repro.distributed`; integration tests assert both produce
identical outputs on identical measurements.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.ground_truth import GroundTruth
from repro.core.measurement import Measurements, measure
from repro.core.noise import Channel
from repro.core.pooling import PoolingGraph, sample_pooling_graph
from repro.core.scores import (
    scores_from_measurements,
    separation_margin,
    top_k_estimate,
)
from repro.core.types import ReconstructionResult, evaluate_estimate
from repro.utils.rng import RngLike, normalize_rng


def greedy_reconstruct(
    measurements: Measurements,
    *,
    centering: str = "half_k",
) -> ReconstructionResult:
    """Run the greedy decoder on a set of measurements.

    Parameters
    ----------
    measurements:
        Output of :func:`repro.core.measurement.measure`.
    centering:
        Score centering mode; see :mod:`repro.core.scores`.

    Returns
    -------
    ReconstructionResult
        With ground-truth comparison fields filled in (the ground truth
        is available inside ``measurements``; it is used only for
        evaluation, never for decoding).
    """
    k = measurements.k
    scores = scores_from_measurements(measurements, mode=centering)
    estimate = top_k_estimate(scores, k)
    truth = measurements.truth.sigma
    quality = evaluate_estimate(estimate, truth, scores)
    return ReconstructionResult(
        estimate=estimate,
        scores=scores,
        exact=quality["exact"],
        overlap=quality["overlap"],
        separated=quality["separated"],
        hamming_errors=quality["hamming_errors"],
        meta={
            "algorithm": "greedy",
            "centering": centering,
            "n": measurements.n,
            "m": measurements.m,
            "k": k,
            "channel": measurements.channel.describe(),
            "separation_margin": separation_margin(scores, truth),
        },
    )


def run_greedy_trial(
    n: int,
    k: int,
    m: int,
    channel: Channel,
    rng: RngLike = None,
    *,
    gamma: Optional[int] = None,
    centering: str = "half_k",
    truth: Optional[GroundTruth] = None,
) -> ReconstructionResult:
    """End-to-end single trial: sample truth + graph, measure, decode.

    Convenience wrapper used by the experiment harness and the examples.
    """
    gen = normalize_rng(rng)
    if truth is None:
        from repro.core.ground_truth import sample_ground_truth

        truth = sample_ground_truth(n, k, gen)
    elif truth.n != n or truth.k != k:
        raise ValueError("provided truth does not match n/k")
    graph = sample_pooling_graph(n, m, gamma, gen)
    measurements = measure(graph, truth, channel, gen)
    return greedy_reconstruct(measurements, centering=centering)


__all__ = ["greedy_reconstruct", "run_greedy_trial"]
