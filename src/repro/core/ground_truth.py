"""Ground-truth generation for the pooled data problem.

The model (paper, Section II): out of ``n`` agents exactly ``k`` hold the
hidden bit 1; the ground truth ``sigma`` is drawn uniformly at random
among all binary vectors of Hamming weight ``k`` and length ``n``.

Two regimes parameterize ``k``:

* **sublinear**: ``k = n**theta`` for ``theta in (0, 1)`` — e.g. early
  epidemic spread (the paper uses ``theta = 0.25`` throughout Section V);
* **linear**: ``k = zeta * n`` for ``zeta in (0, 1)`` — e.g. traffic
  monitoring or confidential data transfer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.rng import RngLike, normalize_rng
from repro.utils.validation import check_fraction, check_positive_int


def sublinear_k(n: int, theta: float) -> int:
    """Number of 1-agents in the sublinear regime, ``k = round(n**theta)``.

    The result is clamped to ``[1, n]`` so that tiny instances remain
    well defined.
    """
    n = check_positive_int(n, "n")
    theta = check_fraction(theta, "theta")
    return int(min(n, max(1, round(n**theta))))


def linear_k(n: int, zeta: float) -> int:
    """Number of 1-agents in the linear regime, ``k = round(zeta * n)``."""
    n = check_positive_int(n, "n")
    zeta = check_fraction(zeta, "zeta")
    return int(min(n, max(1, round(zeta * n))))


def regime_k(n: int, *, theta: Optional[float] = None, zeta: Optional[float] = None) -> int:
    """Dispatch to :func:`sublinear_k` or :func:`linear_k`.

    Exactly one of ``theta`` / ``zeta`` must be given.
    """
    if (theta is None) == (zeta is None):
        raise ValueError("specify exactly one of theta (sublinear) or zeta (linear)")
    if theta is not None:
        return sublinear_k(n, theta)
    return linear_k(n, zeta)


@dataclass(frozen=True)
class GroundTruth:
    """A sampled ground truth ``sigma`` with convenience accessors.

    Attributes
    ----------
    sigma:
        Bit vector of shape ``(n,)``, dtype int8, Hamming weight ``k``.
    """

    sigma: np.ndarray

    def __post_init__(self) -> None:
        sigma = np.asarray(self.sigma)
        if sigma.ndim != 1:
            raise ValueError(f"sigma must be one-dimensional, got shape {sigma.shape}")
        values = np.unique(sigma)
        if not np.all(np.isin(values, (0, 1))):
            raise ValueError("sigma must be a 0/1 vector")
        object.__setattr__(self, "sigma", sigma.astype(np.int8, copy=False))

    @property
    def n(self) -> int:
        """Number of agents."""
        return int(self.sigma.size)

    @property
    def k(self) -> int:
        """Number of agents with hidden bit 1."""
        return int(self.sigma.sum())

    @property
    def ones(self) -> np.ndarray:
        """Sorted indices of the 1-agents."""
        return np.flatnonzero(self.sigma == 1)

    @property
    def zeros(self) -> np.ndarray:
        """Sorted indices of the 0-agents."""
        return np.flatnonzero(self.sigma == 0)

    def as_set(self) -> frozenset:
        """The set of 1-agents (useful for exact-recovery checks)."""
        return frozenset(int(i) for i in self.ones)


def sample_ground_truth(n: int, k: int, rng: RngLike = None) -> GroundTruth:
    """Draw ``sigma`` uniformly among weight-``k`` binary vectors of length ``n``."""
    n = check_positive_int(n, "n")
    k = check_positive_int(k, "k", minimum=0)
    if k > n:
        raise ValueError(f"k must be <= n, got k={k}, n={n}")
    gen = normalize_rng(rng)
    sigma = np.zeros(n, dtype=np.int8)
    if k:
        ones = gen.choice(n, size=k, replace=False)
        sigma[ones] = 1
    return GroundTruth(sigma)


def sample_sublinear(n: int, theta: float, rng: RngLike = None) -> GroundTruth:
    """Sample a ground truth in the sublinear regime ``k = n**theta``."""
    return sample_ground_truth(n, sublinear_k(n, theta), rng)


def sample_linear(n: int, zeta: float, rng: RngLike = None) -> GroundTruth:
    """Sample a ground truth in the linear regime ``k = zeta n``."""
    return sample_ground_truth(n, linear_k(n, zeta), rng)


__all__ = [
    "GroundTruth",
    "sublinear_k",
    "linear_k",
    "regime_k",
    "sample_ground_truth",
    "sample_sublinear",
    "sample_linear",
]
