"""Incremental query-by-query simulation (required number of queries).

The paper measures "the required number of queries" (Figures 2-5) with
the following procedure (Section V, "Implementation Details"):

1. initialize the ground truth according to ``n`` and ``theta``;
2. simulate one query node after the other; each samples ``Gamma``
   agents with replacement, measures through the channel, and the
   affected agents update ``Delta*`` and ``Psi``;
3. terminate once the ground truth can be reconstructed exactly **and**
   there is a clear separation between the scores of 0-agents and
   1-agents.

Under top-``k`` decoding, strict score separation implies exact
reconstruction, so the stopping criterion is
``min(score of 1-agents) > max(score of 0-agents)``.

:class:`IncrementalDecoder` maintains the running scores in O(distinct
agents per query) per step; the success check is a vectorized O(n) scan.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.ground_truth import GroundTruth, sample_ground_truth
from repro.core.noise import Channel, NoiselessChannel
from repro.core.pooling import default_gamma, sample_query
from repro.core.scores import separation_margin, top_k_estimate
from repro.core.types import ReconstructionResult, RequiredQueriesResult, evaluate_estimate
from repro.utils.rng import RngLike, normalize_rng
from repro.utils.validation import check_positive_int


class IncrementalDecoder:
    """Maintains Algorithm 1's per-agent state while queries stream in.

    The running score is the paper's ``Psi_i - Delta*_i * k / 2``; every
    accepted query updates only its distinct neighbors.
    """

    def __init__(self, truth: GroundTruth, channel: Optional[Channel] = None,
                 gamma: Optional[int] = None, centering: str = "half_k"):
        self.truth = truth
        self.channel = channel if channel is not None else NoiselessChannel()
        self.n = truth.n
        self.k = truth.k
        self.gamma = default_gamma(self.n) if gamma is None else check_positive_int(gamma, "gamma")
        if centering == "half_k":
            # Algorithm 1, line 14: subtract k/2 per distinct query.
            self._offset = self.k / 2.0
        elif centering == "oracle":
            # The analysis-side centering (Eq. 3-4): subtract the
            # channel-aware expected query result. Identical to half_k
            # for the noiseless channel; essential for q > 0, where the
            # false-positive bias otherwise couples with Delta*
            # fluctuations and inflates the score variance.
            from repro.core.scores import expected_query_result

            self._offset = expected_query_result(
                self.channel, self.n, self.k, self.gamma
            )
        else:
            raise ValueError(
                f"unknown centering {centering!r}; valid: ('half_k', 'oracle')"
            )
        self.centering = centering
        self.m = 0
        self.psi = np.zeros(self.n, dtype=np.float64)
        self.delta_star = np.zeros(self.n, dtype=np.int64)
        self.delta = np.zeros(self.n, dtype=np.int64)
        self.scores = np.zeros(self.n, dtype=np.float64)
        self._sigma64 = truth.sigma.astype(np.int64)
        self._ones_mask = truth.sigma == 1

    def add_query(self, rng: RngLike = None) -> float:
        """Sample one query, measure it through the channel, update state.

        Returns the (noisy) query result.
        """
        gen = normalize_rng(rng)
        agents, counts = sample_query(self.n, self.gamma, gen)
        e1 = int(np.dot(counts, self._sigma64[agents]))
        # The channel must see the *actual* number of edges, not the
        # nominal gamma: for the paper's with-replacement design they
        # coincide (counts.sum() == gamma), but variable-size designs
        # (e.g. sample_regular_design) would otherwise get the wrong
        # Bin(gamma - e1, q) noise law.
        size = int(counts.sum())
        result = float(self.channel.measure(np.asarray([e1]), size, gen)[0])
        self.ingest_query(agents, counts, result)
        return result

    def ingest_query(
        self, agents: np.ndarray, counts: np.ndarray, result: float
    ) -> None:
        """Fold an externally supplied query into the running state.

        ``agents`` are the query's distinct members, ``counts`` their
        multiplicities and ``result`` the (noisy) measured sum. This is
        the entry point for replaying recorded pooling data or feeding
        a pre-sampled :class:`~repro.core.pooling.PoolingGraph` — the
        scores then match the batch decoder on the same data exactly.
        """
        agents = np.asarray(agents, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        if agents.shape != counts.shape or agents.ndim != 1:
            raise ValueError("agents and counts must be 1-D arrays of equal length")
        if agents.size and (agents.min() < 0 or agents.max() >= self.n):
            raise ValueError("agent ids out of range")
        self.psi[agents] += result
        self.delta_star[agents] += 1
        self.delta[agents] += counts
        self.scores[agents] += result - self._offset
        self.m += 1

    def separation(self) -> float:
        """Current separation margin between 1-agent and 0-agent scores."""
        return separation_margin(self.scores, self.truth.sigma)

    def is_successful(self) -> bool:
        """Paper's stopping criterion: strictly separated score ranges."""
        return self.separation() > 0.0

    def reconstruction(self) -> ReconstructionResult:
        """Decode the current state with top-k selection."""
        estimate = top_k_estimate(self.scores, self.k)
        quality = evaluate_estimate(estimate, self.truth.sigma, self.scores)
        return ReconstructionResult(
            estimate=estimate,
            scores=self.scores.copy(),
            exact=quality["exact"],
            overlap=quality["overlap"],
            separated=quality["separated"],
            hamming_errors=quality["hamming_errors"],
            meta={
                "algorithm": "greedy-incremental",
                "n": self.n,
                "m": self.m,
                "k": self.k,
                "channel": self.channel.describe(),
            },
        )


def default_max_queries(n: int, k: int, channel: Optional[Channel] = None) -> int:
    """A generous budget: well above every Theorem-1/2 threshold.

    The base ``40 k ln(n) + 200`` covers the sublinear Z-channel and
    noisy-query bounds (which scale with ``k ln n``). When the channel
    has a positive false-positive rate ``q``, Theorem 1's thresholds
    scale with ``n ln n`` instead, so the budget is raised to five times
    the applicable bound. Gaussian channels add a ``lambda^2 ln n`` term
    (Theorem 2 requires ``lambda^2 = o(m / ln n)`` for recovery).
    """
    from repro.core.bounds import theorem1_linear, theorem1_sublinear_gnc
    from repro.core.noise import GaussianQueryNoise, NoisyChannel

    log_n = math.log(max(n, 2))
    budget = 40.0 * k * log_n + 200.0
    if isinstance(channel, NoisyChannel) and channel.q > 0.0 and n >= 2:
        theta = min(max(math.log(max(k, 2)) / log_n, 1e-3), 1 - 1e-3)
        zeta = min(max(k / n, 1e-6), 1 - 1e-6)
        gnc = theorem1_sublinear_gnc(n, theta, channel.p, channel.q, eps=0.0)
        lin = theorem1_linear(n, zeta, channel.p, channel.q, eps=0.0)
        budget = max(budget, 5.0 * max(gnc, lin))
    if isinstance(channel, GaussianQueryNoise):
        budget += 40.0 * channel.lam**2 * log_n
    return int(budget)


def required_queries(
    n: int,
    k: int,
    channel: Optional[Channel] = None,
    rng: RngLike = None,
    *,
    gamma: Optional[int] = None,
    max_m: Optional[int] = None,
    check_every: int = 1,
    truth: Optional[GroundTruth] = None,
    centering: str = "half_k",
    engine: str = "per-query",
) -> RequiredQueriesResult:
    """Run the paper's required-number-of-queries procedure once.

    Parameters
    ----------
    n, k:
        Instance size and number of 1-agents.
    channel:
        Noise model (default noiseless).
    max_m:
        Query budget; defaults to :func:`default_max_queries`. A run
        that exhausts the budget returns ``succeeded=False``.
    check_every:
        Perform the success check only every this many queries
        (default 1, matching the paper; larger values trade exactness
        of the reported ``required_m`` for speed).
    truth:
        Optional pre-sampled ground truth (else drawn from the model).
    engine:
        ``"per-query"`` (this module's reference loop, one query per
        step; ``"legacy"`` is accepted as an alias, matching the
        experiments layer) or ``"batch"`` (the chunked vectorized
        simulator of :class:`~repro.core.batch.BatchTrialRunner`,
        which samples geometric-growth blocks but reports the same
        exact stopping rule).

    Returns
    -------
    RequiredQueriesResult
    """
    n = check_positive_int(n, "n")
    k = check_positive_int(k, "k")
    check_every = check_positive_int(check_every, "check_every")
    if engine == "batch":
        from repro.core.batch import BatchTrialRunner

        runner = BatchTrialRunner(n, k, channel, gamma=gamma, centering=centering)
        return runner.required_queries(
            rng, max_m=max_m, check_every=check_every, truth=truth
        )
    if engine not in ("per-query", "legacy"):
        raise ValueError(
            f"unknown engine {engine!r}; valid: ('per-query', 'legacy', 'batch')"
        )
    gen = normalize_rng(rng)
    if truth is None:
        truth = sample_ground_truth(n, k, gen)
    if max_m is None:
        max_m = default_max_queries(n, k, channel)
    decoder = IncrementalDecoder(truth, channel, gamma, centering=centering)
    checks = 0
    while decoder.m < max_m:
        decoder.add_query(gen)
        if decoder.m % check_every == 0:
            checks += 1
            if decoder.is_successful():
                return RequiredQueriesResult(
                    required_m=decoder.m,
                    n=n,
                    k=k,
                    succeeded=True,
                    checks=checks,
                    meta={
                        "channel": decoder.channel.describe(),
                        "gamma": decoder.gamma,
                        "max_m": max_m,
                    },
                )
    return RequiredQueriesResult(
        required_m=None,
        n=n,
        k=k,
        succeeded=False,
        checks=checks,
        meta={
            "channel": decoder.channel.describe(),
            "gamma": decoder.gamma,
            "max_m": max_m,
        },
    )


__all__ = [
    "IncrementalDecoder",
    "default_max_queries",
    "required_queries",
]
