"""Measurement engine: apply a channel to a pooling graph + ground truth.

This is the glue between the pooling design (:mod:`repro.core.pooling`),
the noise substrate (:mod:`repro.core.noise`) and the decoders. It
produces the vector of per-*query* results, written ``\\hat\\sigma`` in
the paper — one (noisy) measured sum per query node. Despite the
similar notation this is *not* the reconstructed bit estimate of the
hidden vector ``sigma``; decoders consume :class:`Measurements` and
produce that estimate separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.ground_truth import GroundTruth
from repro.core.noise import Channel, NoiselessChannel
from repro.core.pooling import PoolingGraph
from repro.utils.rng import RngLike, normalize_rng


@dataclass(frozen=True)
class Measurements:
    """Query results together with the objects that produced them."""

    graph: PoolingGraph
    truth: GroundTruth
    channel: Channel
    results: np.ndarray

    def __post_init__(self) -> None:
        results = np.asarray(self.results)
        if results.shape != (self.graph.m,):
            raise ValueError(
                f"results must have shape ({self.graph.m},), got {results.shape}"
            )
        object.__setattr__(self, "results", results)

    @property
    def n(self) -> int:
        return self.graph.n

    @property
    def m(self) -> int:
        return self.graph.m

    @property
    def k(self) -> int:
        return self.truth.k


def measure(
    graph: PoolingGraph,
    truth: GroundTruth,
    channel: Optional[Channel] = None,
    rng: RngLike = None,
) -> Measurements:
    """Run all queries of ``graph`` against ``truth`` through ``channel``.

    The measurement is vectorized over queries via the sufficient
    statistic ``E1`` (edges into 1-agents); see :mod:`repro.core.noise`
    for why this reproduces the per-edge law exactly.
    """
    if channel is None:
        channel = NoiselessChannel()
    if graph.n != truth.n:
        raise ValueError(f"graph has n={graph.n} agents but truth has n={truth.n}")
    gen = normalize_rng(rng)
    e1 = graph.edges_into_ones(truth.sigma)
    # Pass the realized per-query sizes: for the paper's design they all
    # equal gamma, but alternative designs (e.g. the constant-column-
    # weight design of the ablations) have variable-size queries, and
    # the per-edge channel semantics must count the actual edges.
    sizes = graph.query_sizes()
    results = channel.measure(e1, sizes, gen)
    return Measurements(graph=graph, truth=truth, channel=channel, results=results)


def measure_query(
    agents: np.ndarray,
    counts: np.ndarray,
    sigma: np.ndarray,
    channel: Channel,
    gamma: Optional[int] = None,
    rng: RngLike = None,
) -> float:
    """Measure a single query (used by the incremental simulator).

    Parameters mirror one row of the CSR pooling graph. Returns the
    (possibly noisy) query result.

    The noise law is driven by the query's *actual* edge count
    ``counts.sum()``, not the design's nominal ``gamma``: the two
    coincide for the paper's fixed-size design, but variable-size
    designs (e.g. :func:`~repro.core.pooling.sample_regular_design`)
    would otherwise draw ``Bin(gamma - e1, q)`` with the wrong size.
    ``gamma`` is retained for call-site compatibility and ignored.
    """
    gen = normalize_rng(rng)
    counts = np.asarray(counts, dtype=np.int64)
    e1 = int(np.dot(counts, sigma[agents].astype(np.int64)))
    size = int(counts.sum())
    result = channel.measure(np.asarray([e1]), size, gen)[0]
    return float(result)


__all__ = ["Measurements", "measure", "measure_query"]
