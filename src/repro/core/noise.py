"""Noise models for the pooled data problem (paper, Section II).

Two families of channels are defined on top of the pooling graph:

* :class:`NoisyChannel` — the *noisy channel model*: every **edge**
  (occurrence of an agent in a query, counted with multiplicity) is read
  independently; a 1-bit is read as 0 with probability ``p`` (false
  negative) and a 0-bit is read as 1 with probability ``q`` (false
  positive). The special case ``q = 0`` is the Z-channel
  (:class:`ZChannel`). The query result is the sum of the noisy edge
  readings.

* :class:`GaussianQueryNoise` — the *noisy query model*: the bits are
  read correctly but the **query result** picks up additive Gaussian
  noise ``W ~ N(0, lambda**2)``, independently per query.

Sufficient statistic.  Because bits are 0/1, the exact query sum equals
``E1``, the number of edges into 1-agents. Under the noisy channel the
result is distributed as ``Bin(E1, 1-p) + Bin(Gamma - E1, q)`` — exactly
the law induced by independent per-edge flips — so every channel can be
vectorized over queries given only ``E1`` and ``Gamma``. The per-edge
interface :meth:`Channel.measure_contributions` is retained for the
faithful distributed runtime and for the statistical tests of Lemmas
6-8.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.utils.rng import RngLike, normalize_rng
from repro.utils.validation import check_non_negative, check_probability


def _check_e1_range(e1: np.ndarray, gamma) -> None:
    """Reject edges-into-ones counts outside ``[0, gamma]``.

    Every channel performs this check so that corrupted replay data
    (or a caller passing the wrong per-query sizes) fails loudly
    instead of silently producing impossible measurements.
    """
    if np.any(e1 < 0) or np.any(e1 > gamma):
        raise ValueError("e1 entries must lie in [0, gamma]")


class Channel(ABC):
    """Abstract noise channel applied to pooled-query measurements."""

    #: whether query results are integer-valued under this channel
    integer_valued: bool = True

    @abstractmethod
    def measure(
        self, e1: np.ndarray, gamma: int, rng: RngLike = None
    ) -> np.ndarray:
        """Noisy query results given per-query edges-into-ones counts.

        Parameters
        ----------
        e1:
            Array of shape ``(m,)``: per query, the number of edges into
            1-agents (equals the exact query sum).
        gamma:
            Query size (edges per query, with multiplicity) — a scalar
            for the paper's fixed-size design, or an array of per-query
            sizes for variable-size designs.
        """

    @abstractmethod
    def measure_contributions(
        self, counts: np.ndarray, bits: np.ndarray, rng: RngLike = None
    ) -> np.ndarray:
        """Per-agent noisy contributions inside a single query.

        ``counts[i]`` is the multiplicity of agent ``i`` in the query and
        ``bits[i]`` its true bit. Returns one value per agent such that
        the values sum (plus any per-query noise term, see
        :meth:`query_level_noise`) to a sample of the query result.
        """

    def query_level_noise(self, rng: RngLike = None) -> float:
        """Additive per-query noise (non-zero only for query-level models)."""
        return 0.0

    @abstractmethod
    def describe(self) -> str:
        """Short human-readable channel description."""

    # -- moments used by oracle centering and the analysis -------------

    @abstractmethod
    def edge_mean(self, prior_one: float) -> float:
        """Expected observed value of a single random edge reading,
        where the queried agent has bit 1 with probability ``prior_one``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.describe()})"


class NoiselessChannel(Channel):
    """The idealized channel: query results are exact sums."""

    integer_valued = True

    def measure(self, e1, gamma, rng=None):
        e1 = np.asarray(e1, dtype=np.int64)
        _check_e1_range(e1, np.asarray(gamma, dtype=np.int64))
        return e1.copy()

    def measure_contributions(self, counts, bits, rng=None):
        counts = np.asarray(counts, dtype=np.int64)
        bits = np.asarray(bits, dtype=np.int64)
        return counts * bits

    def describe(self) -> str:
        return "noiseless"

    def edge_mean(self, prior_one: float) -> float:
        return float(prior_one)


class NoisyChannel(Channel):
    """General noisy channel with false-negative ``p`` and false-positive ``q``.

    The paper assumes ``p, q in [0, 1)`` with ``p + q < 1`` (known
    constants); violating either raises ``ValueError``.
    """

    integer_valued = True

    def __init__(self, p: float, q: float):
        self.p = check_probability(p, "p")
        self.q = check_probability(q, "q")
        if self.p + self.q >= 1.0:
            raise ValueError(f"the paper requires p + q < 1, got p={p}, q={q}")

    def measure(self, e1, gamma, rng=None):
        e1 = np.asarray(e1, dtype=np.int64)
        gamma = np.asarray(gamma, dtype=np.int64)
        _check_e1_range(e1, gamma)
        gen = normalize_rng(rng)
        from_ones = gen.binomial(e1, 1.0 - self.p)
        from_zeros = gen.binomial(gamma - e1, self.q)
        return (from_ones + from_zeros).astype(np.int64)

    def measure_contributions(self, counts, bits, rng=None):
        counts = np.asarray(counts, dtype=np.int64)
        bits = np.asarray(bits, dtype=np.int64)
        gen = normalize_rng(rng)
        success = np.where(bits == 1, 1.0 - self.p, self.q)
        return gen.binomial(counts, success).astype(np.int64)

    def describe(self) -> str:
        return f"noisy-channel(p={self.p:g}, q={self.q:g})"

    def edge_mean(self, prior_one: float) -> float:
        return float(self.q + prior_one * (1.0 - self.p - self.q))

    @property
    def is_z_channel(self) -> bool:
        """True iff only 1 -> 0 errors occur (``q == 0``)."""
        return self.q == 0.0


class ZChannel(NoisyChannel):
    """The binary asymmetric channel with only 1 -> 0 flips (``q = 0``)."""

    def __init__(self, p: float):
        super().__init__(p, 0.0)

    def describe(self) -> str:
        return f"z-channel(p={self.p:g})"


class GaussianQueryNoise(Channel):
    """The noisy query model: exact sums plus ``N(0, lambda**2)`` per query."""

    integer_valued = False

    def __init__(self, lam: float):
        self.lam = check_non_negative(lam, "lam")

    def measure(self, e1, gamma, rng=None):
        e1 = np.asarray(e1, dtype=np.float64)
        # Same sanity check as the noisy channel: the exact sum can
        # never exceed the number of edges, so out-of-range e1 means
        # corrupted inputs and must not be silently smeared by noise.
        _check_e1_range(e1, np.asarray(gamma, dtype=np.float64))
        gen = normalize_rng(rng)
        if self.lam == 0.0:
            return e1.copy()
        return e1 + gen.normal(0.0, self.lam, size=e1.shape)

    def measure_contributions(self, counts, bits, rng=None):
        counts = np.asarray(counts, dtype=np.int64)
        bits = np.asarray(bits, dtype=np.int64)
        return (counts * bits).astype(np.float64)

    def query_level_noise(self, rng: RngLike = None) -> float:
        if self.lam == 0.0:
            return 0.0
        return float(normalize_rng(rng).normal(0.0, self.lam))

    def describe(self) -> str:
        return f"gaussian-query(lambda={self.lam:g})"

    def edge_mean(self, prior_one: float) -> float:
        return float(prior_one)


def make_channel(
    kind: str,
    *,
    p: float = 0.0,
    q: float = 0.0,
    lam: float = 0.0,
) -> Channel:
    """Factory used by configs and the CLI.

    ``kind`` is one of ``"noiseless"``, ``"z"``, ``"channel"`` (general
    noisy channel) or ``"gaussian"``.
    """
    kind = kind.lower()
    if kind == "noiseless":
        return NoiselessChannel()
    if kind == "z":
        return ZChannel(p)
    if kind in ("channel", "gnc", "noisy-channel"):
        return NoisyChannel(p, q)
    if kind in ("gaussian", "query", "noisy-query"):
        return GaussianQueryNoise(lam)
    raise ValueError(f"unknown channel kind: {kind!r}")


def effective_channel_regime(q: float, k: int, n: int) -> str:
    """Classify whether ``q`` behaves like zero (remark after Theorem 1).

    The paper observes that asymptotically ``q = o(k/n)`` behaves exactly
    as ``q = 0`` while ``q = omega(k/n)`` behaves as ``q > 0``. For
    finite instances we compare ``q`` against ``k/n``.
    """
    q = check_probability(q, "q")
    ratio = k / n
    if q == 0.0 or q < 0.1 * ratio:
        return "like-z"
    if q > 10.0 * ratio:
        return "like-positive-q"
    return "intermediate"


__all__ = [
    "Channel",
    "NoiselessChannel",
    "NoisyChannel",
    "ZChannel",
    "GaussianQueryNoise",
    "make_channel",
    "effective_channel_regime",
]
