"""Random pooling designs: the bipartite query multigraph.

The paper's pooling model (Section II): each of the ``m`` query nodes
independently draws ``Gamma = n/2`` agents uniformly at random **with
replacement** from the agent set. An instance is therefore a bipartite
multigraph between agents and queries; an edge with multiplicity ``c``
means the agent appears ``c`` times in that query.

This module stores the graph in a compressed sparse row (CSR) layout
over the *distinct* incidences together with integer multiplicities:

* ``indptr``  — shape ``(m + 1,)``; query ``j`` owns the slice
  ``indptr[j]:indptr[j+1]`` of the two arrays below;
* ``agents``  — distinct agent ids per query (strictly increasing within
  a query);
* ``counts``  — multiplicity of each ``(query, agent)`` incidence.

The layout supports everything the algorithms need:

* per-query results require ``sum(counts * sigma[agents])`` (the number
  of edges into 1-agents),
* the greedy decoder needs the *distinct* incidence only
  (``Psi[agents] += result``),
* degree statistics ``Delta`` (with multiplicity) and ``Delta*``
  (distinct) fall out of column sums.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.utils.rng import RngLike, normalize_rng
from repro.utils.validation import check_positive_int


def default_gamma(n: int) -> int:
    """The paper's query size ``Gamma = n / 2`` (at least 1)."""
    n = check_positive_int(n, "n")
    return max(1, n // 2)


def sample_query(
    n: int, gamma: int, rng: RngLike = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw one query: ``gamma`` agents uniformly at random with replacement.

    Returns
    -------
    (agents, counts):
        ``agents`` are the distinct sampled agent ids (sorted) and
        ``counts`` their multiplicities; ``counts.sum() == gamma``.
    """
    n = check_positive_int(n, "n")
    gamma = check_positive_int(gamma, "gamma")
    gen = normalize_rng(rng)
    draws = gen.integers(0, n, size=gamma)
    agents, counts = np.unique(draws, return_counts=True)
    return agents.astype(np.int64, copy=False), counts.astype(np.int64, copy=False)


@dataclass(frozen=True)
class PoolingGraph:
    """An immutable bipartite pooling multigraph in CSR layout.

    Use :func:`sample_pooling_graph` to draw one from the paper's model,
    or :class:`PoolingGraphBuilder` to grow one query by query.
    """

    n: int
    gamma: int
    indptr: np.ndarray
    agents: np.ndarray
    counts: np.ndarray

    def __post_init__(self) -> None:
        indptr = np.asarray(self.indptr, dtype=np.int64)
        agents = np.asarray(self.agents, dtype=np.int64)
        counts = np.asarray(self.counts, dtype=np.int64)
        if indptr.ndim != 1 or indptr.size == 0 or indptr[0] != 0:
            raise ValueError("indptr must be 1-D with indptr[0] == 0")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if indptr[-1] != agents.size or agents.size != counts.size:
            raise ValueError("indptr/agents/counts sizes are inconsistent")
        if agents.size and (agents.min() < 0 or agents.max() >= self.n):
            raise ValueError("agent ids out of range")
        if counts.size and counts.min() < 1:
            raise ValueError("multiplicities must be >= 1")
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "agents", agents)
        object.__setattr__(self, "counts", counts)

    @classmethod
    def _unchecked(
        cls,
        n: int,
        gamma: int,
        indptr: np.ndarray,
        agents: np.ndarray,
        counts: np.ndarray,
    ) -> "PoolingGraph":
        """Internal constructor skipping ``__post_init__`` validation.

        Only for callers that guarantee the CSR invariants by
        construction (the batch sampler): validation costs several full
        passes over the incidence arrays, which is significant on the
        hot sampling path.
        """
        self = object.__new__(cls)
        object.__setattr__(self, "n", n)
        object.__setattr__(self, "gamma", gamma)
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "agents", agents)
        object.__setattr__(self, "counts", counts)
        return self

    # -- basic shape ----------------------------------------------------

    @property
    def m(self) -> int:
        """Number of queries."""
        return int(self.indptr.size - 1)

    @property
    def total_edges(self) -> int:
        """Total number of edges counted with multiplicity (= m * gamma)."""
        return int(self.counts.sum())

    def query(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """Distinct agents and multiplicities of query ``j`` (views)."""
        if not 0 <= j < self.m:
            raise IndexError(f"query index {j} out of range [0, {self.m})")
        lo, hi = int(self.indptr[j]), int(self.indptr[j + 1])
        return self.agents[lo:hi], self.counts[lo:hi]

    def iter_queries(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Iterate over ``(agents, counts)`` pairs of all queries."""
        for j in range(self.m):
            yield self.query(j)

    def query_sizes(self) -> np.ndarray:
        """Number of edges (with multiplicity) per query.

        For the paper's design every query has exactly ``gamma`` edges,
        but variable-size designs (e.g. the constant-column-weight
        design of :func:`sample_regular_design`) have random per-query
        sizes whose *expectation* is the stored ``gamma`` — consumers
        that need the realized sizes (noise laws, channel estimators)
        must use this method rather than the ``gamma`` attribute.
        """
        sizes = np.zeros(self.m, dtype=np.int64)
        nonempty = np.flatnonzero(np.diff(self.indptr) > 0)
        if nonempty.size:
            sizes[nonempty] = np.add.reduceat(self.counts, self.indptr[nonempty])
        return sizes

    def distinct_sizes(self) -> np.ndarray:
        """Number of distinct agents per query (``|∂* a_j|``)."""
        return np.diff(self.indptr)

    # -- degrees ----------------------------------------------------------

    def multi_degrees(self) -> np.ndarray:
        """``Delta_i``: how often agent ``i`` is queried, with multiplicity."""
        deg = np.zeros(self.n, dtype=np.int64)
        np.add.at(deg, self.agents, self.counts)
        return deg

    def distinct_degrees(self) -> np.ndarray:
        """``Delta*_i``: number of distinct queries containing agent ``i``."""
        deg = np.zeros(self.n, dtype=np.int64)
        np.add.at(deg, self.agents, 1)
        return deg

    # -- measurement support ----------------------------------------------

    def edges_into_ones(self, sigma: np.ndarray) -> np.ndarray:
        """Per query, the number of edges into 1-agents (``E1_j``).

        Because bits are 0/1 this equals the *noiseless* query result
        ``sum_{x in ∂a_j} sigma_x`` (with multiplicity), and it is the
        sufficient statistic for every channel in :mod:`repro.core.noise`.
        """
        sigma = np.asarray(sigma)
        if sigma.shape != (self.n,):
            raise ValueError(f"sigma must have shape ({self.n},), got {sigma.shape}")
        weighted = self.counts * sigma[self.agents].astype(np.int64)
        out = np.zeros(self.m, dtype=np.int64)
        nonempty = np.flatnonzero(np.diff(self.indptr) > 0)
        if nonempty.size:
            out[nonempty] = np.add.reduceat(weighted, self.indptr[nonempty])
        return out

    def neighborhood_sums(self, results: np.ndarray) -> np.ndarray:
        """``Psi_i = sum_j 1{a_j in ∂* x_i} results_j`` for all agents.

        This is the distributed algorithm's score accumulation: every
        query broadcasts its (noisy) result to its *distinct* neighbors.
        """
        results = np.asarray(results, dtype=np.float64)
        if results.shape != (self.m,):
            raise ValueError(f"results must have shape ({self.m},), got {results.shape}")
        per_incidence = np.repeat(results, np.diff(self.indptr))
        psi = np.zeros(self.n, dtype=np.float64)
        np.add.at(psi, self.agents, per_incidence)
        return psi

    # -- conversions -------------------------------------------------------

    def adjacency_dense(self, dtype=np.float64) -> np.ndarray:
        """Dense ``(m, n)`` adjacency with multiplicities (for AMP)."""
        a = np.zeros((self.m, self.n), dtype=dtype)
        rows = np.repeat(np.arange(self.m), np.diff(self.indptr))
        a[rows, self.agents] = self.counts
        return a

    def adjacency_sparse(self):
        """Sparse CSR ``(m, n)`` adjacency with multiplicities."""
        from scipy import sparse

        return sparse.csr_matrix(
            (self.counts.astype(np.float64), self.agents, self.indptr),
            shape=(self.m, self.n),
        )

    def distinct_incidence_sparse(self):
        """Sparse CSR ``(m, n)`` 0/1 distinct-incidence matrix."""
        from scipy import sparse

        return sparse.csr_matrix(
            (np.ones(self.agents.size), self.agents, self.indptr),
            shape=(self.m, self.n),
        )

    def head(self, m: int) -> "PoolingGraph":
        """The subgraph consisting of the first ``m`` queries."""
        if not 0 <= m <= self.m:
            raise ValueError(f"m must lie in [0, {self.m}], got {m}")
        end = int(self.indptr[m])
        return PoolingGraph(
            n=self.n,
            gamma=self.gamma,
            indptr=self.indptr[: m + 1].copy(),
            agents=self.agents[:end].copy(),
            counts=self.counts[:end].copy(),
        )

    def to_networkx(self):
        """Export as a ``networkx`` bipartite multigraph (optional dep)."""
        import networkx as nx

        g = nx.MultiGraph()
        g.add_nodes_from((f"x{i}" for i in range(self.n)), bipartite="agent")
        g.add_nodes_from((f"a{j}" for j in range(self.m)), bipartite="query")
        for j in range(self.m):
            agents, counts = self.query(j)
            for agent, count in zip(agents, counts):
                for _ in range(int(count)):
                    g.add_edge(f"a{j}", f"x{int(agent)}")
        return g


class PoolingGraphBuilder:
    """Grow a :class:`PoolingGraph` one query at a time.

    Used by the incremental required-queries simulator, which adds query
    nodes until reconstruction succeeds (paper, Section V "Implementation
    Details").
    """

    def __init__(self, n: int, gamma: Optional[int] = None):
        self.n = check_positive_int(n, "n")
        self.gamma = default_gamma(n) if gamma is None else check_positive_int(gamma, "gamma")
        self._agents: List[np.ndarray] = []
        self._counts: List[np.ndarray] = []
        self._indptr: List[int] = [0]

    @property
    def m(self) -> int:
        """Number of queries added so far."""
        return len(self._agents)

    def add_query(self, agents: np.ndarray, counts: np.ndarray) -> int:
        """Append a pre-sampled query; returns its index."""
        agents = np.asarray(agents, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        if agents.shape != counts.shape or agents.ndim != 1:
            raise ValueError("agents and counts must be 1-D arrays of equal length")
        if agents.size and (agents.min() < 0 or agents.max() >= self.n):
            raise ValueError("agent ids out of range")
        self._agents.append(agents)
        self._counts.append(counts)
        self._indptr.append(self._indptr[-1] + agents.size)
        return self.m - 1

    def sample_and_add(self, rng: RngLike = None) -> Tuple[np.ndarray, np.ndarray]:
        """Sample a fresh query from the model, append it, return it."""
        agents, counts = sample_query(self.n, self.gamma, rng)
        self.add_query(agents, counts)
        return agents, counts

    def build(self) -> PoolingGraph:
        """Freeze into an immutable :class:`PoolingGraph`."""
        if self._agents:
            agents = np.concatenate(self._agents)
            counts = np.concatenate(self._counts)
        else:
            agents = np.zeros(0, dtype=np.int64)
            counts = np.zeros(0, dtype=np.int64)
        return PoolingGraph(
            n=self.n,
            gamma=self.gamma,
            indptr=np.asarray(self._indptr, dtype=np.int64),
            agents=agents,
            counts=counts,
        )


def sample_pooling_graph(
    n: int,
    m: int,
    gamma: Optional[int] = None,
    rng: RngLike = None,
    *,
    with_replacement: bool = True,
) -> PoolingGraph:
    """Draw a pooling graph from the paper's model.

    Parameters
    ----------
    n, m:
        Numbers of agents and queries.
    gamma:
        Query size; defaults to the paper's ``n // 2``.
    with_replacement:
        The paper samples with replacement (multigraph). Setting this to
        ``False`` yields the simple-graph design used by ablation A2
        (each query draws ``gamma`` *distinct* agents).
    """
    n = check_positive_int(n, "n")
    m = check_positive_int(m, "m", minimum=0)
    gamma = default_gamma(n) if gamma is None else check_positive_int(gamma, "gamma")
    if not with_replacement and gamma > n:
        raise ValueError(
            f"without replacement gamma must be <= n, got gamma={gamma}, n={n}"
        )
    gen = normalize_rng(rng)
    builder = PoolingGraphBuilder(n, gamma)
    for _ in range(m):
        if with_replacement:
            builder.sample_and_add(gen)
        else:
            agents = np.sort(gen.choice(n, size=gamma, replace=False))
            builder.add_query(agents.astype(np.int64), np.ones(gamma, dtype=np.int64))
    return builder.build()


def sample_regular_design(
    n: int,
    m: int,
    agent_degree: int,
    rng: RngLike = None,
) -> PoolingGraph:
    """Constant-column-weight design: every agent joins exactly
    ``agent_degree`` queries, chosen uniformly without replacement.

    This is the "(near-)constant tests per item" design family of
    Aldridge-Johnson-Scarlett and Johnson et al. (refs. [4, 33] of the
    paper), included for the design ablation. Query sizes are then
    random (≈ ``n * agent_degree / m`` each) instead of fixed at
    ``Gamma``; the stored ``gamma`` is the expected query size.
    """
    n = check_positive_int(n, "n")
    m = check_positive_int(m, "m")
    agent_degree = check_positive_int(agent_degree, "agent_degree")
    if agent_degree > m:
        raise ValueError(
            f"agent_degree must be <= m, got agent_degree={agent_degree}, m={m}"
        )
    gen = normalize_rng(rng)
    per_query: List[List[int]] = [[] for _ in range(m)]
    for agent in range(n):
        for q in gen.choice(m, size=agent_degree, replace=False):
            per_query[int(q)].append(agent)
    builder = PoolingGraphBuilder(n, gamma=max(1, round(n * agent_degree / m)))
    for members in per_query:
        agents = np.asarray(sorted(members), dtype=np.int64)
        builder.add_query(agents, np.ones(agents.size, dtype=np.int64))
    return builder.build()


__all__ = [
    "default_gamma",
    "sample_query",
    "PoolingGraph",
    "PoolingGraphBuilder",
    "sample_pooling_graph",
    "sample_regular_design",
]
