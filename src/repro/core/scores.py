"""Neighborhood-sum scores and centering variants (Algorithm 1, line 14).

Algorithm 1 ranks agents by ``Psi_i - Delta*_i * k / 2`` where ``Psi_i``
is the sum of the (noisy) results of all *distinct* queries containing
agent ``i`` and ``Delta*_i`` is the number of such queries. The
``k/2``-centering removes the score advantage of agents that happen to
appear in more queries: a uniformly random query has expected result
``Gamma * k / n = k / 2`` in the noiseless case.

Under noise the expected query result shifts (Eq. 4 of the paper), so we
also provide an *oracle* centering that uses the channel's edge mean.
Because the degrees ``Delta*_i`` concentrate (Corollary 5), the choice
barely matters — ablation A2 quantifies this.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.measurement import Measurements
from repro.core.noise import Channel

#: valid centering mode names
CENTERING_MODES = ("half_k", "oracle", "none")


def expected_query_result(channel: Channel, n: int, k: int, gamma: int) -> float:
    """Expected noisy result of one uniformly random query.

    Each of the ``gamma`` edges lands on a 1-agent with probability
    ``k/n``; the channel maps that into an expected per-edge reading of
    ``channel.edge_mean(k/n)`` (plus mean-zero query-level noise).
    """
    return gamma * channel.edge_mean(k / n)


def centered_scores(
    psi: np.ndarray,
    delta_star: np.ndarray,
    k: int,
    *,
    mode: str = "half_k",
    expected_result: Optional[float] = None,
) -> np.ndarray:
    """Apply a centering mode to raw neighborhood sums.

    Parameters
    ----------
    psi:
        Raw neighborhood sums ``Psi_i``.
    delta_star:
        Distinct degrees ``Delta*_i``.
    k:
        Number of 1-agents (known to the algorithm, as in the paper).
    mode:
        ``"half_k"`` — the paper's ``Psi_i - Delta*_i * k/2``;
        ``"oracle"`` — ``Psi_i - Delta*_i * expected_result`` with the
        channel-aware expected query result;
        ``"none"`` — raw ``Psi_i``.
    expected_result:
        Required when ``mode == "oracle"``.
    """
    psi = np.asarray(psi, dtype=np.float64)
    delta_star = np.asarray(delta_star, dtype=np.float64)
    if psi.shape != delta_star.shape:
        raise ValueError("psi and delta_star must have the same shape")
    if mode == "half_k":
        return psi - delta_star * (k / 2.0)
    if mode == "oracle":
        if expected_result is None:
            raise ValueError("oracle centering requires expected_result")
        return psi - delta_star * float(expected_result)
    if mode == "none":
        return psi.copy()
    raise ValueError(f"unknown centering mode {mode!r}; valid: {CENTERING_MODES}")


def scores_from_measurements(
    measurements: Measurements, *, mode: str = "half_k"
) -> np.ndarray:
    """Compute centered scores directly from a :class:`Measurements`."""
    graph = measurements.graph
    psi = graph.neighborhood_sums(measurements.results)
    delta_star = graph.distinct_degrees()
    expected = None
    if mode == "oracle":
        expected = expected_query_result(
            measurements.channel, graph.n, measurements.k, graph.gamma
        )
    return centered_scores(
        psi, delta_star, measurements.k, mode=mode, expected_result=expected
    )


def top_k_estimate(scores: np.ndarray, k: int) -> np.ndarray:
    """Declare the ``k`` highest-scoring agents as bit 1.

    Ties are broken deterministically in favour of lower agent ids so
    that repeated runs over identical data give identical answers.
    """
    scores = np.asarray(scores, dtype=np.float64)
    n = scores.size
    if not 0 <= k <= n:
        raise ValueError(f"k must lie in [0, {n}], got {k}")
    estimate = np.zeros(n, dtype=np.int8)
    if k == 0:
        return estimate
    # Stable sort on (-score, id): lower ids win ties.
    order = np.argsort(-scores, kind="stable")
    estimate[order[:k]] = 1
    return estimate


def decode_top_k_stacked(
    scores: np.ndarray, sigma: np.ndarray, k: int
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """Row-wise top-k decode and evaluation for a stack of trials.

    The stacked equivalent of :func:`top_k_estimate` plus
    :func:`repro.core.types.evaluate_estimate`/:func:`separation_margin`
    for ``(T, n)`` score and ground-truth matrices — the single source
    both batched engines (greedy trials, block-diagonal AMP) decode
    through, so the tie-breaking and evaluation semantics cannot drift
    between the stacked and per-trial paths.

    Returns ``(estimate, hamming_errors, overlap, margins)``, one
    row/entry per trial: the stable sort on ``(-score, id)`` breaks
    ties exactly like ``top_k_estimate``; ``margins`` is the
    1-agents-min minus 0-agents-max score separation (``+inf`` for the
    degenerate ``k == 0`` / ``k == n`` truths, like
    ``separation_margin``).
    """
    scores = np.asarray(scores, dtype=np.float64)
    sigma = np.asarray(sigma)
    trials, n = scores.shape
    if sigma.shape != scores.shape:
        raise ValueError(
            f"sigma shape {sigma.shape} != scores shape {scores.shape}"
        )
    if not 0 <= k <= n:
        raise ValueError(f"k must lie in [0, {n}], got {k}")
    estimate = np.zeros((trials, n), dtype=np.int8)
    if k > 0:
        order = np.argsort(-scores, axis=1, kind="stable")
        np.put_along_axis(estimate, order[:, :k], np.int8(1), axis=1)
    ones = sigma == 1
    errors = np.count_nonzero(estimate != sigma, axis=1)
    if k > 0:
        overlap = np.count_nonzero((estimate == 1) & ones, axis=1) / k
    else:
        overlap = np.ones(trials, dtype=np.float64)
    if 0 < k < n:
        one_scores = np.where(ones, scores, np.inf)
        zero_scores = np.where(ones, -np.inf, scores)
        margins = one_scores.min(axis=1) - zero_scores.max(axis=1)
    else:
        margins = np.full(trials, np.inf)
    return estimate, errors, overlap, margins


def separation_margin(scores: np.ndarray, sigma: np.ndarray) -> float:
    """``min(scores of 1-agents) - max(scores of 0-agents)``.

    Positive iff the score ranges are strictly separated — the paper's
    "clear separation" success criterion. Degenerate ground truths
    (``k == 0`` or ``k == n``) count as separated with margin ``+inf``.
    """
    scores = np.asarray(scores, dtype=np.float64)
    sigma = np.asarray(sigma)
    ones = sigma == 1
    if not ones.any() or ones.all():
        return float("inf")
    return float(scores[ones].min() - scores[~ones].max())


__all__ = [
    "CENTERING_MODES",
    "expected_query_result",
    "centered_scores",
    "scores_from_measurements",
    "top_k_estimate",
    "decode_top_k_stacked",
    "separation_margin",
]
