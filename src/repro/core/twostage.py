"""Two-stage reconstruction: greedy start + local error correction.

The paper's conclusion poses the open question "whether a two-step
algorithm that locally tries to correct errors can be analyzed
rigorously and performs even better". This module implements that
algorithm as an experimental extension:

1. **Stage 1** — the greedy maximum-neighborhood decoder produces an
   initial estimate (exactly Algorithm 1).
2. **Stage 2** — iterative local correction: every agent re-scores
   itself against the *residuals* of its queries,

       r_j = y_j - (A x)_j,        g_i = x_i + eta * (A^T r)_i,

   and the k agents with the largest corrected scores form the next
   estimate (a hard-thresholded projection). ``y`` is the
   channel-corrected query vector (``(sigma_hat - q Gamma)/(1-p-q)``
   for the noisy channel, as for AMP).

Each correction round is distributed-friendly: one query-to-agent
round trip (queries broadcast residuals, agents update) plus one
top-k selection — the same communication pattern as Algorithm 1's
single round. The iteration is the classic iterative hard thresholding
(IHT) with a warm start, so each round can only exploit information
already present in the queries; empirically it closes most of the gap
to AMP at a fraction of AMP's rounds (see
``benchmarks/bench_twostage.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.measurement import Measurements
from repro.core.noise import Channel, GaussianQueryNoise, NoiselessChannel, NoisyChannel
from repro.core.scores import scores_from_measurements, top_k_estimate
from repro.core.types import ReconstructionResult, evaluate_estimate
from repro.utils.validation import check_positive, check_positive_int


def channel_corrected_results(
    results: np.ndarray, gamma: int, channel: Channel
) -> np.ndarray:
    """Unbias query results so that ``E[y | A, sigma] = A sigma``.

    For the noisy channel, ``E[sigma_hat_j] = q Gamma + (1-p-q) E1_j``,
    hence ``y = (sigma_hat - q Gamma) / (1 - p - q)``. Noiseless and
    Gaussian channels are already unbiased.
    """
    results = np.asarray(results, dtype=np.float64)
    if isinstance(channel, NoisyChannel):
        return (results - channel.q * gamma) / (1.0 - channel.p - channel.q)
    if isinstance(channel, (NoiselessChannel, GaussianQueryNoise)):
        return results.copy()
    raise TypeError(f"unsupported channel type: {type(channel).__name__}")


@dataclass(frozen=True)
class TwoStageConfig:
    """Stage 2 iteration parameters.

    Attributes
    ----------
    max_rounds:
        Correction rounds after the greedy start.
    step_size:
        Gradient step ``eta``; ``None`` selects ``n / (m * Gamma)``
        (the inverse of the expected squared column norm of ``A``),
        the natural normalization for this design.
    stop_when_stable:
        Stop early once the estimate's support stops changing.
    """

    max_rounds: int = 15
    step_size: Optional[float] = None
    stop_when_stable: bool = True

    def __post_init__(self) -> None:
        check_positive_int(self.max_rounds, "max_rounds")
        if self.step_size is not None:
            check_positive(self.step_size, "step_size")


def two_stage_reconstruct(
    measurements: Measurements,
    *,
    config: Optional[TwoStageConfig] = None,
    centering: str = "half_k",
) -> ReconstructionResult:
    """Run greedy + local correction; decode by top-k.

    Parameters
    ----------
    measurements:
        Output of :func:`repro.core.measurement.measure`.
    config:
        Stage 2 parameters (default: 15 rounds, auto step size).
    centering:
        Stage 1 score centering (see :mod:`repro.core.scores`).
    """
    config = config if config is not None else TwoStageConfig()
    graph = measurements.graph
    n, m, k = graph.n, graph.m, measurements.k
    if m == 0:
        raise ValueError("two-stage reconstruction requires at least one query")

    # Stage 1: Algorithm 1.
    stage1_scores = scores_from_measurements(measurements, mode=centering)
    estimate = top_k_estimate(stage1_scores, k)

    adjacency = graph.adjacency_sparse()
    y = channel_corrected_results(
        measurements.results, graph.gamma, measurements.channel
    )
    eta = (
        config.step_size
        if config.step_size is not None
        else n / (m * graph.gamma)
    )

    x = estimate.astype(np.float64)
    scores = x.copy()
    rounds_used = 0
    support_changes: List[int] = []
    for _ in range(config.max_rounds):
        rounds_used += 1
        residual = y - adjacency @ x
        scores = x + eta * (adjacency.T @ residual)
        new_estimate = top_k_estimate(scores, k)
        changed = int(np.count_nonzero(new_estimate != estimate))
        support_changes.append(changed)
        estimate = new_estimate
        x = estimate.astype(np.float64)
        if config.stop_when_stable and changed == 0:
            break

    truth = measurements.truth.sigma
    quality = evaluate_estimate(estimate, truth, scores)
    return ReconstructionResult(
        estimate=estimate,
        scores=np.asarray(scores, dtype=np.float64),
        exact=quality["exact"],
        overlap=quality["overlap"],
        separated=quality["separated"],
        hamming_errors=quality["hamming_errors"],
        meta={
            "algorithm": "two-stage",
            "n": n,
            "m": m,
            "k": k,
            "channel": measurements.channel.describe(),
            "rounds": rounds_used,
            "support_changes": support_changes,
            "step_size": eta,
            "stage1_exact": bool(
                np.count_nonzero(top_k_estimate(stage1_scores, k) != truth) == 0
            ),
        },
    )


__all__ = [
    "TwoStageConfig",
    "two_stage_reconstruct",
    "channel_corrected_results",
]
