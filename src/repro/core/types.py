"""Shared result dataclasses for the pooled-data core.

These types are deliberately plain containers so that every layer of the
library (vectorized core, distributed runtime, experiment harness) can
exchange results without coupling to implementation details.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np


@dataclass(frozen=True)
class ReconstructionResult:
    """Outcome of one reconstruction attempt.

    Attributes
    ----------
    estimate:
        The reconstructed bit vector, shape ``(n,)``, dtype int8.
    scores:
        The per-agent decision scores the estimate was derived from
        (higher means "more likely bit 1"), shape ``(n,)``.
    exact:
        ``True`` iff the estimate equals the ground truth exactly.
        ``None`` when the ground truth was not supplied.
    overlap:
        Fraction of true 1-agents that were correctly identified
        (the paper's "overlap", Figure 7). ``None`` without ground truth.
    separated:
        ``True`` iff the scores of 1-agents and 0-agents are strictly
        separated (the paper's "clear separation" stopping criterion).
        ``None`` without ground truth.
    hamming_errors:
        Number of misclassified agents. ``None`` without ground truth.
    meta:
        Free-form extras (iteration counts, algorithm name, ...).
    """

    estimate: np.ndarray
    scores: np.ndarray
    exact: Optional[bool] = None
    overlap: Optional[float] = None
    separated: Optional[bool] = None
    hamming_errors: Optional[int] = None
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.estimate.shape != self.scores.shape:
            raise ValueError(
                "estimate and scores must have the same shape, got "
                f"{self.estimate.shape} vs {self.scores.shape}"
            )


@dataclass(frozen=True)
class RequiredQueriesResult:
    """Outcome of one required-number-of-queries run (Figures 2-5).

    Attributes
    ----------
    required_m:
        Number of queries after which the run first satisfied the
        success criterion, or ``None`` if ``max_m`` was exhausted.
    n, k:
        Instance size and number of 1-agents.
    succeeded:
        Whether the success criterion was met within the budget.
    checks:
        How many success checks were performed.
    meta:
        Channel description, seed, timing, ...
    """

    required_m: Optional[int]
    n: int
    k: int
    succeeded: bool
    checks: int = 0
    meta: Dict[str, object] = field(default_factory=dict)


def evaluate_estimate(
    estimate: np.ndarray,
    truth: np.ndarray,
    scores: Optional[np.ndarray] = None,
) -> Dict[str, object]:
    """Compare an estimate against the ground truth.

    Returns a dict with keys ``exact``, ``overlap``, ``hamming_errors``
    and, when ``scores`` is given, ``separated`` (strict separation of
    the score ranges of 1-agents and 0-agents).
    """
    estimate = np.asarray(estimate)
    truth = np.asarray(truth)
    if estimate.shape != truth.shape:
        raise ValueError(
            f"estimate shape {estimate.shape} != truth shape {truth.shape}"
        )
    ones = truth == 1
    k = int(ones.sum())
    errors = int(np.count_nonzero(estimate != truth))
    overlap = float(np.count_nonzero(estimate[ones] == 1) / k) if k else 1.0
    out: Dict[str, object] = {
        "exact": errors == 0,
        "overlap": overlap,
        "hamming_errors": errors,
    }
    if scores is not None:
        scores = np.asarray(scores, dtype=float)
        if scores.shape != truth.shape:
            raise ValueError(
                f"scores shape {scores.shape} != truth shape {truth.shape}"
            )
        if k == 0 or k == truth.size:
            out["separated"] = True
        else:
            out["separated"] = bool(scores[ones].min() > scores[~ones].max())
    return out


__all__ = [
    "ReconstructionResult",
    "RequiredQueriesResult",
    "evaluate_estimate",
]
