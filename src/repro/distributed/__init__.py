"""Distributed message-passing runtime for Algorithm 1.

The paper's Algorithm 1 is a distributed protocol: query nodes measure
and broadcast, agents fold results into neighborhood-sum scores and
sort themselves via a sorting network. This package provides a faithful
synchronous message-passing execution of that protocol:

* :mod:`repro.distributed.network` — round-based reliable network
  simulator with communication metrics;
* :mod:`repro.distributed.protocol` — the query-node / agent-node
  behaviors;
* :mod:`repro.distributed.sorting` — comparator schedules, Batcher's
  networks, and their distributed execution;
* :func:`run_distributed_algorithm1` — end-to-end runner whose output
  is bit-identical to the vectorized decoder.
"""

from repro.distributed.messages import (
    Envelope,
    QueryResultMessage,
    RankAnnouncementMessage,
    SortKeyMessage,
)
from repro.distributed.network import FaultModel, Network, NetworkMetrics, Node
from repro.distributed.protocol import AgentNode, QueryNode, agent_name, query_name
from repro.distributed.runner import DistributedRunReport, run_distributed_algorithm1
from repro.distributed.sorting import (
    ComparatorSchedule,
    apply_schedule,
    bitonic_sort,
    distributed_sort,
    is_sorting_network,
    make_sorting_network,
    odd_even_mergesort,
    odd_even_transposition,
)

__all__ = [
    "Envelope",
    "QueryResultMessage",
    "SortKeyMessage",
    "RankAnnouncementMessage",
    "Node",
    "Network",
    "NetworkMetrics",
    "FaultModel",
    "AgentNode",
    "QueryNode",
    "agent_name",
    "query_name",
    "DistributedRunReport",
    "run_distributed_algorithm1",
    "ComparatorSchedule",
    "apply_schedule",
    "is_sorting_network",
    "odd_even_mergesort",
    "bitonic_sort",
    "odd_even_transposition",
    "make_sorting_network",
    "distributed_sort",
]
