"""Typed messages exchanged in the distributed runtime.

The distributed variant of Algorithm 1 uses exactly two kinds of
application messages plus the compare-exchange traffic of the sorting
network:

* :class:`QueryResultMessage` — a query node broadcasts its (noisy)
  result to every *distinct* neighbor agent (Algorithm 1, line 7);
* :class:`SortKeyMessage` — an agent sends its sort key to its
  comparator partner during one round of the sorting network;
* :class:`RankAnnouncementMessage` — after sorting, the agents holding
  the ``k`` top wire positions notify the owners of those keys that
  they output bit 1 (Algorithm 1, line 15).

Every message reports an approximate wire size in bits so the runtime
can account communication cost (an extension the paper motivates when
comparing against AMP's "substantial communication overhead").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

#: bits for one scalar on the wire (we assume 64-bit floats/ints)
_SCALAR_BITS = 64


@dataclass(frozen=True)
class QueryResultMessage:
    """Query ``query_id`` announces its measured result."""

    query_id: int
    result: float

    @property
    def size_bits(self) -> int:
        return 2 * _SCALAR_BITS


@dataclass(frozen=True)
class SortKeyMessage:
    """One compare-exchange half-round: ``key = (score, agent_id)``.

    ``comparator_round`` tags the schedule round the key belongs to so
    receivers can sanity-check lockstep execution.
    """

    comparator_round: int
    key: Tuple[float, int]

    @property
    def size_bits(self) -> int:
        return 3 * _SCALAR_BITS


@dataclass(frozen=True)
class RankAnnouncementMessage:
    """The holder of a top-``k`` wire tells agent ``agent_id``: output 1."""

    agent_id: int

    @property
    def size_bits(self) -> int:
        return _SCALAR_BITS


Payload = Union[QueryResultMessage, SortKeyMessage, RankAnnouncementMessage]


@dataclass(frozen=True)
class Envelope:
    """A payload in flight: sender and recipient are node names.

    Node names are strings like ``"x17"`` (agent) or ``"a3"`` (query
    node), mirroring the paper's notation.
    """

    sender: str
    recipient: str
    payload: Payload

    @property
    def size_bits(self) -> int:
        return self.payload.size_bits


__all__ = [
    "QueryResultMessage",
    "SortKeyMessage",
    "RankAnnouncementMessage",
    "Payload",
    "Envelope",
]
