"""A synchronous round-based message-passing network simulator.

The model is the classical synchronous message-passing environment the
paper assumes (agents and query nodes "interact in a classical message
passing environment"): execution proceeds in global rounds; a message
sent in round ``r`` is delivered at the beginning of round ``r + 1``;
within a round every node processes its inbox and may send new
messages. There is no message loss or reordering (reliable links).

The simulator is deliberately independent of the pooled data problem —
nodes are any objects implementing the :class:`Node` protocol — so the
sorting network executor and the Algorithm 1 protocol both run on it.

Communication metrics (rounds, message count, payload bits) are
accumulated in :class:`NetworkMetrics`; the paper's discussion of AMP's
"substantial communication overhead" motivates making these first-class.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Type

import numpy as np

from repro.distributed.messages import Envelope, Payload
from repro.utils.rng import RngLike, normalize_rng
from repro.utils.validation import check_non_negative_int, check_probability


@dataclass
class NetworkMetrics:
    """Aggregate communication cost of a run."""

    rounds: int = 0
    messages: int = 0
    bits: int = 0
    dropped: int = 0
    delayed: int = 0
    messages_per_round: List[int] = field(default_factory=list)

    def record_round(self, sent: List[Envelope]) -> None:
        self.rounds += 1
        self.messages += len(sent)
        self.bits += sum(e.size_bits for e in sent)
        self.messages_per_round.append(len(sent))


class FaultModel:
    """Random message loss and delay (failure injection).

    The baseline model is the paper's: reliable synchronous links. A
    fault model perturbs that — every matching message is independently
    dropped with ``drop_probability`` or delayed by up to ``max_delay``
    extra rounds with ``delay_probability``. ``affected_types``
    restricts the faults to specific payload classes (e.g. only the
    query broadcasts, leaving the sorting network's compare-exchange
    traffic reliable, which the protocol requires for lockstep
    execution).

    ``rng`` is **required** whenever any fault rate is positive: an
    unseeded fallback generator would make faulty runs irreproducible
    and break the sweep engine's bit-identity contract. Sweep cells
    thread a per-trial generator derived from the trial's child seed
    (:func:`repro.core.corruption.network_fault_rng`); direct callers
    pass any seed or generator.
    """

    def __init__(
        self,
        *,
        drop_probability: float = 0.0,
        delay_probability: float = 0.0,
        max_delay: int = 0,
        affected_types: Optional[Tuple[Type, ...]] = None,
        rng: RngLike = None,
    ):
        self.drop_probability = check_probability(
            drop_probability, "drop_probability", allow_one=True
        )
        self.delay_probability = check_probability(
            delay_probability, "delay_probability", allow_one=True
        )
        self.max_delay = check_non_negative_int(max_delay, "max_delay")
        if self.delay_probability > 0.0 and self.max_delay == 0:
            raise ValueError("delay_probability > 0 requires max_delay >= 1")
        self.affected_types = affected_types
        if rng is None and (
            self.drop_probability > 0.0 or self.delay_probability > 0.0
        ):
            raise ValueError(
                "a FaultModel with positive fault rates requires an "
                "explicit rng (seed or Generator): OS-entropy fallback "
                "would make faulty runs irreproducible"
            )
        self._rng = normalize_rng(rng)

    def route(self, envelope: Envelope) -> Optional[int]:
        """Fate of a message: ``None`` = dropped, else extra delay rounds."""
        if self.affected_types is not None and not isinstance(
            envelope.payload, self.affected_types
        ):
            return 0
        if self.drop_probability and self._rng.random() < self.drop_probability:
            return None
        if self.delay_probability and self._rng.random() < self.delay_probability:
            return int(self._rng.integers(1, self.max_delay + 1))
        return 0


class Node(ABC):
    """A participant in the synchronous network.

    Subclasses implement :meth:`on_round`, which is called once per
    round with the node's inbox (messages delivered this round).
    Sending is done through the :class:`Network` handle.
    """

    def __init__(self, name: str):
        self.name = name

    @abstractmethod
    def on_round(self, round_no: int, inbox: List[Envelope], net: "Network") -> None:
        """Process this round's inbox; send messages via ``net.send``."""

    def is_idle(self) -> bool:
        """Whether the node has no more work to initiate.

        The network stops when all nodes are idle and no messages are
        in flight. The default is ``True`` (purely reactive node).
        """
        return True


class Network:
    """Registry of nodes plus the synchronous scheduler.

    An optional :class:`FaultModel` injects message loss / delay;
    delayed messages sit in an in-flight buffer keyed by their delivery
    round.
    """

    def __init__(self, fault_model: Optional[FaultModel] = None) -> None:
        self._nodes: Dict[str, Node] = {}
        self._mailboxes: Dict[str, List[Envelope]] = {}
        self._outbox: List[Envelope] = []
        self._in_flight: Dict[int, List[Envelope]] = {}
        self.fault_model = fault_model
        self.metrics = NetworkMetrics()
        self._round: int = 0

    # -- topology -------------------------------------------------------

    def add_node(self, node: Node) -> None:
        if node.name in self._nodes:
            raise ValueError(f"duplicate node name: {node.name}")
        self._nodes[node.name] = node
        self._mailboxes[node.name] = []

    def node(self, name: str) -> Node:
        return self._nodes[name]

    @property
    def node_names(self) -> List[str]:
        return list(self._nodes)

    @property
    def current_round(self) -> int:
        return self._round

    # -- messaging --------------------------------------------------------

    def send(self, sender: str, recipient: str, payload: Payload) -> None:
        """Queue a message for delivery at the start of the next round."""
        if recipient not in self._nodes:
            raise KeyError(f"unknown recipient: {recipient}")
        self._outbox.append(Envelope(sender=sender, recipient=recipient, payload=payload))

    # -- execution ----------------------------------------------------------

    def run_round(self) -> int:
        """Execute one synchronous round; returns messages delivered."""
        delivered = 0
        inboxes = self._mailboxes
        self._mailboxes = {name: [] for name in self._nodes}
        for name, node in self._nodes.items():
            inbox = inboxes[name]
            delivered += len(inbox)
            node.on_round(self._round, inbox, self)
        # Messages sent this round land in next round's mailboxes (or
        # later, if the fault model delays them; or never, if dropped).
        sent = self._outbox
        self._outbox = []
        for env in sent:
            extra = 0
            if self.fault_model is not None:
                fate = self.fault_model.route(env)
                if fate is None:
                    self.metrics.dropped += 1
                    continue
                if fate > 0:
                    self.metrics.delayed += 1
                extra = fate
            if extra == 0:
                self._mailboxes[env.recipient].append(env)
            else:
                self._in_flight.setdefault(self._round + 1 + extra, []).append(env)
        # Release previously delayed messages due this round.
        for env in self._in_flight.pop(self._round + 1, []):
            self._mailboxes[env.recipient].append(env)
        self.metrics.record_round(sent)
        self._round += 1
        return delivered

    def has_pending_messages(self) -> bool:
        return (
            any(self._mailboxes[name] for name in self._nodes)
            or bool(self._outbox)
            or bool(self._in_flight)
        )

    def run(self, max_rounds: int = 10_000) -> int:
        """Run until quiescence (all nodes idle, no messages in flight).

        Returns the number of rounds executed. Raises ``RuntimeError``
        if ``max_rounds`` is exceeded — a liveness failure in the
        protocol under test.
        """
        start = self._round
        while self._round - start < max_rounds:
            self.run_round()
            if not self.has_pending_messages() and all(
                node.is_idle() for node in self._nodes.values()
            ):
                return self._round - start
        raise RuntimeError(f"network did not quiesce within {max_rounds} rounds")


__all__ = ["Node", "Network", "NetworkMetrics", "FaultModel"]
