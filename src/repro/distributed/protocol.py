"""The distributed Algorithm 1 protocol: query nodes and agent nodes.

Phase timeline of the faithful message-passing execution (one global
synchronous network, see :mod:`repro.distributed.network`):

=========  ====================================================================
round      action
=========  ====================================================================
0          every query node broadcasts its measured result to its
           *distinct* neighbor agents (Algorithm 1, lines 3-7)
1          agents fold all received results into ``Psi_i``/``Delta*_i``,
           compute the score ``Psi_i - Delta*_i k/2``, and send their sort
           key for comparator round 0 (lines 8-13)
2..D       agents resolve comparator round ``r-2`` and send keys for
           comparator round ``r-1`` (sorting network execution, line 13-14)
D+1        last comparator resolves; agents holding the ``k`` smallest
           wire positions (keys are ``(-score, id)``) announce bit 1 to
           the key owners (line 15)
D+2        announced agents set output 1, all others 0
=========  ====================================================================

``D`` is the sorting network depth. Keys are ``(-score, agent_id)`` so
ascending network order = descending score order with ties broken
toward lower agent ids — exactly the tie-break of the vectorized
decoder, which makes the two implementations bit-identical.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.distributed.messages import (
    Envelope,
    QueryResultMessage,
    RankAnnouncementMessage,
    SortKeyMessage,
)
from repro.distributed.network import Network, Node
from repro.distributed.sorting.schedule import ComparatorSchedule


def agent_name(i: int) -> str:
    """Canonical node name of agent ``x_i``."""
    return f"x{i}"


def query_name(j: int) -> str:
    """Canonical node name of query node ``a_j``."""
    return f"a{j}"


class QueryNode(Node):
    """A query node: measures once, broadcasts to distinct neighbors.

    The measurement itself (sampling the multiset of agents and passing
    the sum through the noise channel) is performed by the runner via
    the core measurement engine — this mirrors the paper's simulation
    methodology and guarantees that the distributed and vectorized
    pipelines consume identical randomness.
    """

    def __init__(self, query_id: int, distinct_neighbors: Sequence[int], result: float):
        super().__init__(query_name(query_id))
        self.query_id = query_id
        self.distinct_neighbors = [int(i) for i in distinct_neighbors]
        self.result = float(result)
        self._sent = False

    def on_round(self, round_no: int, inbox: List[Envelope], net: Network) -> None:
        if round_no == 0 and not self._sent:
            payload = QueryResultMessage(query_id=self.query_id, result=self.result)
            for neighbor in self.distinct_neighbors:
                net.send(self.name, agent_name(neighbor), payload)
            self._sent = True

    def is_idle(self) -> bool:
        return self._sent


class AgentNode(Node):
    """An agent: accumulates its score, sorts itself, outputs a bit."""

    def __init__(self, agent_id: int, k: int, schedule: ComparatorSchedule):
        super().__init__(agent_name(agent_id))
        self.agent_id = agent_id
        self.k = k
        self.psi = 0.0
        self.delta_star = 0
        self.score: Optional[float] = None
        self.output: Optional[int] = None
        self.key: Optional[Tuple[float, int]] = None
        self._schedule = schedule
        self._participation = schedule.participation()
        self._depth = schedule.depth
        self._announced = False
        #: query results that arrived after the fold round (e.g. delayed
        #: by a fault model) and were discarded as stragglers
        self.late_results_ignored = 0

    # -- helpers ----------------------------------------------------------

    def _fold_query_results(self, inbox: List[Envelope]) -> None:
        for env in inbox:
            payload = env.payload
            if not isinstance(payload, QueryResultMessage):
                raise TypeError(
                    f"agent {self.agent_id} expected query results in round 1, "
                    f"got {type(payload).__name__}"
                )
            self.psi += payload.result
            self.delta_star += 1
        self.score = self.psi - self.delta_star * self.k / 2.0
        # Ascending sort of (-score, id) == descending score, low-id ties.
        self.key = (-self.score, self.agent_id)

    def _resolve(self, comparator_round: int, partner_key: Tuple[float, int]) -> None:
        partner, takes_min = self._participation[comparator_round][self.agent_id]
        pair = sorted([self.key, tuple(partner_key)])
        self.key = pair[0] if takes_min else pair[1]

    def _send_sort_key(self, comparator_round: int, net: Network) -> None:
        entry = self._participation[comparator_round].get(self.agent_id)
        if entry is not None:
            partner, _ = entry
            net.send(
                self.name,
                agent_name(partner),
                SortKeyMessage(comparator_round=comparator_round, key=self.key),
            )

    def _maybe_announce(self, net: Network) -> None:
        """If this wire ranks in the top k, notify the key's owner."""
        if self._announced:
            return
        self._announced = True
        if self.agent_id < self.k:
            _, owner = self.key
            net.send(self.name, agent_name(int(owner)), RankAnnouncementMessage(owner))

    # -- protocol ----------------------------------------------------------

    def on_round(self, round_no: int, inbox: List[Envelope], net: Network) -> None:
        if round_no == 0:
            return  # query results are still in flight
        if round_no == 1:
            self._fold_query_results(inbox)
            if self._depth == 0:
                self._maybe_announce(net)
            else:
                self._send_sort_key(0, net)
            return

        announcements = [
            env for env in inbox if isinstance(env.payload, RankAnnouncementMessage)
        ]
        sort_keys = [env for env in inbox if isinstance(env.payload, SortKeyMessage)]
        # Query results straggling in after the fold round (a lossy or
        # delaying network) are discarded: the score is already frozen.
        self.late_results_ignored += sum(
            isinstance(env.payload, QueryResultMessage) for env in inbox
        )

        for env in sort_keys:
            payload = env.payload
            if payload.comparator_round != round_no - 2:
                raise RuntimeError(
                    f"agent {self.agent_id}: comparator round "
                    f"{payload.comparator_round} key arrived in network round {round_no}"
                )
            self._resolve(payload.comparator_round, payload.key)

        if round_no - 1 < self._depth:
            self._send_sort_key(round_no - 1, net)
        elif not self._announced:
            # Last comparator just resolved; announce winners.
            self._maybe_announce(net)

        if announcements:
            self.output = 1

    def finalize(self) -> int:
        """Final output bit (0 unless announced)."""
        if self.output is None:
            self.output = 0
        return self.output

    def is_idle(self) -> bool:
        return self._announced


__all__ = ["QueryNode", "AgentNode", "agent_name", "query_name"]
