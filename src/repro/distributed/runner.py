"""End-to-end execution of the distributed Algorithm 1.

:func:`run_distributed_algorithm1` builds the full network (agents +
query nodes + sorting schedule), runs it to quiescence, and returns a
:class:`~repro.core.types.ReconstructionResult` plus communication
metrics. Its output is **bit-identical** to the vectorized
:func:`repro.core.greedy.greedy_reconstruct` on the same measurements —
asserted by integration tests — while additionally exposing the
distributed cost model (rounds, messages, bits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.measurement import Measurements
from repro.core.types import ReconstructionResult, evaluate_estimate
from repro.distributed.messages import QueryResultMessage
from repro.distributed.network import FaultModel, Network, NetworkMetrics
from repro.distributed.protocol import AgentNode, QueryNode
from repro.distributed.sorting.batcher import make_sorting_network
from repro.distributed.sorting.schedule import ComparatorSchedule


@dataclass(frozen=True)
class DistributedRunReport:
    """Everything a run produces: the reconstruction + the cost model."""

    result: ReconstructionResult
    metrics: NetworkMetrics
    sort_depth: int
    sort_size: int


def run_distributed_algorithm1(
    measurements: Measurements,
    *,
    sorting_network: str = "batcher",
    schedule: Optional[ComparatorSchedule] = None,
    max_rounds: Optional[int] = None,
    fault_model: Optional[FaultModel] = None,
) -> DistributedRunReport:
    """Execute Algorithm 1 as an explicit message-passing protocol.

    Parameters
    ----------
    measurements:
        Pooling graph + channel results (from
        :func:`repro.core.measurement.measure`). The runner performs the
        paper's "Perform Measurements in Parallel" step by handing each
        query node its measured result and distinct neighbor set.
    sorting_network:
        Which comparator network the agents use (``"batcher"``,
        ``"bitonic"`` — power-of-two ``n`` only, or ``"transposition"``).
    schedule:
        Pre-built schedule (overrides ``sorting_network``).
    max_rounds:
        Safety bound for the scheduler (default: sort depth + 8, plus
        the fault model's maximum delay).
    fault_model:
        Optional failure injection. It must leave the sorting
        network's compare-exchange traffic reliable (the comparator
        schedule runs in lockstep), so it is restricted to
        :class:`~repro.distributed.messages.QueryResultMessage` —
        a fault model without an ``affected_types`` restriction is
        rejected. Dropped query broadcasts simply shrink the affected
        agents' neighborhood sums; delayed ones are discarded as
        stragglers (counted in the result metadata).
    """
    graph = measurements.graph
    n, k = graph.n, measurements.k
    network_label = sorting_network
    if schedule is None:
        schedule = make_sorting_network(sorting_network, n)
    else:
        network_label = "custom"
        if schedule.n != n:
            raise ValueError(f"schedule has {schedule.n} wires but n={n}")

    if fault_model is not None:
        if fault_model.affected_types is None or any(
            t is not QueryResultMessage for t in fault_model.affected_types
        ):
            raise ValueError(
                "fault models for Algorithm 1 must be restricted to "
                "affected_types=(QueryResultMessage,): the sorting network "
                "requires reliable compare-exchange links"
            )
    net = Network(fault_model=fault_model)
    agents = [AgentNode(i, k, schedule) for i in range(n)]
    for agent in agents:
        net.add_node(agent)
    for j in range(graph.m):
        neighbors, _counts = graph.query(j)
        net.add_node(QueryNode(j, neighbors, float(measurements.results[j])))

    budget = max_rounds
    if budget is None:
        budget = schedule.depth + 8
        if fault_model is not None:
            budget += fault_model.max_delay
    net.run(max_rounds=budget)

    estimate = np.array([agent.finalize() for agent in agents], dtype=np.int8)
    scores = np.array([agent.score for agent in agents], dtype=np.float64)
    truth = measurements.truth.sigma
    quality = evaluate_estimate(estimate, truth, scores)
    result = ReconstructionResult(
        estimate=estimate,
        scores=scores,
        exact=quality["exact"],
        overlap=quality["overlap"],
        separated=quality["separated"],
        hamming_errors=quality["hamming_errors"],
        meta={
            "algorithm": "greedy-distributed",
            "sorting_network": network_label,
            "n": n,
            "m": graph.m,
            "k": k,
            "channel": measurements.channel.describe(),
            "rounds": net.metrics.rounds,
            "messages": net.metrics.messages,
            "bits": net.metrics.bits,
            "dropped": net.metrics.dropped,
            "delayed": net.metrics.delayed,
            "late_results_ignored": sum(a.late_results_ignored for a in agents),
        },
    )
    return DistributedRunReport(
        result=result,
        metrics=net.metrics,
        sort_depth=schedule.depth,
        sort_size=schedule.size,
    )


__all__ = ["DistributedRunReport", "run_distributed_algorithm1"]
