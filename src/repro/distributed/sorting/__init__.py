"""Sorting networks: schedules, Batcher constructions, distributed execution."""

from repro.distributed.sorting.batcher import (
    bitonic_sort,
    make_sorting_network,
    odd_even_mergesort,
    odd_even_transposition,
)
from repro.distributed.sorting.distributed_sort import (
    SorterNode,
    distributed_sort,
    wire_name,
)
from repro.distributed.sorting.schedule import (
    Comparator,
    ComparatorSchedule,
    apply_schedule,
    from_rounds,
    is_sorting_network,
)

__all__ = [
    "Comparator",
    "ComparatorSchedule",
    "from_rounds",
    "apply_schedule",
    "is_sorting_network",
    "odd_even_mergesort",
    "bitonic_sort",
    "odd_even_transposition",
    "make_sorting_network",
    "SorterNode",
    "distributed_sort",
    "wire_name",
]
