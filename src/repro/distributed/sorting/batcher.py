"""Batcher's sorting networks (odd-even mergesort and bitonic sort).

The paper's Algorithm 1 sorts the agents with "a sorting network (see,
e.g., [6, 44])" — reference [6] is Batcher's classical construction.
Both of Batcher's networks have depth ``O(log^2 n)``:

* :func:`odd_even_mergesort` — works for arbitrary ``n`` (the schedule
  is generated for the next power of two and comparators touching
  virtual wires are dropped; virtual wires conceptually hold ``+inf``
  keys, for which those comparators are no-ops);
* :func:`bitonic_sort` — the classical bitonic network, requires ``n``
  to be a power of two (it uses descending comparators internally, so
  the virtual-wire trick does not apply).

Additionally :func:`odd_even_transposition` provides the depth-``n``
"brick" network, useful as a simple reference and for tiny networks.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from repro.distributed.sorting.schedule import ComparatorSchedule, from_rounds


def _next_power_of_two(n: int) -> int:
    power = 1
    while power < n:
        power *= 2
    return power


def odd_even_mergesort(n: int) -> ComparatorSchedule:
    """Batcher's odd-even mergesort schedule for ``n`` wires (any n >= 1).

    Comparators are grouped into rounds by the classical ``(p, k)``
    double loop; all comparators of one ``(p, k)`` stage are disjoint
    and run in parallel.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if n == 1:
        return from_rounds(1, [])
    n2 = _next_power_of_two(n)
    rounds: List[List[Tuple[int, int]]] = []
    p = 1
    while p < n2:
        k = p
        while k >= 1:
            stage: List[Tuple[int, int]] = []
            for j in range(k % p, n2 - k, 2 * k):
                for i in range(0, k):
                    if (i + j) // (2 * p) == (i + j + k) // (2 * p):
                        a, b = i + j, i + j + k
                        if b < n:  # drop comparators touching virtual wires
                            stage.append((a, b))
            if stage:
                rounds.append(stage)
            k //= 2
        p *= 2
    return from_rounds(n, rounds)


def bitonic_sort(n: int) -> ComparatorSchedule:
    """Batcher's bitonic sorting network; ``n`` must be a power of two.

    Descending sub-merges are encoded as reversed comparator pairs
    ``(b, a)`` (wire listed first receives the minimum).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if n & (n - 1) != 0:
        raise ValueError(f"bitonic sort requires a power-of-two size, got {n}")
    if n == 1:
        return from_rounds(1, [])
    rounds: List[List[Tuple[int, int]]] = []
    k = 2
    while k <= n:
        j = k // 2
        while j >= 1:
            stage: List[Tuple[int, int]] = []
            for i in range(n):
                partner = i ^ j
                if partner > i:
                    ascending = (i & k) == 0
                    stage.append((i, partner) if ascending else (partner, i))
            rounds.append(stage)
            j //= 2
        k *= 2
    return from_rounds(n, rounds)


def odd_even_transposition(n: int) -> ComparatorSchedule:
    """The depth-``n`` odd-even transposition ("brick") network."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    rounds: List[List[Tuple[int, int]]] = []
    for r in range(n):
        start = r % 2
        stage = [(i, i + 1) for i in range(start, n - 1, 2)]
        if stage:
            rounds.append(stage)
    return from_rounds(n, rounds)


_NETWORKS = {
    "batcher": odd_even_mergesort,
    "odd-even-mergesort": odd_even_mergesort,
    "bitonic": bitonic_sort,
    "transposition": odd_even_transposition,
}


def make_sorting_network(kind: str, n: int) -> ComparatorSchedule:
    """Factory by name: ``"batcher"``, ``"bitonic"``, ``"transposition"``."""
    try:
        builder = _NETWORKS[kind.lower()]
    except KeyError:
        raise ValueError(
            f"unknown sorting network {kind!r}; valid: {sorted(set(_NETWORKS))}"
        ) from None
    return builder(n)


__all__ = [
    "odd_even_mergesort",
    "bitonic_sort",
    "odd_even_transposition",
    "make_sorting_network",
]
