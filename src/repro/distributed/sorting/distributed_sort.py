"""Distributed execution of a comparator schedule via message passing.

Each wire of the sorting network is owned by one network node. In every
comparator round the two partners exchange their keys
(:class:`SortKeyMessage`); both then apply the same deterministic
resolution rule (the designated wire keeps the minimum), so no further
coordination is needed. One comparator round therefore costs exactly
one message per participating wire and one network round of latency
(plus one final round for the last resolution).

This generic executor is used standalone (see :func:`distributed_sort`)
and embedded in the Algorithm 1 protocol (:mod:`repro.distributed.protocol`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.distributed.messages import Envelope, SortKeyMessage
from repro.distributed.network import Network, Node
from repro.distributed.sorting.schedule import ComparatorSchedule


def wire_name(index: int) -> str:
    """Canonical node name of the sorter on wire ``index``."""
    return f"w{index}"


class SorterNode(Node):
    """Owns one wire: exchanges keys per schedule, resolves locally.

    Timeline (network rounds): in round ``r`` the node first resolves
    comparator ``r - 1`` using the partner key from its inbox, then
    sends its (possibly updated) key for comparator ``r``. The network
    quiesces after ``depth + 1`` rounds.
    """

    def __init__(self, wire: int, key: Tuple, schedule: ComparatorSchedule):
        super().__init__(wire_name(wire))
        self.wire = wire
        self.key = tuple(key)
        self._participation = schedule.participation()
        self._depth = schedule.depth
        self._done = schedule.depth == 0

    def _resolve(self, comparator_round: int, partner_key: Tuple) -> None:
        partner, takes_min = self._participation[comparator_round][self.wire]
        pair = sorted([self.key, tuple(partner_key)])
        self.key = pair[0] if takes_min else pair[1]

    def on_round(self, round_no: int, inbox: List[Envelope], net: Network) -> None:
        # 1. resolve the previous comparator round, if we took part
        if inbox:
            for env in inbox:
                payload = env.payload
                if not isinstance(payload, SortKeyMessage):
                    raise TypeError(f"unexpected payload: {type(payload).__name__}")
                if payload.comparator_round != round_no - 1:
                    raise RuntimeError(
                        f"wire {self.wire}: key for comparator round "
                        f"{payload.comparator_round} arrived in network round {round_no}"
                    )
                self._resolve(payload.comparator_round, payload.key)
        if round_no == self._depth:
            self._done = True
        # 2. send our key for the current comparator round
        if round_no < self._depth:
            entry = self._participation[round_no].get(self.wire)
            if entry is not None:
                partner, _ = entry
                net.send(
                    self.name,
                    wire_name(partner),
                    SortKeyMessage(comparator_round=round_no, key=self.key),
                )

    def is_idle(self) -> bool:
        return self._done


def distributed_sort(
    keys: Sequence[Tuple],
    schedule: ComparatorSchedule,
    *,
    network: Optional[Network] = None,
) -> "tuple[List[Tuple], Network]":
    """Sort ``keys`` by running the schedule on a message-passing network.

    Returns the sorted key list (ascending, wire order) and the network
    (whose :class:`~repro.distributed.network.NetworkMetrics` expose the
    communication cost).
    """
    if len(keys) != schedule.n:
        raise ValueError(f"expected {schedule.n} keys, got {len(keys)}")
    net = network if network is not None else Network()
    sorters = [SorterNode(i, key, schedule) for i, key in enumerate(keys)]
    for s in sorters:
        net.add_node(s)
    net.run(max_rounds=schedule.depth + 2)
    return [s.key for s in sorters], net


__all__ = ["SorterNode", "distributed_sort", "wire_name"]
