"""Comparator schedules: the wiring diagrams of sorting networks.

A sorting network is represented as a :class:`ComparatorSchedule` — a
list of *rounds*, each round a list of ordered wire pairs ``(a, b)``
that operate in parallel. The semantics of a comparator ``(a, b)``:
after the compare-exchange, wire ``a`` holds the smaller key and wire
``b`` the larger (``a`` and ``b`` need not satisfy ``a < b``; bitonic
networks use "descending" comparators).

Keys are arbitrary totally ordered Python values; the library sorts
``(-score, agent_id)`` tuples so that ascending network order equals
descending score order with deterministic tie-breaks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

Comparator = Tuple[int, int]
Round = List[Comparator]


@dataclass(frozen=True)
class ComparatorSchedule:
    """An immutable, validated comparator schedule.

    Attributes
    ----------
    n:
        Number of wires.
    rounds:
        Rounds of parallel comparators.
    """

    n: int
    rounds: Tuple[Tuple[Comparator, ...], ...]

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"n must be >= 1, got {self.n}")
        for r, rnd in enumerate(self.rounds):
            seen: set = set()
            for a, b in rnd:
                if a == b:
                    raise ValueError(f"round {r}: degenerate comparator ({a}, {b})")
                for w in (a, b):
                    if not 0 <= w < self.n:
                        raise ValueError(f"round {r}: wire {w} out of range")
                    if w in seen:
                        raise ValueError(
                            f"round {r}: wire {w} used by two comparators"
                        )
                    seen.add(w)

    @property
    def depth(self) -> int:
        """Number of parallel rounds."""
        return len(self.rounds)

    @property
    def size(self) -> int:
        """Total number of comparators."""
        return sum(len(r) for r in self.rounds)

    def participation(self) -> List[Dict[int, Tuple[int, bool]]]:
        """Per round, map ``wire -> (partner, takes_min)``.

        Used by the distributed executor: an agent on wire ``w`` looks
        up its partner and whether it keeps the smaller key.
        """
        table: List[Dict[int, Tuple[int, bool]]] = []
        for rnd in self.rounds:
            entry: Dict[int, Tuple[int, bool]] = {}
            for a, b in rnd:
                entry[a] = (b, True)
                entry[b] = (a, False)
            table.append(entry)
        return table


def from_rounds(n: int, rounds: Sequence[Sequence[Comparator]]) -> ComparatorSchedule:
    """Build a validated schedule from nested lists."""
    return ComparatorSchedule(
        n=n, rounds=tuple(tuple((int(a), int(b)) for a, b in rnd) for rnd in rounds)
    )


def apply_schedule(keys: Sequence, schedule: ComparatorSchedule) -> List:
    """Run the network centrally on a list of keys (reference executor).

    This is the specification the distributed executor is tested
    against, and the workhorse of the 0-1-principle tests.
    """
    if len(keys) != schedule.n:
        raise ValueError(f"expected {schedule.n} keys, got {len(keys)}")
    wires = list(keys)
    for rnd in schedule.rounds:
        for a, b in rnd:
            if wires[b] < wires[a]:
                wires[a], wires[b] = wires[b], wires[a]
    return wires


def is_sorting_network(schedule: ComparatorSchedule, *, exhaustive_limit: int = 16) -> bool:
    """Verify the 0-1 principle exhaustively.

    A comparator network sorts *all* inputs iff it sorts all ``2^n``
    0/1 inputs (Knuth, TAOCP vol. 3). Exhaustive up to
    ``exhaustive_limit`` wires; larger networks raise ``ValueError``
    (use randomized testing instead).
    """
    n = schedule.n
    if n > exhaustive_limit:
        raise ValueError(
            f"exhaustive 0-1 check infeasible for n={n} > {exhaustive_limit}"
        )
    for pattern in range(2**n):
        bits = [(pattern >> i) & 1 for i in range(n)]
        out = apply_schedule(bits, schedule)
        if any(out[i] > out[i + 1] for i in range(n - 1)):
            return False
    return True


__all__ = [
    "Comparator",
    "ComparatorSchedule",
    "from_rounds",
    "apply_schedule",
    "is_sorting_network",
]
