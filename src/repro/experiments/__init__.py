"""Experiment harness: figure reproductions, sweeps, statistics, storage."""

from repro.experiments.figures import (
    DEFAULT_N_VALUES,
    DEFAULT_THETA,
    FIGURES,
    FigureResult,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure_design_ablation,
    run_figure,
)
from repro.experiments.parallel import (
    WORKERS_ENV,
    resolve_workers,
    shutdown_pool,
)
from repro.experiments.scheduler import (
    BACKENDS,
    BACKEND_ENV,
    HOSTS_ENV,
    SweepExecutor,
    SweepPlan,
    resolve_backend,
)
from repro.experiments.shm import SHM_ENV, SweepArena, resolve_shm
from repro.experiments.worker import serve_worker, start_local_workers
from repro.experiments.runner import (
    ALGORITHMS,
    ENGINES,
    REQUIRED_QUERIES_ALGORITHMS,
    RequiredQueriesSample,
    SuccessCurve,
    required_queries_trials,
    run_many,
    success_rate_curve,
)
from repro.experiments.search import (
    ThresholdEstimate,
    compare_algorithm_thresholds,
    success_probability_threshold,
)
from repro.experiments.stats import (
    BoxplotStats,
    binomial_confidence,
    boxplot_stats,
    geometric_space,
)
from repro.experiments.plots import ascii_plot, plot_figure_result
from repro.experiments.storage import (
    load_csv,
    load_json,
    load_required_queries_sample,
    save_csv,
    save_json,
)
from repro.experiments.tables import render_kv, render_table

__all__ = [
    "DEFAULT_N_VALUES",
    "DEFAULT_THETA",
    "FigureResult",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure_design_ablation",
    "FIGURES",
    "run_figure",
    "BACKENDS",
    "BACKEND_ENV",
    "HOSTS_ENV",
    "SweepPlan",
    "SweepExecutor",
    "resolve_backend",
    "SHM_ENV",
    "SweepArena",
    "resolve_shm",
    "serve_worker",
    "start_local_workers",
    "ALGORITHMS",
    "REQUIRED_QUERIES_ALGORITHMS",
    "ENGINES",
    "RequiredQueriesSample",
    "SuccessCurve",
    "required_queries_trials",
    "success_rate_curve",
    "run_many",
    "WORKERS_ENV",
    "resolve_workers",
    "shutdown_pool",
    "ThresholdEstimate",
    "success_probability_threshold",
    "compare_algorithm_thresholds",
    "BoxplotStats",
    "boxplot_stats",
    "binomial_confidence",
    "geometric_space",
    "save_json",
    "load_json",
    "save_csv",
    "load_csv",
    "load_required_queries_sample",
    "render_table",
    "render_kv",
    "ascii_plot",
    "plot_figure_result",
]
