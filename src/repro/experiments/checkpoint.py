"""Checkpoint/resume for sweep plans: crash-safe, bit-identical.

A sweep's unit of durable progress is the **chunk** — a contiguous
slice of one cell's pre-spawned trial seeds, a pure function of
``(spec, kind, m, seeds)``. As chunks finish, the executor persists
each outcome list here (atomic write-then-rename through
:func:`repro.experiments.storage.save_json_atomic`); when a cell's
last chunk lands, the cell's merged raw outcomes are persisted as one
record and the chunk files are dropped. A driver that is killed
mid-sweep and re-run with the **same plan** therefore skips completed
cells entirely and resumes half-finished ones from their surviving
chunks — and the resumed result is bit-identical to an uninterrupted
run *by construction*, because the plan re-spawns the same child seeds
and the restored outcomes are the very values the chunks returned
(JSON round-trips bools, ints and ``repr``-exact floats losslessly).

Layout
------
The user-facing checkpoint path is a **root directory**; each plan
stores under a subdirectory keyed by its content fingerprint::

    <root>/plan-<hash16>/manifest.json      # fingerprint + cell shapes
    <root>/plan-<hash16>/cell_0003.json     # a completed cell's outcomes
    <root>/plan-<hash16>/chunk_c3_m2_0_8.json  # a finished chunk

so one checkpoint root (e.g. ``REPRO_CHECKPOINT=ckpt/``) serves every
plan a figure pipeline runs, without cross-plan collisions. Pointing
the path **directly at a plan directory** (one that already contains a
``manifest.json``) is also supported; then the manifest's recorded
fingerprint must match the live plan — a mismatch (the plan's specs,
seeds or shape changed since the checkpoint was written) raises
:class:`CheckpointMismatch` instead of silently resuming foreign
outcomes.

The fingerprint hashes every cell's kind, spec (including the channel
object), trial count, m-grid, and the entropy/spawn-key of every
pre-spawned child seed — the complete input closure of the sweep. It
is stable across processes and runs for the same plan, but **not**
guaranteed stable across library versions (it hashes pickled specs,
the same same-version assumption the wire protocol makes); a version
bump simply recomputes.

Chunk records are keyed by ``(cell, m-index, trial-range)`` rather
than queue position, so a resume with a different worker count or
backend (hence a different chunk layout) still reuses every record
whose trial range matches — and recomputes the rest, which is always
correct because chunks are pure.
"""

from __future__ import annotations

import hashlib
import pickle
from pathlib import Path
from typing import Dict, List, Optional

from repro.experiments.storage import load_json, save_json_atomic

#: manifest schema version (bump on layout changes)
CHECKPOINT_VERSION = 1

#: environment variable supplying a default checkpoint root for every
#: executor run (the CLI's ``--checkpoint`` exports it, which is how
#: the figure pipelines — which build several plans internally — get
#: checkpointing without per-figure plumbing)
CHECKPOINT_ENV = "REPRO_CHECKPOINT"


class CheckpointMismatch(RuntimeError):
    """A manifest's plan fingerprint disagrees with the live plan."""


def _seed_fingerprint(seed) -> tuple:
    """A ``SeedSequence``'s identity: entropy + spawn key."""
    entropy = seed.entropy
    if isinstance(entropy, (list, tuple)):
        entropy = tuple(int(e) for e in entropy)
    return (entropy, tuple(seed.spawn_key))


def plan_fingerprint(plan) -> str:
    """Content hash (sha256 hex) of a plan's specs + pre-spawned seeds.

    Two plans fingerprint equal iff every cell has the same kind,
    spec, trial count, m-grid and child-seed identities — exactly the
    closure that determines every chunk's output. Channel objects are
    hashed via their pickle, deterministic within a library version.
    """
    cells = []
    for cell in plan._cells:
        seeds = None
        if cell.seeds is not None:
            seeds = [_seed_fingerprint(s) for s in cell.seeds]
        per_m = None
        if cell.per_m_seeds is not None:
            per_m = [
                [_seed_fingerprint(s) for s in m_seeds]
                for m_seeds in cell.per_m_seeds
            ]
        cells.append(
            (cell.kind, cell.spec, cell.trials, cell.m_values, seeds, per_m)
        )
    blob = pickle.dumps(cells, pickle.HIGHEST_PROTOCOL)
    return hashlib.sha256(blob).hexdigest()


def chunk_key(cell: int, m_index: Optional[int], lo: int, hi: int) -> str:
    """Stable identity of one chunk record (layout-independent)."""
    m_part = "r" if m_index is None else str(m_index)
    return f"c{cell}_m{m_part}_{lo}_{hi}"


class SweepCheckpoint:
    """One plan's durable progress under a checkpoint directory.

    Construct via :meth:`open`, which resolves the plan subdirectory,
    verifies (or writes) the manifest, and loads every surviving cell
    and chunk record into memory — the executor then consults
    :meth:`cell_outcomes` / :meth:`chunk_outcomes` before queueing
    work and calls :meth:`record_chunk` / :meth:`record_cell` as new
    results land. ``cells_reused`` / ``chunks_reused`` count what the
    resume actually skipped (asserted in tests, printed by the chaos
    smoke).
    """

    def __init__(self, directory: Path, fingerprint: str, cells: int) -> None:
        self.directory = Path(directory)
        self.fingerprint = fingerprint
        self.n_cells = cells
        self._cells: Dict[int, list] = {}
        self._chunks: Dict[str, list] = {}
        self.cells_reused = 0
        self.chunks_reused = 0

    # ---- construction ----

    @classmethod
    def open(cls, path, plan) -> "SweepCheckpoint":
        """Open (or initialize) the checkpoint for ``plan`` under ``path``.

        ``path`` is normally a checkpoint *root* (the plan subdirectory
        is derived from the fingerprint); a path that itself contains
        ``manifest.json`` is treated as a plan directory and must
        fingerprint-match, else :class:`CheckpointMismatch`.
        """
        root = Path(path)
        fingerprint = plan_fingerprint(plan)
        if (root / "manifest.json").exists():
            directory = root
        else:
            directory = root / f"plan-{fingerprint[:16]}"
        manifest_path = directory / "manifest.json"
        if manifest_path.exists():
            manifest = load_json(manifest_path)
            if manifest.get("version") != CHECKPOINT_VERSION:
                raise CheckpointMismatch(
                    f"checkpoint {directory} has manifest version "
                    f"{manifest.get('version')!r}; this library writes "
                    f"version {CHECKPOINT_VERSION}"
                )
            if manifest.get("plan_hash") != fingerprint:
                raise CheckpointMismatch(
                    f"stale checkpoint {directory}: its manifest was "
                    f"written for plan {manifest.get('plan_hash')!r} but "
                    f"the live plan hashes to {fingerprint!r} — the specs, "
                    "seeds or cell layout changed; delete the directory "
                    "or point --checkpoint elsewhere to recompute"
                )
            if manifest.get("cells") != len(plan._cells):
                raise CheckpointMismatch(
                    f"stale checkpoint {directory}: manifest records "
                    f"{manifest.get('cells')} cells, plan has "
                    f"{len(plan._cells)}"
                )
        else:
            save_json_atomic(
                manifest_path,
                {
                    "version": CHECKPOINT_VERSION,
                    "plan_hash": fingerprint,
                    "cells": len(plan._cells),
                    "cell_kinds": [c.kind for c in plan._cells],
                },
            )
        ckpt = cls(directory, fingerprint, len(plan._cells))
        ckpt._load_records()
        return ckpt

    def _load_records(self) -> None:
        """Read every surviving cell/chunk record into memory once."""
        for path in sorted(self.directory.glob("cell_*.json")):
            record = load_json(path)
            self._cells[int(path.stem.split("_")[1])] = record["outcomes"]
        for path in sorted(self.directory.glob("chunk_*.json")):
            record = load_json(path)
            self._chunks[path.stem[len("chunk_"):]] = record["outcomes"]

    # ---- resume side ----

    def cell_outcomes(self, cell: int) -> Optional[list]:
        """The completed cell's raw outcomes, or ``None``."""
        outcomes = self._cells.get(cell)
        if outcomes is not None:
            self.cells_reused += 1
        return outcomes

    def chunk_outcomes(self, key: str) -> Optional[list]:
        """A finished chunk's outcome list, or ``None``."""
        outcomes = self._chunks.get(key)
        if outcomes is not None:
            self.chunks_reused += 1
        return outcomes

    # ---- record side ----

    def record_chunk(self, key: str, outcomes: list) -> None:
        """Persist one finished chunk (atomic write-then-rename)."""
        save_json_atomic(
            self.directory / f"chunk_{key}.json", {"outcomes": outcomes}
        )
        self._chunks[key] = outcomes

    def record_cell(self, cell: int, outcomes: list) -> None:
        """Persist a completed cell and drop its now-redundant chunks."""
        save_json_atomic(
            self.directory / f"cell_{cell:04d}.json", {"outcomes": outcomes}
        )
        self._cells[cell] = outcomes
        prefix = f"c{cell}_"
        stale = [k for k in self._chunks if k.startswith(prefix)]
        for key in stale:
            del self._chunks[key]
            try:
                (self.directory / f"chunk_{key}.json").unlink()
            except OSError:
                pass  # a lost cleanup only costs disk, never correctness


__all__ = [
    "CHECKPOINT_ENV",
    "CHECKPOINT_VERSION",
    "CheckpointMismatch",
    "SweepCheckpoint",
    "chunk_key",
    "plan_fingerprint",
]
