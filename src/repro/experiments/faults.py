"""Deterministic fault injection for the socket sweep backend.

:class:`FaultyWorkerProxy` is a frame-level TCP relay that sits
between a :class:`~repro.experiments.scheduler.SweepExecutor` and a
real worker and misbehaves on command: it can drop the connection
after N chunk replies (a worker crash), swallow every worker-to-driver
frame while keeping the connection open (a wedged worker — the
scenario only application-level heartbeats can detect), delay chunk
replies (a straggler, for exercising speculative re-dispatch), corrupt
a single reply frame (tag verification must reject it before
unpickling), or corrupt the driver's first frame (an
unauthenticated peer — the worker must drop the connection without
unpickling anything).

The proxy never interprets more of the wire format than it has to: it
relays raw ``header | tag | payload`` frames and unpickles payloads
*only* to classify worker replies as chunk results (``ok`` / ``err``)
versus handshake/heartbeat traffic — it lives in the test harness, on
the same trust domain as the worker whose pickles it reads. Every
recovery path in the elastic executor is driven by these faults in
``tests/test_elastic.py`` and the chaos smoke, deterministically,
instead of being described and hoped for.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Optional

from repro.experiments.worker import _HEADER, _TAG_SIZE, _recv_exact


def _read_raw_frame(conn: socket.socket) -> Optional[tuple]:
    """Read one raw frame as ``(header, tag, payload)``; None on EOF."""
    header = _recv_exact(conn, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    tag = _recv_exact(conn, _TAG_SIZE)
    if tag is None:
        return None
    payload = _recv_exact(conn, length)
    if payload is None:
        return None
    return header, tag, payload


def _is_chunk_reply(payload: bytes) -> bool:
    """Whether a worker-to-driver payload is a chunk result frame."""
    import pickle

    try:
        obj = pickle.loads(payload)
    except Exception:
        return False
    return isinstance(obj, tuple) and bool(obj) and obj[0] in ("ok", "err")


def _flip_byte(data: bytes) -> bytes:
    """Corrupt ``data`` by flipping one bit of its middle byte."""
    index = len(data) // 2
    return data[:index] + bytes([data[index] ^ 0x01]) + data[index + 1:]


def _drop(conn: socket.socket) -> None:
    """Tear a relayed connection down *now*: shutdown, then close.

    A bare ``close()`` is not enough here — the sibling relay thread
    is usually blocked in ``recv()`` on the same socket, whose
    in-flight syscall keeps the open file description alive, so no FIN
    reaches the peer until that recv returns (i.e. never). ``shutdown``
    acts on the connection itself: it sends the FIN immediately and
    wakes the blocked recv with EOF.
    """
    try:
        conn.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        conn.close()
    except OSError:
        pass


class FaultyWorkerProxy:
    """A TCP relay in front of one worker that fails on command.

    Parameters
    ----------
    upstream:
        ``"host:port"`` of the real worker to relay to.
    kill_after_chunks:
        Relay this many chunk replies, then drop both connections and
        stop listening — from the driver's side the worker crashed and
        its address now refuses connections.
    freeze_after_chunks:
        Relay this many chunk replies, then swallow every further
        worker-to-driver frame *on that connection* while leaving it
        open — a wedged worker that TCP alone cannot distinguish from
        a slow one (the heartbeat-timeout scenario). A reconnect gets
        a fresh, working relay, as if the wedged process had been
        restarted, so the executor's timeout-then-reconnect recovery
        completes the sweep.
    delay_reply:
        Sleep this many seconds before relaying each chunk reply — a
        straggler (handshake and heartbeat frames pass undelayed, so
        the worker stays *live*, just slow).
    corrupt_reply_index:
        Flip one payload bit of the Nth (0-based) chunk reply — the
        driver's tag verification must reject the frame before
        unpickling and recover by requeue + reconnect.
    corrupt_first_frame:
        Flip one payload bit of the driver's first frame (the hello) —
        the worker must treat the peer as unauthenticated and drop the
        connection without unpickling anything.

    Counters are proxy-global, not per-connection, so faults fire once
    per proxy regardless of how many times the driver reconnects.
    """

    def __init__(
        self,
        upstream: str,
        *,
        kill_after_chunks: Optional[int] = None,
        freeze_after_chunks: Optional[int] = None,
        delay_reply: float = 0.0,
        corrupt_reply_index: Optional[int] = None,
        corrupt_first_frame: bool = False,
    ) -> None:
        host, _, port = upstream.rpartition(":")
        self.upstream = (host, int(port))
        self.kill_after_chunks = kill_after_chunks
        self.freeze_after_chunks = freeze_after_chunks
        self.delay_reply = delay_reply
        self.corrupt_reply_index = corrupt_reply_index
        self.corrupt_first_frame = corrupt_first_frame
        self.host = "127.0.0.1"
        self.port: Optional[int] = None
        self.chunks_relayed = 0
        self._listener: Optional[socket.socket] = None
        self._stop = threading.Event()
        self._frozen = threading.Event()
        self._lock = threading.Lock()
        self._threads: list = []
        self._conns: list = []

    # ---- lifecycle ----

    def start(self) -> "FaultyWorkerProxy":
        """Bind an ephemeral port and start accepting driver connections."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, 0))
        listener.listen()
        self._listener = listener
        self.port = listener.getsockname()[1]
        thread = threading.Thread(target=self._accept_loop, daemon=True)
        thread.start()
        self._threads.append(thread)
        return self

    def stop(self) -> None:
        """Stop listening and drop every relayed connection."""
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            conns, self._conns = self._conns, []
        for conn in conns:
            _drop(conn)

    @property
    def address(self) -> str:
        """The ``"host:port"`` string drivers should connect to."""
        return f"{self.host}:{self.port}"

    # ---- relay ----

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                driver_conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            try:
                worker_conn = socket.create_connection(
                    self.upstream, timeout=10.0
                )
            except OSError:
                driver_conn.close()
                continue
            with self._lock:
                self._conns.extend([driver_conn, worker_conn])
            for target, args in (
                (self._relay_to_worker, (driver_conn, worker_conn)),
                (self._relay_to_driver, (worker_conn, driver_conn)),
            ):
                thread = threading.Thread(
                    target=target, args=args, daemon=True
                )
                thread.start()
                self._threads.append(thread)

    def _relay_to_worker(self, driver_conn, worker_conn) -> None:
        first = True
        try:
            while not self._stop.is_set():
                frame = _read_raw_frame(driver_conn)
                if frame is None:
                    break
                header, tag, payload = frame
                if first and self.corrupt_first_frame:
                    payload = _flip_byte(payload)
                first = False
                worker_conn.sendall(header + tag + payload)
        except OSError:
            pass
        finally:
            # Half the relay dying takes the whole conversation with
            # it — a torn TCP stream cannot be resynchronized anyway.
            _drop(driver_conn)
            _drop(worker_conn)

    def _relay_to_driver(self, worker_conn, driver_conn) -> None:
        frozen = False
        try:
            while not self._stop.is_set():
                frame = _read_raw_frame(worker_conn)
                if frame is None:
                    break
                header, tag, payload = frame
                if frozen:
                    continue  # wedged: swallow, keep the socket open
                if not _is_chunk_reply(payload):
                    driver_conn.sendall(header + tag + payload)
                    continue
                with self._lock:
                    index = self.chunks_relayed
                    self.chunks_relayed += 1
                if self.corrupt_reply_index == index:
                    payload = _flip_byte(payload)
                if self.delay_reply:
                    time.sleep(self.delay_reply)
                driver_conn.sendall(header + tag + payload)
                if (
                    self.kill_after_chunks is not None
                    and self.chunks_relayed >= self.kill_after_chunks
                ):
                    self.stop()  # crash: drop conns, refuse reconnects
                    return
                if (
                    self.freeze_after_chunks is not None
                    and self.chunks_relayed >= self.freeze_after_chunks
                    and not self._frozen.is_set()
                ):
                    frozen = True
                    self._frozen.set()  # fire once; observable in tests
        except OSError:
            pass
        finally:
            if not frozen:
                _drop(driver_conn)
                _drop(worker_conn)


__all__ = ["FaultyWorkerProxy"]
