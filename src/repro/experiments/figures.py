"""Reproduction entry points for every figure of the paper (Figs. 2-7).

Each ``figure*`` function runs the simulation behind one paper figure
and returns a :class:`FigureResult` holding tidy rows (one dict per
plotted point) plus the parameters used. ``FigureResult.render()``
prints the same series the paper plots; ``FigureResult.save()`` writes
JSON/CSV for external plotting.

Defaults are laptop-scale (the paper's full sweeps go to ``n = 10^5``
on a dual-Xeon machine); every knob is exposed so the full-scale runs
remain one call away. EXPERIMENTS.md records the shapes obtained with
the defaults against the paper's reported behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.bounds import (
    theorem1_sublinear_gnc,
    theorem1_sublinear_z,
    theorem2_sublinear,
)
from repro.core.ground_truth import sublinear_k
from repro.core.noise import (
    GaussianQueryNoise,
    NoiselessChannel,
    NoisyChannel,
    ZChannel,
)
from repro.experiments.runner import (
    required_queries_trials,
    success_rate_curve,
)
from repro.experiments.stats import boxplot_stats, geometric_space
from repro.experiments.storage import save_csv, save_json
from repro.experiments.tables import render_table
from repro.utils.rng import RngLike

#: default log-spaced n grid (paper: 10^2 .. 10^5; default stops at 10^4)
DEFAULT_N_VALUES = tuple(geometric_space(100, 10_000, 9))

#: the paper's sublinear exponent used throughout Section V
DEFAULT_THETA = 0.25


def _series_label(algorithm: str, label: str, algorithms) -> str:
    """Series name for a required-m curve.

    Single-algorithm runs (the default greedy-only pipeline) keep the
    historical labels; multi-algorithm runs prefix the algorithm so the
    greedy and AMP required-m curves sit side by side in one figure.
    """
    return label if len(algorithms) == 1 else f"{algorithm} {label}"


@dataclass(frozen=True)
class FigureResult:
    """Tidy result of one figure reproduction."""

    figure: str
    description: str
    params: Dict[str, object]
    rows: List[Dict[str, object]] = field(default_factory=list)

    def columns(self) -> List[str]:
        cols: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in cols:
                    cols.append(key)
        return cols

    def render(self) -> str:
        """ASCII table of all rows (the paper's series, as text)."""
        cols = self.columns()
        table = render_table(cols, [[row.get(c, "") for c in cols] for row in self.rows])
        return f"== {self.figure}: {self.description} ==\n{table}"

    def save(self, directory) -> None:
        """Persist as ``<figure>.json`` and ``<figure>.csv``."""
        from pathlib import Path

        directory = Path(directory)
        save_json(directory / f"{self.figure}.json", self)
        save_csv(directory / f"{self.figure}.csv", self.rows, fieldnames=self.columns())

    def series(self, label: str) -> List[Dict[str, object]]:
        """All rows belonging to one labelled series."""
        return [row for row in self.rows if row.get("series") == label]


def figure2(
    *,
    n_values: Sequence[int] = DEFAULT_N_VALUES,
    ps: Sequence[float] = (0.1, 0.3, 0.5),
    theta: float = DEFAULT_THETA,
    trials: int = 5,
    seed: RngLike = 2022,
    check_every: int = 1,
    bound_p: float = 0.1,
    bound_eps: float = 0.05,
    algorithms: Sequence[str] = ("greedy",),
    engine: str = "batch",
    workers: Optional[int] = None,
) -> FigureResult:
    """Figure 2: required queries vs n for the Z-channel.

    Series: one per flip probability ``p`` (median over trials) plus the
    Theorem 1 dashed bound for ``bound_p`` and ``eps = bound_eps``.
    Pass ``algorithms=("greedy", "amp")`` to plot the AMP required-m
    curve (smallest checked m whose prefix decodes exactly) beside the
    greedy separation rule; series then gain an algorithm prefix.
    """
    rows: List[Dict[str, object]] = []
    for algorithm in algorithms:
        for p in ps:
            channel = ZChannel(p)
            for n in n_values:
                k = sublinear_k(n, theta)
                sample = required_queries_trials(
                    n,
                    k,
                    channel,
                    trials=trials,
                    seed=seed,
                    check_every=check_every,
                    algorithm=algorithm,
                    engine=engine,
                    workers=workers,
                )
                rows.append(
                    {
                        "series": _series_label(algorithm, f"p={p:g}", algorithms),
                        "n": n,
                        "k": k,
                        "required_m_median": sample.median,
                        "required_m_mean": sample.mean,
                        "trials": sample.trials,
                        "failures": sample.failures,
                    }
                )
    for n in n_values:
        rows.append(
            {
                "series": f"theory p={bound_p:g}",
                "n": n,
                "k": sublinear_k(n, theta),
                "required_m_median": theorem1_sublinear_z(n, theta, bound_p, bound_eps),
            }
        )
    return FigureResult(
        figure="fig2",
        description="required queries vs n, Z-channel, theta=%g" % theta,
        params={
            "n_values": list(n_values),
            "ps": list(ps),
            "theta": theta,
            "trials": trials,
            "bound_p": bound_p,
            "bound_eps": bound_eps,
            "algorithms": list(algorithms),
        },
        rows=rows,
    )


def figure3(
    *,
    n_values: Sequence[int] = DEFAULT_N_VALUES,
    lams: Sequence[float] = (1.0,),
    theta: float = DEFAULT_THETA,
    trials: int = 5,
    seed: RngLike = 2022,
    check_every: int = 1,
    include_bound: bool = True,
    bound_eps: float = 0.05,
    algorithms: Sequence[str] = ("greedy",),
    engine: str = "batch",
    workers: Optional[int] = None,
) -> FigureResult:
    """Figure 3: required queries vs n, noisy query model vs noiseless.

    ``algorithms=("greedy", "amp")`` adds the AMP required-m curves
    beside the greedy ones (algorithm-prefixed series).
    """
    rows: List[Dict[str, object]] = []
    channels = [("without noise", NoiselessChannel())]
    channels += [(f"lambda={lam:g}", GaussianQueryNoise(lam)) for lam in lams]
    for algorithm in algorithms:
        for label, channel in channels:
            for n in n_values:
                k = sublinear_k(n, theta)
                sample = required_queries_trials(
                    n,
                    k,
                    channel,
                    trials=trials,
                    seed=seed,
                    check_every=check_every,
                    algorithm=algorithm,
                    engine=engine,
                    workers=workers,
                )
                rows.append(
                    {
                        "series": _series_label(algorithm, label, algorithms),
                        "n": n,
                        "k": k,
                        "required_m_median": sample.median,
                        "required_m_mean": sample.mean,
                        "trials": sample.trials,
                        "failures": sample.failures,
                    }
                )
    if include_bound:
        for n in n_values:
            rows.append(
                {
                    "series": "theory (Thm 2)",
                    "n": n,
                    "k": sublinear_k(n, theta),
                    "required_m_median": theorem2_sublinear(n, theta, bound_eps),
                }
            )
    return FigureResult(
        figure="fig3",
        description="required queries vs n, noisy query model, theta=%g" % theta,
        params={
            "n_values": list(n_values),
            "lams": list(lams),
            "theta": theta,
            "trials": trials,
            "algorithms": list(algorithms),
        },
        rows=rows,
    )


def figure4(
    *,
    n_values: Sequence[int] = DEFAULT_N_VALUES,
    qs: Sequence[float] = (1e-1, 1e-2, 1e-3, 1e-4, 1e-5),
    theta: float = DEFAULT_THETA,
    trials: int = 5,
    seed: RngLike = 2022,
    check_every: int = 1,
    include_bounds: bool = True,
    bound_eps: float = 0.05,
    centering: str = "oracle",
    algorithms: Sequence[str] = ("greedy",),
    engine: str = "batch",
    workers: Optional[int] = None,
) -> FigureResult:
    """Figure 4: required queries vs n, general noisy channel with p = q.

    The paper highlights the crossover predicted by the remark after
    Theorem 1: while ``q`` is below order ``k/n`` the channel behaves
    like the Z-channel; once ``q`` dominates ``k/n`` the required number
    of queries rises onto the steeper GNC trajectory. The dashed theory
    series is the GNC bound of Theorem 1.

    Scores are centered with the analysis-side ``"oracle"`` offset
    (Eq. 3-4) by default: with a positive false-positive rate the plain
    ``k/2`` offset of Algorithm 1's line 14 leaves a bias that couples
    with ``Delta*`` fluctuations and inflates the required m far beyond
    the Theorem 1 trajectory (see DESIGN.md, ablation A1).
    """
    rows: List[Dict[str, object]] = []
    for algorithm in algorithms:
        for q in qs:
            channel = NoisyChannel(q, q)
            for n in n_values:
                k = sublinear_k(n, theta)
                sample = required_queries_trials(
                    n,
                    k,
                    channel,
                    trials=trials,
                    seed=seed,
                    check_every=check_every,
                    centering=centering,
                    algorithm=algorithm,
                    engine=engine,
                    workers=workers,
                )
                rows.append(
                    {
                        "series": _series_label(algorithm, f"q={q:g}", algorithms),
                        "n": n,
                        "k": k,
                        "required_m_median": sample.median,
                        "required_m_mean": sample.mean,
                        "trials": sample.trials,
                        "failures": sample.failures,
                    }
                )
    if include_bounds:
        for q in qs:
            for n in n_values:
                rows.append(
                    {
                        "series": f"theory q={q:g}",
                        "n": n,
                        "k": sublinear_k(n, theta),
                        "required_m_median": theorem1_sublinear_gnc(
                            n, theta, q, q, bound_eps
                        ),
                    }
                )
    return FigureResult(
        figure="fig4",
        description="required queries vs n, general noisy channel p=q",
        params={
            "n_values": list(n_values),
            "qs": list(qs),
            "theta": theta,
            "trials": trials,
            "algorithms": list(algorithms),
        },
        rows=rows,
    )


def figure5(
    *,
    n_values: Sequence[int] = (1_000, 10_000),
    ps: Sequence[float] = (0.1, 0.3, 0.5),
    lams: Sequence[float] = (0.0, 1.0, 2.0, 3.0),
    theta: float = DEFAULT_THETA,
    trials: int = 20,
    seed: RngLike = 2022,
    check_every: int = 1,
    algorithms: Sequence[str] = ("greedy",),
    engine: str = "batch",
    workers: Optional[int] = None,
) -> FigureResult:
    """Figure 5: boxplots of the required m per configuration and n.

    The paper shows ``n in {10^3, 10^4, 10^5}``; the default grid stops
    at ``10^4`` (pass ``n_values=(1000, 10_000, 100_000)`` for the full
    version). One row per (n, configuration) with Tukey boxplot stats;
    ``algorithms=("greedy", "amp")`` adds AMP required-m boxplots
    beside the greedy ones.
    """
    rows: List[Dict[str, object]] = []
    configs = [(f"Z p={p:g}", ZChannel(p)) for p in ps]
    configs += [
        (
            f"lambda={lam:g}",
            GaussianQueryNoise(lam) if lam > 0 else NoiselessChannel(),
        )
        for lam in lams
    ]
    for algorithm in algorithms:
        for n in n_values:
            k = sublinear_k(n, theta)
            for label, channel in configs:
                sample = required_queries_trials(
                    n,
                    k,
                    channel,
                    trials=trials,
                    seed=seed,
                    check_every=check_every,
                    algorithm=algorithm,
                    engine=engine,
                    workers=workers,
                )
                if not sample.values:
                    continue
                stats = boxplot_stats(sample.values)
                rows.append(
                    {
                        "series": _series_label(algorithm, label, algorithms),
                        "n": n,
                        "k": k,
                        "median": stats.median,
                        "q1": stats.q1,
                        "q3": stats.q3,
                        "whisker_low": stats.whisker_low,
                        "whisker_high": stats.whisker_high,
                        "outliers": len(stats.outliers),
                        "trials": sample.trials,
                    }
                )
    return FigureResult(
        figure="fig5",
        description="boxplots of required queries (Z-channel and noisy query)",
        params={
            "n_values": list(n_values),
            "ps": list(ps),
            "lams": list(lams),
            "theta": theta,
            "trials": trials,
            "algorithms": list(algorithms),
        },
        rows=rows,
    )


def figure6(
    *,
    n: int = 1000,
    theta: float = DEFAULT_THETA,
    ps: Sequence[float] = (0.1, 0.3, 0.5),
    m_values: Optional[Sequence[int]] = None,
    trials: int = 100,
    seed: RngLike = 2022,
    algorithms: Sequence[str] = ("greedy", "amp"),
    bound_p: float = 0.1,
    bound_eps: float = 0.1,
    engine: str = "batch",
    workers: Optional[int] = None,
) -> FigureResult:
    """Figure 6: success rate vs m at n=1000, greedy vs AMP, Z-channel.

    The paper's headline comparison: both algorithms show a phase
    transition; AMP's window is narrower and sits at smaller m.
    """
    if m_values is None:
        m_values = list(range(25, 601, 25))
    k = sublinear_k(n, theta)
    rows: List[Dict[str, object]] = []
    for algorithm in algorithms:
        for p in ps:
            curve = success_rate_curve(
                n,
                k,
                ZChannel(p),
                m_values,
                algorithm=algorithm,
                trials=trials,
                seed=seed,
                engine=engine,
                workers=workers,
            )
            for m, rate in zip(curve.m_values, curve.success_rates):
                rows.append(
                    {
                        "series": f"{algorithm} p={p:g}",
                        "m": m,
                        "success_rate": rate,
                        "n": n,
                        "k": k,
                        "trials": trials,
                    }
                )
    bound = theorem1_sublinear_z(n, theta, bound_p, bound_eps)
    rows.append(
        {
            "series": f"theory p={bound_p:g}",
            "m": bound,
            "success_rate": None,
            "n": n,
            "k": k,
        }
    )
    return FigureResult(
        figure="fig6",
        description="success rate vs m (greedy vs AMP), Z-channel, n=%d" % n,
        params={
            "n": n,
            "theta": theta,
            "ps": list(ps),
            "m_values": list(m_values),
            "trials": trials,
            "algorithms": list(algorithms),
        },
        rows=rows,
    )


def figure7(
    *,
    n: int = 1000,
    theta: float = DEFAULT_THETA,
    ps: Sequence[float] = (0.1, 0.3, 0.5),
    m_values: Optional[Sequence[int]] = None,
    trials: int = 100,
    seed: RngLike = 2022,
    bound_p: float = 0.1,
    bound_eps: float = 0.1,
    engine: str = "batch",
    workers: Optional[int] = None,
) -> FigureResult:
    """Figure 7: overlap (fraction of identified 1-agents) vs m, greedy."""
    if m_values is None:
        m_values = list(range(25, 601, 25))
    k = sublinear_k(n, theta)
    rows: List[Dict[str, object]] = []
    for p in ps:
        curve = success_rate_curve(
            n,
            k,
            ZChannel(p),
            m_values,
            algorithm="greedy",
            trials=trials,
            seed=seed,
            engine=engine,
            workers=workers,
        )
        for m, overlap, rate in zip(
            curve.m_values, curve.overlaps, curve.success_rates
        ):
            rows.append(
                {
                    "series": f"p={p:g}",
                    "m": m,
                    "overlap": overlap,
                    "success_rate": rate,
                    "n": n,
                    "k": k,
                    "trials": trials,
                }
            )
    bound = theorem1_sublinear_z(n, theta, bound_p, bound_eps)
    rows.append(
        {
            "series": f"theory p={bound_p:g}",
            "m": bound,
            "overlap": None,
            "n": n,
            "k": k,
        }
    )
    return FigureResult(
        figure="fig7",
        description="overlap vs m (greedy), Z-channel, n=%d" % n,
        params={
            "n": n,
            "theta": theta,
            "ps": list(ps),
            "m_values": list(m_values),
            "trials": trials,
        },
        rows=rows,
    )


FIGURES = {
    "fig2": figure2,
    "fig3": figure3,
    "fig4": figure4,
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
}


def run_figure(name: str, **kwargs) -> FigureResult:
    """Dispatch a figure reproduction by name (``fig2`` ... ``fig7``)."""
    try:
        fn = FIGURES[name.lower()]
    except KeyError:
        raise ValueError(f"unknown figure {name!r}; valid: {sorted(FIGURES)}") from None
    return fn(**kwargs)


__all__ = [
    "DEFAULT_N_VALUES",
    "DEFAULT_THETA",
    "FigureResult",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "FIGURES",
    "run_figure",
]
