"""Reproduction entry points for every figure of the paper (Figs. 2-7).

Each ``figure*`` function runs the simulation behind one paper figure
and returns a :class:`FigureResult` holding tidy rows (one dict per
plotted point) plus the parameters used. ``FigureResult.render()``
prints the same series the paper plots; ``FigureResult.save()`` writes
JSON/CSV for external plotting.

Defaults are laptop-scale (the paper's full sweeps go to ``n = 10^5``
on a dual-Xeon machine); every knob is exposed so the full-scale runs
remain one call away. EXPERIMENTS.md records the shapes obtained with
the defaults against the paper's reported behaviour.

Every pipeline builds one multi-cell
:class:`~repro.experiments.scheduler.SweepPlan` — one cell per
``(algorithm, channel, n)`` or ``(design, n)`` configuration — and
executes all cells' trial chunks through the sweep engine's single
global work queue, so heterogeneous cells load-balance across workers
with no per-cell barrier. ``workers`` and ``backend`` select the
execution backend (``serial`` / ``process`` / ``socket``); results are
bit-identical to the per-cell serial loop for every choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.bounds import (
    theorem1_sublinear_gnc,
    theorem1_sublinear_z,
    theorem2_sublinear,
)
from repro.core.ground_truth import sublinear_k
from repro.core.noise import (
    GaussianQueryNoise,
    NoiselessChannel,
    NoisyChannel,
    ZChannel,
)
from repro.experiments.scheduler import SweepPlan
from repro.experiments.stats import boxplot_stats, geometric_space
from repro.experiments.storage import save_csv, save_json
from repro.experiments.tables import render_table
from repro.utils.rng import RngLike

#: default log-spaced n grid (paper: 10^2 .. 10^5; default stops at 10^4)
DEFAULT_N_VALUES = tuple(geometric_space(100, 10_000, 9))

#: the paper's sublinear exponent used throughout Section V
DEFAULT_THETA = 0.25


def _required_m_rows(cells, samples) -> "List[Dict[str, object]]":
    """Required-m rows for figures 2-4: one per executed sweep cell.

    ``cells`` carries the ``(series, n, k)`` labels in plan order;
    ``samples`` are the matching :class:`RequiredQueriesSample` results.
    """
    return [
        {
            "series": series,
            "n": n,
            "k": k,
            "required_m_median": sample.median,
            "required_m_mean": sample.mean,
            "trials": sample.trials,
            "failures": sample.failures,
        }
        for (series, n, k), sample in zip(cells, samples)
    ]


def _series_label(algorithm: str, label: str, algorithms) -> str:
    """Series name for a required-m curve.

    Single-algorithm runs (the default greedy-only pipeline) keep the
    historical labels; multi-algorithm runs prefix the algorithm so the
    greedy and AMP required-m curves sit side by side in one figure.
    """
    return label if len(algorithms) == 1 else f"{algorithm} {label}"


@dataclass(frozen=True)
class FigureResult:
    """Tidy result of one figure reproduction."""

    figure: str
    description: str
    params: Dict[str, object]
    rows: List[Dict[str, object]] = field(default_factory=list)

    def columns(self) -> List[str]:
        cols: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in cols:
                    cols.append(key)
        return cols

    def render(self) -> str:
        """ASCII table of all rows (the paper's series, as text)."""
        cols = self.columns()
        table = render_table(cols, [[row.get(c, "") for c in cols] for row in self.rows])
        return f"== {self.figure}: {self.description} ==\n{table}"

    def save(self, directory) -> None:
        """Persist as ``<figure>.json`` and ``<figure>.csv``."""
        from pathlib import Path

        directory = Path(directory)
        save_json(directory / f"{self.figure}.json", self)
        save_csv(directory / f"{self.figure}.csv", self.rows, fieldnames=self.columns())

    def series(self, label: str) -> List[Dict[str, object]]:
        """All rows belonging to one labelled series."""
        return [row for row in self.rows if row.get("series") == label]


def figure2(
    *,
    n_values: Sequence[int] = DEFAULT_N_VALUES,
    ps: Sequence[float] = (0.1, 0.3, 0.5),
    theta: float = DEFAULT_THETA,
    trials: int = 5,
    seed: RngLike = 2022,
    check_every: int = 1,
    bound_p: float = 0.1,
    bound_eps: float = 0.05,
    algorithms: Sequence[str] = ("greedy",),
    engine: str = "batch",
    workers: Optional[int] = None,
    backend: Optional[str] = None,
) -> FigureResult:
    """Figure 2: required queries vs n for the Z-channel.

    Series: one per flip probability ``p`` (median over trials) plus the
    Theorem 1 dashed bound for ``bound_p`` and ``eps = bound_eps``.
    Pass ``algorithms=("greedy", "amp")`` to plot the AMP required-m
    curve (smallest checked m whose prefix decodes exactly) beside the
    greedy separation rule; series then gain an algorithm prefix.
    """
    plan = SweepPlan()
    cells = []
    for algorithm in algorithms:
        for p in ps:
            channel = ZChannel(p)
            for n in n_values:
                k = sublinear_k(n, theta)
                plan.add_required_queries(
                    n,
                    k,
                    channel,
                    trials=trials,
                    seed=seed,
                    check_every=check_every,
                    algorithm=algorithm,
                    engine=engine,
                )
                cells.append(
                    (_series_label(algorithm, f"p={p:g}", algorithms), n, k)
                )
    rows = _required_m_rows(cells, plan.run(backend=backend, workers=workers))
    for n in n_values:
        rows.append(
            {
                "series": f"theory p={bound_p:g}",
                "n": n,
                "k": sublinear_k(n, theta),
                "required_m_median": theorem1_sublinear_z(n, theta, bound_p, bound_eps),
            }
        )
    return FigureResult(
        figure="fig2",
        description="required queries vs n, Z-channel, theta=%g" % theta,
        params={
            "n_values": list(n_values),
            "ps": list(ps),
            "theta": theta,
            "trials": trials,
            "bound_p": bound_p,
            "bound_eps": bound_eps,
            "algorithms": list(algorithms),
        },
        rows=rows,
    )


def figure3(
    *,
    n_values: Sequence[int] = DEFAULT_N_VALUES,
    lams: Sequence[float] = (1.0,),
    theta: float = DEFAULT_THETA,
    trials: int = 5,
    seed: RngLike = 2022,
    check_every: int = 1,
    include_bound: bool = True,
    bound_eps: float = 0.05,
    algorithms: Sequence[str] = ("greedy",),
    engine: str = "batch",
    workers: Optional[int] = None,
    backend: Optional[str] = None,
) -> FigureResult:
    """Figure 3: required queries vs n, noisy query model vs noiseless.

    ``algorithms=("greedy", "amp")`` adds the AMP required-m curves
    beside the greedy ones (algorithm-prefixed series).
    """
    channels = [("without noise", NoiselessChannel())]
    channels += [(f"lambda={lam:g}", GaussianQueryNoise(lam)) for lam in lams]
    plan = SweepPlan()
    cells = []
    for algorithm in algorithms:
        for label, channel in channels:
            for n in n_values:
                k = sublinear_k(n, theta)
                plan.add_required_queries(
                    n,
                    k,
                    channel,
                    trials=trials,
                    seed=seed,
                    check_every=check_every,
                    algorithm=algorithm,
                    engine=engine,
                )
                cells.append(
                    (_series_label(algorithm, label, algorithms), n, k)
                )
    rows = _required_m_rows(cells, plan.run(backend=backend, workers=workers))
    if include_bound:
        for n in n_values:
            rows.append(
                {
                    "series": "theory (Thm 2)",
                    "n": n,
                    "k": sublinear_k(n, theta),
                    "required_m_median": theorem2_sublinear(n, theta, bound_eps),
                }
            )
    return FigureResult(
        figure="fig3",
        description="required queries vs n, noisy query model, theta=%g" % theta,
        params={
            "n_values": list(n_values),
            "lams": list(lams),
            "theta": theta,
            "trials": trials,
            "algorithms": list(algorithms),
        },
        rows=rows,
    )


def figure4(
    *,
    n_values: Sequence[int] = DEFAULT_N_VALUES,
    qs: Sequence[float] = (1e-1, 1e-2, 1e-3, 1e-4, 1e-5),
    theta: float = DEFAULT_THETA,
    trials: int = 5,
    seed: RngLike = 2022,
    check_every: int = 1,
    include_bounds: bool = True,
    bound_eps: float = 0.05,
    centering: str = "oracle",
    algorithms: Sequence[str] = ("greedy",),
    engine: str = "batch",
    workers: Optional[int] = None,
    backend: Optional[str] = None,
) -> FigureResult:
    """Figure 4: required queries vs n, general noisy channel with p = q.

    The paper highlights the crossover predicted by the remark after
    Theorem 1: while ``q`` is below order ``k/n`` the channel behaves
    like the Z-channel; once ``q`` dominates ``k/n`` the required number
    of queries rises onto the steeper GNC trajectory. The dashed theory
    series is the GNC bound of Theorem 1.

    Scores are centered with the analysis-side ``"oracle"`` offset
    (Eq. 3-4) by default: with a positive false-positive rate the plain
    ``k/2`` offset of Algorithm 1's line 14 leaves a bias that couples
    with ``Delta*`` fluctuations and inflates the required m far beyond
    the Theorem 1 trajectory (see DESIGN.md, ablation A1).
    """
    plan = SweepPlan()
    cells = []
    for algorithm in algorithms:
        for q in qs:
            channel = NoisyChannel(q, q)
            for n in n_values:
                k = sublinear_k(n, theta)
                plan.add_required_queries(
                    n,
                    k,
                    channel,
                    trials=trials,
                    seed=seed,
                    check_every=check_every,
                    centering=centering,
                    algorithm=algorithm,
                    engine=engine,
                )
                cells.append(
                    (_series_label(algorithm, f"q={q:g}", algorithms), n, k)
                )
    rows = _required_m_rows(cells, plan.run(backend=backend, workers=workers))
    if include_bounds:
        for q in qs:
            for n in n_values:
                rows.append(
                    {
                        "series": f"theory q={q:g}",
                        "n": n,
                        "k": sublinear_k(n, theta),
                        "required_m_median": theorem1_sublinear_gnc(
                            n, theta, q, q, bound_eps
                        ),
                    }
                )
    return FigureResult(
        figure="fig4",
        description="required queries vs n, general noisy channel p=q",
        params={
            "n_values": list(n_values),
            "qs": list(qs),
            "theta": theta,
            "trials": trials,
            "algorithms": list(algorithms),
        },
        rows=rows,
    )


def figure5(
    *,
    n_values: Sequence[int] = (1_000, 10_000),
    ps: Sequence[float] = (0.1, 0.3, 0.5),
    lams: Sequence[float] = (0.0, 1.0, 2.0, 3.0),
    theta: float = DEFAULT_THETA,
    trials: int = 20,
    seed: RngLike = 2022,
    check_every: int = 1,
    algorithms: Sequence[str] = ("greedy",),
    engine: str = "batch",
    workers: Optional[int] = None,
    backend: Optional[str] = None,
) -> FigureResult:
    """Figure 5: boxplots of the required m per configuration and n.

    The paper shows ``n in {10^3, 10^4, 10^5}``; the default grid stops
    at ``10^4`` (pass ``n_values=(1000, 10_000, 100_000)`` for the full
    version). One row per (n, configuration) with Tukey boxplot stats;
    ``algorithms=("greedy", "amp")`` adds AMP required-m boxplots
    beside the greedy ones.
    """
    configs = [(f"Z p={p:g}", ZChannel(p)) for p in ps]
    configs += [
        (
            f"lambda={lam:g}",
            GaussianQueryNoise(lam) if lam > 0 else NoiselessChannel(),
        )
        for lam in lams
    ]
    plan = SweepPlan()
    cells = []
    for algorithm in algorithms:
        for n in n_values:
            k = sublinear_k(n, theta)
            for label, channel in configs:
                plan.add_required_queries(
                    n,
                    k,
                    channel,
                    trials=trials,
                    seed=seed,
                    check_every=check_every,
                    algorithm=algorithm,
                    engine=engine,
                )
                cells.append(
                    (_series_label(algorithm, label, algorithms), n, k)
                )
    samples = plan.run(backend=backend, workers=workers)
    rows: List[Dict[str, object]] = []
    for (series, n, k), sample in zip(cells, samples):
        if not sample.values:
            continue
        stats = boxplot_stats(sample.values)
        rows.append(
            {
                "series": series,
                "n": n,
                "k": k,
                "median": stats.median,
                "q1": stats.q1,
                "q3": stats.q3,
                "whisker_low": stats.whisker_low,
                "whisker_high": stats.whisker_high,
                "outliers": len(stats.outliers),
                "trials": sample.trials,
            }
        )
    return FigureResult(
        figure="fig5",
        description="boxplots of required queries (Z-channel and noisy query)",
        params={
            "n_values": list(n_values),
            "ps": list(ps),
            "lams": list(lams),
            "theta": theta,
            "trials": trials,
            "algorithms": list(algorithms),
        },
        rows=rows,
    )


def figure6(
    *,
    n: int = 1000,
    theta: float = DEFAULT_THETA,
    ps: Sequence[float] = (0.1, 0.3, 0.5),
    m_values: Optional[Sequence[int]] = None,
    trials: int = 100,
    seed: RngLike = 2022,
    algorithms: Sequence[str] = ("greedy", "amp"),
    bound_p: float = 0.1,
    bound_eps: float = 0.1,
    engine: str = "batch",
    workers: Optional[int] = None,
    backend: Optional[str] = None,
) -> FigureResult:
    """Figure 6: success rate vs m at n=1000, greedy vs AMP, Z-channel.

    The paper's headline comparison: both algorithms show a phase
    transition; AMP's window is narrower and sits at smaller m.
    """
    if m_values is None:
        m_values = list(range(25, 601, 25))
    k = sublinear_k(n, theta)
    plan = SweepPlan()
    cells = []
    for algorithm in algorithms:
        for p in ps:
            plan.add_success_curve(
                n,
                k,
                ZChannel(p),
                m_values,
                algorithm=algorithm,
                trials=trials,
                seed=seed,
                engine=engine,
            )
            cells.append(f"{algorithm} p={p:g}")
    curves = plan.run(backend=backend, workers=workers)
    rows: List[Dict[str, object]] = [
        {
            "series": series,
            "m": m,
            "success_rate": rate,
            "n": n,
            "k": k,
            "trials": trials,
        }
        for series, curve in zip(cells, curves)
        for m, rate in zip(curve.m_values, curve.success_rates)
    ]
    bound = theorem1_sublinear_z(n, theta, bound_p, bound_eps)
    rows.append(
        {
            "series": f"theory p={bound_p:g}",
            "m": bound,
            "success_rate": None,
            "n": n,
            "k": k,
        }
    )
    return FigureResult(
        figure="fig6",
        description="success rate vs m (greedy vs AMP), Z-channel, n=%d" % n,
        params={
            "n": n,
            "theta": theta,
            "ps": list(ps),
            "m_values": list(m_values),
            "trials": trials,
            "algorithms": list(algorithms),
        },
        rows=rows,
    )


def figure7(
    *,
    n: int = 1000,
    theta: float = DEFAULT_THETA,
    ps: Sequence[float] = (0.1, 0.3, 0.5),
    m_values: Optional[Sequence[int]] = None,
    trials: int = 100,
    seed: RngLike = 2022,
    bound_p: float = 0.1,
    bound_eps: float = 0.1,
    engine: str = "batch",
    workers: Optional[int] = None,
    backend: Optional[str] = None,
) -> FigureResult:
    """Figure 7: overlap (fraction of identified 1-agents) vs m, greedy."""
    if m_values is None:
        m_values = list(range(25, 601, 25))
    k = sublinear_k(n, theta)
    plan = SweepPlan()
    cells = []
    for p in ps:
        plan.add_success_curve(
            n,
            k,
            ZChannel(p),
            m_values,
            algorithm="greedy",
            trials=trials,
            seed=seed,
            engine=engine,
        )
        cells.append(f"p={p:g}")
    curves = plan.run(backend=backend, workers=workers)
    rows: List[Dict[str, object]] = [
        {
            "series": series,
            "m": m,
            "overlap": overlap,
            "success_rate": rate,
            "n": n,
            "k": k,
            "trials": trials,
        }
        for series, curve in zip(cells, curves)
        for m, overlap, rate in zip(
            curve.m_values, curve.overlaps, curve.success_rates
        )
    ]
    bound = theorem1_sublinear_z(n, theta, bound_p, bound_eps)
    rows.append(
        {
            "series": f"theory p={bound_p:g}",
            "m": bound,
            "overlap": None,
            "n": n,
            "k": k,
        }
    )
    return FigureResult(
        figure="fig7",
        description="overlap vs m (greedy), Z-channel, n=%d" % n,
        params={
            "n": n,
            "theta": theta,
            "ps": list(ps),
            "m_values": list(m_values),
            "trials": trials,
        },
        rows=rows,
    )


def figure_design_ablation(
    *,
    n_values: Sequence[int] = (300, 600, 1200),
    theta: float = DEFAULT_THETA,
    p: float = 0.1,
    level: float = 0.5,
    m_points: int = 10,
    trials: int = 20,
    seed: RngLike = 2022,
    gamma: Optional[int] = None,
    designs: Sequence[str] = ("replacement", "regular"),
    engine: str = "batch",
    workers: Optional[int] = None,
    backend: Optional[str] = None,
) -> FigureResult:
    """Figure-level design ablation: required m per pooling design.

    Compares the paper's with-replacement multigraph against the
    constant-column-weight ``sample_regular_design`` family (refs.
    [4, 33] of the paper) at matched edge budget: for every query
    count ``m`` on a per-``n`` geometric grid, both designs spend
    ``m * Gamma`` edges (the regular design's agent degree is tuned to
    ``m * Gamma / n``, so its expected query size equals the
    multigraph's fixed ``Gamma``). The regular design has no
    incremental form — queries are coupled through the constant column
    weight — so the required-m proxy is the success-curve crossing:
    the smallest grid ``m`` whose exact-recovery rate reaches
    ``level`` under the greedy decoder, one curve per ``(design, n)``
    cell, all cells routed through the sweep engine's global queue
    like figures 2-5.

    One row per ``(design, n)``: ``required_m_p50`` is the crossing
    (``None`` when the level is never reached on the grid).
    """
    plan = SweepPlan()
    cells = []
    for design in designs:
        for n in n_values:
            k = sublinear_k(n, theta)
            m_values = geometric_space(max(8, n // 16), 2 * n, m_points)
            plan.add_success_curve(
                n,
                k,
                ZChannel(p),
                m_values,
                algorithm="greedy",
                trials=trials,
                seed=seed,
                gamma=gamma,
                engine=engine,
                design=design,
            )
            cells.append((design, n, k))
    curves = plan.run(backend=backend, workers=workers)
    rows: List[Dict[str, object]] = [
        {
            "series": design,
            "n": n,
            "k": k,
            "required_m_p50": curve.crossing(level),
            "trials": trials,
        }
        for (design, n, k), curve in zip(cells, curves)
    ]
    return FigureResult(
        figure="ablation_design",
        description=(
            "required m (success-rate crossing at %g) per pooling design, "
            "Z-channel p=%g" % (level, p)
        ),
        params={
            "n_values": list(n_values),
            "theta": theta,
            "p": p,
            "level": level,
            "m_points": m_points,
            "trials": trials,
            "designs": list(designs),
        },
        rows=rows,
    )


def figure_robustness_degradation(
    *,
    n: int = 300,
    theta: float = DEFAULT_THETA,
    p: float = 0.1,
    m: Optional[int] = None,
    kind: str = "erasure",
    fault_rates: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8),
    outlier_scale: float = 5.0,
    algorithms: Sequence[str] = ("greedy", "amp", "twostage"),
    trials: int = 12,
    seed: RngLike = 2022,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
) -> FigureResult:
    """Robustness figure: decoder quality under rising measurement corruption.

    One success-curve cell per ``(algorithm, fault_rate)`` at a fixed
    query budget ``m`` (default ``0.6 n``, comfortably above the clean
    phase transition), with a seeded :class:`CorruptionModel` of the
    chosen ``kind`` (``"erasure"`` — results go missing, ``"flip"`` —
    adversarial mirror flips, ``"outlier"`` — heavy-tailed Cauchy
    shifts, ``"dead"`` — pool-agents die and take their queries along)
    applied post-channel. The repair path is the point: the plain
    greedy decoder degrades first, the channel-corrected two-stage
    decoder holds longer, and AMP holds longest.
    """
    from repro.core.corruption import CorruptionModel

    kinds = {
        "erasure": lambda r: CorruptionModel(erasure_rate=r),
        "flip": lambda r: CorruptionModel(flip_rate=r),
        "outlier": lambda r: CorruptionModel(
            outlier_rate=r, outlier_scale=outlier_scale
        ),
        "dead": lambda r: CorruptionModel(dead_agent_rate=r),
    }
    if kind not in kinds:
        raise ValueError(f"unknown corruption kind {kind!r}; valid: {sorted(kinds)}")
    k = sublinear_k(n, theta)
    if m is None:
        m = max(60, int(round(0.6 * n)))
    plan = SweepPlan()
    cells = []
    for algorithm in algorithms:
        for rate in fault_rates:
            plan.add_success_curve(
                n,
                k,
                ZChannel(p),
                [m],
                algorithm=algorithm,
                trials=trials,
                seed=seed,
                corruption=kinds[kind](rate),
            )
            cells.append((algorithm, rate))
    curves = plan.run(backend=backend, workers=workers)
    rows: List[Dict[str, object]] = [
        {
            "series": algorithm,
            "fault_rate": rate,
            "success_rate": curve.success_rates[0],
            "overlap": curve.overlaps[0],
            "n": n,
            "k": k,
            "m": m,
            "trials": trials,
        }
        for (algorithm, rate), curve in zip(cells, curves)
    ]
    return FigureResult(
        figure="robustness_degradation",
        description=(
            "decoder degradation under %s corruption (greedy vs AMP vs "
            "two-stage), Z p=%g, n=%d, m=%d" % (kind, p, n, m)
        ),
        params={
            "n": n,
            "theta": theta,
            "p": p,
            "m": m,
            "kind": kind,
            "fault_rates": list(fault_rates),
            "trials": trials,
            "algorithms": list(algorithms),
        },
        rows=rows,
    )


def figure_robustness_loss(
    *,
    n: int = 128,
    k: int = 4,
    p: float = 0.1,
    m: int = 220,
    drop_rates: Sequence[float] = (0.0, 0.1, 0.3, 0.5, 0.7),
    delay: float = 0.0,
    max_delay: int = 0,
    trials: int = 8,
    seed: RngLike = 55,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
) -> FigureResult:
    """Robustness figure: Algorithm 1 under query-broadcast message loss.

    The paper assumes reliable synchronous links; this figure
    quantifies what the distributed protocol loses without them. One
    ``algorithm="distributed"`` cell per drop rate, each with a seeded
    :class:`FaultSpec` injecting i.i.d. loss (and optional bounded
    delay) on the query-result broadcasts. Because a dropped broadcast
    merely removes one query result from one agent's neighborhood sum,
    losing a fraction ``d`` of messages behaves like running with
    ``(1-d) m`` effective queries — quality degrades gracefully rather
    than collapsing. Network metrics (messages, dropped, rounds) come
    from the per-cell :class:`NetworkMetrics` fold.
    """
    from repro.core.corruption import FaultSpec

    plan = SweepPlan()
    for drop in drop_rates:
        plan.add_success_curve(
            n,
            k,
            ZChannel(p),
            [m],
            algorithm="distributed",
            trials=trials,
            seed=seed,
            fault=FaultSpec(drop=drop, delay=delay, max_delay=max_delay),
        )
    curves = plan.run(backend=backend, workers=workers)
    rows: List[Dict[str, object]] = []
    for drop, curve in zip(drop_rates, curves):
        metrics = curve.meta["metrics"][0]
        rows.append(
            {
                "series": "lossy-broadcast",
                "drop_rate": drop,
                "success_rate": curve.success_rates[0],
                "overlap": curve.overlaps[0],
                "mean_dropped": metrics["dropped"],
                "mean_messages": metrics["messages"],
                "mean_rounds": metrics["rounds"],
                "n": n,
                "m": m,
                "trials": trials,
            }
        )
    return FigureResult(
        figure="robustness_loss",
        description=(
            "Algorithm 1 under query-broadcast loss (n=%d, m=%d, Z p=%g)"
            % (n, m, p)
        ),
        params={
            "n": n,
            "k": k,
            "p": p,
            "m": m,
            "drop_rates": list(drop_rates),
            "delay": delay,
            "max_delay": max_delay,
            "trials": trials,
        },
        rows=rows,
    )


def figure_robustness_comm(
    *,
    n_values: Sequence[int] = (64, 128, 256),
    theta: float = DEFAULT_THETA,
    p: float = 0.1,
    m_fraction: float = 0.4,
    trials: int = 4,
    seed: RngLike = 71,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
) -> FigureResult:
    """Robustness figure: communication bill vs n, Algorithm 1 vs AMP.

    The paper's efficiency argument (Sections III and VI): greedy needs
    "only one information exchange per network node" while AMP
    "requires an information flow through the whole communication
    network within multiple rounds". One ``distributed`` and one
    ``distributed_amp`` cell per ``n`` at the same query budget
    (``m = m_fraction * n``); rounds / messages / bits come from the
    per-cell :class:`NetworkMetrics` fold, next to the success rates
    the budgets buy.
    """
    plan = SweepPlan()
    cells = []
    for n in n_values:
        k = sublinear_k(n, theta)
        m = max(40, int(round(m_fraction * n)))
        for algorithm in ("distributed", "distributed_amp"):
            plan.add_success_curve(
                n,
                k,
                ZChannel(p),
                [m],
                algorithm=algorithm,
                trials=trials,
                seed=seed,
            )
            cells.append((algorithm, n, k, m))
    curves = plan.run(backend=backend, workers=workers)
    rows: List[Dict[str, object]] = []
    for (algorithm, n, k, m), curve in zip(cells, curves):
        metrics = curve.meta["metrics"][0]
        rows.append(
            {
                "series": algorithm,
                "n": n,
                "k": k,
                "m": m,
                "success_rate": curve.success_rates[0],
                "mean_rounds": metrics["rounds"],
                "mean_messages": metrics["messages"],
                "mean_bits": metrics["bits"],
                "trials": trials,
            }
        )
    return FigureResult(
        figure="robustness_comm",
        description=(
            "communication bill vs n: Algorithm 1 vs message-passing AMP, "
            "Z p=%g" % p
        ),
        params={
            "n_values": list(n_values),
            "theta": theta,
            "p": p,
            "m_fraction": m_fraction,
            "trials": trials,
        },
        rows=rows,
    )


FIGURES = {
    "fig2": figure2,
    "fig3": figure3,
    "fig4": figure4,
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
    "ablation_design": figure_design_ablation,
    "robustness_degradation": figure_robustness_degradation,
    "robustness_loss": figure_robustness_loss,
    "robustness_comm": figure_robustness_comm,
}


def run_figure(name: str, **kwargs) -> FigureResult:
    """Dispatch a figure reproduction by name (``fig2`` ... ``fig7``,
    ``ablation_design``, ``robustness_*``)."""
    try:
        fn = FIGURES[name.lower()]
    except KeyError:
        raise ValueError(f"unknown figure {name!r}; valid: {sorted(FIGURES)}") from None
    return fn(**kwargs)


__all__ = [
    "DEFAULT_N_VALUES",
    "DEFAULT_THETA",
    "FigureResult",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure_design_ablation",
    "figure_robustness_degradation",
    "figure_robustness_loss",
    "figure_robustness_comm",
    "FIGURES",
    "run_figure",
]
