"""Multiprocess trial sharding for the experiment harness.

The paper's figures are Monte-Carlo sweeps of independent trials, and
every trial already owns an independent child seed spawned from the
root seed (:func:`repro.utils.rng.spawn_rngs`). That makes the
workload embarrassingly parallel *by construction*, and this module
exploits it without changing a single seeded output:

1. **Seed spawning** — the scheduler pre-spawns exactly the per-trial
   child seed sequences the serial path would spawn (same
   ``SeedSequence.spawn`` calls, in the same order);
2. **Chunking** — the seed list is partitioned into contiguous,
   order-preserving chunks (:func:`repro.core.chunking.chunk_bounds`);
3. **Ordered merge** — each chunk runs through
   :class:`~repro.core.batch.BatchTrialRunner`, the batched AMP stack
   (:func:`repro.amp.batch_amp.run_amp_trials` — one block-diagonal
   system per chunk instead of chunk-size serial runs), the stacked
   AMP required-m scan (:func:`repro.amp.batch_amp.
   required_queries_amp` — a chunk's trials share probe rounds), or
   the legacy per-query loop inside a worker process, and the
   per-trial outcomes are merged back in trial order.

Because a trial's result is a pure function of its own seed, the merged
output is bit-identical to the serial run for any worker count — the
seeded-equivalence tests in ``tests/test_parallel.py`` pin this for the
greedy, AMP and distributed algorithms on both engines.

As of PR 5 the scheduling itself lives in
:mod:`repro.experiments.scheduler`: whole sweeps flatten into one
global queue of ``(cell, chunk)`` work items executed out of order on
a pluggable backend (``serial`` / ``process`` / ``socket``). This
module keeps the pieces the engine builds on — the cached process
pool, the worker-side chunk functions, and the PR 2 scheduler entry
points (:func:`required_queries_outcomes` /
:func:`success_curve_outcomes`), which are now thin one-cell sweep
plans on the ``process`` backend.

Workers are plain module-level functions and every payload (channel,
seeds, kwargs) is picklable, so the pool runs under the ``spawn`` start
method — the only method available on Windows, and the one immune to
fork-in-threaded-process hazards everywhere else. The executor is
cached between calls (``spawn`` pays an interpreter start-up per
worker, which would otherwise recur for every sweep cell); call
:func:`shutdown_pool` to release it explicitly — an ``atexit`` hook
releases it at interpreter exit, and the engine's process backend
retries a sweep once on a fresh pool when a worker dies mid-sweep
(``BrokenProcessPool``).

When parallelism helps
----------------------
Sharding pays off when per-trial work dominates the per-task dispatch
overhead (pickling + IPC, ~1 ms per chunk): large ``n``, dense
``gamma``, many trials. For small instances (``n`` in the hundreds)
or very few trials the serial engine is usually faster — keep
``workers=1`` (the default) there.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils import config
from repro.utils.rng import RngLike
from repro.utils.validation import check_non_negative_int

#: environment variable consulted when ``workers`` is not given
#: explicitly; lets CI (and users) shard whole test/benchmark runs
#: without touching call sites.
WORKERS_ENV = "REPRO_WORKERS"

#: pool start method: ``spawn`` is Windows-safe and gives identical
#: behaviour on every platform (workers re-import the library instead
#: of inheriting forked state).
START_METHOD = "spawn"

#: chunks submitted per worker for uneven workloads (required-queries
#: trials vary widely in duration); more chunks -> better balance,
#: at ~1 ms dispatch cost each.
_OVERSUBSCRIBE = 4


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve a ``workers`` request into an actual worker count.

    ``None`` falls back to the ``REPRO_WORKERS`` environment variable
    (default ``1`` — serial); ``0`` means "one worker per CPU"
    (``os.cpu_count()``). Anything else must be a non-negative integer,
    validated with the library's standard parameter errors.
    """
    if workers is None:
        workers = config.env_int(WORKERS_ENV, minimum=0)
        if workers is None:
            return 1
    workers = check_non_negative_int(workers, "workers")
    if workers == 0:
        workers = os.cpu_count() or 1
    return workers


# -- cached executor ----------------------------------------------------

_pool: Optional[ProcessPoolExecutor] = None
_pool_workers: Optional[int] = None


def _get_pool(workers: int) -> ProcessPoolExecutor:
    global _pool, _pool_workers
    # A crashed worker (OOM kill, segfault) breaks the executor for
    # good; hand out a fresh pool instead of the broken one so a
    # single lost worker doesn't disable sharding for the session.
    broken = _pool is not None and getattr(_pool, "_broken", False)
    if _pool is None or _pool_workers != workers or broken:
        shutdown_pool()
        _pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context(START_METHOD),
        )
        _pool_workers = workers
    return _pool


def shutdown_pool() -> None:
    """Shut down the cached worker pool (no-op when none is running)."""
    global _pool, _pool_workers
    if _pool is not None:
        _pool.shutdown()
        _pool = None
        _pool_workers = None


atexit.register(shutdown_pool)


# -- worker functions (module-level: picklable under spawn) -------------


def _required_queries_chunk(
    spec: Dict[str, object], seeds: Sequence[np.random.SeedSequence]
) -> List[Tuple[bool, Optional[int]]]:
    """Run one contiguous chunk of required-queries trials.

    Returns ``(succeeded, required_m)`` per trial, in chunk order. An
    AMP chunk runs the stacked prefix-replay scan over its whole seed
    list — the trials of one chunk share probe rounds — which is free
    to do because every trial's probes and outcomes are a pure function
    of its own seed (the chunk layout never shows in the merge).
    """
    corruption = spec.get("corruption")
    if (corruption is not None and not corruption.is_null) or spec.get(
        "algorithm"
    ) == "twostage":
        # Corrupted cells (any algorithm) and the two-stage robust
        # decoder run the generic prefix-replay exact-decode scan.
        return _required_queries_scan_chunk(spec, seeds)
    out: List[Tuple[bool, Optional[int]]] = []
    if spec.get("algorithm", "greedy") == "amp":
        from repro.amp.batch_amp import (
            required_queries_amp,
            required_queries_amp_linear,
        )

        if spec["engine"] == "batch":
            runs = required_queries_amp(
                spec["n"],
                spec["k"],
                spec["channel"],
                list(seeds),
                gamma=spec["gamma"],
                max_m=spec["max_m"],
                check_every=spec["check_every"],
                verify=spec.get("verify", "full"),
                kernel=spec.get("kernel"),
            )
        else:
            runs = required_queries_amp_linear(
                spec["n"],
                spec["k"],
                spec["channel"],
                list(seeds),
                gamma=spec["gamma"],
                max_m=spec["max_m"],
                check_every=spec["check_every"],
                kernel=spec.get("kernel"),
            )
        return [(result.succeeded, result.required_m) for result in runs]
    if spec["engine"] == "batch":
        from repro.core.batch import BatchTrialRunner

        runner = BatchTrialRunner(
            spec["n"],
            spec["k"],
            spec["channel"],
            gamma=spec["gamma"],
            centering=spec["centering"],
        )
        for seq in seeds:
            result = runner.required_queries(
                np.random.default_rng(seq),
                max_m=spec["max_m"],
                check_every=spec["check_every"],
            )
            out.append((result.succeeded, result.required_m))
    else:
        from repro.core.incremental import required_queries

        for seq in seeds:
            result = required_queries(
                spec["n"],
                spec["k"],
                spec["channel"],
                np.random.default_rng(seq),
                max_m=spec["max_m"],
                check_every=spec["check_every"],
                gamma=spec["gamma"],
                centering=spec["centering"],
            )
            out.append((result.succeeded, result.required_m))
    return out


def _scan_prefix_measurements(
    stream, mp: int, kept, results_full, channel, truth
):
    """Measurements of the first ``mp`` stream queries, post-corruption.

    ``kept``/``results_full`` are the full-stream corruption
    realization aligned to original query indices (``None``: honest
    stream — plain prefix replay). Dropped queries are removed as CSR
    rows; returns ``None`` when no query of the prefix survived.
    """
    from repro.core.measurement import Measurements
    from repro.core.pooling import PoolingGraph

    if kept is None:
        indptr, agents, counts, results = stream.prefix(mp)
    else:
        kept_m = kept[:mp]
        rows = int(kept_m.sum())
        if rows == 0:
            return None
        full_indptr = stream.indptr
        row_sizes = np.diff(full_indptr[: mp + 1])
        edge_mask = np.repeat(kept_m, row_sizes)
        indptr = np.zeros(rows + 1, dtype=np.int64)
        np.cumsum(row_sizes[kept_m], out=indptr[1:])
        edges = int(full_indptr[mp])
        agents = stream.agents[:edges][edge_mask]
        counts = stream.counts[:edges][edge_mask]
        results = results_full[:mp][kept_m]
    graph = PoolingGraph._unchecked(
        stream.n, stream.gamma, indptr, agents, counts
    )
    return Measurements(
        graph=graph, truth=truth, channel=channel, results=results
    )


def _required_queries_scan_chunk(
    spec: Dict[str, object], seeds: Sequence[np.random.SeedSequence]
) -> List[Tuple[bool, Optional[int]]]:
    """Generic prefix-replay required-m scan (robust/corrupted cells).

    Serves two cell families the specialized scans cannot:
    ``algorithm="twostage"`` (the robust repair decoder) and any
    algorithm under a ``corruption`` model. Stopping rule: the
    smallest checked m whose (corrupted) prefix decodes **exactly** —
    the AMP scan's rule, not the greedy separation rule, because
    corruption breaks the separation certificate's assumptions.

    Determinism: the trial's query stream is sampled once in
    append-only blocks (:class:`~repro.core.batch.MeasurementStream`),
    and a corrupted cell grows the stream to the full grid and
    corrupts it **once** with the trial's dedicated corruption
    generator — every probe then carves a prefix out of that single
    realization, so the outcome is a pure function of the child seed
    (probe schedule, chunk layout and backend never show). Both
    engines run this same linear scan (it has no stacked form), so
    ``engine="batch"`` and ``"legacy"`` are identical by construction.
    """
    from repro.core.batch import MeasurementStream
    from repro.core.corruption import apply_corruption, corruption_rng
    from repro.core.ground_truth import sample_ground_truth
    from repro.core.incremental import default_max_queries
    from repro.core.pooling import default_gamma
    from repro.experiments.runner import _run_algorithm

    n, k, channel = spec["n"], spec["k"], spec["channel"]
    gamma = spec["gamma"] or default_gamma(n)
    max_m = spec["max_m"] or default_max_queries(n, k, channel)
    step = max(1, int(spec["check_every"]))
    grid_max = (max_m // step) * step
    model = spec.get("corruption")
    if model is not None and model.is_null:
        model = None
    algorithm = spec.get("algorithm", "greedy")
    if algorithm in ("greedy", "twostage"):
        algo_kwargs = {"centering": spec["centering"]}
    elif algorithm == "amp" and spec.get("kernel") is not None:
        algo_kwargs = {"kernel": spec["kernel"]}
    else:
        algo_kwargs = {}

    out: List[Tuple[bool, Optional[int]]] = []
    for seq in seeds:
        gen = np.random.default_rng(seq)
        truth = sample_ground_truth(n, k, gen)
        stream = MeasurementStream(
            n, gamma, channel, truth, gen, max_m=grid_max, retain=True
        )
        kept = results_full = None
        if model is not None:
            # Corrupt the whole grid's stream in one draw so probe
            # prefixes share a single realization.
            stream.grow_to(grid_max)
            full = _scan_prefix_measurements(
                stream, stream.m_done, None, None, channel, truth
            )
            report = apply_corruption(full, model, corruption_rng(seq))
            kept, results_full = report.kept, report.results_full
        required = None
        for g in range(step, grid_max + 1, step):
            stream.grow_to(g)
            meas = _scan_prefix_measurements(
                stream, g, kept, results_full, channel, truth
            )
            if meas is None:
                continue  # every query of the prefix was corrupted away
            result = _run_algorithm(algorithm, meas, **algo_kwargs)
            if result.exact:
                required = g
                break
        out.append((required is not None, required))
    return out


def _fixed_m_chunk(
    spec: Dict[str, object], m: int, seeds: Sequence[np.random.SeedSequence]
) -> List[Tuple[bool, float]]:
    """Run one chunk of fixed-``m`` reconstruction trials.

    Returns ``(exact, overlap)`` per trial, in chunk order. The heavy
    per-trial artifacts (score vectors, estimates) stay in the worker —
    only the curve statistics cross the process boundary. A chunk runs
    whichever stacked engine path the scheduler selected
    (``batch_mode``): stacked greedy trials, one batched AMP stack per
    chunk, or the legacy per-trial loop. Each trial is a pure function
    of its own seed in every mode, so the chunk layout never shows in
    the merged output.
    """
    if spec["batch_mode"] == "greedy":
        from repro.core.batch import BatchTrialRunner

        runner = BatchTrialRunner(
            spec["n"],
            spec["k"],
            spec["channel"],
            gamma=spec["gamma"],
            centering=spec["algorithm_kwargs"].get("centering", "half_k"),
        )
        return [
            (bool(r.exact), float(r.overlap))
            for r in runner.run_trials_seeded(m, list(seeds))
        ]
    if spec["batch_mode"] == "amp":
        from repro.amp.batch_amp import run_amp_trials
        from repro.experiments.runner import _amp_batch_kwargs

        return [
            (bool(r.exact), float(r.overlap))
            for r in run_amp_trials(
                spec["n"],
                spec["k"],
                spec["channel"],
                m,
                list(seeds),
                gamma=spec["gamma"],
                **_amp_batch_kwargs(spec["algorithm_kwargs"]),
            )
        ]
    from repro.core.corruption import (
        apply_corruption,
        corruption_rng,
        network_fault_rng,
    )
    from repro.core.ground_truth import sample_ground_truth
    from repro.core.measurement import measure
    from repro.experiments.runner import _run_algorithm

    corruption = spec.get("corruption")
    if corruption is not None and corruption.is_null:
        corruption = None
    fault = spec.get("fault")
    if fault is not None and fault.is_null:
        fault = None
    algorithm = spec["algorithm"]
    distributed = algorithm in ("distributed", "distributed_amp")
    out: list = []
    for seq in seeds:
        gen = np.random.default_rng(seq)
        truth = sample_ground_truth(spec["n"], spec["k"], gen)
        graph = _sample_design_graph(spec, m, gen)
        measurements = measure(graph, truth, spec["channel"], gen)
        if corruption is not None:
            # Fault randomness comes from a dedicated stream of the
            # trial's child seed — never from the trial generator —
            # so the faulty run is a pure function of the seed too.
            measurements = apply_corruption(
                measurements, corruption, corruption_rng(seq)
            ).measurements
        kwargs = spec["algorithm_kwargs"]
        if fault is not None:
            kwargs = dict(kwargs)
            kwargs["fault_model"] = fault.build(network_fault_rng(seq))
        result = _run_algorithm(algorithm, measurements, **kwargs)
        if distributed:
            # Distributed cells carry their communication bill: the
            # fold averages these into SuccessCurve.meta["metrics"].
            meta = result.meta
            metrics = {
                key: meta[key]
                for key in ("rounds", "messages", "bits",
                            "dropped", "delayed")
                if key in meta
            }
            out.append(
                (bool(result.exact), float(result.overlap), metrics)
            )
        else:
            out.append((bool(result.exact), float(result.overlap)))
    return out


def _fixed_m_prepared_chunk(
    spec: Dict[str, object], m: int, arrays: Dict[str, np.ndarray]
) -> List[Tuple[bool, float]]:
    """Decode a driver-prepared fixed-``m`` AMP chunk.

    ``arrays`` holds the chunk's stacked CSR and per-trial results /
    truth rows, attached zero-copy from the sweep arena (see
    :func:`repro.experiments.shm.shm_graph_chunk`). Outcomes are
    identical to :func:`_fixed_m_chunk` on the chunk's seeds — the
    sampling simply happened on the driver instead of here.
    """
    from repro.amp.batch_amp import run_amp_prepared
    from repro.experiments.runner import _amp_batch_kwargs

    return run_amp_prepared(
        spec["n"],
        spec["k"],
        spec["channel"],
        m,
        arrays,
        gamma=spec["gamma"],
        **_amp_batch_kwargs(spec["algorithm_kwargs"]),
    )


def _required_prepared_chunk(
    spec: Dict[str, object], arrays: Dict[str, np.ndarray]
) -> List[Tuple[bool, Optional[int]]]:
    """Run a driver-prepared required-queries AMP chunk.

    ``arrays`` holds the chunk's fully grown measurement streams
    (prefix-replay form), attached zero-copy from the sweep arena.
    Outcomes are identical to :func:`_required_queries_chunk` on the
    chunk's seeds.
    """
    from repro.amp.batch_amp import required_queries_amp_replayed

    runs = required_queries_amp_replayed(
        spec["n"],
        spec["k"],
        spec["channel"],
        arrays,
        gamma=spec["gamma"],
        max_m=spec["max_m"],
        check_every=spec["check_every"],
        verify=spec.get("verify", "full"),
        kernel=spec.get("kernel"),
    )
    return [(result.succeeded, result.required_m) for result in runs]


def _sample_design_graph(spec: Dict[str, object], m: int, gen):
    """Sample one trial's pooling graph under the cell's design.

    ``design`` defaults to the paper's with-replacement multigraph;
    ``"distinct"`` draws each query's agents without replacement, and
    ``"regular"`` uses the constant-column-weight design of
    :func:`repro.core.pooling.sample_regular_design` with the agent
    degree tuned so the total edge budget matches the multigraph's
    ``m * gamma`` (expected query size equals the multigraph's fixed
    ``gamma``) — the figure-level design ablation's apples-to-apples
    comparison.
    """
    from repro.core.pooling import (
        default_gamma,
        sample_pooling_graph,
        sample_regular_design,
    )

    design = spec.get("design", "replacement")
    n = spec["n"]
    if design == "replacement":
        return sample_pooling_graph(n, m, spec["gamma"], gen)
    if design == "distinct":
        return sample_pooling_graph(
            n, m, spec["gamma"], gen, with_replacement=False
        )
    if design == "regular":
        gamma = spec["gamma"] or default_gamma(n)
        degree = min(max(1, round(m * gamma / n)), m)
        return sample_regular_design(n, m, degree, gen)
    raise ValueError(f"unknown design {design!r}")


# -- sharded schedulers (PR 2 API, now thin one-cell sweep plans) -------


def required_queries_outcomes(
    n: int,
    k: int,
    channel,
    *,
    trials: int,
    seed: RngLike,
    workers: int,
    max_m: Optional[int] = None,
    check_every: int = 1,
    gamma: Optional[int] = None,
    centering: str = "half_k",
    algorithm: str = "greedy",
    verify: str = "full",
    engine: str = "batch",
    kernel: Optional[str] = None,
    shm: Optional[bool] = None,
    checkpoint=None,
) -> List[Tuple[bool, Optional[int]]]:
    """Sharded required-queries trials; outcomes in trial order.

    A one-cell :class:`~repro.experiments.scheduler.SweepPlan` run on
    the ``process`` backend: the engine spawns the serial path's
    per-trial child seeds, shards them into contiguous chunks through
    the shared work queue, and concatenates the chunk outcomes —
    bit-identical to the serial trial loop for both stopping rules
    (``algorithm="greedy"`` / ``"amp"``). ``checkpoint`` names a
    directory for crash-safe resume (``None``: the
    ``REPRO_CHECKPOINT`` env var) — completed chunks are skipped on a
    re-run with the same arguments.
    """
    from repro.experiments.scheduler import SweepExecutor, SweepPlan

    plan = SweepPlan()
    plan.add_required_queries(
        n,
        k,
        channel,
        trials=trials,
        seed=seed,
        max_m=max_m,
        check_every=check_every,
        gamma=gamma,
        centering=centering,
        algorithm=algorithm,
        verify=verify,
        engine=engine,
        kernel=kernel,
    )
    executor = SweepExecutor(
        backend="process", workers=workers, shm=shm, checkpoint=checkpoint
    )
    return executor.run_outcomes(plan)[0]


def success_curve_outcomes(
    n: int,
    k: int,
    channel,
    m_values: Sequence[int],
    *,
    trials: int,
    seed: RngLike,
    workers: int,
    algorithm: str = "greedy",
    algorithm_kwargs: Optional[dict] = None,
    gamma: Optional[int] = None,
    batch_mode: Optional[str] = None,
    shm: Optional[bool] = None,
    checkpoint=None,
) -> List[List[Tuple[bool, float]]]:
    """Sharded fixed-``m`` trials for a whole m-grid.

    Returns one ``(exact, overlap)`` list per ``m`` value, each in
    trial order — a one-cell sweep plan on the ``process`` backend.
    Seed derivation mirrors the serial curve exactly: one child
    generator per grid point, then per-trial seeds spawned from it —
    so every trial sees the same seed it would serially. All
    ``(m, chunk)`` tasks share one submission wave of the engine's
    global queue, which keeps the workers busy across grid points
    instead of draining per point.

    ``batch_mode`` selects the stacked chunk implementation
    (``"greedy"`` / ``"amp"``; the scheduler trusts the caller that it
    matches ``algorithm`` — :func:`repro.experiments.runner._batch_mode`
    is the one place that decides). The default ``None`` runs the
    legacy per-trial loop, which honors any ``algorithm``.
    """
    from repro.experiments.scheduler import SweepExecutor, SweepPlan

    plan = SweepPlan()
    plan.add_success_curve(
        n,
        k,
        channel,
        m_values,
        algorithm=algorithm,
        trials=trials,
        seed=seed,
        gamma=gamma,
        algorithm_kwargs=algorithm_kwargs,
        batch_mode=batch_mode,
    )
    executor = SweepExecutor(
        backend="process", workers=workers, shm=shm, checkpoint=checkpoint
    )
    return executor.run_outcomes(plan)[0]


__all__ = [
    "WORKERS_ENV",
    "START_METHOD",
    "resolve_workers",
    "shutdown_pool",
    "required_queries_outcomes",
    "success_curve_outcomes",
]
