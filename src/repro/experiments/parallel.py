"""Multiprocess trial sharding for the experiment harness.

The paper's figures are Monte-Carlo sweeps of independent trials, and
every trial already owns an independent child seed spawned from the
root seed (:func:`repro.utils.rng.spawn_rngs`). That makes the
workload embarrassingly parallel *by construction*, and this module
exploits it without changing a single seeded output:

1. **Seed spawning** — the scheduler pre-spawns exactly the per-trial
   child seed sequences the serial path would spawn (same
   ``SeedSequence.spawn`` calls, in the same order);
2. **Chunking** — the seed list is partitioned into contiguous,
   order-preserving chunks (:func:`repro.core.chunking.chunk_bounds`);
3. **Ordered merge** — each chunk runs through
   :class:`~repro.core.batch.BatchTrialRunner`, the batched AMP stack
   (:func:`repro.amp.batch_amp.run_amp_trials` — one block-diagonal
   system per chunk instead of chunk-size serial runs), the stacked
   AMP required-m scan (:func:`repro.amp.batch_amp.
   required_queries_amp` — a chunk's trials share probe rounds), or
   the legacy per-query loop inside a worker process, and the
   per-trial outcomes are merged back in trial order.

Because a trial's result is a pure function of its own seed, the merged
output is bit-identical to the serial run for any worker count — the
seeded-equivalence tests in ``tests/test_parallel.py`` pin this for the
greedy, AMP and distributed algorithms on both engines.

Workers are plain module-level functions and every payload (channel,
seeds, kwargs) is picklable, so the pool runs under the ``spawn`` start
method — the only method available on Windows, and the one immune to
fork-in-threaded-process hazards everywhere else. The executor is
cached between calls (``spawn`` pays an interpreter start-up per
worker, which would otherwise recur for every sweep cell); call
:func:`shutdown_pool` to release it explicitly.

When parallelism helps
----------------------
Sharding pays off when per-trial work dominates the per-task dispatch
overhead (pickling + IPC, ~1 ms per chunk): large ``n``, dense
``gamma``, many trials. For small instances (``n`` in the hundreds)
or very few trials the serial engine is usually faster — keep
``workers=1`` (the default) there.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.chunking import chunk_bounds
from repro.utils.rng import RngLike, spawn_rngs, spawn_seeds
from repro.utils.validation import check_non_negative_int, env_int

#: environment variable consulted when ``workers`` is not given
#: explicitly; lets CI (and users) shard whole test/benchmark runs
#: without touching call sites.
WORKERS_ENV = "REPRO_WORKERS"

#: pool start method: ``spawn`` is Windows-safe and gives identical
#: behaviour on every platform (workers re-import the library instead
#: of inheriting forked state).
START_METHOD = "spawn"

#: chunks submitted per worker for uneven workloads (required-queries
#: trials vary widely in duration); more chunks -> better balance,
#: at ~1 ms dispatch cost each.
_OVERSUBSCRIBE = 4


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve a ``workers`` request into an actual worker count.

    ``None`` falls back to the ``REPRO_WORKERS`` environment variable
    (default ``1`` — serial); ``0`` means "one worker per CPU"
    (``os.cpu_count()``). Anything else must be a non-negative integer,
    validated with the library's standard parameter errors.
    """
    if workers is None:
        workers = env_int(WORKERS_ENV)
        if workers is None:
            return 1
    workers = check_non_negative_int(workers, "workers")
    if workers == 0:
        workers = os.cpu_count() or 1
    return workers


# -- cached executor ----------------------------------------------------

_pool: Optional[ProcessPoolExecutor] = None
_pool_workers: Optional[int] = None


def _get_pool(workers: int) -> ProcessPoolExecutor:
    global _pool, _pool_workers
    # A crashed worker (OOM kill, segfault) breaks the executor for
    # good; hand out a fresh pool instead of the broken one so a
    # single lost worker doesn't disable sharding for the session.
    broken = _pool is not None and getattr(_pool, "_broken", False)
    if _pool is None or _pool_workers != workers or broken:
        shutdown_pool()
        _pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context(START_METHOD),
        )
        _pool_workers = workers
    return _pool


def shutdown_pool() -> None:
    """Shut down the cached worker pool (no-op when none is running)."""
    global _pool, _pool_workers
    if _pool is not None:
        _pool.shutdown()
        _pool = None
        _pool_workers = None


atexit.register(shutdown_pool)


# -- worker functions (module-level: picklable under spawn) -------------


def _required_queries_chunk(
    spec: Dict[str, object], seeds: Sequence[np.random.SeedSequence]
) -> List[Tuple[bool, Optional[int]]]:
    """Run one contiguous chunk of required-queries trials.

    Returns ``(succeeded, required_m)`` per trial, in chunk order. An
    AMP chunk runs the stacked prefix-replay scan over its whole seed
    list — the trials of one chunk share probe rounds — which is free
    to do because every trial's probes and outcomes are a pure function
    of its own seed (the chunk layout never shows in the merge).
    """
    out: List[Tuple[bool, Optional[int]]] = []
    if spec.get("algorithm", "greedy") == "amp":
        from repro.amp.batch_amp import (
            required_queries_amp,
            required_queries_amp_linear,
        )

        if spec["engine"] == "batch":
            runs = required_queries_amp(
                spec["n"],
                spec["k"],
                spec["channel"],
                list(seeds),
                gamma=spec["gamma"],
                max_m=spec["max_m"],
                check_every=spec["check_every"],
                verify=spec.get("verify", "full"),
            )
        else:
            runs = required_queries_amp_linear(
                spec["n"],
                spec["k"],
                spec["channel"],
                list(seeds),
                gamma=spec["gamma"],
                max_m=spec["max_m"],
                check_every=spec["check_every"],
            )
        return [(result.succeeded, result.required_m) for result in runs]
    if spec["engine"] == "batch":
        from repro.core.batch import BatchTrialRunner

        runner = BatchTrialRunner(
            spec["n"],
            spec["k"],
            spec["channel"],
            gamma=spec["gamma"],
            centering=spec["centering"],
        )
        for seq in seeds:
            result = runner.required_queries(
                np.random.default_rng(seq),
                max_m=spec["max_m"],
                check_every=spec["check_every"],
            )
            out.append((result.succeeded, result.required_m))
    else:
        from repro.core.incremental import required_queries

        for seq in seeds:
            result = required_queries(
                spec["n"],
                spec["k"],
                spec["channel"],
                np.random.default_rng(seq),
                max_m=spec["max_m"],
                check_every=spec["check_every"],
                gamma=spec["gamma"],
                centering=spec["centering"],
            )
            out.append((result.succeeded, result.required_m))
    return out


def _fixed_m_chunk(
    spec: Dict[str, object], m: int, seeds: Sequence[np.random.SeedSequence]
) -> List[Tuple[bool, float]]:
    """Run one chunk of fixed-``m`` reconstruction trials.

    Returns ``(exact, overlap)`` per trial, in chunk order. The heavy
    per-trial artifacts (score vectors, estimates) stay in the worker —
    only the curve statistics cross the process boundary. A chunk runs
    whichever stacked engine path the scheduler selected
    (``batch_mode``): stacked greedy trials, one batched AMP stack per
    chunk, or the legacy per-trial loop. Each trial is a pure function
    of its own seed in every mode, so the chunk layout never shows in
    the merged output.
    """
    if spec["batch_mode"] == "greedy":
        from repro.core.batch import BatchTrialRunner

        runner = BatchTrialRunner(
            spec["n"],
            spec["k"],
            spec["channel"],
            gamma=spec["gamma"],
            centering=spec["algorithm_kwargs"].get("centering", "half_k"),
        )
        return [
            (bool(r.exact), float(r.overlap))
            for r in runner.run_trials_seeded(m, list(seeds))
        ]
    if spec["batch_mode"] == "amp":
        from repro.amp.batch_amp import run_amp_trials
        from repro.experiments.runner import _amp_batch_kwargs

        return [
            (bool(r.exact), float(r.overlap))
            for r in run_amp_trials(
                spec["n"],
                spec["k"],
                spec["channel"],
                m,
                list(seeds),
                gamma=spec["gamma"],
                **_amp_batch_kwargs(spec["algorithm_kwargs"]),
            )
        ]
    from repro.core.ground_truth import sample_ground_truth
    from repro.core.measurement import measure
    from repro.core.pooling import sample_pooling_graph
    from repro.experiments.runner import _run_algorithm

    out: List[Tuple[bool, float]] = []
    for seq in seeds:
        gen = np.random.default_rng(seq)
        truth = sample_ground_truth(spec["n"], spec["k"], gen)
        graph = sample_pooling_graph(spec["n"], m, spec["gamma"], gen)
        measurements = measure(graph, truth, spec["channel"], gen)
        result = _run_algorithm(
            spec["algorithm"], measurements, **spec["algorithm_kwargs"]
        )
        out.append((bool(result.exact), float(result.overlap)))
    return out


# -- sharded schedulers -------------------------------------------------


def required_queries_outcomes(
    n: int,
    k: int,
    channel,
    *,
    trials: int,
    seed: RngLike,
    workers: int,
    max_m: Optional[int] = None,
    check_every: int = 1,
    gamma: Optional[int] = None,
    centering: str = "half_k",
    algorithm: str = "greedy",
    verify: str = "full",
    engine: str = "batch",
) -> List[Tuple[bool, Optional[int]]]:
    """Sharded required-queries trials; outcomes in trial order.

    Spawns the serial path's per-trial child seeds, shards them into
    contiguous chunks, runs each chunk in a worker, and concatenates
    the chunk outcomes — bit-identical to the serial trial loop for
    both stopping rules (``algorithm="greedy"`` / ``"amp"``).
    """
    spec = {
        "n": n,
        "k": k,
        "channel": channel,
        "gamma": gamma,
        "centering": centering,
        "algorithm": algorithm,
        "verify": verify,
        "engine": engine,
        "max_m": max_m,
        "check_every": check_every,
    }
    seeds = spawn_seeds(seed, trials)
    pool = _get_pool(workers)
    futures = [
        pool.submit(_required_queries_chunk, spec, seeds[lo:hi])
        for lo, hi in chunk_bounds(trials, workers * _OVERSUBSCRIBE)
    ]
    outcomes: List[Tuple[bool, Optional[int]]] = []
    for future in futures:
        outcomes.extend(future.result())
    return outcomes


def success_curve_outcomes(
    n: int,
    k: int,
    channel,
    m_values: Sequence[int],
    *,
    trials: int,
    seed: RngLike,
    workers: int,
    algorithm: str = "greedy",
    algorithm_kwargs: Optional[dict] = None,
    gamma: Optional[int] = None,
    batch_mode: Optional[str] = None,
) -> List[List[Tuple[bool, float]]]:
    """Sharded fixed-``m`` trials for a whole m-grid.

    Returns one ``(exact, overlap)`` list per ``m`` value, each in
    trial order. Seed derivation mirrors the serial curve exactly: one
    child generator per grid point, then per-trial seeds spawned from
    it — so every trial sees the same seed it would serially. All
    ``(m, chunk)`` tasks share one pool submission wave, which keeps
    the workers busy across grid points instead of draining per point.

    ``batch_mode`` selects the stacked chunk implementation
    (``"greedy"`` / ``"amp"``; the scheduler trusts the caller that it
    matches ``algorithm`` — :func:`repro.experiments.runner._batch_mode`
    is the one place that decides). The default ``None`` runs the
    legacy per-trial loop, which honors any ``algorithm``.
    """
    spec = {
        "n": n,
        "k": k,
        "channel": channel,
        "gamma": gamma,
        "algorithm": algorithm,
        "algorithm_kwargs": algorithm_kwargs or {},
        "batch_mode": batch_mode,
    }
    pool = _get_pool(workers)
    per_m_futures = []
    for m, m_rng in zip(m_values, spawn_rngs(seed, len(m_values))):
        seeds = spawn_seeds(m_rng, trials)
        per_m_futures.append(
            [
                pool.submit(_fixed_m_chunk, spec, int(m), seeds[lo:hi])
                for lo, hi in chunk_bounds(trials, workers * _OVERSUBSCRIBE)
            ]
        )
    outcomes: List[List[Tuple[bool, float]]] = []
    for futures in per_m_futures:
        per_trial: List[Tuple[bool, float]] = []
        for future in futures:
            per_trial.extend(future.result())
        outcomes.append(per_trial)
    return outcomes


__all__ = [
    "WORKERS_ENV",
    "START_METHOD",
    "resolve_workers",
    "shutdown_pool",
    "required_queries_outcomes",
    "success_curve_outcomes",
]
