"""Multiprocess trial sharding for the experiment harness.

The paper's figures are Monte-Carlo sweeps of independent trials, and
every trial already owns an independent child seed spawned from the
root seed (:func:`repro.utils.rng.spawn_rngs`). That makes the
workload embarrassingly parallel *by construction*, and this module
exploits it without changing a single seeded output:

1. **Seed spawning** — the scheduler pre-spawns exactly the per-trial
   child seed sequences the serial path would spawn (same
   ``SeedSequence.spawn`` calls, in the same order);
2. **Chunking** — the seed list is partitioned into contiguous,
   order-preserving chunks (:func:`repro.core.chunking.chunk_bounds`);
3. **Ordered merge** — each chunk runs through
   :class:`~repro.core.batch.BatchTrialRunner`, the batched AMP stack
   (:func:`repro.amp.batch_amp.run_amp_trials` — one block-diagonal
   system per chunk instead of chunk-size serial runs), the stacked
   AMP required-m scan (:func:`repro.amp.batch_amp.
   required_queries_amp` — a chunk's trials share probe rounds), or
   the legacy per-query loop inside a worker process, and the
   per-trial outcomes are merged back in trial order.

Because a trial's result is a pure function of its own seed, the merged
output is bit-identical to the serial run for any worker count — the
seeded-equivalence tests in ``tests/test_parallel.py`` pin this for the
greedy, AMP and distributed algorithms on both engines.

As of PR 5 the scheduling itself lives in
:mod:`repro.experiments.scheduler`: whole sweeps flatten into one
global queue of ``(cell, chunk)`` work items executed out of order on
a pluggable backend (``serial`` / ``process`` / ``socket``). This
module keeps the pieces the engine builds on — the cached process
pool, the worker-side chunk functions, and the PR 2 scheduler entry
points (:func:`required_queries_outcomes` /
:func:`success_curve_outcomes`), which are now thin one-cell sweep
plans on the ``process`` backend.

Workers are plain module-level functions and every payload (channel,
seeds, kwargs) is picklable, so the pool runs under the ``spawn`` start
method — the only method available on Windows, and the one immune to
fork-in-threaded-process hazards everywhere else. The executor is
cached between calls (``spawn`` pays an interpreter start-up per
worker, which would otherwise recur for every sweep cell); call
:func:`shutdown_pool` to release it explicitly — an ``atexit`` hook
releases it at interpreter exit, and the engine's process backend
retries a sweep once on a fresh pool when a worker dies mid-sweep
(``BrokenProcessPool``).

When parallelism helps
----------------------
Sharding pays off when per-trial work dominates the per-task dispatch
overhead (pickling + IPC, ~1 ms per chunk): large ``n``, dense
``gamma``, many trials. For small instances (``n`` in the hundreds)
or very few trials the serial engine is usually faster — keep
``workers=1`` (the default) there.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import RngLike
from repro.utils.validation import check_non_negative_int, env_int

#: environment variable consulted when ``workers`` is not given
#: explicitly; lets CI (and users) shard whole test/benchmark runs
#: without touching call sites.
WORKERS_ENV = "REPRO_WORKERS"

#: pool start method: ``spawn`` is Windows-safe and gives identical
#: behaviour on every platform (workers re-import the library instead
#: of inheriting forked state).
START_METHOD = "spawn"

#: chunks submitted per worker for uneven workloads (required-queries
#: trials vary widely in duration); more chunks -> better balance,
#: at ~1 ms dispatch cost each.
_OVERSUBSCRIBE = 4


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve a ``workers`` request into an actual worker count.

    ``None`` falls back to the ``REPRO_WORKERS`` environment variable
    (default ``1`` — serial); ``0`` means "one worker per CPU"
    (``os.cpu_count()``). Anything else must be a non-negative integer,
    validated with the library's standard parameter errors.
    """
    if workers is None:
        workers = env_int(WORKERS_ENV)
        if workers is None:
            return 1
    workers = check_non_negative_int(workers, "workers")
    if workers == 0:
        workers = os.cpu_count() or 1
    return workers


# -- cached executor ----------------------------------------------------

_pool: Optional[ProcessPoolExecutor] = None
_pool_workers: Optional[int] = None


def _get_pool(workers: int) -> ProcessPoolExecutor:
    global _pool, _pool_workers
    # A crashed worker (OOM kill, segfault) breaks the executor for
    # good; hand out a fresh pool instead of the broken one so a
    # single lost worker doesn't disable sharding for the session.
    broken = _pool is not None and getattr(_pool, "_broken", False)
    if _pool is None or _pool_workers != workers or broken:
        shutdown_pool()
        _pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context(START_METHOD),
        )
        _pool_workers = workers
    return _pool


def shutdown_pool() -> None:
    """Shut down the cached worker pool (no-op when none is running)."""
    global _pool, _pool_workers
    if _pool is not None:
        _pool.shutdown()
        _pool = None
        _pool_workers = None


atexit.register(shutdown_pool)


# -- worker functions (module-level: picklable under spawn) -------------


def _required_queries_chunk(
    spec: Dict[str, object], seeds: Sequence[np.random.SeedSequence]
) -> List[Tuple[bool, Optional[int]]]:
    """Run one contiguous chunk of required-queries trials.

    Returns ``(succeeded, required_m)`` per trial, in chunk order. An
    AMP chunk runs the stacked prefix-replay scan over its whole seed
    list — the trials of one chunk share probe rounds — which is free
    to do because every trial's probes and outcomes are a pure function
    of its own seed (the chunk layout never shows in the merge).
    """
    out: List[Tuple[bool, Optional[int]]] = []
    if spec.get("algorithm", "greedy") == "amp":
        from repro.amp.batch_amp import (
            required_queries_amp,
            required_queries_amp_linear,
        )

        if spec["engine"] == "batch":
            runs = required_queries_amp(
                spec["n"],
                spec["k"],
                spec["channel"],
                list(seeds),
                gamma=spec["gamma"],
                max_m=spec["max_m"],
                check_every=spec["check_every"],
                verify=spec.get("verify", "full"),
                kernel=spec.get("kernel"),
            )
        else:
            runs = required_queries_amp_linear(
                spec["n"],
                spec["k"],
                spec["channel"],
                list(seeds),
                gamma=spec["gamma"],
                max_m=spec["max_m"],
                check_every=spec["check_every"],
                kernel=spec.get("kernel"),
            )
        return [(result.succeeded, result.required_m) for result in runs]
    if spec["engine"] == "batch":
        from repro.core.batch import BatchTrialRunner

        runner = BatchTrialRunner(
            spec["n"],
            spec["k"],
            spec["channel"],
            gamma=spec["gamma"],
            centering=spec["centering"],
        )
        for seq in seeds:
            result = runner.required_queries(
                np.random.default_rng(seq),
                max_m=spec["max_m"],
                check_every=spec["check_every"],
            )
            out.append((result.succeeded, result.required_m))
    else:
        from repro.core.incremental import required_queries

        for seq in seeds:
            result = required_queries(
                spec["n"],
                spec["k"],
                spec["channel"],
                np.random.default_rng(seq),
                max_m=spec["max_m"],
                check_every=spec["check_every"],
                gamma=spec["gamma"],
                centering=spec["centering"],
            )
            out.append((result.succeeded, result.required_m))
    return out


def _fixed_m_chunk(
    spec: Dict[str, object], m: int, seeds: Sequence[np.random.SeedSequence]
) -> List[Tuple[bool, float]]:
    """Run one chunk of fixed-``m`` reconstruction trials.

    Returns ``(exact, overlap)`` per trial, in chunk order. The heavy
    per-trial artifacts (score vectors, estimates) stay in the worker —
    only the curve statistics cross the process boundary. A chunk runs
    whichever stacked engine path the scheduler selected
    (``batch_mode``): stacked greedy trials, one batched AMP stack per
    chunk, or the legacy per-trial loop. Each trial is a pure function
    of its own seed in every mode, so the chunk layout never shows in
    the merged output.
    """
    if spec["batch_mode"] == "greedy":
        from repro.core.batch import BatchTrialRunner

        runner = BatchTrialRunner(
            spec["n"],
            spec["k"],
            spec["channel"],
            gamma=spec["gamma"],
            centering=spec["algorithm_kwargs"].get("centering", "half_k"),
        )
        return [
            (bool(r.exact), float(r.overlap))
            for r in runner.run_trials_seeded(m, list(seeds))
        ]
    if spec["batch_mode"] == "amp":
        from repro.amp.batch_amp import run_amp_trials
        from repro.experiments.runner import _amp_batch_kwargs

        return [
            (bool(r.exact), float(r.overlap))
            for r in run_amp_trials(
                spec["n"],
                spec["k"],
                spec["channel"],
                m,
                list(seeds),
                gamma=spec["gamma"],
                **_amp_batch_kwargs(spec["algorithm_kwargs"]),
            )
        ]
    from repro.core.ground_truth import sample_ground_truth
    from repro.core.measurement import measure
    from repro.experiments.runner import _run_algorithm

    out: List[Tuple[bool, float]] = []
    for seq in seeds:
        gen = np.random.default_rng(seq)
        truth = sample_ground_truth(spec["n"], spec["k"], gen)
        graph = _sample_design_graph(spec, m, gen)
        measurements = measure(graph, truth, spec["channel"], gen)
        result = _run_algorithm(
            spec["algorithm"], measurements, **spec["algorithm_kwargs"]
        )
        out.append((bool(result.exact), float(result.overlap)))
    return out


def _sample_design_graph(spec: Dict[str, object], m: int, gen):
    """Sample one trial's pooling graph under the cell's design.

    ``design`` defaults to the paper's with-replacement multigraph;
    ``"distinct"`` draws each query's agents without replacement, and
    ``"regular"`` uses the constant-column-weight design of
    :func:`repro.core.pooling.sample_regular_design` with the agent
    degree tuned so the total edge budget matches the multigraph's
    ``m * gamma`` (expected query size equals the multigraph's fixed
    ``gamma``) — the figure-level design ablation's apples-to-apples
    comparison.
    """
    from repro.core.pooling import (
        default_gamma,
        sample_pooling_graph,
        sample_regular_design,
    )

    design = spec.get("design", "replacement")
    n = spec["n"]
    if design == "replacement":
        return sample_pooling_graph(n, m, spec["gamma"], gen)
    if design == "distinct":
        return sample_pooling_graph(
            n, m, spec["gamma"], gen, with_replacement=False
        )
    if design == "regular":
        gamma = spec["gamma"] or default_gamma(n)
        degree = min(max(1, round(m * gamma / n)), m)
        return sample_regular_design(n, m, degree, gen)
    raise ValueError(f"unknown design {design!r}")


# -- sharded schedulers (PR 2 API, now thin one-cell sweep plans) -------


def required_queries_outcomes(
    n: int,
    k: int,
    channel,
    *,
    trials: int,
    seed: RngLike,
    workers: int,
    max_m: Optional[int] = None,
    check_every: int = 1,
    gamma: Optional[int] = None,
    centering: str = "half_k",
    algorithm: str = "greedy",
    verify: str = "full",
    engine: str = "batch",
    kernel: Optional[str] = None,
    shm: Optional[bool] = None,
    checkpoint=None,
) -> List[Tuple[bool, Optional[int]]]:
    """Sharded required-queries trials; outcomes in trial order.

    A one-cell :class:`~repro.experiments.scheduler.SweepPlan` run on
    the ``process`` backend: the engine spawns the serial path's
    per-trial child seeds, shards them into contiguous chunks through
    the shared work queue, and concatenates the chunk outcomes —
    bit-identical to the serial trial loop for both stopping rules
    (``algorithm="greedy"`` / ``"amp"``). ``checkpoint`` names a
    directory for crash-safe resume (``None``: the
    ``REPRO_CHECKPOINT`` env var) — completed chunks are skipped on a
    re-run with the same arguments.
    """
    from repro.experiments.scheduler import SweepExecutor, SweepPlan

    plan = SweepPlan()
    plan.add_required_queries(
        n,
        k,
        channel,
        trials=trials,
        seed=seed,
        max_m=max_m,
        check_every=check_every,
        gamma=gamma,
        centering=centering,
        algorithm=algorithm,
        verify=verify,
        engine=engine,
        kernel=kernel,
    )
    executor = SweepExecutor(
        backend="process", workers=workers, shm=shm, checkpoint=checkpoint
    )
    return executor.run_outcomes(plan)[0]


def success_curve_outcomes(
    n: int,
    k: int,
    channel,
    m_values: Sequence[int],
    *,
    trials: int,
    seed: RngLike,
    workers: int,
    algorithm: str = "greedy",
    algorithm_kwargs: Optional[dict] = None,
    gamma: Optional[int] = None,
    batch_mode: Optional[str] = None,
    shm: Optional[bool] = None,
    checkpoint=None,
) -> List[List[Tuple[bool, float]]]:
    """Sharded fixed-``m`` trials for a whole m-grid.

    Returns one ``(exact, overlap)`` list per ``m`` value, each in
    trial order — a one-cell sweep plan on the ``process`` backend.
    Seed derivation mirrors the serial curve exactly: one child
    generator per grid point, then per-trial seeds spawned from it —
    so every trial sees the same seed it would serially. All
    ``(m, chunk)`` tasks share one submission wave of the engine's
    global queue, which keeps the workers busy across grid points
    instead of draining per point.

    ``batch_mode`` selects the stacked chunk implementation
    (``"greedy"`` / ``"amp"``; the scheduler trusts the caller that it
    matches ``algorithm`` — :func:`repro.experiments.runner._batch_mode`
    is the one place that decides). The default ``None`` runs the
    legacy per-trial loop, which honors any ``algorithm``.
    """
    from repro.experiments.scheduler import SweepExecutor, SweepPlan

    plan = SweepPlan()
    plan.add_success_curve(
        n,
        k,
        channel,
        m_values,
        algorithm=algorithm,
        trials=trials,
        seed=seed,
        gamma=gamma,
        algorithm_kwargs=algorithm_kwargs,
        batch_mode=batch_mode,
    )
    executor = SweepExecutor(
        backend="process", workers=workers, shm=shm, checkpoint=checkpoint
    )
    return executor.run_outcomes(plan)[0]


__all__ = [
    "WORKERS_ENV",
    "START_METHOD",
    "resolve_workers",
    "shutdown_pool",
    "required_queries_outcomes",
    "success_curve_outcomes",
]
