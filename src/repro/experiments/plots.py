"""ASCII line/scatter plots for terminal output (dependency-free).

The paper's figures are log-log (Figs. 2-5) or linear (Figs. 6-7) line
charts. This module renders the same series as terminal scatter plots
so that ``python -m repro fig2 --plot`` gives an immediate visual
check without matplotlib (which is unavailable offline).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

#: marker glyphs assigned to series in order
MARKERS = "ox+*#@%&"


def _transform(value: float, log: bool) -> float:
    if log:
        if value <= 0:
            raise ValueError(f"log-scale axis requires positive values, got {value}")
        return math.log10(value)
    return value


def ascii_plot(
    series: Dict[str, Sequence[Tuple[float, float]]],
    *,
    width: int = 72,
    height: int = 20,
    log_x: bool = False,
    log_y: bool = False,
    x_label: str = "x",
    y_label: str = "y",
    title: Optional[str] = None,
) -> str:
    """Render named (x, y) series onto a character canvas.

    Parameters
    ----------
    series:
        Mapping from series label to a sequence of (x, y) points.
        Points with ``y = None`` / NaN are skipped.
    width, height:
        Canvas size in characters (excluding axes labels).
    log_x, log_y:
        Log-scale the respective axis (base 10).
    """
    points: List[Tuple[float, float, int]] = []
    labels = list(series)
    for idx, label in enumerate(labels):
        for x, y in series[label]:
            if y is None or (isinstance(y, float) and math.isnan(y)):
                continue
            points.append((_transform(float(x), log_x), _transform(float(y), log_y), idx))
    if not points:
        raise ValueError("nothing to plot: all series are empty")

    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for x, y, idx in points:
        col = int(round((x - x_lo) / x_span * (width - 1)))
        row = int(round((y - y_lo) / y_span * (height - 1)))
        canvas[height - 1 - row][col] = MARKERS[idx % len(MARKERS)]

    def fmt(v: float, log: bool) -> str:
        return f"{10 ** v:.3g}" if log else f"{v:.3g}"

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = fmt(y_hi, log_y)
    bottom_label = fmt(y_lo, log_y)
    gutter = max(len(top_label), len(bottom_label)) + 1
    for i, row_chars in enumerate(canvas):
        if i == 0:
            prefix = top_label.rjust(gutter)
        elif i == height - 1:
            prefix = bottom_label.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix}|{''.join(row_chars)}")
    lines.append(" " * gutter + "+" + "-" * width)
    x_axis = fmt(x_lo, log_x).ljust(width - len(fmt(x_hi, log_x)))
    lines.append(" " * (gutter + 1) + x_axis + fmt(x_hi, log_x))
    lines.append(" " * (gutter + 1) + f"{x_label}  (y: {y_label})")
    legend = "  ".join(
        f"{MARKERS[i % len(MARKERS)]}={label}" for i, label in enumerate(labels)
    )
    lines.append(" " * (gutter + 1) + legend)
    return "\n".join(lines)


def plot_figure_result(
    result,
    *,
    x_key: str,
    y_key: str,
    log_x: bool = False,
    log_y: bool = False,
    width: int = 72,
    height: int = 20,
) -> str:
    """Plot a :class:`~repro.experiments.figures.FigureResult`.

    Groups rows by their ``series`` value and plots ``(row[x_key],
    row[y_key])`` per series.
    """
    grouped: Dict[str, List[Tuple[float, float]]] = {}
    for row in result.rows:
        if x_key not in row or row.get(y_key) is None:
            continue
        grouped.setdefault(str(row.get("series", "data")), []).append(
            (row[x_key], row[y_key])
        )
    return ascii_plot(
        grouped,
        log_x=log_x,
        log_y=log_y,
        width=width,
        height=height,
        x_label=x_key,
        y_label=y_key,
        title=f"{result.figure}: {result.description}",
    )


__all__ = ["ascii_plot", "plot_figure_result", "MARKERS"]
