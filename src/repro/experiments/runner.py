"""Trial orchestration: repeated independent runs of the algorithms.

All experiment entry points funnel through two primitives:

* :func:`required_queries_trials` — repeated runs of the paper's
  incremental required-number-of-queries procedure (Figures 2-5);
* :func:`success_rate_curve` — success-rate / overlap curves over a
  grid of fixed query counts ``m`` (Figures 6-7), for the greedy
  decoder, AMP, or the full distributed protocol.

Each trial gets an independent child generator spawned from the root
seed (see :mod:`repro.utils.rng`), so experiments are reproducible and
embarrassingly parallel in structure.

Both primitives default to the vectorized batch engine
(:mod:`repro.core.batch`): graphs are sampled in one RNG call, the
incremental procedure runs in geometric-growth blocks, and fixed-``m``
greedy trials are scored/decoded as stacked computations. Pass
``engine="legacy"`` to force the original per-query/per-trial loops —
the batch greedy path is bit-for-bit seed-compatible with them, and the
chunked incremental path is seed-compatible for channels that draw no
per-query noise (see ``tests/test_batch.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.amp import run_amp
from repro.core.batch import BatchTrialRunner
from repro.core.greedy import greedy_reconstruct
from repro.core.incremental import required_queries
from repro.core.measurement import measure
from repro.core.noise import Channel
from repro.core.pooling import sample_pooling_graph
from repro.core.ground_truth import sample_ground_truth
from repro.core.types import ReconstructionResult
from repro.distributed.runner import run_distributed_algorithm1
from repro.utils.rng import RngLike, spawn_rngs
from repro.utils.validation import check_positive_int

#: algorithms runnable by the harness
ALGORITHMS = ("greedy", "amp", "distributed", "twostage")

#: simulation engines: the vectorized batch engine vs the per-query loops
ENGINES = ("batch", "legacy")


def _check_engine(engine: str) -> str:
    if engine == "per-query":  # the core-layer name for the same loop
        return "legacy"
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; valid: {ENGINES + ('per-query',)}"
        )
    return engine


def _run_algorithm(
    algorithm: str, measurements, **kwargs
) -> ReconstructionResult:
    if algorithm == "greedy":
        return greedy_reconstruct(measurements, **kwargs)
    if algorithm == "amp":
        return run_amp(measurements, **kwargs)
    if algorithm == "distributed":
        return run_distributed_algorithm1(measurements, **kwargs).result
    if algorithm == "twostage":
        from repro.core.twostage import two_stage_reconstruct

        return two_stage_reconstruct(measurements, **kwargs)
    raise ValueError(f"unknown algorithm {algorithm!r}; valid: {ALGORITHMS}")


@dataclass(frozen=True)
class RequiredQueriesSample:
    """Required-m trial outcomes for one configuration."""

    n: int
    k: int
    channel: str
    values: List[int]
    failures: int

    @property
    def trials(self) -> int:
        return len(self.values) + self.failures

    @property
    def median(self) -> float:
        return float(np.median(self.values)) if self.values else float("nan")

    @property
    def mean(self) -> float:
        return float(np.mean(self.values)) if self.values else float("nan")


def required_queries_trials(
    n: int,
    k: int,
    channel: Channel,
    *,
    trials: int = 10,
    seed: RngLike = 0,
    max_m: Optional[int] = None,
    check_every: int = 1,
    gamma: Optional[int] = None,
    centering: str = "half_k",
    engine: str = "batch",
) -> RequiredQueriesSample:
    """Run the incremental procedure ``trials`` times, collect required m.

    ``engine="batch"`` (default) runs the chunked vectorized simulator;
    ``engine="legacy"`` runs the original per-query loop. Both apply the
    paper's exact query-by-query stopping rule.
    """
    check_positive_int(trials, "trials")
    engine = _check_engine(engine)
    values: List[int] = []
    failures = 0
    runner = (
        BatchTrialRunner(n, k, channel, gamma=gamma, centering=centering)
        if engine == "batch"
        else None
    )
    for gen in spawn_rngs(seed, trials):
        if runner is not None:
            result = runner.required_queries(
                gen, max_m=max_m, check_every=check_every
            )
        else:
            result = required_queries(
                n,
                k,
                channel,
                gen,
                max_m=max_m,
                check_every=check_every,
                gamma=gamma,
                centering=centering,
            )
        if result.succeeded:
            values.append(int(result.required_m))
        else:
            failures += 1
    return RequiredQueriesSample(
        n=n, k=k, channel=channel.describe(), values=values, failures=failures
    )


@dataclass(frozen=True)
class SuccessCurve:
    """Success-rate / overlap curve over an m-grid for one algorithm."""

    algorithm: str
    n: int
    k: int
    channel: str
    m_values: List[int]
    success_rates: List[float]
    overlaps: List[float]
    trials: int
    meta: Dict[str, object] = field(default_factory=dict)

    def crossing(self, level: float = 0.5) -> Optional[int]:
        """Smallest m on the grid whose success rate reaches ``level``."""
        for m, rate in zip(self.m_values, self.success_rates):
            if rate >= level:
                return m
        return None


def success_rate_curve(
    n: int,
    k: int,
    channel: Channel,
    m_values: Sequence[int],
    *,
    algorithm: str = "greedy",
    trials: int = 100,
    seed: RngLike = 0,
    gamma: Optional[int] = None,
    algorithm_kwargs: Optional[dict] = None,
    engine: str = "batch",
) -> SuccessCurve:
    """Estimate success rate and overlap per query count ``m``.

    For every ``m`` in the grid, ``trials`` independent instances are
    drawn (fresh truth, graph and noise each time, matching the paper's
    "100 independent simulation runs" per data point).

    With ``engine="batch"`` the greedy trials run through
    :class:`~repro.core.batch.BatchTrialRunner` — seed-compatible with
    the legacy per-trial loop, so both engines (and the distributed
    runtime, which shares the loop) report identical curves for the
    same seed. Algorithms without a batch implementation (AMP,
    distributed, two-stage) always use the per-trial loop.
    """
    check_positive_int(trials, "trials")
    if algorithm not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {algorithm!r}; valid: {ALGORITHMS}")
    engine = _check_engine(engine)
    algorithm_kwargs = algorithm_kwargs or {}
    use_batch = (
        engine == "batch"
        and algorithm == "greedy"
        and set(algorithm_kwargs) <= {"centering"}
        # the batch runner supports only these centerings; anything else
        # (e.g. "none") falls back to the seed-compatible legacy loop
        and algorithm_kwargs.get("centering", "half_k") in ("half_k", "oracle")
    )
    success_rates: List[float] = []
    overlaps: List[float] = []
    rngs = spawn_rngs(seed, len(m_values))
    for m, m_rng in zip(m_values, rngs):
        m = int(m)
        successes = 0
        overlap_sum = 0.0
        if use_batch:
            runner = BatchTrialRunner(
                n,
                k,
                channel,
                gamma=gamma,
                centering=algorithm_kwargs.get("centering", "half_k"),
            )
            for result in runner.run_trials(m, trials, seed=m_rng):
                successes += bool(result.exact)
                overlap_sum += float(result.overlap)
        else:
            for gen in spawn_rngs(m_rng, trials):
                truth = sample_ground_truth(n, k, gen)
                graph = sample_pooling_graph(n, m, gamma, gen)
                measurements = measure(graph, truth, channel, gen)
                result = _run_algorithm(algorithm, measurements, **algorithm_kwargs)
                successes += bool(result.exact)
                overlap_sum += float(result.overlap)
        success_rates.append(successes / trials)
        overlaps.append(overlap_sum / trials)
    return SuccessCurve(
        algorithm=algorithm,
        n=n,
        k=k,
        channel=channel.describe(),
        m_values=[int(m) for m in m_values],
        success_rates=success_rates,
        overlaps=overlaps,
        trials=trials,
    )


def run_many(
    trial_fn: Callable[[np.random.Generator], object],
    *,
    trials: int,
    seed: RngLike = 0,
) -> List[object]:
    """Generic helper: run ``trial_fn`` on independent child generators."""
    check_positive_int(trials, "trials")
    return [trial_fn(gen) for gen in spawn_rngs(seed, trials)]


__all__ = [
    "ALGORITHMS",
    "ENGINES",
    "RequiredQueriesSample",
    "required_queries_trials",
    "SuccessCurve",
    "success_rate_curve",
    "run_many",
]
