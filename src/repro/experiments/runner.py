"""Trial orchestration: repeated independent runs of the algorithms.

All experiment entry points funnel through two primitives:

* :func:`required_queries_trials` — repeated runs of the paper's
  incremental required-number-of-queries procedure (Figures 2-5);
* :func:`success_rate_curve` — success-rate / overlap curves over a
  grid of fixed query counts ``m`` (Figures 6-7), for the greedy
  decoder, AMP, or the full distributed protocol.

Each trial gets an independent child generator spawned from the root
seed (see :mod:`repro.utils.rng`), so experiments are reproducible and
embarrassingly parallel in structure.

Both primitives default to the vectorized batch engine: graphs are
sampled in one RNG call, the incremental procedure runs in
geometric-growth blocks, and fixed-``m`` trials are scored/decoded as
stacked computations. Pass ``engine="legacy"`` to force the original
per-query/per-trial loops — every batch path is bit-for-bit
seed-compatible with them, except the chunked incremental simulator,
which is seed-compatible only for channels that draw no per-query
noise (see ``tests/test_batch.py``).

Algorithm × engine support
--------------------------
Fixed-``m`` trials (:func:`success_rate_curve`) and required-m trials
(:func:`required_queries_trials`) dispatch per algorithm:

==============  =======================================  ======================
algorithm       ``engine="batch"``                       ``engine="legacy"``
==============  =======================================  ======================
``greedy``      fixed-m: stacked trials via              fixed-m: per-trial
                :class:`~repro.core.batch.BatchTrialRunner`;  loop; required-m:
                required-m: its chunked incremental      per-query
                simulator                                :func:`~repro.core.
                                                         incremental.required_queries`
``amp``         fixed-m: block-diagonal batched AMP via  fixed-m: per-trial
                :func:`repro.amp.batch_amp.run_amp_trials`;  :func:`~repro.amp.run_amp`;
                required-m: prefix-replay galloping +    required-m: brute-force
                stacked bisection scan                   per-grid-point linear
                (:func:`repro.amp.batch_amp.             scan (:func:`repro.amp.
                required_queries_amp`)                   batch_amp.required_queries_amp_linear`)
``distributed``  fixed-m per-trial loop (no batch or     fixed-m per-trial loop
                 required-m form); ``fault=`` injects
                 seeded message drop/delay
``distributed_amp``  fixed-m per-trial loop with the     fixed-m per-trial loop
                 AMP communication bill in cell metrics
``twostage``     fixed-m per-trial loop; required-m via  identical (the scan is
                 the generic prefix-replay exact-decode  engine-independent)
                 scan
==============  =======================================  ======================

A ``corruption=`` model on either primitive forces the legacy
per-trial loop (fixed-m) or the generic prefix-replay scan
(required-m) — the stacked engines never see corrupted cells.

The batch greedy path covers ``algorithm_kwargs`` of ``centering`` in
``("half_k", "oracle")``; the batch AMP path covers ``denoiser``,
``config`` and the default ``sparse=True``. Any other keyword falls
back to the seed-compatible legacy per-trial loop, so results never
depend on which path ran. Required-m runs exist for ``greedy`` (the
paper's incremental separation stopping rule) and ``amp`` ("smallest
checked m whose prefix decodes exactly" — both engines return identical
stopping m's by construction; the scan merely probes sublinearly and
stacks probes block-diagonally). The greedy-only ``centering`` knob is
ignored by the AMP required-m path.

Sweep engine and trial sharding
-------------------------------
Both primitives are thin **one-cell sweep plans** on the execution
engine of :mod:`repro.experiments.scheduler`: each call pre-spawns the
serial path's per-trial child seeds, explodes them into contiguous
order-preserving chunks, runs the chunks on a pluggable backend
(``serial`` / ``process`` / ``socket``), and merges outcomes back in
trial order with the serial accumulation code. Every trial is a pure
function of its own child seed, so results are bit-identical for any
backend, worker count, algorithm and engine.

``workers`` (default ``None``: the ``REPRO_WORKERS`` environment
variable, else serial; ``0`` means one worker per CPU) sizes the
``process`` backend's pool; ``backend`` (default ``None``: the
``REPRO_BACKEND`` environment variable, else ``process`` when
``workers > 1`` and ``serial`` otherwise) selects where chunks run.
Multi-cell sweeps — the figure pipelines — build one
:class:`~repro.experiments.scheduler.SweepPlan` with many cells so all
cells' chunks share one global work queue (no per-cell barrier).

Sharding helps when per-trial work dominates dispatch overhead (large
``n``, dense ``gamma``, many trials); for small instances or few trials
the serial path is faster — the pool pays a one-time ``spawn`` start-up
per worker plus ~1 ms of pickling per chunk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.amp import AMPConfig, run_amp
from repro.core.greedy import greedy_reconstruct
from repro.core.noise import Channel
from repro.core.types import ReconstructionResult
from repro.distributed.runner import run_distributed_algorithm1
from repro.experiments.scheduler import SweepPlan
from repro.utils.rng import RngLike, spawn_rngs
from repro.utils.validation import check_positive_int

#: algorithms runnable by the harness
ALGORITHMS = ("greedy", "amp", "distributed", "distributed_amp", "twostage")

#: algorithms with a required-number-of-queries form (Figures 2-5);
#: the single source of the harness's and the CLI's ``--algorithm``
#: choice lists for required-m sweeps. ``twostage`` runs the generic
#: prefix-replay exact-decode scan (see
#: :func:`repro.experiments.parallel._required_queries_scan_chunk`).
REQUIRED_QUERIES_ALGORITHMS = ("greedy", "amp", "twostage")

#: simulation engines: the vectorized batch engine vs the per-query loops
ENGINES = ("batch", "legacy")

#: accepted aliases (the core layer calls the legacy loop "per-query")
_ENGINE_ALIASES = {"per-query": "legacy"}


def _batch_mode(algorithm: str, engine: str, algorithm_kwargs: dict) -> Optional[str]:
    """Which stacked fixed-``m`` path covers this dispatch, if any.

    Returns ``"greedy"`` / ``"amp"`` when the batch engine has a
    seed-identical stacked implementation for the request, else
    ``None`` (per-trial legacy loop). See the module docstring's
    support matrix for the covered ``algorithm_kwargs``.
    """
    if engine != "batch":
        return None
    if (
        algorithm == "greedy"
        and set(algorithm_kwargs) <= {"centering"}
        # the batch runner supports only these centerings; anything else
        # (e.g. "none") falls back to the seed-compatible legacy loop
        and algorithm_kwargs.get("centering", "half_k") in ("half_k", "oracle")
    ):
        return "greedy"
    if (
        algorithm == "amp"
        and set(algorithm_kwargs) <= {"denoiser", "config", "sparse", "kernel"}
        # the stacked runner is sparse by construction; a dense
        # override runs through the per-trial loop
        and algorithm_kwargs.get("sparse", True) in (True, None)
    ):
        return "amp"
    return None


def _amp_batch_kwargs(algorithm_kwargs: dict) -> dict:
    """Map harness ``algorithm_kwargs`` onto ``run_amp_trials`` kwargs."""
    return {
        key: value
        for key, value in algorithm_kwargs.items()
        if key in ("denoiser", "config", "kernel")
    }


def _check_engine(engine: str) -> str:
    if engine in _ENGINE_ALIASES:
        return _ENGINE_ALIASES[engine]
    if engine not in ENGINES:
        # List every canonical engine once, then any alias not already
        # named — naive tuple concatenation would repeat an alias that
        # is also canonical.
        valid = ENGINES + tuple(
            alias for alias in _ENGINE_ALIASES if alias not in ENGINES
        )
        raise ValueError(f"unknown engine {engine!r}; valid: {valid}")
    return engine


def _run_algorithm(
    algorithm: str, measurements, **kwargs
) -> ReconstructionResult:
    if algorithm == "greedy":
        return greedy_reconstruct(measurements, **kwargs)
    if algorithm == "amp":
        # Sweeps keep only the decode outcome per trial; don't build
        # O(iterations) history dicts in every result's meta (direct
        # run_amp calls keep the track_history=True default).
        kwargs.setdefault("config", AMPConfig(track_history=False))
        return run_amp(measurements, **kwargs)
    if algorithm == "distributed":
        return run_distributed_algorithm1(measurements, **kwargs).result
    if algorithm == "distributed_amp":
        from repro.amp.distributed_amp import run_distributed_amp

        return run_distributed_amp(measurements, **kwargs).result
    if algorithm == "twostage":
        from repro.core.twostage import two_stage_reconstruct

        return two_stage_reconstruct(measurements, **kwargs)
    raise ValueError(f"unknown algorithm {algorithm!r}; valid: {ALGORITHMS}")


@dataclass(frozen=True)
class RequiredQueriesSample:
    """Required-m trial outcomes for one configuration.

    ``algorithm`` names the stopping rule the values came from
    (``"greedy"`` — the paper's incremental separation rule — or
    ``"amp"`` — smallest checked m whose prefix decodes exactly), so
    stored sweep artifacts stay distinguishable; artifacts written
    before the field existed load as ``"greedy"`` (see
    :func:`repro.experiments.storage.load_required_queries_sample`).
    """

    n: int
    k: int
    channel: str
    values: List[int]
    failures: int
    algorithm: str = "greedy"

    @property
    def trials(self) -> int:
        return len(self.values) + self.failures

    @property
    def median(self) -> float:
        return float(np.median(self.values)) if self.values else float("nan")

    @property
    def mean(self) -> float:
        return float(np.mean(self.values)) if self.values else float("nan")


def required_queries_trials(
    n: int,
    k: int,
    channel: Channel,
    *,
    trials: int = 10,
    seed: RngLike = 0,
    max_m: Optional[int] = None,
    check_every: int = 1,
    gamma: Optional[int] = None,
    centering: str = "half_k",
    algorithm: str = "greedy",
    verify: str = "full",
    engine: str = "batch",
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    kernel: Optional[str] = None,
    shm: Optional[bool] = None,
    corruption=None,
) -> RequiredQueriesSample:
    """Run the required-m procedure ``trials`` times, collect required m.

    ``algorithm="greedy"`` (default) applies the paper's incremental
    separation stopping rule — ``engine="batch"`` runs the chunked
    vectorized simulator, ``engine="legacy"`` the original per-query
    loop, both with the exact query-by-query semantics.
    ``algorithm="amp"`` reports the smallest checked m whose
    prefix-measured query stream decodes exactly under AMP —
    ``engine="batch"`` runs the stacked galloping/bisection scan
    (:func:`repro.amp.batch_amp.required_queries_amp`),
    ``engine="legacy"`` the brute-force per-grid-point linear scan;
    with the default ``verify="full"`` both return identical stopping
    m's by construction (``verify="window"`` / ``"none"`` trade the
    below-candidate certificate sweep for sweep-scale probe counts —
    see :class:`repro.amp.batch_amp._RequiredMSearch`). The
    greedy-only ``centering`` knob is ignored for AMP, and ``verify``
    is ignored for greedy.

    The call is a thin one-cell :class:`~repro.experiments.scheduler.
    SweepPlan`: ``workers > 1`` (or an explicit ``backend``) shards the
    trials through the sweep engine with bit-identical output for any
    backend, worker count and mode (see the module docstring and
    :mod:`repro.experiments.scheduler`). Multi-cell sweeps should
    build one plan directly so cells share the global work queue.
    ``kernel`` selects the AMP compute backend by name (AMP only; see
    :mod:`repro.amp.kernels`); ``shm`` routes process-backend dispatch
    through the shared-memory arena (:mod:`repro.experiments.shm`) —
    neither changes any float64-default output.

    ``algorithm="twostage"`` — and any algorithm under a
    ``corruption`` model (:class:`~repro.core.corruption.
    CorruptionModel`) — reports the smallest checked m whose
    (corrupted) prefix decodes exactly, via the generic prefix-replay
    scan; each trial's corruption realization is a pure function of
    its child seed, so faulty sweeps keep the bit-identity contract.
    """
    plan = SweepPlan()
    plan.add_required_queries(
        n,
        k,
        channel,
        trials=trials,
        seed=seed,
        max_m=max_m,
        check_every=check_every,
        gamma=gamma,
        centering=centering,
        algorithm=algorithm,
        verify=verify,
        engine=engine,
        kernel=kernel,
        corruption=corruption,
    )
    return plan.run(backend=backend, workers=workers, shm=shm)[0]


def fold_required_queries(
    spec: Dict[str, object], outcomes
) -> RequiredQueriesSample:
    """Fold per-trial ``(succeeded, required_m)`` outcomes into a sample.

    The accumulation half of the engine's ordered merge — shared by
    every backend so the folded artifact can never depend on where the
    chunks ran.
    """
    values: List[int] = []
    failures = 0
    for succeeded, required_m in outcomes:
        if succeeded:
            values.append(int(required_m))
        else:
            failures += 1
    return RequiredQueriesSample(
        n=spec["n"],
        k=spec["k"],
        channel=spec["channel"].describe(),
        values=values,
        failures=failures,
        algorithm=spec["algorithm"],
    )


@dataclass(frozen=True)
class SuccessCurve:
    """Success-rate / overlap curve over an m-grid for one algorithm."""

    algorithm: str
    n: int
    k: int
    channel: str
    m_values: List[int]
    success_rates: List[float]
    overlaps: List[float]
    trials: int
    meta: Dict[str, object] = field(default_factory=dict)

    def crossing(self, level: float = 0.5) -> Optional[int]:
        """Smallest m on the grid whose success rate reaches ``level``."""
        for m, rate in zip(self.m_values, self.success_rates):
            if rate >= level:
                return m
        return None


def success_rate_curve(
    n: int,
    k: int,
    channel: Channel,
    m_values: Sequence[int],
    *,
    algorithm: str = "greedy",
    trials: int = 100,
    seed: RngLike = 0,
    gamma: Optional[int] = None,
    algorithm_kwargs: Optional[dict] = None,
    engine: str = "batch",
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    design: str = "replacement",
    kernel: Optional[str] = None,
    shm: Optional[bool] = None,
    corruption=None,
    fault=None,
) -> SuccessCurve:
    """Estimate success rate and overlap per query count ``m``.

    For every ``m`` in the grid, ``trials`` independent instances are
    drawn (fresh truth, graph and noise each time, matching the paper's
    "100 independent simulation runs" per data point).

    With ``engine="batch"`` the greedy trials run through
    :class:`~repro.core.batch.BatchTrialRunner` and the AMP trials
    through the block-diagonal stacked runner
    (:func:`repro.amp.batch_amp.run_amp_trials`) — both seed-identical
    to the legacy per-trial loop, so both engines (and the distributed
    runtime, which shares the loop) report identical curves for the
    same seed. Algorithms without a batch implementation (distributed,
    two-stage) always use the per-trial loop; see the module
    docstring's support matrix. ``design`` selects the pooling design
    (:data:`repro.experiments.scheduler.DESIGNS`; the non-default
    designs run the per-trial loop).

    The call is a thin one-cell :class:`~repro.experiments.scheduler.
    SweepPlan`: ``workers > 1`` (or an explicit ``backend``) shards
    every grid point's trials through the sweep engine's global queue;
    the per-trial outcomes are merged in trial order and folded with
    the same accumulation as the serial loop, so the reported curves
    are bit-identical for every backend and worker count (see
    :mod:`repro.experiments.scheduler`).

    ``kernel`` selects the AMP compute backend by name and is merged
    into ``algorithm_kwargs`` (``"amp"`` and ``"distributed_amp"``
    cells only — other algorithms reject it);
    ``shm`` routes process-backend dispatch through the shared-memory
    arena. Neither changes any float64-default output.

    ``corruption`` (a :class:`~repro.core.corruption.CorruptionModel`)
    corrupts every trial's measurements post-channel — any algorithm;
    forces the legacy per-trial loop. ``fault`` (a
    :class:`~repro.core.corruption.FaultSpec`) injects message
    drop/delay into the distributed protocol
    (``algorithm="distributed"`` only); per-trial
    :class:`~repro.distributed.network.NetworkMetrics` means land in
    ``SuccessCurve.meta["metrics"]``. Both draw every fault
    realization from dedicated streams of the trial's child seed, so
    results stay bit-identical on every backend / worker count / chunk
    layout.
    """
    if kernel is not None:
        if algorithm not in ("amp", "distributed_amp"):
            raise ValueError(
                f"kernel={kernel!r} selects an AMP compute backend; "
                f"algorithm {algorithm!r} has none"
            )
        algorithm_kwargs = dict(algorithm_kwargs or {})
        algorithm_kwargs["kernel"] = kernel
    plan = SweepPlan()
    plan.add_success_curve(
        n,
        k,
        channel,
        m_values,
        algorithm=algorithm,
        trials=trials,
        seed=seed,
        gamma=gamma,
        algorithm_kwargs=algorithm_kwargs,
        engine=engine,
        design=design,
        corruption=corruption,
        fault=fault,
    )
    return plan.run(backend=backend, workers=workers, shm=shm)[0]


def fold_success_curve(
    spec: Dict[str, object],
    m_values: Sequence[int],
    per_m_outcomes,
    trials: int,
) -> SuccessCurve:
    """Fold per-m ``(exact, overlap)`` outcome lists into a curve.

    The accumulation half of the engine's ordered merge for fixed-m
    cells — identical to the serial loop's folding, shared by every
    backend. Distributed cells emit ``(exact, overlap, metrics)``
    triples; the per-m metric means (rounds, messages, bits, dropped,
    delayed) are folded into ``SuccessCurve.meta["metrics"]``, and an
    active corruption/fault spec is recorded as its ``describe()``
    label — curves without either keep an empty ``meta``, so stored
    artifacts and golden reprs from earlier sweeps are unchanged.
    """
    success_rates: List[float] = []
    overlaps: List[float] = []
    metric_means: List[Dict[str, float]] = []
    has_metrics = False
    for outcomes in per_m_outcomes:
        successes = 0
        overlap_sum = 0.0
        metric_sums: Dict[str, float] = {}
        for outcome in outcomes:
            successes += outcome[0]
            overlap_sum += outcome[1]
            if len(outcome) > 2 and outcome[2]:
                has_metrics = True
                for key, value in outcome[2].items():
                    metric_sums[key] = metric_sums.get(key, 0.0) + value
        success_rates.append(successes / trials)
        overlaps.append(overlap_sum / trials)
        metric_means.append(
            {key: value / trials for key, value in metric_sums.items()}
        )
    meta: Dict[str, object] = {}
    if has_metrics:
        meta["metrics"] = metric_means
    corruption = spec.get("corruption")
    if corruption is not None and not corruption.is_null:
        meta["corruption"] = corruption.describe()
    fault = spec.get("fault")
    if fault is not None and not fault.is_null:
        meta["fault"] = fault.describe()
    return SuccessCurve(
        algorithm=spec["algorithm"],
        n=spec["n"],
        k=spec["k"],
        channel=spec["channel"].describe(),
        m_values=[int(m) for m in m_values],
        success_rates=success_rates,
        overlaps=overlaps,
        trials=trials,
        meta=meta,
    )


def run_many(
    trial_fn: Callable[[np.random.Generator], object],
    *,
    trials: int,
    seed: RngLike = 0,
) -> List[object]:
    """Generic helper: run ``trial_fn`` on independent child generators."""
    check_positive_int(trials, "trials")
    return [trial_fn(gen) for gen in spawn_rngs(seed, trials)]


__all__ = [
    "ALGORITHMS",
    "REQUIRED_QUERIES_ALGORITHMS",
    "ENGINES",
    "RequiredQueriesSample",
    "required_queries_trials",
    "fold_required_queries",
    "SuccessCurve",
    "success_rate_curve",
    "fold_success_curve",
    "run_many",
]
