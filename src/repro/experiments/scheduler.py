"""Sweep-scale execution engine: cross-cell task scheduling.

The paper's figures are *sweeps*: Figures 2-5 iterate ``(algorithm,
channel, n)`` cells and Figures 6-7 iterate ``(n, m)`` grids, every
cell being a list of independent seeded trials. Before this module the
harness executed cells strictly one after another — each cell sharded
its own trials, blocked on a per-cell barrier, and only then started
the next cell — so the worker pool idled whenever a cell's last
straggler chunk ran, and small cells paid the ~1 ms per-chunk dispatch
with no other work to overlap it.

This module flattens an entire sweep into **one global queue of
``(cell, chunk)`` work items** and executes them out of order on a
pluggable backend, while preserving the seed-chunk/ordered-merge
contract of :mod:`repro.experiments.parallel` exactly:

1. **Plan** — a :class:`SweepPlan` collects cell specs (the same
   keyword arguments the runner entry points take) and pre-spawns each
   cell's per-trial child seeds exactly as the serial path would
   (same ``SeedSequence.spawn`` calls, in the same order);
2. **Explode** — every cell is partitioned into contiguous,
   order-preserving chunks (:func:`repro.core.chunking.chunk_bounds`)
   and all cells' chunks enter one shared work queue;
3. **Execute** — a :class:`SweepExecutor` runs the queue on a backend
   (see below); chunks complete out of order and heterogeneous cells
   load-balance: a big-``n`` cell's stragglers overlap the next cells'
   chunks, and no per-cell pool-dispatch barrier remains;
4. **Ordered merge** — chunk outcomes are reassembled per cell in
   trial order, and each cell's result materializes as soon as its
   last chunk finishes.

Because every trial is a pure function of its own pre-spawned child
seed, the merged output of every backend is **bit-identical** to
running each cell through the serial per-cell path — for any worker
count, chunk layout, algorithm and engine (pinned in
``tests/test_scheduler.py``).

Backends
--------
``serial``
    In-process reference: runs the queue front to back with no
    pickling. The default when no sharding is requested.
``process``
    The cached ``spawn``-start :class:`~concurrent.futures.
    ProcessPoolExecutor` of :mod:`repro.experiments.parallel`,
    submitting through the shared queue. A ``BrokenProcessPool``
    raised mid-sweep (a worker OOM-killed or segfaulted) is retried
    once on a fresh pool before failing the sweep. The default when
    ``workers > 1``.
``socket``
    Ships pickled chunk payloads to remote worker hosts over TCP
    (cross-host trial sharding). Start workers with ``python -m repro
    worker serve --port 7920`` on each host and point the executor at
    them via ``hosts=["host:7920", ...]`` or the ``REPRO_HOSTS``
    environment variable. The wire frames are HMAC-authenticated
    (``REPRO_AUTH_TOKEN``) and size-capped, and the backend is
    elastic: initial connects and mid-sweep reconnects retry with
    bounded exponential backoff, application-level heartbeats
    (``ping``/``pong`` answered even mid-chunk) separate long chunks
    from dead workers, a straggler's chunk is speculatively
    re-dispatched onto an idle worker (first result wins — outputs
    cannot change, chunks are pure functions of their seeds), and a
    worker that dies mid-sweep has its in-flight chunk requeued onto
    the survivors.

Select a backend per call (``backend=``), via the ``REPRO_BACKEND``
environment variable, or implicitly (``workers > 1`` → ``process``).

Checkpoint/resume
-----------------
``run(checkpoint=path)`` (or ``REPRO_CHECKPOINT``, or ``--checkpoint``
on the CLI) persists every finished chunk — and each cell's merged
outcomes once its last chunk lands — through
:mod:`repro.experiments.checkpoint` (atomic write-then-rename, a
manifest keyed by a content hash of the plan's specs + child seeds).
A driver killed mid-sweep and re-run with the same plan skips
completed cells and resumes half-finished ones from their surviving
chunks; the resumed result is bit-identical to an uninterrupted run by
construction, because resume replays the same pre-spawned child seeds
and restored outcomes are the chunks' own recorded values. Works on
every backend (the filtering happens before dispatch); a plan whose
content hash changed is rejected instead of silently resumed.

Per-worker payload interning
----------------------------
A chunk's payload splits into a per-cell **invariant** part (the
channel object, algorithm kwargs, budgets — identical for every chunk
of the cell) and a per-chunk **variant** part (the seed slice and grid
indices). Re-shipping the invariant with every chunk is pure dispatch
overhead, so both remote backends intern it once per worker, keyed by
a unique cell id: the process backend seeds the first chunks of each
cell with the pickled spec and retries on a worker-side cache miss;
the socket backend tracks per-connection which specs it has sent.
Steady-state chunk dispatch therefore ships only seeds + indices
(measured in the ``sweep_pipeline`` benchmark case).

The ``shm`` option (``REPRO_SHM``) moves even that residue out of the
pipe for the process backend: specs *and* per-task seed tuples are
written once into a sweep-scoped shared-memory arena
(:mod:`repro.experiments.shm`) and each submission ships only the
arena name plus two ``(offset, length)`` refs — near-constant bytes
per chunk, measured in the ``shm_dispatch_bytes`` benchmark case.

When the engine helps
---------------------
The flattened queue pays off whenever a sweep has more than one cell
and more than one worker: per-cell barriers disappear and stragglers
overlap. For a single small cell the engine degenerates to the PR 2
behaviour (one submission wave), and for ``workers=1`` the serial
backend runs the chunks with no dispatch overhead at all.
"""

from __future__ import annotations

import itertools
import os
import pickle
import queue as queue_module
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.chunking import chunk_bounds
from repro.experiments import parallel
from repro.experiments import shm as shm_module
from repro.utils import config
from repro.utils.rng import RngLike, spawn_rngs, spawn_seeds
from repro.utils.validation import check_positive_int

#: pluggable execution backends (see the module docstring)
BACKENDS = ("serial", "process", "socket")

#: environment variable consulted when ``backend`` is not given
BACKEND_ENV = "REPRO_BACKEND"

#: environment variable listing socket worker hosts, comma-separated
#: ``host:port`` pairs (consulted when ``hosts`` is not given)
HOSTS_ENV = "REPRO_HOSTS"

#: cell kinds understood by the chunk runner
CELL_REQUIRED = "required_queries"
CELL_CURVE = "success_curve"

#: pooling designs selectable per success-curve cell: the paper's
#: with-replacement multigraph (default), the distinct-agents simple
#: graph, and the constant-column-weight regular design (ablation)
DESIGNS = ("replacement", "distinct", "regular")

#: environment variable forcing a fixed straggler-speculation deadline
#: (seconds; ``0`` disables speculation). Unset = adaptive: once three
#: chunk durations are observed, a chunk in flight longer than
#: ``_SPECULATE_FACTOR`` x the upper-quartile duration is re-dispatched
#: onto an idle worker (first result wins).
SPECULATE_ENV = "REPRO_SPECULATE"

#: adaptive speculation: multiple of the observed upper-quartile chunk
#: duration before a chunk counts as a straggler
_SPECULATE_FACTOR = 4.0

#: adaptive speculation never fires below this in-flight age (seconds)
_SPECULATE_MIN_SECONDS = 2.0

#: consecutive transport failures after which a feeder retires its
#: worker instead of reconnecting again (a flapping worker must not
#: burn the sweep in an accept/die loop)
_MAX_WORKER_FAILURES = 3

#: worker-side interned-spec cache size (entries, not bytes). Sized
#: above the largest realistic plan (a full-scale two-algorithm
#: figure 4 sweep is 2 x 5 x 13 = 130 cells) so live cells are not
#: evicted mid-plan; specs are small dicts, so even the cap is only
#: ~1 MB. An evicted-then-needed spec is re-fetched via the
#: ``_SpecMissing`` retry, costing one extra round trip, not
#: correctness.
_SPEC_CACHE_LIMIT = 1024


def resolve_backend(backend: Optional[str] = None, workers: int = 1) -> str:
    """Resolve a ``backend`` request into one of :data:`BACKENDS`.

    ``None`` falls back to the ``REPRO_BACKEND`` environment variable;
    when that is unset too, ``workers > 1`` selects ``process`` (the
    PR 2 behaviour) and anything else runs ``serial``.
    """
    if backend is None:
        backend = os.environ.get(BACKEND_ENV) or None
    if backend is None:
        return "process" if workers > 1 else "serial"
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; valid: {BACKENDS}")
    return backend


def parse_hosts(hosts=None) -> List[Tuple[str, int]]:
    """Normalize socket worker addresses into ``(host, port)`` pairs.

    Accepts a sequence of ``"host:port"`` strings (or ready
    ``(host, port)`` tuples); ``None`` falls back to the
    ``REPRO_HOSTS`` environment variable (comma-separated).
    """
    if hosts is None:
        raw = os.environ.get(HOSTS_ENV, "")
        hosts = [part for part in raw.split(",") if part.strip()]
    parsed: List[Tuple[str, int]] = []
    for entry in hosts:
        if isinstance(entry, tuple):
            host, port = entry
        else:
            host, _, port = str(entry).strip().rpartition(":")
            if not host:
                raise ValueError(
                    f"socket host {entry!r} must be 'host:port'"
                )
        parsed.append((host, int(port)))
    if not parsed:
        raise ValueError(
            "socket backend needs worker addresses: pass hosts=[...] or "
            f"set {HOSTS_ENV}; start workers with "
            "'python -m repro worker serve'"
        )
    return parsed


# -- plan ---------------------------------------------------------------


@dataclass
class _PlanCell:
    """One sweep cell: an invariant spec plus pre-spawned trial seeds."""

    kind: str
    spec: Dict[str, object]
    trials: int
    #: required-queries cells: the per-trial child seeds, in trial order
    seeds: Optional[List[np.random.SeedSequence]] = None
    #: success-curve cells: the m-grid and one seed list per grid point
    m_values: Optional[List[int]] = None
    per_m_seeds: Optional[List[List[np.random.SeedSequence]]] = None


class SweepPlan:
    """An ordered collection of sweep cells awaiting execution.

    Cells are added with the exact keyword arguments the runner entry
    points take (:func:`repro.experiments.runner.
    required_queries_trials` / :func:`~repro.experiments.runner.
    success_rate_curve`); each ``add_*`` call pre-spawns the cell's
    per-trial child seeds exactly as the serial path would, so the
    plan — not the backend — owns every source of randomness.
    ``plan.run(...)`` executes all cells through one shared work queue
    and returns one result object per cell, in add order
    (:class:`~repro.experiments.runner.RequiredQueriesSample` /
    :class:`~repro.experiments.runner.SuccessCurve`). Plans are
    reusable: ``run`` never mutates the cells.
    """

    def __init__(self) -> None:
        self._cells: List[_PlanCell] = []

    def __len__(self) -> int:
        return len(self._cells)

    def add_required_queries(
        self,
        n: int,
        k: int,
        channel,
        *,
        trials: int = 10,
        seed: RngLike = 0,
        max_m: Optional[int] = None,
        check_every: int = 1,
        gamma: Optional[int] = None,
        centering: str = "half_k",
        algorithm: str = "greedy",
        verify: str = "full",
        engine: str = "batch",
        kernel: Optional[str] = None,
        corruption=None,
    ) -> int:
        """Add one required-m cell; returns its index in the plan.

        Seed derivation matches the serial loop: ``trials`` child seeds
        spawned from ``seed`` in trial order. ``kernel`` selects the
        AMP compute backend by name (see :mod:`repro.amp.kernels`;
        AMP cells only — the greedy scan has no kernel seam).
        ``corruption`` (a :class:`~repro.core.corruption.
        CorruptionModel`) corrupts each trial's full measurement
        stream once — from a dedicated stream of the trial's child
        seed — and the cell runs the generic prefix-replay
        exact-decode scan (any algorithm; also the ``twostage`` path).
        """
        from repro.core.corruption import CorruptionModel
        from repro.experiments.runner import (
            REQUIRED_QUERIES_ALGORITHMS,
            _check_engine,
        )

        check_positive_int(trials, "trials")
        if algorithm not in REQUIRED_QUERIES_ALGORITHMS:
            raise ValueError(
                f"unknown required-queries algorithm {algorithm!r}; "
                f"valid: {REQUIRED_QUERIES_ALGORITHMS}"
            )
        if kernel is not None and algorithm != "amp":
            raise ValueError(
                f"kernel={kernel!r} selects an AMP compute backend; "
                f"algorithm {algorithm!r} has none"
            )
        if corruption is not None and not isinstance(
            corruption, CorruptionModel
        ):
            raise TypeError(
                "corruption must be a CorruptionModel, got "
                f"{type(corruption).__name__}"
            )
        spec = {
            "n": n,
            "k": k,
            "channel": channel,
            "gamma": gamma,
            "centering": centering,
            "algorithm": algorithm,
            "verify": verify,
            "engine": _check_engine(engine),
            "max_m": max_m,
            "check_every": check_every,
            "kernel": kernel,
            "corruption": corruption,
        }
        self._cells.append(
            _PlanCell(
                kind=CELL_REQUIRED,
                spec=spec,
                trials=trials,
                seeds=spawn_seeds(seed, trials),
            )
        )
        return len(self._cells) - 1

    def add_success_curve(
        self,
        n: int,
        k: int,
        channel,
        m_values: Sequence[int],
        *,
        algorithm: str = "greedy",
        trials: int = 100,
        seed: RngLike = 0,
        gamma: Optional[int] = None,
        algorithm_kwargs: Optional[dict] = None,
        engine: str = "batch",
        design: str = "replacement",
        batch_mode: str = "auto",
        corruption=None,
        fault=None,
    ) -> int:
        """Add one fixed-m success-curve cell; returns its plan index.

        Seed derivation matches the serial curve exactly: one child
        generator per grid point, then per-trial seeds spawned from it.
        ``design`` selects the pooling design (:data:`DESIGNS`); the
        non-default designs run the seed-compatible legacy per-trial
        loop, which is the one place that knows how to sample them.
        ``batch_mode="auto"`` (default) lets
        :func:`repro.experiments.runner._batch_mode` pick the stacked
        chunk implementation; pass ``None`` / ``"greedy"`` / ``"amp"``
        to force one (the PR 2 scheduler API).

        ``corruption`` (a :class:`~repro.core.corruption.
        CorruptionModel`) corrupts each trial's measurements
        post-channel and forces the legacy per-trial loop (the stacked
        engines never see corrupted cells); ``fault`` (a
        :class:`~repro.core.corruption.FaultSpec`) injects seeded
        message drop/delay into the distributed protocol and is valid
        only for ``algorithm="distributed"``. Both draw from dedicated
        streams of each trial's child seed — fault realizations are
        bit-identical on every backend, worker count and chunk layout.
        """
        from repro.core.corruption import CorruptionModel, FaultSpec
        from repro.experiments.runner import (
            ALGORITHMS,
            _batch_mode,
            _check_engine,
        )

        check_positive_int(trials, "trials")
        if algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; valid: {ALGORITHMS}"
            )
        if design not in DESIGNS:
            raise ValueError(f"unknown design {design!r}; valid: {DESIGNS}")
        engine = _check_engine(engine)
        algorithm_kwargs = algorithm_kwargs or {}
        if corruption is not None and not isinstance(
            corruption, CorruptionModel
        ):
            raise TypeError(
                "corruption must be a CorruptionModel, got "
                f"{type(corruption).__name__}"
            )
        if fault is not None:
            if not isinstance(fault, FaultSpec):
                raise TypeError(
                    f"fault must be a FaultSpec, got {type(fault).__name__}"
                )
            if algorithm != "distributed":
                raise ValueError(
                    "fault= injects message drop/delay into the "
                    "distributed protocol; algorithm "
                    f"{algorithm!r} has no network to perturb"
                )
        corrupted = corruption is not None and not corruption.is_null
        if batch_mode == "auto":
            # The stacked chunk paths only know the paper's
            # with-replacement design and honest measurements; other
            # designs — and corrupted cells — fall back to the legacy
            # per-trial loop, which handles both.
            batch_mode = (
                _batch_mode(algorithm, engine, algorithm_kwargs)
                if design == "replacement" and not corrupted
                else None
            )
        elif batch_mode is not None and design != "replacement":
            raise ValueError(
                f"batch_mode {batch_mode!r} runs the stacked "
                "with-replacement samplers and cannot honor design "
                f"{design!r}; use batch_mode='auto' or None"
            )
        elif batch_mode is not None and corrupted:
            raise ValueError(
                f"batch_mode {batch_mode!r} runs the stacked engines, "
                "which do not apply corruption; use batch_mode='auto' "
                "or None"
            )
        spec = {
            "n": n,
            "k": k,
            "channel": channel,
            "gamma": gamma,
            "algorithm": algorithm,
            "algorithm_kwargs": algorithm_kwargs,
            "batch_mode": batch_mode,
            "design": design,
            "corruption": corruption,
            "fault": fault,
        }
        m_values = [int(m) for m in m_values]
        per_m_seeds = [
            spawn_seeds(m_rng, trials)
            for m_rng in spawn_rngs(seed, len(m_values))
        ]
        self._cells.append(
            _PlanCell(
                kind=CELL_CURVE,
                spec=spec,
                trials=trials,
                m_values=m_values,
                per_m_seeds=per_m_seeds,
            )
        )
        return len(self._cells) - 1

    def run(
        self,
        *,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        hosts=None,
        intern_specs: bool = True,
        shm: Optional[bool] = None,
        checkpoint=None,
        auth_token: Optional[str] = None,
        connect_retry: Optional[float] = None,
        heartbeat_interval: Optional[float] = None,
        heartbeat_timeout: Optional[float] = None,
        speculate: Optional[float] = None,
    ) -> List[object]:
        """Execute the plan; one result object per cell, in add order.

        ``checkpoint`` names a directory for crash-safe resume (see
        the module docstring); the remaining keyword arguments tune
        the socket backend's elasticity and are documented on
        :class:`SweepExecutor`.
        """
        return SweepExecutor(
            backend=backend,
            workers=workers,
            hosts=hosts,
            intern_specs=intern_specs,
            shm=shm,
            checkpoint=checkpoint,
            auth_token=auth_token,
            connect_retry=connect_retry,
            heartbeat_interval=heartbeat_interval,
            heartbeat_timeout=heartbeat_timeout,
            speculate=speculate,
        ).run(self)


# -- chunk execution (shared by every backend) --------------------------


def _run_chunk(spec: Dict[str, object], kind: str, m, seeds) -> list:
    """Run one ``(cell, chunk)`` work item; used by every backend."""
    if kind == CELL_REQUIRED:
        return parallel._required_queries_chunk(spec, list(seeds))
    if kind == CELL_CURVE:
        return parallel._fixed_m_chunk(spec, int(m), list(seeds))
    raise ValueError(f"unknown cell kind {kind!r}")


class _SpecMissing(Exception):
    """Worker-side cache miss: the chunk arrived before its cell spec.

    Raised inside a pool worker and caught by the process backend,
    which resubmits the chunk with the pickled spec attached. At most
    one miss per worker per cell.
    """


#: per-worker interned cell specs (populated in pool worker processes)
_worker_specs: "OrderedDict[str, Dict[str, object]]" = OrderedDict()


def _intern_spec(key: str, blob: Optional[bytes]) -> Dict[str, object]:
    """Return the cell spec for ``key``, interning ``blob`` if given."""
    if blob is not None:
        spec = pickle.loads(blob)
        _worker_specs[key] = spec
        _worker_specs.move_to_end(key)
        while len(_worker_specs) > _SPEC_CACHE_LIMIT:
            _worker_specs.popitem(last=False)
        return spec
    try:
        spec = _worker_specs[key]
    except KeyError:
        raise _SpecMissing(key) from None
    _worker_specs.move_to_end(key)
    return spec


def _process_chunk(key: str, blob: Optional[bytes], kind: str, m, seeds):
    """Pool-worker entry point: intern the spec, run the chunk."""
    return _run_chunk(_intern_spec(key, blob), kind, m, seeds)


# -- driver-side graph preparation (shm backend) ------------------------

#: soft cap on the expected incidence elements one prepared chunk may
#: publish into the arena; larger chunks fall back to seed dispatch
#: (the eligibility dial bounds driver memory and arena size, never
#: correctness — both dispatch forms are bit-identical)
_PREPARED_ELEMENTS_CAP = 2**24


def _prepared_arrays(cell, task) -> Optional[Dict[str, np.ndarray]]:
    """Sample an eligible AMP task's graph buffers on the driver.

    Returns the array dict to publish into the sweep arena, or
    ``None`` when the task must ship seeds as before. Eligible are

    * fixed-m AMP cells on the stacked path (``batch_mode == "amp"``)
      whose whole chunk fits one block-diagonal stack
      (:func:`repro.amp.batch_amp.sample_amp_cell_chunk`), and
    * honest batch-engine required-m AMP cells
      (:func:`repro.amp.batch_amp.sample_required_stream_chunk`) —
      corrupted cells replay a corruption realization the generic scan
      owns, so they keep the seed path.

    Sampling consumes each seed exactly as the worker-side chunk
    functions would, so prepared and seed dispatch are bit-identical.
    """
    from repro.amp.batch_amp import (
        STACK_NNZ_CUTOFF,
        _expected_trial_nnz,
        sample_amp_cell_chunk,
        sample_required_stream_chunk,
    )
    from repro.amp.kernels import resolve_kernel
    from repro.core.incremental import default_max_queries
    from repro.core.pooling import default_gamma

    spec = cell.spec
    n = spec["n"]
    gamma = spec["gamma"] or default_gamma(n)
    if cell.kind == CELL_CURVE:
        if spec.get("batch_mode") != "amp" or not task.m:
            return None
        m = int(task.m)
        per_trial = _expected_trial_nnz(n, m, gamma)
        if (
            per_trial > STACK_NNZ_CUTOFF
            or per_trial * len(task.seeds) > _PREPARED_ELEMENTS_CAP
        ):
            return None
        kern = resolve_kernel(spec["algorithm_kwargs"].get("kernel"))
        return sample_amp_cell_chunk(
            n, spec["k"], spec["channel"], m, task.seeds,
            gamma=gamma, dtype=kern.dtype,
        )
    corruption = spec.get("corruption")
    if (
        spec.get("algorithm") != "amp"
        or spec.get("engine") != "batch"
        or (corruption is not None and not corruption.is_null)
    ):
        return None
    max_m = spec["max_m"] or default_max_queries(n, spec["k"], spec["channel"])
    step = max(1, int(spec["check_every"]))
    grid_max = (max_m // step) * step
    if not grid_max:
        return None
    per_trial = _expected_trial_nnz(n, grid_max, gamma)
    if per_trial * len(task.seeds) > _PREPARED_ELEMENTS_CAP:
        return None
    return sample_required_stream_chunk(
        n, spec["k"], spec["channel"], task.seeds,
        gamma=spec["gamma"], max_m=spec["max_m"],
        check_every=spec["check_every"],
    )


# -- executor -----------------------------------------------------------


@dataclass(frozen=True)
class _Task:
    """One work item of the flattened queue: a contiguous trial chunk."""

    cell: int  # plan cell index
    index: int  # position within the cell's task list (merge order)
    m_index: Optional[int]  # success-curve grid position (None: required)
    m: Optional[int]
    seeds: tuple  # the chunk's child seeds, in trial order
    lo: int = 0  # trial range within the cell (checkpoint identity —
    hi: int = 0  # layout-independent, unlike ``index``)


#: unique spec-cache keys; the pid prefix keeps keys from different
#: driver processes (which may share a worker) from colliding
_spec_key_counter = itertools.count()


def _next_spec_key(cell: int) -> str:
    return f"{os.getpid()}:{next(_spec_key_counter)}:{cell}"


class SweepExecutor:
    """Runs a :class:`SweepPlan` through one shared cross-cell queue.

    Parameters
    ----------
    backend:
        ``"serial"`` / ``"process"`` / ``"socket"``; ``None`` resolves
        via :func:`resolve_backend` (env var, then worker count).
    workers:
        Worker processes for the ``process`` backend (``None``:
        ``REPRO_WORKERS``, else 1; ``0``: one per CPU) — resolved with
        :func:`repro.experiments.parallel.resolve_workers`.
    hosts:
        Socket worker addresses (``"host:port"`` strings) for the
        ``socket`` backend; ``None`` falls back to ``REPRO_HOSTS``.
    intern_specs:
        Ship each cell's invariant payload at most once per worker
        (default). ``False`` re-ships the full spec with every chunk —
        kept as a benchmark baseline for the dispatch-overhead
        measurement in ``bench_perf_core.py``.
    shm:
        Dispatch the ``process`` backend's chunk payloads through a
        sweep-scoped shared-memory arena
        (:class:`~repro.experiments.shm.SweepArena`): specs and seed
        tuples live in one segment and each submission ships only
        ``(arena name, offsets)`` — near-constant bytes per chunk.
        ``None`` (default) consults the ``REPRO_SHM`` environment
        variable. Ignored by the serial backend (nothing to dispatch)
        and the socket backend (remote hosts cannot see local shared
        memory). Results are bit-identical either way — the arena
        only changes how the identical payload travels.
    checkpoint:
        Directory for crash-safe resume (any backend): finished chunks
        and completed cells persist as they land, and a re-run of the
        same plan skips them (see the module docstring). ``None``
        consults the ``REPRO_CHECKPOINT`` environment variable; unset
        disables checkpointing.
    auth_token:
        Shared cluster token for the socket backend's frame HMAC;
        ``None`` consults ``REPRO_AUTH_TOKEN`` (and with neither set,
        frames carry an integrity-only tag — see
        :mod:`repro.experiments.worker`).
    connect_retry:
        Total seconds of bounded exponential-backoff retry for initial
        connects and mid-sweep reconnects to socket workers (``None``:
        ``REPRO_CONNECT_RETRY``, else 30).
    heartbeat_interval / heartbeat_timeout:
        Socket-backend liveness cadence: a ``ping`` probe every
        ``heartbeat_interval`` seconds while a chunk is outstanding
        (workers answer even mid-chunk), and a worker silent —
        no pong, no result — for ``heartbeat_timeout`` seconds is
        declared dead and its chunk requeued. ``None`` consults
        ``REPRO_HEARTBEAT_INTERVAL`` / ``REPRO_HEARTBEAT_TIMEOUT``
        (defaults 5 / 30).
    speculate:
        Straggler deadline in seconds for the socket backend: a chunk
        in flight longer than this is speculatively re-dispatched onto
        an idle worker, first result wins (``0`` disables). ``None``
        consults ``REPRO_SPECULATE``, else adapts to observed chunk
        durations (see :data:`SPECULATE_ENV`). Never changes outputs —
        chunks are pure functions of their seeds.
    """

    def __init__(
        self,
        *,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        hosts=None,
        intern_specs: bool = True,
        shm: Optional[bool] = None,
        checkpoint=None,
        auth_token: Optional[str] = None,
        connect_retry: Optional[float] = None,
        heartbeat_interval: Optional[float] = None,
        heartbeat_timeout: Optional[float] = None,
        speculate: Optional[float] = None,
    ) -> None:
        from repro.experiments.checkpoint import CHECKPOINT_ENV

        self.workers = parallel.resolve_workers(workers)
        self.backend = resolve_backend(backend, self.workers)
        self._hosts = hosts
        self.intern_specs = intern_specs
        self.shm = shm_module.resolve_shm(shm)
        if checkpoint is None:
            checkpoint = os.environ.get(CHECKPOINT_ENV) or None
        self.checkpoint = checkpoint
        self.auth_token = auth_token
        self.connect_retry = connect_retry
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        if speculate is None:
            speculate = config.env_float(SPECULATE_ENV, minimum=0.0)
        self.speculate = speculate
        #: elasticity counters from the last socket run (speculated /
        #: reconnects / heartbeat_timeouts / retired), for tests and
        #: the chaos smoke
        self.last_socket_stats: Optional[Dict[str, object]] = None

    # ---- plan explosion ----

    def _chunks_per_cell(self) -> int:
        if self.backend == "serial":
            return 1
        if self.backend == "socket":
            return len(parse_hosts(self._hosts)) * parallel._OVERSUBSCRIBE
        return self.workers * parallel._OVERSUBSCRIBE

    def _explode(self, plan: SweepPlan) -> List[_Task]:
        """Flatten every cell into contiguous order-preserving chunks."""
        chunks = self._chunks_per_cell()
        tasks: List[_Task] = []
        for ci, cell in enumerate(plan._cells):
            index = 0
            if cell.kind == CELL_REQUIRED:
                for lo, hi in chunk_bounds(cell.trials, chunks):
                    tasks.append(
                        _Task(ci, index, None, None,
                              tuple(cell.seeds[lo:hi]), lo, hi)
                    )
                    index += 1
            else:
                for mi, m in enumerate(cell.m_values):
                    seeds = cell.per_m_seeds[mi]
                    for lo, hi in chunk_bounds(cell.trials, chunks):
                        tasks.append(
                            _Task(ci, index, mi, m,
                                  tuple(seeds[lo:hi]), lo, hi)
                        )
                        index += 1
        return tasks

    # ---- merge / fold ----

    def run(self, plan: SweepPlan) -> List[object]:
        """Execute all cells' chunks; fold each cell as it completes."""
        raw = self.run_outcomes(plan)
        from repro.experiments.runner import (
            fold_required_queries,
            fold_success_curve,
        )

        results: List[object] = []
        for cell, outcomes in zip(plan._cells, raw):
            if cell.kind == CELL_REQUIRED:
                results.append(fold_required_queries(cell.spec, outcomes))
            else:
                results.append(
                    fold_success_curve(
                        cell.spec, cell.m_values, outcomes, cell.trials
                    )
                )
        return results

    def run_outcomes(self, plan: SweepPlan) -> List[object]:
        """Execute the plan, returning raw per-cell outcome lists.

        Required-queries cells yield ``[(succeeded, required_m), ...]``
        in trial order; success-curve cells yield one
        ``[(exact, overlap), ...]`` list per grid point. This is the
        layer the PR 2 compatibility wrappers in
        :mod:`repro.experiments.parallel` consume.
        """
        tasks = self._explode(plan)
        cells = plan._cells
        # Per-cell chunk slots, filled out of completion order and
        # merged in task order — the ordered-merge half of the
        # bit-identity contract.
        slots: List[List[Optional[list]]] = [[] for _ in cells]
        remaining: List[int] = [0 for _ in cells]
        cell_tasks: List[List[_Task]] = [[] for _ in cells]
        for task in tasks:
            # task.index counts per cell in explode order, so each
            # cell's slot list lines up with its task indices.
            slots[task.cell].append(None)
            remaining[task.cell] += 1
            cell_tasks[task.cell].append(task)

        def assemble(ci: int):
            """Merge a completed cell's chunk slots into its raw value."""
            if cells[ci].kind == CELL_REQUIRED:
                return [o for chunk in slots[ci] for o in chunk]
            per_m: List[list] = [[] for _ in cells[ci].m_values]
            for task, chunk in zip(cell_tasks[ci], slots[ci]):
                per_m[task.m_index].extend(chunk)
            return per_m

        def store(task: _Task, result: list) -> None:
            if slots[task.cell][task.index] is None:
                remaining[task.cell] -= 1
            slots[task.cell][task.index] = result

        ckpt = None
        restored: Dict[int, object] = {}
        if self.checkpoint is not None:
            from repro.experiments.checkpoint import (
                SweepCheckpoint,
                chunk_key,
            )

            ckpt = SweepCheckpoint.open(self.checkpoint, plan)
            for ci in range(len(cells)):
                outcomes = ckpt.cell_outcomes(ci)
                if outcomes is not None:
                    # The whole cell survives as one record: its raw
                    # value is final, no chunks dispatch.
                    restored[ci] = outcomes
                    remaining[ci] = 0
            for task in tasks:
                if task.cell in restored:
                    continue
                stored = ckpt.chunk_outcomes(
                    chunk_key(task.cell, task.m_index, task.lo, task.hi)
                )
                if stored is not None:
                    store(task, stored)
            for ci in range(len(cells)):
                if remaining[ci] == 0 and ci not in restored and slots[ci]:
                    # Restored chunks alone completed the cell (the
                    # previous run died between its last chunk and the
                    # cell record): compact now.
                    ckpt.record_cell(ci, assemble(ci))

        def emit(task: _Task, result: list) -> None:
            fresh = slots[task.cell][task.index] is None
            store(task, result)
            if ckpt is not None and fresh:
                ckpt.record_chunk(
                    chunk_key(task.cell, task.m_index, task.lo, task.hi),
                    result,
                )
                if remaining[task.cell] == 0:
                    ckpt.record_cell(task.cell, assemble(task.cell))

        pending = [
            t
            for t in tasks
            if t.cell not in restored and slots[t.cell][t.index] is None
        ]
        if pending:
            # (a plan can be task-free — no cells, cells with empty
            # m-grids, or everything restored from the checkpoint —
            # and must still fold one result per cell)
            if self.backend == "serial":
                self._execute_serial(pending, cells, emit)
            elif self.backend == "process":
                if self.shm:
                    self._execute_process_shm(pending, cells, emit)
                else:
                    self._execute_process(pending, cells, emit)
            else:
                self._execute_socket(pending, cells, emit)

        missing = [ci for ci, left in enumerate(remaining) if left]
        if missing:  # pragma: no cover - backends raise before this
            raise RuntimeError(f"cells {missing} did not complete")

        raw: List[object] = []
        for ci in range(len(cells)):
            raw.append(restored[ci] if ci in restored else assemble(ci))
        return raw

    # ---- backends ----

    def _execute_serial(self, tasks, cells, emit) -> None:
        for task in tasks:
            emit(
                task,
                _run_chunk(cells[task.cell].spec, cells[task.cell].kind,
                           task.m, task.seeds),
            )

    def _execute_process(self, tasks, cells, emit) -> None:
        """Submit the queue to the cached spawn pool; retry once if it
        breaks mid-sweep, resubmitting every unfinished chunk.

        Every ``pool.submit`` and ``future.result`` runs inside the
        retry scope: a ``BrokenProcessPool`` surfacing anywhere — the
        initial wave, a miss-retry resubmission, or a result — parks
        the affected chunks back on ``unsent`` and reruns them on a
        fresh pool (results are pure functions of their seeds, so the
        retry is bit-identical). A second breakage fails the sweep.
        """
        blobs = {
            ci: pickle.dumps(cells[ci].spec, pickle.HIGHEST_PROTOCOL)
            for ci in {t.cell for t in tasks}
        }
        keys = {ci: _next_spec_key(ci) for ci in blobs}
        # Seed each cell's spec into the pool with its first chunks
        # (likely to land on distinct workers); later chunks ship only
        # seeds + indices and fall back to the miss-retry protocol.
        # FIFO order matters: the blob-carrying chunks must reach the
        # pool before their cell's blob-less ones.
        unsent: "deque[Tuple[_Task, bool]]" = deque()
        seen: Dict[int, int] = {}
        for task in tasks:
            shipped = seen.get(task.cell, 0)
            unsent.append((task, shipped < self.workers))
            seen[task.cell] = shipped + 1

        retried_broken = False
        while True:
            pool = parallel._get_pool(self.workers)
            pending: Dict[object, _Task] = {}
            try:
                while unsent or pending:
                    while unsent:
                        # peek, submit, then pop — a submit() that
                        # raises BrokenProcessPool leaves the chunk
                        # queued for the fresh-pool retry
                        task, with_blob = unsent[0]
                        cell = cells[task.cell]
                        blob = (
                            blobs[task.cell]
                            if (with_blob or not self.intern_specs)
                            else None
                        )
                        future = pool.submit(
                            _process_chunk, keys[task.cell], blob,
                            cell.kind, task.m, task.seeds,
                        )
                        unsent.popleft()
                        pending[future] = task
                    done, _ = wait(
                        list(pending), return_when=FIRST_COMPLETED
                    )
                    for future in done:
                        task = pending.pop(future)
                        try:
                            result = future.result()
                        except _SpecMissing:
                            unsent.append((task, True))
                            continue
                        except BrokenProcessPool:
                            unsent.append((task, True))
                            raise
                        emit(task, result)
                return
            except BrokenProcessPool:
                # A worker died (OOM kill, segfault): the whole
                # executor is broken for good.
                if retried_broken:
                    raise
                retried_broken = True
                unsent.extend((t, True) for t in pending.values())
                parallel.shutdown_pool()

    def _execute_process_shm(self, tasks, cells, emit) -> None:
        """Process backend with shared-memory payload dispatch.

        All cell specs and per-task payloads are laid out once in one
        :class:`~repro.experiments.shm.SweepArena`; every submission
        then carries only the arena name plus ``(offset, length)``
        refs, so steady-state dispatch bytes are near-constant per
        chunk (no stacked seed pickling through the pool pipe, no
        spec-miss retry protocol — the arena always has everything).

        Eligible AMP chunks go further: :func:`_prepared_arrays`
        samples their pooling graphs on the driver and publishes the
        raw buffers — the fixed-``m`` chunk's single stacked CSR, or a
        required-``m`` chunk's fully grown measurement streams — into
        the arena, and the worker attaches zero-copy read-only views
        (:func:`~repro.experiments.shm.shm_graph_chunk`) instead of
        re-sampling and re-stacking per chunk. Ineligible tasks ship
        pickled seeds exactly as before, in the same arena. The arena
        is unlinked in the ``finally`` whether the sweep finishes,
        raises, or retries; the retry-once ``BrokenProcessPool``
        semantics mirror :meth:`_execute_process` (payloads are pure
        functions of their seeds, and the arena outlives the broken
        pool, so the fresh pool replays the identical payload).
        """
        used = sorted({t.cell for t in tasks})
        spec_index = {ci: i for i, ci in enumerate(used)}
        blobs: List[object] = [
            pickle.dumps(cells[ci].spec, pickle.HIGHEST_PROTOCOL)
            for ci in used
        ]
        # Per task, either ("seeds", blob_index) or
        # ("prep", {array_name: (blob_index, dtype_str, shape)}).
        descriptors: List[Tuple[str, object]] = []
        for task in tasks:
            prep = _prepared_arrays(cells[task.cell], task)
            if prep is None:
                descriptors.append(("seeds", len(blobs)))
                blobs.append(
                    pickle.dumps(task.seeds, pickle.HIGHEST_PROTOCOL)
                )
            else:
                entry = {}
                for key in sorted(prep):
                    arr = prep[key]
                    entry[key] = (len(blobs), arr.dtype.str, arr.shape)
                    blobs.append(arr)
                descriptors.append(("prep", entry))
        arena = shm_module.SweepArena(blobs, align=64)
        # The arena owns the bytes now; drop the driver-side copies of
        # the prepared arrays before the dispatch loop holds memory.
        del blobs
        try:
            spec_refs = {ci: arena.refs[spec_index[ci]] for ci in used}
            payloads: List[Tuple[str, object]] = []
            for form, body in descriptors:
                if form == "seeds":
                    payloads.append((form, arena.refs[body]))
                else:
                    payloads.append((form, {
                        key: (arena.refs[bi], dt, shape)
                        for key, (bi, dt, shape) in body.items()
                    }))
            unsent: "deque[int]" = deque(range(len(tasks)))
            retried_broken = False
            while True:
                pool = parallel._get_pool(self.workers)
                pending: Dict[object, int] = {}
                try:
                    while unsent or pending:
                        while unsent:
                            # peek, submit, then pop — see
                            # _execute_process
                            ti = unsent[0]
                            task = tasks[ti]
                            form, body = payloads[ti]
                            entry = (
                                shm_module.shm_chunk
                                if form == "seeds"
                                else shm_module.shm_graph_chunk
                            )
                            future = pool.submit(
                                entry, arena.name,
                                spec_refs[task.cell], body,
                                cells[task.cell].kind, task.m,
                            )
                            unsent.popleft()
                            pending[future] = ti
                        done, _ = wait(
                            list(pending), return_when=FIRST_COMPLETED
                        )
                        for future in done:
                            ti = pending.pop(future)
                            try:
                                result = future.result()
                            except BrokenProcessPool:
                                unsent.append(ti)
                                raise
                            emit(tasks[ti], result)
                    return
                except BrokenProcessPool:
                    if retried_broken:
                        raise
                    retried_broken = True
                    unsent.extend(pending.values())
                    parallel.shutdown_pool()
        finally:
            arena.dispose()

    def _execute_socket(self, tasks, cells, emit) -> None:
        """Drive remote socket workers elastically.

        One feeder thread per host pulls chunks off the shared queue
        over an authenticated connection established with
        exponential-backoff retry. While a chunk is outstanding the
        feeder probes the worker with ``ping`` frames (answered even
        mid-chunk), so a worker silent past the heartbeat timeout is
        declared dead and its chunk requeued; a transport error
        triggers a backoff reconnect, and only
        :data:`_MAX_WORKER_FAILURES` consecutive failures (or a
        permanent auth/protocol rejection) retire the worker. The
        driver loop speculatively re-dispatches stragglers onto idle
        workers — chunks are pure functions of their seeds, so the
        first result wins and duplicates are dropped by key.
        Elasticity counters land in ``self.last_socket_stats``.
        """
        from repro.experiments import worker as worker_mod

        addresses = parse_hosts(self._hosts)
        auth_key = worker_mod.resolve_auth_key(self.auth_token)
        hb_interval = self.heartbeat_interval
        if hb_interval is None:
            hb_interval = config.env_float(
                worker_mod.HEARTBEAT_INTERVAL_ENV, positive=True
            )
            if hb_interval is None:
                hb_interval = worker_mod.DEFAULT_HEARTBEAT_INTERVAL
        hb_timeout = self.heartbeat_timeout
        if hb_timeout is None:
            hb_timeout = config.env_float(
                worker_mod.HEARTBEAT_TIMEOUT_ENV, positive=True
            )
            if hb_timeout is None:
                hb_timeout = worker_mod.DEFAULT_HEARTBEAT_TIMEOUT
        keys = {ci: _next_spec_key(ci) for ci in {t.cell for t in tasks}}
        task_queue: "queue_module.Queue[_Task]" = queue_module.Queue()
        for task in tasks:
            task_queue.put(task)
        results: "queue_module.Queue[tuple]" = queue_module.Queue()
        done_event = threading.Event()

        # Shared elasticity state, all under one lock: completed task
        # keys (speculation dedup), in-flight chunks with start times
        # (straggler detection), idle feeders (speculation targets),
        # observed durations (the adaptive deadline), and counters.
        lock = threading.Lock()
        done_keys: set = set()
        inflight: Dict[tuple, Tuple[float, _Task]] = {}
        idle: set = set()
        durations: List[float] = []
        stats = {
            "speculated": 0,
            "reconnects": 0,
            "heartbeat_timeouts": 0,
            "retired": [],
        }

        class _Abandoned(Exception):
            """The sweep finished while this feeder awaited a reply."""

        def await_reply(conn) -> tuple:
            """Read the chunk reply, probing liveness while waiting.

            Skips stray ``pong`` frames (a probe can race the result),
            raises ``OSError`` after ``hb_timeout`` of total silence,
            and :class:`_Abandoned` when the sweep completed under us.
            """
            now = time.monotonic()
            last_heard = now
            last_ping = now
            while True:
                if done_event.is_set():
                    raise _Abandoned()
                readable = worker_mod.wait_readable(
                    conn, min(worker_mod.IO_POLL_TIMEOUT, hb_interval / 2)
                )
                now = time.monotonic()
                if readable:
                    reply = worker_mod.recv_message(conn, auth_key)
                    if reply is None:
                        raise OSError("connection closed by worker")
                    last_heard = now
                    if reply[0] == "pong":
                        continue
                    return reply
                if now - last_heard > hb_timeout:
                    with lock:
                        stats["heartbeat_timeouts"] += 1
                    raise OSError(
                        f"worker silent for {now - last_heard:.1f}s "
                        f"(heartbeat timeout {hb_timeout:.1f}s): "
                        "no pong, no result"
                    )
                if now - last_ping >= hb_interval:
                    worker_mod.send_message(conn, ("ping",), auth_key)
                    last_ping = now

        def drive(address: Tuple[str, int]) -> None:
            conn = None
            failures = 0
            sent: set = set()

            def reconnect() -> bool:
                """(Re)establish the authenticated connection.

                Returns ``False`` when the worker must be retired: the
                retry budget ran out, the handshake was rejected
                (permanent), or the sweep finished while backing off.
                """
                nonlocal conn, sent
                if conn is not None:
                    conn.close()
                conn = None
                sent = set()  # new connection: worker may have restarted
                try:
                    conn = worker_mod.connect_with_retry(
                        address,
                        key=auth_key,
                        budget=self.connect_retry,
                        cancelled=done_event.is_set,
                    )
                except Exception as exc:
                    results.put(("worker-dead", address, exc))
                    return False
                return conn is not None  # None: cancelled mid-backoff

            if not reconnect():
                return
            try:
                while not done_event.is_set():
                    try:
                        task = task_queue.get(timeout=0.05)
                    except queue_module.Empty:
                        with lock:
                            idle.add(address)
                        continue
                    key = (task.cell, task.index)
                    with lock:
                        idle.discard(address)
                        if key in done_keys:
                            continue  # speculation duplicate, resolved
                        inflight[key] = (time.monotonic(), task)
                    try:
                        # intern_specs=False is the benchmark baseline:
                        # re-ship the spec with every chunk instead of
                        # once per connection.
                        if not self.intern_specs or task.cell not in sent:
                            worker_mod.send_message(
                                conn,
                                ("spec", keys[task.cell],
                                 cells[task.cell].spec),
                                auth_key,
                            )
                            sent.add(task.cell)
                        worker_mod.send_message(
                            conn,
                            ("chunk", keys[task.cell],
                             cells[task.cell].kind, task.m, task.seeds),
                            auth_key,
                        )
                        start = time.monotonic()
                        reply = await_reply(conn)
                    except _Abandoned:
                        with lock:
                            inflight.pop(key, None)
                        task_queue.put(task)
                        return
                    except Exception as exc:
                        # Not only transport errors (OSError/EOFError):
                        # a corrupted or unverifiable reply must also
                        # requeue the chunk, never die silently and
                        # hang the sweep. Requeue before reporting, so
                        # a surviving worker can pick the chunk up.
                        with lock:
                            inflight.pop(key, None)
                        task_queue.put(task)
                        failures += 1
                        if failures >= _MAX_WORKER_FAILURES:
                            results.put(("worker-dead", address, exc))
                            return
                        results.put(("worker-retry", address, exc))
                        if not reconnect():
                            return
                        continue
                    with lock:
                        inflight.pop(key, None)
                    failures = 0  # a completed exchange resets the strike
                    if reply[0] == "ok":
                        results.put(
                            ("ok", task, reply[1],
                             time.monotonic() - start)
                        )
                    else:
                        results.put(("task-error", task, reply[1]))
                try:
                    worker_mod.send_message(conn, ("close",), auth_key)
                except OSError:
                    pass
            finally:
                with lock:
                    idle.discard(address)
                if conn is not None:
                    conn.close()

        def speculation_deadline() -> Optional[float]:
            if self.speculate is not None:
                return self.speculate if self.speculate > 0 else None
            if len(durations) < 3:
                return None  # not enough evidence for a deadline yet
            ordered = sorted(durations)
            q75 = ordered[(3 * (len(ordered) - 1)) // 4]
            return max(q75 * _SPECULATE_FACTOR, _SPECULATE_MIN_SECONDS)

        speculated: set = set()

        def maybe_speculate() -> None:
            deadline = speculation_deadline()
            if deadline is None:
                return
            now = time.monotonic()
            with lock:
                if not idle:
                    return  # nobody free: re-dispatch would just queue
                for key, (start, task) in list(inflight.items()):
                    if key in speculated or key in done_keys:
                        continue
                    if now - start > deadline:
                        speculated.add(key)
                        stats["speculated"] += 1
                        task_queue.put(task)

        threads = [
            threading.Thread(target=drive, args=(addr,), daemon=True)
            for addr in addresses
        ]
        for thread in threads:
            thread.start()
        completed = 0
        failure_notes: List[str] = []
        try:
            while completed < len(tasks):
                maybe_speculate()
                try:
                    message = results.get(timeout=0.25)
                except queue_module.Empty:
                    if not any(t.is_alive() for t in threads):
                        raise RuntimeError(
                            "all socket workers exited with "
                            f"{len(tasks) - completed} chunks unfinished"
                            + (f" (failures: {failure_notes})"
                               if failure_notes else "")
                        )
                    continue
                if message[0] == "ok":
                    _, task, outcome, duration = message
                    key = (task.cell, task.index)
                    with lock:
                        if key in done_keys:
                            continue  # the speculation loser
                        done_keys.add(key)
                        durations.append(duration)
                    emit(task, outcome)
                    completed += 1
                elif message[0] == "task-error":
                    raise RuntimeError(
                        f"socket worker failed a chunk:\n{message[2]}"
                    )
                elif message[0] == "worker-retry":
                    _, address, exc = message
                    stats["reconnects"] += 1
                    failure_notes.append(
                        f"{address[0]}:{address[1]} (retried): {exc}"
                    )
                else:  # worker-dead
                    _, address, exc = message
                    stats["retired"].append(f"{address[0]}:{address[1]}")
                    failure_notes.append(
                        f"{address[0]}:{address[1]}: {exc}"
                    )
                    if len(stats["retired"]) == len(addresses):
                        raise RuntimeError(
                            "every socket worker failed: "
                            + "; ".join(failure_notes)
                        )
        finally:
            done_event.set()
            for thread in threads:
                thread.join(timeout=5.0)
            # Fold in elasticity events that raced the sweep's finish
            # (e.g. a worker declared dead just as the survivor
            # completed its requeued chunk) so the counters reflect
            # everything that happened, not just what the loop drained.
            while True:
                try:
                    message = results.get_nowait()
                except queue_module.Empty:
                    break
                if message[0] == "worker-retry":
                    stats["reconnects"] += 1
                elif message[0] == "worker-dead":
                    _, address, _ = message
                    stats["retired"].append(f"{address[0]}:{address[1]}")
            self.last_socket_stats = stats


__all__ = [
    "BACKENDS",
    "BACKEND_ENV",
    "HOSTS_ENV",
    "SPECULATE_ENV",
    "DESIGNS",
    "SweepPlan",
    "SweepExecutor",
    "resolve_backend",
    "parse_hosts",
]
