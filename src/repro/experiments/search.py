"""Threshold search: where does the success probability cross a level?

Figures 2-5 report per-run required query counts via the incremental
procedure. A complementary view — used for large instances and for
algorithms without an incremental form (AMP, two-stage) — is the
*success-probability threshold*: the smallest ``m`` at which
``P(exact recovery) >= level``. This module estimates it with an
exponential bracket followed by bisection, evaluating the success rate
on fresh independent instances at every probe.

Each memoized probe is a one-cell sweep plan on the execution engine
(:mod:`repro.experiments.scheduler`, via
:func:`~repro.experiments.runner.success_rate_curve`): ``workers`` and
``backend`` shard a probe's trials across the chosen backend with
bit-identical rates, so the search visits exactly the same ``m``
sequence for any backend and worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.noise import Channel
from repro.experiments.runner import success_rate_curve
from repro.utils.rng import RngLike, spawn_seeds
from repro.utils.validation import check_fraction, check_positive_int


@dataclass(frozen=True)
class ThresholdEstimate:
    """Result of a success-threshold search."""

    threshold_m: Optional[int]
    level: float
    probes: List[Dict[str, float]] = field(default_factory=list)

    @property
    def found(self) -> bool:
        return self.threshold_m is not None


def success_probability_threshold(
    n: int,
    k: int,
    channel: Channel,
    *,
    level: float = 0.5,
    trials: int = 20,
    seed: RngLike = 0,
    algorithm: str = "greedy",
    m_init: int = 8,
    m_cap: Optional[int] = None,
    tolerance: int = 4,
    gamma: Optional[int] = None,
    algorithm_kwargs: Optional[dict] = None,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
) -> ThresholdEstimate:
    """Estimate the smallest m with success rate >= ``level``.

    Doubles ``m`` from ``m_init`` until the level is reached (bracket),
    then bisects down to ``tolerance`` queries. Every probe draws fresh
    instances, so the estimate is a property of the ensemble, not of
    one fixed instance. Probed ``m`` values are memoized within one
    search: when the bracket and bisection phases land on the same
    ``m`` twice, the fresh ``success_rate_curve`` sweep is evaluated
    only once (and ``probes`` records each ``m`` once). Each probe is
    a one-cell plan on the sweep engine; ``workers`` / ``backend``
    shard its trials with bit-identical rates. Returns
    ``threshold_m = None`` if even ``m_cap`` (default ``512 * m_init``)
    does not reach the level.
    """
    check_fraction(level, "level")
    check_positive_int(trials, "trials")
    check_positive_int(m_init, "m_init")
    check_positive_int(tolerance, "tolerance")
    if m_cap is None:
        m_cap = 512 * m_init
    probes: List[Dict[str, float]] = []
    probed: Dict[int, float] = {}
    seeds = iter(spawn_seeds(seed, 64))

    def rate_at(m: int) -> float:
        if m in probed:
            return probed[m]
        curve = success_rate_curve(
            n,
            k,
            channel,
            [m],
            algorithm=algorithm,
            trials=trials,
            seed=next(seeds),
            gamma=gamma,
            algorithm_kwargs=algorithm_kwargs,
            workers=workers,
            backend=backend,
        )
        rate = curve.success_rates[0]
        probed[m] = rate
        probes.append({"m": m, "success_rate": rate})
        return rate

    # Bracket phase: exponential doubling.
    lo, hi = 0, m_init
    while rate_at(hi) < level:
        lo = hi
        hi *= 2
        if hi > m_cap:
            return ThresholdEstimate(threshold_m=None, level=level, probes=probes)

    # Bisection phase.
    while hi - lo > tolerance:
        mid = (lo + hi) // 2
        if rate_at(mid) >= level:
            hi = mid
        else:
            lo = mid
    return ThresholdEstimate(threshold_m=hi, level=level, probes=probes)


def compare_algorithm_thresholds(
    n: int,
    k: int,
    channel: Channel,
    algorithms: "list[str]",
    *,
    level: float = 0.5,
    trials: int = 20,
    seed: RngLike = 0,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
) -> Dict[str, ThresholdEstimate]:
    """Estimate and juxtapose thresholds for several algorithms."""
    out: Dict[str, ThresholdEstimate] = {}
    for algorithm, algo_seed in zip(algorithms, spawn_seeds(seed, len(algorithms))):
        out[algorithm] = success_probability_threshold(
            n,
            k,
            channel,
            level=level,
            trials=trials,
            seed=algo_seed,
            algorithm=algorithm,
            workers=workers,
            backend=backend,
        )
    return out


__all__ = [
    "ThresholdEstimate",
    "success_probability_threshold",
    "compare_algorithm_thresholds",
]
