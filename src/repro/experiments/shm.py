"""Sweep-scoped shared-memory dispatch arena for the process backend.

The process backend's steady-state chunk dispatch still pickles each
chunk's payload through the pool pipe: the cell key, the kind/m tag
and — dominating the message — the chunk's tuple of
``numpy.random.SeedSequence`` objects (~150 bytes each, tens to
hundreds per chunk). Spec interning (PR 5) removed the per-cell
invariant from the steady state, but the per-chunk seed payload still
scales with the chunk size.

This module moves the whole variable payload out of the pipe. At sweep
start the driver writes every cell's pickled spec and every task's
pickled seed tuple into **one** ``multiprocessing.shared_memory``
segment (:class:`SweepArena`); each chunk submission then ships only

    (arena name, spec (offset, length), seeds (offset, length), kind, m)

— a near-constant ~150 bytes per chunk regardless of spec size or
chunk width (measured in the ``shm_dispatch_bytes`` benchmark case).
Workers attach the segment once (cached across chunks), slice the
referenced bytes, and unpickle — the same objects the pipe would have
delivered, so results are bit-identical by construction.

Eligible AMP chunks go one step further: the driver samples and
stacks their **graph buffers** once per sweep — block-diagonal CSR
triples for fixed-m cells, fully grown measurement-stream arrays for
required-m cells — and publishes the raw arrays into the same arena
(:func:`shm_graph_chunk` / :func:`read_array`). Workers attach
zero-copy read-only views and decode directly on them: no worker ever
resamples a graph or re-stacks a CSR, and the chunk submission ships
only ``(ref, dtype, shape)`` descriptors. Ownership rule: the driver
publishes, workers attach strictly read-only, and the driver unlinks
in its ``finally`` — exactly the lifecycle below.

Lifecycle
---------
The arena lives exactly as long as one ``SweepExecutor`` run: the
driver creates it, submits the sweep, and unlinks it in a ``finally``
block. Two guards keep segments from leaking:

* every created arena registers in a module-level table that an
  ``atexit`` hook disposes — a driver crash (or an unhandled sweep
  error) still unlinks its segments on interpreter exit;
* workers attach with the resource tracker disarmed (see
  :func:`_attach`): the tracker otherwise assumes attach-implies-own
  and unlinks the segment when the *first* worker exits, corrupting
  the sweep for everyone else (cpython#82300; Python 3.13 grew
  ``track=False`` for exactly this).

Select the arena per call (``shm=``, on :class:`~repro.experiments.
scheduler.SweepPlan` ``.run`` / :class:`~repro.experiments.scheduler.
SweepExecutor`) or via the ``REPRO_SHM`` environment variable. Only
the ``process`` backend consults it: the serial backend has no
dispatch to shrink, and socket workers live on other hosts where a
local shared-memory name means nothing.
"""

from __future__ import annotations

import atexit
import os
import pickle
from collections import OrderedDict
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils import config

#: environment variable consulted when ``shm`` is not given explicitly
SHM_ENV = "REPRO_SHM"

#: a blob's location inside an arena: ``(offset, length)``
BlobRef = Tuple[int, int]

#: worker-side attach cache size, in segments. A worker only ever
#: needs the arenas of concurrently running sweeps in its driver —
#: normally one — so a handful of slots suffices; eviction closes the
#: mapping (never unlinks), and a re-needed arena simply re-attaches.
_ATTACH_CACHE_LIMIT = 8

#: worker-side decoded-spec cache (see :func:`read_spec`)
_SPEC_CACHE_LIMIT = 1024


def resolve_shm(shm: Optional[bool] = None) -> bool:
    """Resolve an ``shm`` request: explicit flag, else ``REPRO_SHM``.

    The environment route accepts the standard switch spellings
    (``1/true/yes/on`` / ``0/false/no/off``, case-insensitive, via
    :func:`repro.utils.config.env_flag`); unset disables the arena and
    anything unrecognized raises rather than silently disabling.
    """
    if shm is not None:
        return bool(shm)
    return config.env_flag(SHM_ENV)


# -- driver side --------------------------------------------------------

#: arenas created by this process that are still linked; the atexit
#: hook disposes whatever a crashed/errored sweep left behind
_live_arenas: Dict[str, "SweepArena"] = {}


def _blob_view(blob) -> memoryview:
    """Flat byte view of a blob: ``bytes``, ``memoryview`` or ndarray.

    Arrays are viewed (not serialized) — the arena write is one
    memcpy of the raw buffer, and :func:`read_array` rebuilds the
    ndarray on the worker side without any copy at all.
    """
    if isinstance(blob, np.ndarray):
        return memoryview(np.ascontiguousarray(blob)).cast("B")
    return memoryview(blob).cast("B")


class SweepArena:
    """One sweep's dispatch payloads in a single shared-memory segment.

    Built from a list of blobs — ``bytes`` (pickled cell specs and
    seed tuples) or raw ``numpy`` arrays (driver-prepared graph
    buffers, written as one memcpy each); ``refs[i]`` is the
    ``(offset, length)`` of ``blobs[i]``, ready to ship in a chunk
    submission. ``align`` pads blob offsets up to the given boundary
    (the default 1 packs blobs back to back; array-carrying arenas use
    64 so every attached view is cache-line aligned). The arena is
    driver-owned: :meth:`dispose` (or the atexit guard) closes the
    local mapping and unlinks the segment name; workers only ever
    attach and close.
    """

    def __init__(self, blobs: Sequence[object], *, align: int = 1):
        views = [_blob_view(blob) for blob in blobs]
        offsets: List[int] = []
        offset = 0
        for view in views:
            offset = -(-offset // align) * align
            offsets.append(offset)
            offset += len(view)
        total = offset
        # Zero-size segments are invalid; an empty plan still gets a
        # (one-byte) arena so the dispatch path stays uniform.
        self._shm = shared_memory.SharedMemory(create=True, size=max(1, total))
        self.name = self._shm.name
        self.size = total
        self.refs: List[BlobRef] = []
        for view, offset in zip(views, offsets):
            self._shm.buf[offset : offset + len(view)] = view
            self.refs.append((offset, len(view)))
        _live_arenas[self.name] = self

    @classmethod
    def from_payloads(cls, payloads: Sequence[object]) -> "SweepArena":
        """Pickle ``payloads`` and lay them out in one new arena."""
        return cls(
            [pickle.dumps(p, pickle.HIGHEST_PROTOCOL) for p in payloads]
        )

    def dispose(self) -> None:
        """Close the driver's mapping and unlink the segment name.

        Idempotent: the atexit guard may run after a normal disposal.
        Workers that are still attached keep their mappings alive until
        they close them (POSIX unlink semantics); no new attaches can
        happen afterwards.
        """
        if _live_arenas.pop(self.name, None) is None:
            return
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - external unlink
            pass

    def __enter__(self) -> "SweepArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.dispose()


def _dispose_leaked_arenas() -> None:  # pragma: no cover - exit hook
    for arena in list(_live_arenas.values()):
        arena.dispose()


atexit.register(_dispose_leaked_arenas)


# -- worker side --------------------------------------------------------

_attached: "OrderedDict[str, shared_memory.SharedMemory]" = OrderedDict()


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach (or return the cached mapping of) the named segment.

    The resource tracker must not adopt the segment: on Python < 3.13
    every attach registers it for unlink-on-process-exit, so the first
    pool worker to retire would destroy the arena under the rest of
    the sweep. ``track=False`` (3.13+) skips the registration; older
    interpreters get ``register`` suppressed around the attach — not
    ``unregister`` after it, because pool processes share the driver's
    tracker daemon, so a worker-side unregister would strip the
    *driver's* registration (breaking its crash cleanup and making the
    final unlink warn). The driver remains the sole owner of the
    unlink.
    """
    cached = _attached.get(name)
    if cached is not None:
        _attached.move_to_end(name)
        return cached
    try:
        shm = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
    _attached[name] = shm
    _attached.move_to_end(name)
    while len(_attached) > _ATTACH_CACHE_LIMIT:
        _, old = _attached.popitem(last=False)
        old.close()
    return shm


def read_blob(name: str, ref: BlobRef) -> bytes:
    """Copy the referenced bytes out of the named arena."""
    offset, length = ref
    return bytes(_attach(name).buf[offset : offset + length])


#: decoded cell specs, keyed by ``(arena, offset, length)`` — a spec is
#: read by every chunk of its cell, so decode it once per worker
_worker_specs: "OrderedDict[Tuple[str, int, int], Dict[str, object]]" = (
    OrderedDict()
)


def read_spec(name: str, ref: BlobRef) -> Dict[str, object]:
    """Unpickle (with per-worker caching) a cell spec from an arena."""
    key = (name, ref[0], ref[1])
    spec = _worker_specs.get(key)
    if spec is not None:
        _worker_specs.move_to_end(key)
        return spec
    spec = pickle.loads(read_blob(name, ref))
    _worker_specs[key] = spec
    while len(_worker_specs) > _SPEC_CACHE_LIMIT:
        _worker_specs.popitem(last=False)
    return spec


def read_array(
    name: str, ref: BlobRef, dtype: str, shape: Tuple[int, ...]
) -> np.ndarray:
    """Zero-copy read-only ndarray view of an arena blob.

    The returned array aliases the shared segment directly
    (``np.frombuffer`` on the attached mapping — no bytes are copied)
    and is marked non-writable: workers attach graph buffers strictly
    read-only; the driver is the only writer and the only unlinker.
    """
    offset, length = ref
    dt = np.dtype(dtype)
    arr = np.frombuffer(
        _attach(name).buf, dtype=dt, count=length // dt.itemsize,
        offset=offset,
    )
    arr.flags.writeable = False
    return arr.reshape(shape)


def shm_chunk(name: str, spec_ref: BlobRef, seeds_ref: BlobRef, kind: str, m):
    """Pool-worker entry point: resolve arena refs, run the chunk.

    The counterpart of :func:`repro.experiments.scheduler.
    _process_chunk` with both payload halves read from the arena
    instead of the pipe; the chunk execution itself is the shared
    :func:`~repro.experiments.scheduler._run_chunk`.
    """
    from repro.experiments.scheduler import _run_chunk

    spec = read_spec(name, spec_ref)
    seeds = pickle.loads(read_blob(name, seeds_ref))
    return _run_chunk(spec, kind, m, seeds)


def shm_graph_chunk(
    name: str,
    spec_ref: BlobRef,
    prep: Dict[str, Tuple[BlobRef, str, Tuple[int, ...]]],
    kind: str,
    m,
):
    """Pool-worker entry point for driver-prepared AMP chunks.

    ``prep`` maps array names to ``(ref, dtype, shape)`` descriptors
    of graph buffers the driver published once per sweep (stacked CSR
    triples for fixed-m cells, fully grown measurement-stream arrays
    for required-m cells). Every array attaches as a zero-copy
    read-only view of the arena — the worker never resamples graphs,
    never re-stacks CSR blocks, and the submission carried only refs.
    """
    from repro.experiments import parallel
    from repro.experiments.scheduler import CELL_CURVE, CELL_REQUIRED

    spec = read_spec(name, spec_ref)
    arrays = {
        key: read_array(name, ref, dtype, shape)
        for key, (ref, dtype, shape) in prep.items()
    }
    if kind == CELL_CURVE:
        return parallel._fixed_m_prepared_chunk(spec, int(m), arrays)
    if kind == CELL_REQUIRED:
        return parallel._required_prepared_chunk(spec, arrays)
    raise ValueError(f"unknown cell kind {kind!r}")


__all__ = [
    "SHM_ENV",
    "SweepArena",
    "resolve_shm",
    "read_blob",
    "read_spec",
    "read_array",
    "shm_chunk",
    "shm_graph_chunk",
]
