"""Summary statistics for experiment outputs (including boxplot stats).

Figure 5 of the paper shows boxplots of the required number of queries;
:class:`BoxplotStats` reproduces the standard Tukey boxplot quantities
(median, quartiles, 1.5-IQR whiskers, outliers) from raw trial data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np


@dataclass(frozen=True)
class BoxplotStats:
    """Tukey boxplot summary of a sample."""

    count: int
    mean: float
    median: float
    q1: float
    q3: float
    whisker_low: float
    whisker_high: float
    outliers: List[float] = field(default_factory=list)

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "median": self.median,
            "q1": self.q1,
            "q3": self.q3,
            "whisker_low": self.whisker_low,
            "whisker_high": self.whisker_high,
            "outliers": list(self.outliers),
        }


def boxplot_stats(values: Sequence[float]) -> BoxplotStats:
    """Compute Tukey boxplot statistics (1.5 IQR whisker convention)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    q1, median, q3 = np.percentile(arr, [25, 50, 75])
    iqr = q3 - q1
    low_fence = q1 - 1.5 * iqr
    high_fence = q3 + 1.5 * iqr
    in_fence = arr[(arr >= low_fence) & (arr <= high_fence)]
    whisker_low = float(in_fence.min()) if in_fence.size else float(q1)
    whisker_high = float(in_fence.max()) if in_fence.size else float(q3)
    # Interpolated quartiles may fall between data points; clamp the
    # whiskers so that whisker_low <= q1 <= q3 <= whisker_high always
    # holds (the convention used by standard plotting libraries).
    whisker_low = min(whisker_low, float(q1))
    whisker_high = max(whisker_high, float(q3))
    outliers = sorted(float(v) for v in arr[(arr < low_fence) | (arr > high_fence)])
    return BoxplotStats(
        count=int(arr.size),
        mean=float(arr.mean()),
        median=float(median),
        q1=float(q1),
        q3=float(q3),
        whisker_low=whisker_low,
        whisker_high=whisker_high,
        outliers=outliers,
    )


def binomial_confidence(successes: int, trials: int, z: float = 1.96) -> "tuple[float, float]":
    """Wilson score interval for a success probability."""
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes must lie in [0, {trials}], got {successes}")
    phat = successes / trials
    denom = 1 + z * z / trials
    center = (phat + z * z / (2 * trials)) / denom
    half = (
        z
        * np.sqrt(phat * (1 - phat) / trials + z * z / (4 * trials * trials))
        / denom
    )
    low = 0.0 if successes == 0 else max(0.0, float(center - half))
    high = 1.0 if successes == trials else min(1.0, float(center + half))
    return low, high


def geometric_space(start: float, stop: float, count: int) -> List[int]:
    """Integer log-spaced grid (deduplicated), e.g. for the n-axes."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if start <= 0 or stop < start:
        raise ValueError(f"need 0 < start <= stop, got {start}, {stop}")
    raw = np.geomspace(start, stop, count)
    out: List[int] = []
    for v in raw:
        i = int(round(v))
        if not out or i > out[-1]:
            out.append(i)
    return out


__all__ = [
    "BoxplotStats",
    "boxplot_stats",
    "binomial_confidence",
    "geometric_space",
]
