"""Persistence of experiment results (JSON + CSV, stdlib only).

Figure entry points return plain dataclasses; this module serializes
them so that benchmark runs can leave their data behind for
EXPERIMENTS.md and for external plotting.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

PathLike = Union[str, Path]


def _to_jsonable(obj: Any) -> Any:
    """Recursively convert dataclasses / numpy scalars to JSON types."""
    import numpy as np

    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {k: _to_jsonable(v) for k, v in dataclasses.asdict(obj).items()}
    if isinstance(obj, dict):
        return {str(k): _to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_to_jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return [_to_jsonable(v) for v in obj.tolist()]
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    return obj


def save_json(path: PathLike, obj: Any) -> Path:
    """Serialize ``obj`` (dataclass-aware) to pretty-printed JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        json.dump(_to_jsonable(obj), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_json(path: PathLike) -> Any:
    """Load JSON written by :func:`save_json`."""
    with Path(path).open("r", encoding="utf-8") as fh:
        return json.load(fh)


def save_json_atomic(path: PathLike, obj: Any) -> Path:
    """Crash-safe :func:`save_json`: write to a sibling temp file, then
    ``os.replace`` into place.

    A reader (or a resumed driver) therefore sees either the previous
    complete file or the new complete file, never a torn write — the
    durability primitive of the sweep checkpoint layer. The temp file
    lives in the same directory so the rename stays within one
    filesystem (atomic on POSIX and Windows).
    """
    import os
    import tempfile

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(_to_jsonable(obj), fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def save_csv(
    path: PathLike, rows: Sequence[Dict[str, Any]], *, fieldnames: List[str] = None
) -> Path:
    """Write a list of dict rows as CSV (fields inferred if omitted)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    rows = list(rows)
    if not rows:
        raise ValueError("cannot write an empty CSV")
    if fieldnames is None:
        fieldnames = list(rows[0].keys())
    with path.open("w", encoding="utf-8", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fieldnames)
        writer.writeheader()
        for row in rows:
            writer.writerow({k: _to_jsonable(v) for k, v in row.items()})
    return path


def load_csv(path: PathLike) -> List[Dict[str, str]]:
    """Read a CSV written by :func:`save_csv` (values come back as str)."""
    with Path(path).open("r", encoding="utf-8", newline="") as fh:
        return list(csv.DictReader(fh))


def load_required_queries_sample(source):
    """Rehydrate a stored required-m sweep sample (JSON path or dict).

    Inverse of :func:`save_json` on a
    :class:`~repro.experiments.runner.RequiredQueriesSample`. Samples
    written before the ``algorithm`` field existed (greedy-only
    pipeline) load as ``algorithm="greedy"``, so old sweep artifacts
    stay distinguishable from AMP required-m samples without a schema
    migration.
    """
    from repro.experiments.runner import RequiredQueriesSample

    data = source if isinstance(source, dict) else load_json(source)
    return RequiredQueriesSample(
        n=int(data["n"]),
        k=int(data["k"]),
        channel=data["channel"],
        values=[int(v) for v in data["values"]],
        failures=int(data["failures"]),
        algorithm=str(data.get("algorithm", "greedy")),
    )


__all__ = [
    "save_json",
    "load_json",
    "save_json_atomic",
    "save_csv",
    "load_csv",
    "load_required_queries_sample",
]
