"""ASCII rendering of experiment outputs.

The benchmark harness prints the same rows/series the paper plots; this
module owns the (deliberately dependency-free) table formatting.
"""

from __future__ import annotations

from typing import Any, List, Sequence


def format_cell(value: Any) -> str:
    """Human formatting: floats get 4 significant digits."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 10_000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render an aligned ASCII table with a header rule."""
    headers = [str(h) for h in headers]
    str_rows = [[format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_kv(title: str, pairs: Sequence[Sequence[Any]]) -> str:
    """Render a titled key/value block."""
    lines = [title, "-" * len(title)]
    width = max((len(str(k)) for k, _ in pairs), default=0)
    for key, value in pairs:
        lines.append(f"{str(key).ljust(width)}  {format_cell(value)}")
    return "\n".join(lines)


__all__ = ["format_cell", "render_table", "render_kv"]
