"""TCP chunk workers for the sweep engine's ``socket`` backend.

A worker is a plain process that listens on a TCP port, accepts
connections from a :class:`~repro.experiments.scheduler.SweepExecutor`,
and runs ``(cell, chunk)`` work items with the exact same chunk
functions the in-process backends use — so its outputs are
bit-identical to serial execution by construction (every chunk is a
pure function of its pre-spawned child seeds).

Start workers — **one per core** on multi-core hosts, since a worker
serves one chunk at a time per connection (chunk pipelining is a
ROADMAP open item)::

    python -m repro worker serve --host 0.0.0.0 --port 7920
    python -m repro worker serve --host 0.0.0.0 --port 7921  # core 2

then point any sweep at them::

    REPRO_HOSTS=hosta:7920,hosta:7921 python -m repro fig3 --backend socket

Wire protocol
-------------
Length-prefixed pickle frames (8-byte big-endian length + payload),
synchronous per connection:

``("spec", key, spec)``
    Intern a cell's invariant payload (channel, kwargs, budgets) under
    ``key``. Sent once per cell per connection — per-worker payload
    interning: subsequent chunk frames ship only seeds + indices. No
    reply.
``("chunk", key, kind, m, seeds)``
    Run one chunk against the interned spec. Replies ``("ok", result)``
    or ``("err", traceback_string)``.
``("close",)``
    End the conversation; the worker keeps serving new connections.

**Trust model:** frames are pickles, which execute code when loaded.
Run workers only on trusted networks for trusted drivers, with every
host on the same library version — the same assumption every
pickle-based cluster scheduler makes.
"""

from __future__ import annotations

import multiprocessing
import pickle
import socket
import struct
import threading
import traceback
from typing import Callable, List, Optional, Tuple

#: default worker port (any free port works; tests use ephemeral ports)
DEFAULT_PORT = 7920

#: frame header: 8-byte big-endian payload length
_HEADER = struct.Struct(">Q")

#: connect timeout for executor-side connections (seconds)
CONNECT_TIMEOUT = 10.0

#: readiness-poll interval on executor-side connections (seconds). An
#: elapsed poll does NOT mean the worker died — a chunk may
#: legitimately compute for many minutes at paper scale — it merely
#: lets the driver thread check for shutdown and re-enter the wait,
#: so it doubles as the abandon-latency bound when a sweep fails.
#: Polling happens with :func:`wait_readable` *before* any frame read
#: (never with a mid-frame socket timeout, which would drop partially
#: received bytes and desynchronize the protocol); actual dead-peer
#: detection is TCP keepalive (tuned in :func:`connect`): a host that
#: vanished without closing the connection is reset by the kernel —
#: within ~2 minutes where the keepalive knobs exist (Linux, macOS;
#: elsewhere the OS default interval applies) — which surfaces as a
#: hard ``OSError`` and triggers the executor's chunk requeue.
IO_POLL_TIMEOUT = 1.0


# -- framing ------------------------------------------------------------


def send_message(conn: socket.socket, obj) -> None:
    """Send one length-prefixed pickle frame."""
    payload = pickle.dumps(obj, pickle.HIGHEST_PROTOCOL)
    conn.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exact(conn: socket.socket, count: int) -> Optional[bytes]:
    chunks = []
    while count:
        part = conn.recv(min(count, 1 << 20))
        if not part:
            return None
        chunks.append(part)
        count -= len(part)
    return b"".join(chunks)


def wait_readable(conn: socket.socket, timeout: float) -> bool:
    """Wait up to ``timeout`` seconds for ``conn`` to become readable.

    The executor's poll primitive: returns ``False`` when the wait
    merely elapsed (worker still computing — re-enter after checking
    for shutdown) and ``True`` when bytes, EOF, or a connection reset
    are pending (all of which the following blocking
    :func:`recv_message` resolves). Keeping the poll *outside* the
    frame read means a slow link can never lose partially received
    frame bytes to a timeout.
    """
    import select

    return bool(select.select([conn], [], [], timeout)[0])


def recv_message(conn: socket.socket):
    """Receive one frame; ``None`` on clean EOF at a frame boundary."""
    header = _recv_exact(conn, _HEADER.size)
    if header is None:
        return None
    payload = _recv_exact(conn, _HEADER.unpack(header)[0])
    if payload is None:
        raise EOFError("connection closed mid-frame")
    return pickle.loads(payload)


def connect(address: Tuple[str, int]) -> socket.socket:
    """Open an executor-side connection to a worker.

    Receives poll at :data:`IO_POLL_TIMEOUT` (a timeout means "worker
    still computing", never "worker dead"), while TCP keepalive turns
    a host that vanished without closing the connection — power loss,
    network partition with no RST — into a hard ``OSError``, which the
    executor answers by requeueing the in-flight chunk onto the
    surviving workers. Where the platform exposes the tuning knobs
    (Linux, macOS) a dead peer is declared within about two minutes;
    platforms without them (e.g. Windows) fall back to the OS default
    keepalive interval.
    """
    conn = socket.create_connection(address, timeout=CONNECT_TIMEOUT)
    # Blocking I/O: frame reads must never time out mid-frame (partial
    # bytes would be lost and the stream desynchronized). The executor
    # polls with wait_readable() before reading, and keepalive below
    # turns a dead peer into a hard error even mid-read.
    conn.settimeout(None)
    conn.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
    # Aggressive keepalive where the platform exposes the knobs:
    # first probe after 60 s idle (TCP_KEEPIDLE on Linux, spelled
    # TCP_KEEPALIVE on macOS), then every 15 s, declare the peer dead
    # after 4 missed probes.
    for option, value in (
        ("TCP_KEEPIDLE", 60),
        ("TCP_KEEPALIVE", 60),
        ("TCP_KEEPINTVL", 15),
        ("TCP_KEEPCNT", 4),
    ):
        if hasattr(socket, option):
            conn.setsockopt(
                socket.IPPROTO_TCP, getattr(socket, option), value
            )
    return conn


# -- server -------------------------------------------------------------


def _serve_connection(conn: socket.socket) -> None:
    """Serve one executor connection until it closes.

    Frames arrive in order, so a chunk frame can rely on its cell's
    spec frame having been interned first.
    """
    from repro.experiments.scheduler import _run_chunk

    specs = {}
    try:
        while True:
            message = recv_message(conn)
            if message is None or message[0] == "close":
                return
            if message[0] == "spec":
                specs[message[1]] = message[2]
            elif message[0] == "chunk":
                _, key, kind, m, seeds = message
                try:
                    if key not in specs:
                        raise KeyError(
                            f"chunk for uninterned cell spec {key!r}"
                        )
                    send_message(
                        conn, ("ok", _run_chunk(specs[key], kind, m, seeds))
                    )
                except Exception:
                    send_message(conn, ("err", traceback.format_exc()))
            else:
                send_message(
                    conn, ("err", f"unknown message kind {message[0]!r}")
                )
    except (OSError, EOFError):
        return  # executor went away; nothing to clean up
    finally:
        conn.close()


def serve_worker(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    *,
    ready: Optional[Callable[[int], None]] = None,
) -> None:
    """Serve chunk requests forever (the ``repro worker serve`` loop).

    ``port=0`` binds an ephemeral port; ``ready`` is called once with
    the actual port before the accept loop starts (used by
    :func:`start_local_workers` and the CLI banner). Each connection is
    served on its own thread, so several executors (or a reconnecting
    one) can share a worker.
    """
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    try:
        listener.bind((host, port))
        listener.listen()
        if ready is not None:
            ready(listener.getsockname()[1])
        while True:
            conn, _ = listener.accept()
            threading.Thread(
                target=_serve_connection, args=(conn,), daemon=True
            ).start()
    finally:
        listener.close()


def _local_worker_main(port_queue) -> None:
    """Spawn-process entry point for localhost test/CI workers."""
    serve_worker("127.0.0.1", 0, ready=port_queue.put)


def start_local_workers(
    count: int,
) -> Tuple[List[str], Callable[[], None]]:
    """Spawn ``count`` localhost workers on ephemeral ports.

    Returns ``(hosts, shutdown)``: ``hosts`` is a list of
    ``"127.0.0.1:port"`` strings ready for
    ``SweepExecutor(backend="socket", hosts=hosts)``; call
    ``shutdown()`` to terminate the workers. Used by the localhost
    round-trip tests and the CI socket smoke job — and handy for
    checking a multi-host setup before pointing it at real machines.
    """
    import queue as queue_module
    import time

    context = multiprocessing.get_context("spawn")
    port_queue = context.Queue()
    processes = [
        context.Process(target=_local_worker_main, args=(port_queue,),
                        daemon=True)
        for _ in range(count)
    ]
    for process in processes:
        process.start()
    hosts = []
    try:
        deadline = time.monotonic() + 60.0
        while len(hosts) < count:
            # Short poll so a worker that dies during startup (e.g. a
            # spawn re-import failure) fails fast with its exit code
            # instead of a bare queue timeout a minute later.
            try:
                hosts.append(f"127.0.0.1:{port_queue.get(timeout=0.2)}")
                continue
            except queue_module.Empty:
                pass
            dead = [p for p in processes if not p.is_alive()]
            if dead:
                # A dead worker can never serve chunks, whether or not
                # it got as far as reporting a port.
                raise RuntimeError(
                    "local socket worker died during startup "
                    f"(exit codes: {[p.exitcode for p in dead]}); "
                    "note the spawn start method re-imports the driver's "
                    "main module, so drivers fed via stdin cannot spawn "
                    "workers — run them from a file or -c instead"
                )
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"local socket workers did not report ports "
                    f"({len(hosts)}/{count} ready after 60s)"
                )
    except Exception:
        for process in processes:
            process.terminate()
        raise

    def shutdown() -> None:
        for process in processes:
            process.terminate()
        for process in processes:
            process.join(timeout=10)

    return hosts, shutdown


__all__ = [
    "DEFAULT_PORT",
    "CONNECT_TIMEOUT",
    "IO_POLL_TIMEOUT",
    "wait_readable",
    "send_message",
    "recv_message",
    "connect",
    "serve_worker",
    "start_local_workers",
]
