"""TCP chunk workers for the sweep engine's ``socket`` backend.

A worker is a plain process that listens on a TCP port, accepts
connections from a :class:`~repro.experiments.scheduler.SweepExecutor`,
and runs ``(cell, chunk)`` work items with the exact same chunk
functions the in-process backends use — so its outputs are
bit-identical to serial execution by construction (every chunk is a
pure function of its pre-spawned child seeds).

Start workers — **one per core** on multi-core hosts, since a worker
serves one chunk at a time per connection (chunk pipelining is a
ROADMAP open item)::

    python -m repro worker serve --host 0.0.0.0 --port 7920
    python -m repro worker serve --host 0.0.0.0 --port 7921  # core 2

then point any sweep at them::

    REPRO_HOSTS=hosta:7920,hosta:7921 python -m repro fig3 --backend socket

Wire protocol (version 1)
-------------------------
Authenticated length-prefixed pickle frames, synchronous per
connection::

    8-byte big-endian payload length | 32-byte HMAC-SHA256 tag | payload

The tag is computed over the payload with a key derived from the
``REPRO_AUTH_TOKEN`` environment variable (or an explicit token on the
executor / ``repro worker serve --auth-token``). With no token set on
either side, a fixed well-known key is used, which still detects frame
corruption but authenticates nothing — set a shared token on every
host for anything beyond localhost. **The tag is verified before the
payload is unpickled** and the length prefix is capped at
:func:`max_frame_bytes` **before the receive buffer is allocated**, so
a peer with the wrong token (or a corrupted/hostile frame) is rejected
without executing any pickle and without unbounded allocation.

Every conversation opens with a versioned handshake — the driver sends
``("hello", PROTOCOL_VERSION)`` and the worker answers ``("welcome",
PROTOCOL_VERSION)`` (or an authenticated ``("reject", reason)`` on a
version mismatch; an unauthenticated peer is simply disconnected).
After the handshake:

``("spec", key, spec)``
    Intern a cell's invariant payload (channel, kwargs, budgets) under
    ``key``. Sent once per cell per connection — per-worker payload
    interning: subsequent chunk frames ship only seeds + indices. No
    reply.
``("chunk", key, kind, m, seeds)``
    Run one chunk against the interned spec. Replies ``("ok", result)``
    or ``("err", traceback_string)``. While the chunk computes, the
    serving thread keeps reading frames so heartbeats are answered
    mid-chunk (below).
``("ping",)``
    Liveness probe; answered with ``("pong",)`` immediately, including
    **while a chunk is computing** — so the driver can tell a long
    chunk (keep waiting / speculate) from a wedged or vanished worker
    (requeue) without any chunk-duration assumptions.
``("close",)``
    End the conversation; the worker keeps serving new connections.

**Trust model:** frame *payloads* are pickles, which execute code when
loaded. The HMAC tag means only peers holding the shared token can get
a frame loaded at all, which closes the drive-by hole of an open
pickle port — but anyone who has the token can still execute code, so
share it like an SSH key, run workers for trusted drivers only, and
keep every host on the same library version.
"""

from __future__ import annotations

import hashlib
import hmac
import multiprocessing
import os
import pickle
import socket
import struct
import threading
import time
import traceback
from typing import Callable, List, Optional, Tuple, Union

from repro.utils import config

#: default worker port (any free port works; tests use ephemeral ports)
DEFAULT_PORT = 7920

#: wire protocol version, exchanged in the handshake; bump on any frame
#: or message-shape change so mismatched library versions fail with a
#: clear rejection instead of an unpickling error mid-sweep
PROTOCOL_VERSION = 1

#: frame header: 8-byte big-endian payload length
_HEADER = struct.Struct(">Q")

#: HMAC-SHA256 tag length (bytes), between the header and the payload
_TAG_SIZE = hashlib.sha256().digest_size

#: environment variable holding the shared cluster auth token
AUTH_TOKEN_ENV = "REPRO_AUTH_TOKEN"

#: fallback HMAC key when no token is configured: frames still carry a
#: verified tag (corruption detection) but any same-version peer can
#: produce it — integrity without authentication
_INTEGRITY_KEY = b"repro-sweep-integrity-v1"

#: environment variable overriding the frame-size cap (bytes)
MAX_FRAME_ENV = "REPRO_MAX_FRAME_BYTES"

#: default frame-size cap: far above any real chunk payload (specs and
#: seed slices are ~hundreds of bytes; result lists are kilobytes) but
#: small enough that a garbage or hostile length prefix can never
#:  trigger a multi-gigabyte allocation
DEFAULT_MAX_FRAME_BYTES = 64 << 20

#: connect timeout for a single executor-side connection attempt
#: (seconds); :func:`connect_with_retry` wraps attempts in bounded
#: exponential backoff
CONNECT_TIMEOUT = 10.0

#: environment variable overriding the total connect-retry budget
CONNECT_RETRY_ENV = "REPRO_CONNECT_RETRY"

#: default total budget (seconds) for connect retries with exponential
#: backoff — covers "the worker host is still booting" without hanging
#: a sweep forever on a host that is simply gone
DEFAULT_CONNECT_RETRY = 30.0

#: a handshake reply must arrive within this many seconds of the hello
#: frame; a silent peer here is indistinguishable from a dead one and
#: turns into a retryable OSError
HANDSHAKE_TIMEOUT = 10.0

#: environment variables overriding the executor's heartbeat cadence
HEARTBEAT_INTERVAL_ENV = "REPRO_HEARTBEAT_INTERVAL"
HEARTBEAT_TIMEOUT_ENV = "REPRO_HEARTBEAT_TIMEOUT"

#: seconds between driver-side ``("ping",)`` probes while a chunk is
#: outstanding
DEFAULT_HEARTBEAT_INTERVAL = 5.0

#: seconds of *total* silence (no pong, no result) after which the
#: driver declares the worker dead and requeues the chunk; must be a
#: few multiples of the interval so one dropped probe is not fatal
DEFAULT_HEARTBEAT_TIMEOUT = 30.0

#: readiness-poll interval on executor-side connections (seconds). An
#: elapsed poll does NOT mean the worker died — a chunk may
#: legitimately compute for many minutes at paper scale — it merely
#: lets the driver thread check for shutdown, send a heartbeat probe,
#: and re-enter the wait. Polling happens with :func:`wait_readable`
#: *before* any frame read (never with a mid-frame socket timeout,
#: which would drop partially received bytes and desynchronize the
#: protocol); dead-peer detection is the application-level heartbeat
#: (a worker answers ``ping`` even mid-chunk) with TCP keepalive
#: (tuned in :func:`connect`) as the transport-level backstop.
IO_POLL_TIMEOUT = 1.0


class ProtocolError(RuntimeError):
    """A frame violated the wire protocol (version, shape, or size)."""


class FrameTooLarge(ProtocolError):
    """A length prefix exceeded the frame cap; nothing was allocated."""


class AuthError(ProtocolError):
    """A frame's HMAC tag did not verify; nothing was unpickled."""


# -- framing ------------------------------------------------------------


def resolve_auth_key(token: Union[str, bytes, None] = None) -> bytes:
    """Derive the frame HMAC key from a token (or ``REPRO_AUTH_TOKEN``).

    ``None`` falls back to the environment variable; with neither set,
    a fixed integrity-only key is used (corruption detection, no
    authentication). Both sides of a connection must resolve the same
    key or every frame is rejected before unpickling.
    """
    if token is None:
        token = os.environ.get(AUTH_TOKEN_ENV) or None
    if token is None:
        return _INTEGRITY_KEY
    if isinstance(token, str):
        token = token.encode("utf-8")
    return hashlib.sha256(b"repro-sweep-token:" + token).digest()


def max_frame_bytes() -> int:
    """The receive-side frame cap (``REPRO_MAX_FRAME_BYTES`` or default)."""
    value = config.env_int(MAX_FRAME_ENV, minimum=1)
    return DEFAULT_MAX_FRAME_BYTES if value is None else value


def send_message(
    conn: socket.socket, obj, key: Optional[bytes] = None
) -> None:
    """Send one authenticated length-prefixed pickle frame."""
    if key is None:
        key = resolve_auth_key()
    payload = pickle.dumps(obj, pickle.HIGHEST_PROTOCOL)
    tag = hmac.new(key, payload, hashlib.sha256).digest()
    conn.sendall(_HEADER.pack(len(payload)) + tag + payload)


def _recv_exact(conn: socket.socket, count: int) -> Optional[bytes]:
    chunks = []
    while count:
        part = conn.recv(min(count, 1 << 20))
        if not part:
            return None
        chunks.append(part)
        count -= len(part)
    return b"".join(chunks)


def wait_readable(conn: socket.socket, timeout: float) -> bool:
    """Wait up to ``timeout`` seconds for ``conn`` to become readable.

    The executor's poll primitive: returns ``False`` when the wait
    merely elapsed (worker still computing — re-enter after checking
    for shutdown and heartbeat deadlines) and ``True`` when bytes,
    EOF, or a connection reset are pending (all of which the following
    blocking :func:`recv_message` resolves). Keeping the poll *outside*
    the frame read means a slow link can never lose partially received
    frame bytes to a timeout.
    """
    import select

    return bool(select.select([conn], [], [], timeout)[0])


def recv_message(
    conn: socket.socket,
    key: Optional[bytes] = None,
    max_bytes: Optional[int] = None,
):
    """Receive one frame; ``None`` on clean EOF at a frame boundary.

    The length prefix is checked against ``max_bytes`` (default:
    :func:`max_frame_bytes`) **before** the payload buffer is
    allocated, and the HMAC tag is verified **before** the payload is
    unpickled — so neither a hostile length prefix nor a frame from a
    peer without the shared token ever reaches ``pickle.loads`` or an
    unbounded allocation. Applies identically on the driver and the
    worker side (both receive through this function).
    """
    if key is None:
        key = resolve_auth_key()
    if max_bytes is None:
        max_bytes = max_frame_bytes()
    header = _recv_exact(conn, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        raise FrameTooLarge(
            f"frame announces {length} payload bytes, above the "
            f"{max_bytes}-byte cap ({MAX_FRAME_ENV} raises it); "
            "refusing the allocation"
        )
    tag = _recv_exact(conn, _TAG_SIZE)
    if tag is None:
        raise EOFError("connection closed mid-frame")
    payload = _recv_exact(conn, length)
    if payload is None:
        raise EOFError("connection closed mid-frame")
    expected = hmac.new(key, payload, hashlib.sha256).digest()
    if not hmac.compare_digest(tag, expected):
        raise AuthError(
            "frame HMAC verification failed (wrong or missing "
            f"{AUTH_TOKEN_ENV} on one side, or a corrupted frame); "
            "payload discarded unread"
        )
    return pickle.loads(payload)


def connect(address: Tuple[str, int]) -> socket.socket:
    """Open one executor-side connection attempt to a worker.

    Blocking I/O after connect: frame reads must never time out
    mid-frame (partial bytes would be lost and the stream
    desynchronized). The executor polls with :func:`wait_readable`
    before reading and drives application-level heartbeats; TCP
    keepalive below is the transport-level backstop that turns a host
    which vanished without closing the connection — power loss,
    network partition with no RST — into a hard ``OSError``.
    """
    conn = socket.create_connection(address, timeout=CONNECT_TIMEOUT)
    conn.settimeout(None)
    conn.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
    # Aggressive keepalive where the platform exposes the knobs:
    # first probe after 60 s idle (TCP_KEEPIDLE on Linux, spelled
    # TCP_KEEPALIVE on macOS), then every 15 s, declare the peer dead
    # after 4 missed probes.
    for option, value in (
        ("TCP_KEEPIDLE", 60),
        ("TCP_KEEPALIVE", 60),
        ("TCP_KEEPINTVL", 15),
        ("TCP_KEEPCNT", 4),
    ):
        if hasattr(socket, option):
            conn.setsockopt(
                socket.IPPROTO_TCP, getattr(socket, option), value
            )
    return conn


def client_handshake(
    conn: socket.socket, key: Optional[bytes] = None
) -> None:
    """Run the driver side of the versioned handshake on ``conn``.

    Raises :class:`AuthError` when the worker silently drops the
    connection (the worker's response to an unverifiable hello — a
    token mismatch), :class:`ProtocolError` on an authenticated
    rejection (version mismatch), and ``OSError`` when no reply
    arrives within :data:`HANDSHAKE_TIMEOUT` (treated as a transport
    failure, i.e. retryable).
    """
    send_message(conn, ("hello", PROTOCOL_VERSION), key)
    if not wait_readable(conn, HANDSHAKE_TIMEOUT):
        raise OSError(
            f"no handshake reply within {HANDSHAKE_TIMEOUT:.0f}s"
        )
    reply = recv_message(conn, key)
    if reply is None:
        raise AuthError(
            "worker closed the connection during the handshake — "
            f"almost always a {AUTH_TOKEN_ENV} mismatch between "
            "driver and worker"
        )
    if reply[0] == "reject":
        raise ProtocolError(f"worker rejected the handshake: {reply[1]}")
    if reply[0] != "welcome" or reply[1] != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unexpected handshake reply {reply!r} "
            f"(driver speaks protocol {PROTOCOL_VERSION})"
        )


def resolve_connect_retry(budget: Optional[float] = None) -> float:
    """Total connect-retry budget in seconds (env fallback + default)."""
    if budget is None:
        budget = config.env_float(CONNECT_RETRY_ENV, minimum=0.0)
    if budget is None:
        budget = DEFAULT_CONNECT_RETRY
    if budget < 0:
        raise ValueError(f"connect retry budget must be >= 0, got {budget}")
    return float(budget)


def connect_with_retry(
    address: Tuple[str, int],
    *,
    key: Optional[bytes] = None,
    budget: Optional[float] = None,
    cancelled: Optional[Callable[[], bool]] = None,
) -> Optional[socket.socket]:
    """Connect and handshake with bounded exponential-backoff retry.

    Transport failures (connection refused — the worker host is not
    accepting connections *yet* — timeouts, resets, a silent
    handshake) are retried with exponential backoff (0.25 s doubling,
    capped at 5 s per sleep) until ``budget`` seconds (default:
    ``REPRO_CONNECT_RETRY`` env, else
    :data:`DEFAULT_CONNECT_RETRY`) have elapsed, then the last error
    is raised. :class:`AuthError` / :class:`ProtocolError` from the
    handshake are **permanent** — a wrong token or version never fixes
    itself — and are raised immediately without retry. ``cancelled``
    (checked between attempts) aborts early with ``None`` — used by
    executor feeder threads when the sweep finishes while they are
    still backing off.
    """
    budget = resolve_connect_retry(budget)
    deadline = time.monotonic() + budget
    delay = 0.25
    attempt = 0
    while True:
        if cancelled is not None and cancelled():
            return None
        attempt += 1
        conn = None
        try:
            conn = connect(address)
            client_handshake(conn, key)
            return conn
        except (AuthError, ProtocolError):
            if conn is not None:
                conn.close()
            raise
        except OSError as exc:
            if conn is not None:
                conn.close()
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise OSError(
                    f"could not reach worker {address[0]}:{address[1]} "
                    f"after {attempt} attempts over {budget:.1f}s "
                    f"(last error: {exc})"
                ) from exc
            time.sleep(min(delay, max(remaining, 0.0), 5.0))
            delay *= 2


# -- server -------------------------------------------------------------


def _reply_while_computing(conn, key, run) -> Optional[tuple]:
    """Run ``run()`` on a thread, answering pings until it finishes.

    Returns the reply to send, or ``None`` when the driver went away
    mid-chunk (EOF / ``close`` / an unverifiable frame) — the
    computation is abandoned to finish on its daemon thread with the
    result discarded, and the caller closes the connection.
    """
    box: dict = {}

    def compute() -> None:
        try:
            box["reply"] = ("ok", run())
        except Exception:
            box["reply"] = ("err", traceback.format_exc())

    thread = threading.Thread(target=compute, daemon=True)
    thread.start()
    abandoned = False
    while thread.is_alive():
        if not wait_readable(conn, 0.1):
            continue
        try:
            inner = recv_message(conn, key)
        except (OSError, EOFError, ProtocolError):
            abandoned = True
            break
        if inner is None or inner[0] == "close":
            abandoned = True
            break
        if inner[0] == "ping":
            send_message(conn, ("pong",), key)
        # anything else mid-chunk is a driver bug; ignore rather than
        # desynchronize — the driver never pipelines work frames
    if abandoned:
        return None
    thread.join()
    return box["reply"]


def _serve_connection(conn: socket.socket, key: bytes) -> None:
    """Serve one executor connection until it closes.

    The first frame must be the versioned hello; a frame that fails
    HMAC verification (wrong token, corruption) disconnects the peer
    without ever unpickling it. Frames arrive in order, so a chunk
    frame can rely on its cell's spec frame having been interned
    first.
    """
    from repro.experiments.scheduler import _run_chunk

    specs = {}
    try:
        hello = recv_message(conn, key)
        if hello is None:
            return
        if hello[0] != "hello":
            send_message(
                conn, ("reject", f"expected hello, got {hello[0]!r}"), key
            )
            return
        if hello[1] != PROTOCOL_VERSION:
            send_message(
                conn,
                ("reject",
                 f"worker speaks protocol {PROTOCOL_VERSION}, "
                 f"driver sent {hello[1]!r} — align library versions"),
                key,
            )
            return
        send_message(conn, ("welcome", PROTOCOL_VERSION), key)
        while True:
            message = recv_message(conn, key)
            if message is None or message[0] == "close":
                return
            if message[0] == "ping":
                send_message(conn, ("pong",), key)
            elif message[0] == "spec":
                specs[message[1]] = message[2]
            elif message[0] == "chunk":
                _, spec_key, kind, m, seeds = message
                if spec_key not in specs:
                    send_message(
                        conn,
                        ("err",
                         f"chunk for uninterned cell spec {spec_key!r}"),
                        key,
                    )
                    continue
                reply = _reply_while_computing(
                    conn, key,
                    lambda: _run_chunk(specs[spec_key], kind, m, seeds),
                )
                if reply is None:
                    return  # driver abandoned the chunk mid-compute
                send_message(conn, reply, key)
            else:
                send_message(
                    conn, ("err", f"unknown message kind {message[0]!r}"),
                    key,
                )
    except AuthError:
        return  # unverifiable peer: drop without unpickling anything
    except (OSError, EOFError, ProtocolError):
        return  # executor went away; nothing to clean up
    finally:
        conn.close()


def serve_worker(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    *,
    token: Union[str, bytes, None] = None,
    ready: Optional[Callable[[int], None]] = None,
) -> None:
    """Serve chunk requests forever (the ``repro worker serve`` loop).

    ``port=0`` binds an ephemeral port; ``ready`` is called once with
    the actual port before the accept loop starts (used by
    :func:`start_local_workers` and the CLI banner). ``token``
    overrides ``REPRO_AUTH_TOKEN`` for the frame HMAC key. Each
    connection is served on its own thread, so several executors (or
    a reconnecting one) can share a worker.

    Bind/listen failures propagate to the caller as ``OSError`` with
    the address attached — a worker that cannot bind must fail its
    process/thread loudly, never sit as a silently dead daemon.
    """
    key = resolve_auth_key(token)
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    try:
        try:
            listener.bind((host, port))
            listener.listen()
        except OSError as exc:
            raise OSError(
                f"worker could not bind {host}:{port}: {exc}"
            ) from exc
        if ready is not None:
            ready(listener.getsockname()[1])
        while True:
            conn, _ = listener.accept()
            threading.Thread(
                target=_serve_connection, args=(conn, key), daemon=True
            ).start()
    finally:
        listener.close()


def _local_worker_main(port_queue) -> None:
    """Spawn-process entry point for localhost test/CI workers.

    Startup failures (a bind error, an import error in the re-imported
    driver module) are reported through the queue so
    :func:`start_local_workers` can raise the real reason instead of a
    bare exit code.
    """
    try:
        serve_worker("127.0.0.1", 0, ready=port_queue.put)
    except BaseException as exc:  # noqa: BLE001 - forwarded to the driver
        port_queue.put(("error", f"{type(exc).__name__}: {exc}"))
        raise


def start_local_workers(
    count: int,
) -> Tuple[List[str], Callable[[], None]]:
    """Spawn ``count`` localhost workers on ephemeral ports.

    Returns ``(hosts, shutdown)``: ``hosts`` is a list of
    ``"127.0.0.1:port"`` strings ready for
    ``SweepExecutor(backend="socket", hosts=hosts)``; call
    ``shutdown()`` to terminate the workers. The spawned workers
    inherit this process's environment, so ``REPRO_AUTH_TOKEN`` set
    here authenticates them. Used by the localhost round-trip tests
    and the CI socket smoke job — and handy for checking a multi-host
    setup before pointing it at real machines.
    """
    import queue as queue_module

    context = multiprocessing.get_context("spawn")
    port_queue = context.Queue()
    processes = [
        context.Process(target=_local_worker_main, args=(port_queue,),
                        daemon=True)
        for _ in range(count)
    ]
    for process in processes:
        process.start()
    hosts = []
    try:
        deadline = time.monotonic() + 60.0
        while len(hosts) < count:
            # Short poll so a worker that dies during startup (e.g. a
            # spawn re-import failure) fails fast with its reported
            # error instead of a bare queue timeout a minute later.
            try:
                item = port_queue.get(timeout=0.2)
            except queue_module.Empty:
                item = None
            if item is not None:
                if isinstance(item, tuple) and item[0] == "error":
                    raise RuntimeError(
                        f"local socket worker failed during startup: "
                        f"{item[1]}"
                    )
                hosts.append(f"127.0.0.1:{item}")
                continue
            dead = [p for p in processes if not p.is_alive()]
            if dead:
                # A dead worker can never serve chunks, whether or not
                # it got as far as reporting a port.
                raise RuntimeError(
                    "local socket worker died during startup "
                    f"(exit codes: {[p.exitcode for p in dead]}); "
                    "note the spawn start method re-imports the driver's "
                    "main module, so drivers fed via stdin cannot spawn "
                    "workers — run them from a file or -c instead"
                )
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"local socket workers did not report ports "
                    f"({len(hosts)}/{count} ready after 60s)"
                )
    except Exception:
        for process in processes:
            process.terminate()
        raise

    def shutdown() -> None:
        for process in processes:
            process.terminate()
        for process in processes:
            process.join(timeout=10)

    return hosts, shutdown


__all__ = [
    "DEFAULT_PORT",
    "PROTOCOL_VERSION",
    "AUTH_TOKEN_ENV",
    "MAX_FRAME_ENV",
    "DEFAULT_MAX_FRAME_BYTES",
    "CONNECT_TIMEOUT",
    "CONNECT_RETRY_ENV",
    "DEFAULT_CONNECT_RETRY",
    "HEARTBEAT_INTERVAL_ENV",
    "HEARTBEAT_TIMEOUT_ENV",
    "DEFAULT_HEARTBEAT_INTERVAL",
    "DEFAULT_HEARTBEAT_TIMEOUT",
    "IO_POLL_TIMEOUT",
    "ProtocolError",
    "FrameTooLarge",
    "AuthError",
    "resolve_auth_key",
    "max_frame_bytes",
    "wait_readable",
    "send_message",
    "recv_message",
    "connect",
    "client_handshake",
    "resolve_connect_retry",
    "connect_with_retry",
    "serve_worker",
    "start_local_workers",
]
