"""Resilient online decode service (PR 10).

The serving layer of the ROADMAP's "millions of users" north star:
a long-lived asyncio server (``repro serve``) keeps one incremental
decode session per client and micro-batches concurrent sessions' AMP
decode requests into single ragged block-diagonal ``iterate_amp``
calls — batching *across users, not trials* — while staying
bit-identical to standalone decodes. Robustness is the design center:
admission control with explicit load shedding, graceful degradation
to the greedy scorer under overload, per-request deadlines, durable
crash-recoverable session records, idempotent retrying clients, and
liveness/readiness probes. See the ROADMAP's "Online decode service
contract (PR 10)" section for the full contract.
"""

from repro.service.batcher import DecodeBatcher
from repro.service.client import ServiceClient
from repro.service.errors import (
    DeadlineExceeded,
    InternalError,
    InvalidRequest,
    Overloaded,
    ServiceError,
    SessionConflict,
    UnknownSession,
    error_from_wire,
)
from repro.service.server import DEFAULT_PORT, DecodeService, serve
from repro.service.session import Session, SessionParams, channel_to_spec
from repro.service.store import SessionStore

__all__ = [
    "DecodeBatcher",
    "ServiceClient",
    "ServiceError",
    "Overloaded",
    "DeadlineExceeded",
    "InvalidRequest",
    "UnknownSession",
    "SessionConflict",
    "InternalError",
    "error_from_wire",
    "DecodeService",
    "DEFAULT_PORT",
    "serve",
    "Session",
    "SessionParams",
    "channel_to_spec",
    "SessionStore",
]
