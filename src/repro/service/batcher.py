"""Micro-batching decode scheduler with deadlines, shedding, degradation.

Concurrent sessions' AMP decode requests land in one bounded queue;
a single scheduler task drains it in waves, groups compatible
requests by their batching cell (same ``(n, k, gamma, channel)`` —
only the prefix length ``m`` may vary inside a ragged stack), and
decodes each group with **one**
:func:`repro.amp.batch_amp.decode_prefix_batch` call — the PR 4
heterogeneous-m block-diagonal stacking, so a batched request's result
is bit-identical to a standalone ``run_amp`` on the same session
prefix and batching is invisible in every output.

Robustness ladder (admission control first, then per-request
deadlines):

1. queue at ``max_queue`` -> the request is **shed** at admission:
   answered immediately with a retryable ``overloaded`` error, never
   silently dropped or left queueing unboundedly;
2. backlog beyond ``degrade_depth`` when a wave forms -> the newest
   requests past that depth are **degraded**: answered from the
   session's running greedy scores (``degraded=True`` in the
   response) — O(n), no AMP — instead of waiting behind a full AMP
   wave. The oldest ``degrade_depth`` requests keep their AMP
   promise, so degradation sheds *latency*, not the whole queue;
3. admitted requests carry an optional deadline. A deadline that
   expires while the request is queued cancels it before any decode
   work; one that expires while its batch is decoding discards the
   result on completion (the decode thread itself cannot be
   interrupted mid-matvec, so past-budget work is thrown away rather
   than returned late). Either way the client gets a retryable
   ``deadline_exceeded`` error, never a hang.

The scheduler snapshots each session's prefix on the event loop
(:meth:`repro.service.session.Session.snapshot_stream`) before
handing the batch to a worker thread, so concurrent ingests can never
race an in-flight decode.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.service.errors import DeadlineExceeded, Overloaded
from repro.service.session import Session

#: default bound on queued decode requests (admission control)
DEFAULT_MAX_QUEUE = 64

#: default queue depth at which AMP requests degrade to the greedy
#: fallback instead of queueing
DEFAULT_DEGRADE_DEPTH = 16

#: default cap on requests decoded in one ragged stack
DEFAULT_MAX_BATCH = 16


@dataclass
class _DecodeRequest:
    session: Session
    m: int
    deadline: Optional[float]  # absolute loop time, None = no budget
    return_scores: bool
    future: "asyncio.Future[dict]" = field(repr=False, default=None)


class DecodeBatcher:
    """The decode queue plus its single scheduler task."""

    def __init__(
        self,
        *,
        max_queue: int = DEFAULT_MAX_QUEUE,
        degrade_depth: int = DEFAULT_DEGRADE_DEPTH,
        max_batch: int = DEFAULT_MAX_BATCH,
        kernel: Optional[str] = None,
    ):
        if not 1 <= degrade_depth <= max_queue:
            raise ValueError(
                "need 1 <= degrade_depth <= max_queue, got "
                f"degrade_depth={degrade_depth}, max_queue={max_queue}"
            )
        self.max_queue = max_queue
        self.degrade_depth = degrade_depth
        self.max_batch = max(1, max_batch)
        self.kernel = kernel
        self._queue: Deque[_DecodeRequest] = deque()
        self._wakeup: Optional[asyncio.Event] = None
        self._task: Optional[asyncio.Task] = None
        self._running = False
        #: observability counters, surfaced by the ``stats`` op
        self.counters: Dict[str, int] = {
            "decoded": 0,
            "shed": 0,
            "degraded": 0,
            "deadline_expired": 0,
            "batches": 0,
            "batched_requests": 0,
        }

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        self._wakeup = asyncio.Event()
        self._running = True
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        self._running = False
        if self._wakeup is not None:
            self._wakeup.set()
        if self._task is not None:
            await self._task
            self._task = None
        for request in self._queue:
            if not request.future.done():
                request.future.set_exception(
                    Overloaded("server shutting down")
                )
        self._queue.clear()

    @property
    def depth(self) -> int:
        return len(self._queue)

    # -- admission ------------------------------------------------------

    async def submit(
        self,
        session: Session,
        m: int,
        *,
        deadline: Optional[float] = None,
        return_scores: bool = False,
    ) -> dict:
        """Admit one AMP decode request and await its result.

        Applies the ladder described in the module docstring; raises
        :class:`Overloaded` / :class:`DeadlineExceeded`, or returns the
        response dict (possibly the degraded greedy fallback).
        """
        if not self._running:
            # Refusing is the robust answer: with no scheduler alive an
            # enqueued future would never resolve — a silent hang.
            raise Overloaded("decode scheduler is not running")
        depth = len(self._queue)
        if depth >= self.max_queue:
            self.counters["shed"] += 1
            raise Overloaded(
                f"decode queue full ({depth}/{self.max_queue}); "
                "request shed — retry with backoff"
            )
        loop = asyncio.get_running_loop()
        request = _DecodeRequest(
            session=session,
            m=m,
            deadline=deadline,
            return_scores=return_scores,
            future=loop.create_future(),
        )
        self._queue.append(request)
        self._wakeup.set()
        return await request.future

    # -- scheduler ------------------------------------------------------

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            if not self._queue:
                if not self._running:
                    return
                self._wakeup.clear()
                # Wake on new work or on stop(); re-check both.
                await self._wakeup.wait()
                continue
            # Yield once so handlers whose frames are already parsed can
            # enqueue into this wave — that is where cross-session
            # batching comes from under concurrent load.
            await asyncio.sleep(0)
            self._degrade_backlog(loop)
            wave: List[_DecodeRequest] = []
            while self._queue and len(wave) < self.max_batch:
                wave.append(self._queue.popleft())
            await self._decode_wave(loop, wave)

    def _degrade_backlog(self, loop: asyncio.AbstractEventLoop) -> None:
        """Ladder rung 2: answer the over-deep backlog from greedy scores.

        Requests beyond ``degrade_depth`` would wait behind at least one
        full AMP wave; the newest of them (the oldest keep their AMP
        promise) are answered immediately from the session's running
        greedy scores, flagged ``degraded=True``.
        """
        now = loop.time()
        while len(self._queue) > self.degrade_depth:
            request = self._queue.pop()
            if self._expire(request, now, "while queued"):
                continue
            self.counters["degraded"] += 1
            if not request.future.done():
                request.future.set_result(
                    request.session.greedy_response(degraded=True)
                )

    def _expire(self, request: _DecodeRequest, now: float, when: str) -> bool:
        if request.deadline is not None and now > request.deadline:
            self.counters["deadline_expired"] += 1
            if not request.future.done():
                request.future.set_exception(
                    DeadlineExceeded(
                        f"deadline expired {when} "
                        f"(m={request.m}, session={request.session.session_id})"
                    )
                )
            return True
        return False

    async def _decode_wave(
        self, loop: asyncio.AbstractEventLoop, wave: List[_DecodeRequest]
    ) -> None:
        from repro.amp.batch_amp import decode_prefix_batch

        now = loop.time()
        live = [r for r in wave if not self._expire(r, now, "while queued")]
        groups: Dict[tuple, List[_DecodeRequest]] = {}
        for request in live:
            groups.setdefault(request.session.cell_key(), []).append(request)
        for key, group in groups.items():
            n, k, gamma, _ = key
            channel = group[0].session.channel
            # Freeze every prefix on the loop before the thread runs.
            streams = [r.session.snapshot_stream(r.m) for r in group]
            jobs = [(i, r.m) for i, r in enumerate(group)]
            try:
                exact, scores = await loop.run_in_executor(
                    None,
                    lambda jobs=jobs, streams=streams: decode_prefix_batch(
                        jobs,
                        streams,
                        n,
                        k,
                        channel,
                        gamma=gamma,
                        kernel=self.kernel,
                    ),
                )
            except Exception as exc:  # surfaced per request, not fatal
                for request in group:
                    if not request.future.done():
                        request.future.set_exception(exc)
                continue
            self.counters["batches"] += 1
            self.counters["batched_requests"] += len(group)
            done = loop.time()
            for j, request in enumerate(group):
                if self._expire(request, done, "during decode"):
                    continue  # past-budget work is discarded
                self.counters["decoded"] += 1
                response = {
                    "session_id": request.session.session_id,
                    "algorithm": "amp",
                    "m": request.m,
                    "exact": bool(exact[j]),
                    "degraded": False,
                    "batch_size": len(group),
                }
                if request.return_scores:
                    response["scores"] = scores[j].tolist()
                if not request.future.done():
                    request.future.set_result(response)


__all__ = [
    "DEFAULT_MAX_QUEUE",
    "DEFAULT_DEGRADE_DEPTH",
    "DEFAULT_MAX_BATCH",
    "DecodeBatcher",
]
