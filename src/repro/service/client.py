"""Synchronous client library for the online decode service.

Mirrors the sweep socket backend's resilience policy
(:func:`repro.experiments.worker.connect_with_retry`): transport
failures — connection refused while the server restarts, a connection
reset by a SIGKILLed server, a silent handshake — are retried with
exponential backoff (0.25 s doubling, capped at 5 s per sleep) within
a total budget (``REPRO_CONNECT_RETRY`` or explicit), while
:class:`~repro.experiments.worker.AuthError` /
:class:`~repro.experiments.worker.ProtocolError` are permanent and
raised immediately. Retryable *service* errors (``overloaded``,
``deadline_exceeded``) back off under the same budget; terminal ones
raise at once.

Every state-changing request carries a client-generated idempotent
request id that is **reused across retries** of that request, so a
retransmit after a lost acknowledgement can never double-apply an
ingest — the server acks it from its applied map. That, plus the
server's write-ahead persistence, is what makes "just retry" safe
through a server crash.
"""

from __future__ import annotations

import itertools
import time
import uuid
from typing import Optional, Sequence, Tuple, Union

from repro.experiments.worker import (
    AuthError,
    ProtocolError,
    connect,
    recv_message,
    resolve_auth_key,
    resolve_connect_retry,
    send_message,
)
from repro.core.noise import Channel
from repro.service.errors import ServiceError, error_from_wire
from repro.service.session import channel_to_spec
from repro.service.wire import client_handshake

#: backoff schedule shared with the sweep socket backend
_BACKOFF_START = 0.25
_BACKOFF_CAP = 5.0


class ServiceClient:
    """One connection to a decode server, with retrying request calls."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        token: Union[str, bytes, None] = None,
        retry_budget: Optional[float] = None,
    ):
        self.address = (host, int(port))
        self._key = resolve_auth_key(token)
        self._retry_budget = retry_budget
        self._conn = None
        self._ids = itertools.count()
        self._client = uuid.uuid4().hex[:12]

    # -- connection management ------------------------------------------

    def connect(self) -> None:
        """Connect and handshake, with bounded exponential backoff."""
        if self._conn is not None:
            return
        budget = resolve_connect_retry(self._retry_budget)
        deadline = time.monotonic() + budget
        delay = _BACKOFF_START
        attempt = 0
        while True:
            attempt += 1
            conn = None
            try:
                conn = connect(self.address)
                client_handshake(conn, self._key)
                self._conn = conn
                return
            except (AuthError, ProtocolError):
                if conn is not None:
                    conn.close()
                raise  # permanent: a wrong token/version never heals
            except OSError as exc:
                if conn is not None:
                    conn.close()
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise OSError(
                        f"could not reach decode server "
                        f"{self.address[0]}:{self.address[1]} after "
                        f"{attempt} attempts over {budget:.1f}s "
                        f"(last error: {exc})"
                    ) from exc
                time.sleep(min(delay, max(remaining, 0.0), _BACKOFF_CAP))
                delay *= 2

    def close(self) -> None:
        if self._conn is not None:
            try:
                send_message(self._conn, {"op": "close"}, self._key)
            except OSError:
                pass
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        self.connect()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _drop(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    # -- request machinery ----------------------------------------------

    def request_id(self) -> str:
        """A fresh idempotent request id (stable across its retries)."""
        return f"{self._client}:{next(self._ids)}"

    def call(self, request: dict) -> dict:
        """Send one request, retrying per the module's policy."""
        budget = resolve_connect_retry(self._retry_budget)
        deadline = time.monotonic() + budget
        delay = _BACKOFF_START
        last: Optional[BaseException] = None
        while True:
            try:
                self.connect()
                send_message(self._conn, request, self._key)
                response = recv_message(self._conn, self._key)
                if response is None:
                    raise EOFError("server closed the connection")
            except (AuthError, ProtocolError):
                self._drop()
                raise
            except (OSError, EOFError) as exc:
                # Transport failure — e.g. the server was SIGKILLed.
                # Reconnect and retransmit: every mutating op is
                # idempotent by request id, so this is always safe.
                self._drop()
                last = exc
                response = None
            if response is not None:
                if response.get("ok"):
                    return response
                error = error_from_wire(response.get("error", {}))
                if not error.retryable:
                    raise error
                last = error
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                if isinstance(last, ServiceError):
                    raise last
                raise OSError(
                    f"request failed after {budget:.1f}s of retries "
                    f"(last error: {last})"
                ) from last
            time.sleep(min(delay, max(remaining, 0.0), _BACKOFF_CAP))
            delay *= 2

    # -- API -------------------------------------------------------------

    def open_session(
        self,
        session_id: str,
        n: int,
        sigma: Sequence[int],
        *,
        channel: Union[Channel, dict],
        gamma: Optional[int] = None,
        centering: str = "half_k",
    ) -> dict:
        """Open (or idempotently reopen) a session on the server."""
        spec = (
            channel_to_spec(channel)
            if isinstance(channel, Channel)
            else dict(channel)
        )
        return self.call({
            "op": "open_session",
            "session_id": session_id,
            "n": int(n),
            "gamma": gamma,
            "channel": spec,
            "centering": centering,
            "sigma": [int(v) for v in sigma],
        })

    def ingest(
        self,
        session_id: str,
        queries: Sequence[Tuple[Sequence[int], Sequence[int], float]],
        *,
        request_id: Optional[str] = None,
    ) -> dict:
        """Stream a block of measured queries into a session."""
        return self.call({
            "op": "ingest",
            "session_id": session_id,
            "request_id": request_id or self.request_id(),
            "queries": [
                ([int(a) for a in agents], [int(c) for c in counts],
                 float(result))
                for agents, counts, result in queries
            ],
        })

    def decode(
        self,
        session_id: str,
        *,
        algorithm: str = "amp",
        m: Optional[int] = None,
        deadline: Optional[float] = None,
        return_scores: bool = False,
        request_id: Optional[str] = None,
    ) -> dict:
        """Decode a session prefix (AMP, batched server-side, or greedy)."""
        return self.call({
            "op": "decode",
            "session_id": session_id,
            "request_id": request_id or self.request_id(),
            "algorithm": algorithm,
            "m": m,
            "deadline": deadline,
            "return_scores": return_scores,
        })

    def status(self, session_id: str) -> dict:
        return self.call({"op": "status", "session_id": session_id})

    def healthz(self) -> dict:
        """Liveness probe: answers iff the server's event loop is alive."""
        return self.call({"op": "healthz"})

    def readyz(self) -> dict:
        """Readiness probe: store loaded, batcher accepting, queue depth."""
        return self.call({"op": "readyz"})

    def stats(self) -> dict:
        return self.call({"op": "stats"})


__all__ = ["ServiceClient"]
