"""Structured error taxonomy of the online decode service.

Every failure the server reports crosses the wire as a ``{"code",
"message", "retryable"}`` dict, and the client rehydrates it into the
matching exception class — so both sides agree, by construction, on
the one question that matters to a caller: *is retrying this request
ever going to help?*

Retryable (transient server state — back off and retry):

``overloaded``
    The decode queue is full and the request was shed at admission.
``deadline_exceeded``
    The request's deadline expired before a result could be returned
    (either while queued or because the decode finished past budget
    and its result was discarded). Retrying with a larger budget may
    succeed.

Terminal (the request itself is wrong — retrying is futile):

``invalid_request``
    Malformed or inconsistent request payload.
``unknown_session``
    The named session does not exist on this server.
``session_conflict``
    ``open_session`` re-used an existing session id with different
    parameters.
``internal``
    An unexpected server-side failure; reported with the repr of the
    underlying error. Terminal because blind retries of a bug are
    worse than surfacing it.

Clean shedding is the point of the taxonomy: an overloaded or
deadline-blown request is *answered* — with a machine-readable reason —
never silently dropped or left hanging.
"""

from __future__ import annotations

from typing import Dict, Type


class ServiceError(Exception):
    """Base class of every structured service failure."""

    code = "internal"
    retryable = False

    def to_wire(self) -> dict:
        """The wire form: ``{"code", "message", "retryable"}``."""
        return {
            "code": self.code,
            "message": str(self),
            "retryable": self.retryable,
        }


class Overloaded(ServiceError):
    """The decode queue is full; the request was shed at admission."""

    code = "overloaded"
    retryable = True


class DeadlineExceeded(ServiceError):
    """The request's deadline expired before a result was produced."""

    code = "deadline_exceeded"
    retryable = True


class InvalidRequest(ServiceError):
    """Malformed or inconsistent request payload."""

    code = "invalid_request"
    retryable = False


class UnknownSession(ServiceError):
    """The named session does not exist on this server."""

    code = "unknown_session"
    retryable = False


class SessionConflict(ServiceError):
    """A session id was re-opened with different parameters."""

    code = "session_conflict"
    retryable = False


class InternalError(ServiceError):
    """An unexpected server-side failure (reported, never retried)."""

    code = "internal"
    retryable = False


_BY_CODE: Dict[str, Type[ServiceError]] = {
    cls.code: cls
    for cls in (
        Overloaded,
        DeadlineExceeded,
        InvalidRequest,
        UnknownSession,
        SessionConflict,
        InternalError,
    )
}


def error_from_wire(payload: dict) -> ServiceError:
    """Rehydrate a wire error dict into its exception class.

    Unknown codes (a newer server) fall back to a generic
    :class:`ServiceError` carrying the announced ``retryable`` bit, so
    an old client still honors a new error's retry semantics.
    """
    code = str(payload.get("code", "internal"))
    message = str(payload.get("message", ""))
    cls = _BY_CODE.get(code)
    if cls is not None:
        return cls(message)
    err = ServiceError(message)
    err.code = code
    err.retryable = bool(payload.get("retryable", False))
    return err


__all__ = [
    "ServiceError",
    "Overloaded",
    "DeadlineExceeded",
    "InvalidRequest",
    "UnknownSession",
    "SessionConflict",
    "InternalError",
    "error_from_wire",
]
