"""The long-lived asyncio decode server (``repro serve``).

One event loop owns every session: connection handlers mutate session
state (ingest) and enqueue decode requests on the loop thread, the
:class:`~repro.service.batcher.DecodeBatcher` snapshots prefixes on
the loop and runs stacked AMP decodes in a worker thread. Concurrent
clients on separate connections therefore batch *across users* while
every individual result stays bit-identical to a standalone decode.

Durability: every state-changing request persists its session through
:class:`~repro.service.store.SessionStore` (atomic write-then-rename)
**before** the acknowledgement is sent, so anything a client saw
acked survives a SIGKILL; on restart :meth:`DecodeService.start`
replays the stored records back into identical in-memory state.

Probes: the ``healthz`` op answers whenever the event loop is alive
(liveness); ``readyz`` answers whether the store has been loaded and
the batcher is accepting work (readiness), plus the current queue
depth — the service twin of the usual HTTP probe pair, carried over
the service's own authenticated frame protocol.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Optional, Tuple

from repro.service import wire
from repro.service.batcher import (
    DEFAULT_DEGRADE_DEPTH,
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_QUEUE,
    DecodeBatcher,
)
from repro.service.errors import (
    InternalError,
    InvalidRequest,
    ServiceError,
    SessionConflict,
    UnknownSession,
)
from repro.service.session import Session, SessionParams
from repro.service.store import SessionStore
from repro.utils import config

#: ``REPRO_SERVICE_*`` knobs (consolidated parsing in repro.utils.config)
MAX_QUEUE_ENV = "REPRO_SERVICE_MAX_QUEUE"
DEGRADE_DEPTH_ENV = "REPRO_SERVICE_DEGRADE_DEPTH"
MAX_BATCH_ENV = "REPRO_SERVICE_MAX_BATCH"
DEADLINE_ENV = "REPRO_SERVICE_DEADLINE"

#: default decode-service port (distinct from the sweep worker's 7920)
DEFAULT_PORT = 7930


def _resolve_knob(value, env, default, *, parser):
    if value is not None:
        return value
    parsed = parser(env)
    return default if parsed is None else parsed


class DecodeService:
    """One decode server instance: sessions + batcher + TCP endpoint."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        state_dir=None,
        *,
        token=None,
        max_queue: Optional[int] = None,
        degrade_depth: Optional[int] = None,
        max_batch: Optional[int] = None,
        default_deadline: Optional[float] = None,
        kernel: Optional[str] = None,
    ):
        self.host = host
        self.port = port
        self.key = wire.resolve_auth_key(token)
        self.store = SessionStore(state_dir) if state_dir is not None else None
        max_queue = _resolve_knob(
            max_queue, MAX_QUEUE_ENV, DEFAULT_MAX_QUEUE,
            parser=lambda env: config.env_int(env, minimum=1),
        )
        degrade_depth = _resolve_knob(
            degrade_depth, DEGRADE_DEPTH_ENV, DEFAULT_DEGRADE_DEPTH,
            parser=lambda env: config.env_int(env, minimum=1),
        )
        max_batch = _resolve_knob(
            max_batch, MAX_BATCH_ENV, DEFAULT_MAX_BATCH,
            parser=lambda env: config.env_int(env, minimum=1),
        )
        #: default per-request decode budget in seconds (``None`` =
        #: unlimited); a request's explicit deadline always wins
        self.default_deadline = _resolve_knob(
            default_deadline, DEADLINE_ENV, None,
            parser=lambda env: config.env_float(env, positive=True),
        )
        self.batcher = DecodeBatcher(
            max_queue=max_queue,
            degrade_depth=min(degrade_depth, max_queue),
            max_batch=max_batch,
            kernel=kernel,
        )
        self.sessions: dict = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._ready = False
        self.counters = {"requests": 0, "errors": 0, "connections": 0}

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Load durable sessions, start the batcher, bind the port."""
        if self.store is not None:
            self.sessions = self.store.load_all()
        self.batcher.start()
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port
        )
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        self.port = port
        self._ready = True
        return host, port

    async def stop(self) -> None:
        self._ready = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.batcher.stop()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    # -- connection handling --------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.counters["connections"] += 1
        try:
            if not await wire.server_handshake(reader, writer, self.key):
                return
            while True:
                try:
                    request = await wire.read_frame(reader, self.key)
                except (wire.AuthError, wire.ProtocolError, EOFError):
                    return  # protocol violation: drop the connection
                if request is None:
                    return
                if isinstance(request, dict) and request.get("op") == "close":
                    return
                response = await self._safe_dispatch(request)
                await wire.write_frame(writer, response, self.key)
        except (ConnectionError, OSError):
            pass  # client vanished; its session state is unaffected
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _safe_dispatch(self, request) -> dict:
        self.counters["requests"] += 1
        try:
            if not isinstance(request, dict) or "op" not in request:
                raise InvalidRequest("requests must be dicts with an 'op'")
            payload = await self._dispatch(request)
            payload["ok"] = True
            return payload
        except ServiceError as exc:
            self.counters["errors"] += 1
            return {"ok": False, "error": exc.to_wire()}
        except Exception as exc:  # never leak a traceback as a hang
            self.counters["errors"] += 1
            wrapped = InternalError(f"{type(exc).__name__}: {exc}")
            return {"ok": False, "error": wrapped.to_wire()}

    # -- request dispatch -----------------------------------------------

    async def _dispatch(self, request: dict) -> dict:
        op = request["op"]
        if op == "healthz":
            return {"status": "alive"}
        if op == "readyz":
            return {
                "ready": self._ready,
                "sessions": len(self.sessions),
                "queue_depth": self.batcher.depth,
            }
        if op == "stats":
            return {
                "sessions": len(self.sessions),
                "queue_depth": self.batcher.depth,
                **self.counters,
                **self.batcher.counters,
            }
        if op == "open_session":
            return self._open_session(request)
        if op == "ingest":
            return self._ingest(request)
        if op == "decode":
            return await self._decode(request)
        if op == "status":
            session = self._session(request)
            return {
                "session_id": session.session_id,
                "n": session.n,
                "k": session.k,
                "m": session.m,
            }
        raise InvalidRequest(f"unknown op {op!r}")

    def _session(self, request: dict) -> Session:
        session_id = str(request.get("session_id", ""))
        session = self.sessions.get(session_id)
        if session is None:
            raise UnknownSession(f"no session {session_id!r} on this server")
        return session

    def _open_session(self, request: dict) -> dict:
        try:
            session_id = str(request["session_id"])
            params = SessionParams.create(
                request["n"],
                request.get("gamma"),
                request["channel"],
                request.get("centering", "half_k"),
            )
            sigma = request["sigma"]
        except KeyError as exc:
            raise InvalidRequest(f"open_session missing {exc.args[0]!r}") from None
        existing = self.sessions.get(session_id)
        if existing is not None:
            # Idempotent reopen (client retry / reconnect) — but only
            # for the *same* session definition.
            same = existing.params == params and (
                existing.truth.sigma.tolist()
                == list(int(v) for v in sigma)
            )
            if not same:
                raise SessionConflict(
                    f"session {session_id!r} already exists with "
                    "different parameters"
                )
            return {"session_id": session_id, "m": existing.m, "resumed": True}
        session = Session(session_id, params, sigma)
        self.sessions[session_id] = session
        if self.store is not None:
            self.store.save(session)
        return {"session_id": session_id, "m": 0, "resumed": False}

    def _ingest(self, request: dict) -> dict:
        session = self._session(request)
        try:
            request_id = str(request["request_id"])
            queries = request["queries"]
        except KeyError as exc:
            raise InvalidRequest(f"ingest missing {exc.args[0]!r}") from None
        replay = request_id in session.applied
        m = session.ingest(request_id, queries)
        if not replay and self.store is not None:
            # Write-ahead: persist before the ack, so an acked ingest
            # survives a SIGKILL.
            self.store.save(session)
        return {"session_id": session.session_id, "m": m, "replayed": replay}

    async def _decode(self, request: dict) -> dict:
        session = self._session(request)
        algorithm = str(request.get("algorithm", "amp"))
        if algorithm == "greedy":
            return session.greedy_response()
        if algorithm != "amp":
            raise InvalidRequest(
                f"unknown algorithm {algorithm!r}; valid: ('amp', 'greedy')"
            )
        m = request.get("m")
        m = session.m if m is None else int(m)
        if m < 1:
            raise InvalidRequest(
                f"AMP decode requires at least one query, session has m={m}"
            )
        if m > session.m:
            raise InvalidRequest(
                f"decode at m={m} exceeds the session's {session.m} queries"
            )
        request_id = request.get("request_id")
        if request_id is not None and request_id in session.decode_cache:
            return dict(session.decode_cache[request_id])
        budget = request.get("deadline", self.default_deadline)
        deadline = None
        if budget is not None:
            budget = float(budget)
            if budget <= 0:
                raise InvalidRequest(f"deadline must be > 0 s, got {budget}")
            deadline = asyncio.get_running_loop().time() + budget
        response = await self.batcher.submit(
            session,
            m,
            deadline=deadline,
            return_scores=bool(request.get("return_scores", False)),
        )
        if request_id is not None:
            session.decode_cache[str(request_id)] = dict(response)
        return response


def serve(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    state_dir=None,
    *,
    token=None,
    ready: Optional[Callable[[str, int], None]] = None,
    **knobs,
) -> None:
    """Run a decode server until cancelled (the ``repro serve`` entry).

    ``ready(host, port)`` fires once the port is bound — with
    ``port=0`` this is how callers learn the ephemeral port.
    """

    async def _main() -> None:
        service = DecodeService(
            host, port, state_dir, token=token, **knobs
        )
        bound_host, bound_port = await service.start()
        if ready is not None:
            ready(bound_host, bound_port)
        try:
            await service.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await service.stop()

    asyncio.run(_main())


__all__ = [
    "MAX_QUEUE_ENV",
    "DEGRADE_DEPTH_ENV",
    "MAX_BATCH_ENV",
    "DEADLINE_ENV",
    "DEFAULT_PORT",
    "DecodeService",
    "serve",
]
