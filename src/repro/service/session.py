"""Server-side session state of the online decode service.

A session is one client's incremental-query run of the paper's
procedure: the client streams measured pooled queries in, and the
server accumulates them in two synchronized consumers —

* a :class:`~repro.core.batch.SessionStream` (the prefix-replayable
  CSR stream the ragged AMP request batching decodes), and
* an :class:`~repro.core.incremental.IncrementalDecoder` (Algorithm
  1's running greedy scores — the O(n) certificate and the overload
  fallback).

The ground truth ``sigma`` travels with ``open_session``: in this
reproduction setting the client *is* the simulator, and the server
certifies exact reconstruction / strict score separation on its
behalf, exactly like the paper's required-queries stopping rule.

Recovery contract: :meth:`Session.record` captures everything —
parameters, sigma, the consolidated query arrays in arrival order,
and the ingest idempotency map — as one JSON-able dict, and
:meth:`Session.from_record` rebuilds the session by re-ingesting the
queries *in the original order* through both consumers. Per-query
ingestion re-runs the identical float accumulations, so a restored
session is bit-for-bit the uninterrupted one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.batch import ReplayedStream, SessionStream
from repro.core.ground_truth import GroundTruth
from repro.core.incremental import IncrementalDecoder
from repro.core.noise import (
    Channel,
    GaussianQueryNoise,
    NoiselessChannel,
    NoisyChannel,
    ZChannel,
    make_channel,
)
from repro.core.pooling import default_gamma
from repro.service.errors import InvalidRequest

#: valid centerings, mirroring :class:`IncrementalDecoder`
CENTERINGS = ("half_k", "oracle")


def channel_to_spec(channel: Channel) -> dict:
    """The JSON-able spec of a channel, invertible by :func:`make_channel`."""
    if isinstance(channel, ZChannel):
        return {"kind": "z", "p": float(channel.p)}
    if isinstance(channel, NoisyChannel):
        return {"kind": "channel", "p": float(channel.p), "q": float(channel.q)}
    if isinstance(channel, GaussianQueryNoise):
        return {"kind": "gaussian", "lam": float(channel.lam)}
    if isinstance(channel, NoiselessChannel):
        return {"kind": "noiseless"}
    raise InvalidRequest(
        f"channel {channel.describe()} has no wire spec"
    )


def channel_from_spec(spec: dict) -> Channel:
    """Rebuild a channel from its wire/record spec."""
    try:
        return make_channel(**{str(k): v for k, v in dict(spec).items()})
    except (TypeError, ValueError) as exc:
        raise InvalidRequest(f"bad channel spec {spec!r}: {exc}") from None


@dataclass(frozen=True)
class SessionParams:
    """The invariant parameters of one decode session."""

    n: int
    gamma: int
    channel_spec: Tuple[Tuple[str, float], ...]
    centering: str

    @classmethod
    def create(
        cls,
        n: int,
        gamma: Optional[int],
        channel_spec: dict,
        centering: str,
    ) -> "SessionParams":
        n = int(n)
        if n < 1:
            raise InvalidRequest(f"n must be >= 1, got {n}")
        gamma = default_gamma(n) if gamma is None else int(gamma)
        if gamma < 1:
            raise InvalidRequest(f"gamma must be >= 1, got {gamma}")
        if centering not in CENTERINGS:
            raise InvalidRequest(
                f"unknown centering {centering!r}; valid: {CENTERINGS}"
            )
        # Validate eagerly and store in canonical hashable form.
        channel_from_spec(channel_spec)
        canonical = tuple(sorted(
            (str(k), v) for k, v in dict(channel_spec).items()
        ))
        return cls(
            n=n, gamma=gamma, channel_spec=canonical, centering=centering
        )

    @property
    def channel(self) -> Channel:
        return channel_from_spec(dict(self.channel_spec))


class Session:
    """One client's accumulated measurements plus decode state."""

    def __init__(
        self, session_id: str, params: SessionParams, sigma: Sequence[int]
    ):
        self.session_id = session_id
        self.params = params
        sigma = np.asarray(sigma, dtype=np.int8)
        if sigma.ndim != 1 or sigma.size != params.n:
            raise InvalidRequest(
                f"sigma must be a length-{params.n} bit vector, "
                f"got shape {sigma.shape}"
            )
        try:
            self.truth = GroundTruth(sigma)
        except ValueError as exc:
            raise InvalidRequest(str(exc)) from None
        self.channel = params.channel
        self.stream = SessionStream(params.n, params.gamma, self.truth)
        self.decoder = IncrementalDecoder(
            self.truth,
            self.channel,
            params.gamma,
            centering=params.centering,
        )
        #: ingest idempotency: request id -> stream length after that
        #: ingest was applied (persisted; a replayed frame is acked
        #: from here instead of double-appending)
        self.applied: Dict[str, int] = {}
        #: decode idempotency (in-memory only — decodes never mutate)
        self.decode_cache: Dict[str, dict] = {}

    # -- properties -----------------------------------------------------

    @property
    def n(self) -> int:
        return self.params.n

    @property
    def k(self) -> int:
        return self.truth.k

    @property
    def m(self) -> int:
        return self.stream.m_done

    def cell_key(self) -> tuple:
        """The batching cell: sessions sharing it may stack one AMP call.

        Only the per-session prefix length ``m`` may vary inside a
        ragged stack; everything the standardized operator depends on
        must match.
        """
        return (
            self.params.n,
            self.k,
            self.params.gamma,
            self.params.channel_spec,
        )

    # -- ingest ---------------------------------------------------------

    def ingest(
        self,
        request_id: str,
        queries: Sequence[Tuple[Sequence[int], Sequence[int], float]],
    ) -> int:
        """Apply one ingest request; returns the stream length after it.

        Idempotent by ``request_id``: a retransmitted request (client
        retry after a lost ack) is acknowledged from the applied map
        without touching the stream.
        """
        if request_id in self.applied:
            return self.applied[request_id]
        for query in queries:
            try:
                agents, counts, result = query
            except (TypeError, ValueError):
                raise InvalidRequest(
                    "each query must be (agents, counts, result)"
                ) from None
            try:
                self.stream.append(agents, counts, float(result))
            except (TypeError, ValueError) as exc:
                raise InvalidRequest(str(exc)) from None
            self.decoder.ingest_query(
                np.asarray(agents, dtype=np.int64),
                np.asarray(counts, dtype=np.int64),
                float(result),
            )
        self.applied[request_id] = self.stream.m_done
        return self.stream.m_done

    # -- decode ---------------------------------------------------------

    def greedy_response(self, *, degraded: bool = False) -> dict:
        """Algorithm 1's certificate at the current prefix — O(n).

        The overload fallback and the ``algorithm="greedy"`` decode:
        running scores are already accumulated, so this never queues.
        """
        separation = self.decoder.separation()
        recon = self.decoder.reconstruction()
        return {
            "session_id": self.session_id,
            "algorithm": "greedy",
            "m": self.m,
            "exact": bool(recon.exact),
            "separated": bool(separation > 0.0),
            "separation": float(separation),
            "overlap": float(recon.overlap),
            "degraded": bool(degraded),
        }

    def snapshot_stream(self, m: int) -> ReplayedStream:
        """A frozen prefix view safe to decode off the event loop.

        Consolidation happens here (on the loop, where appends also
        happen); the returned views alias immutable consolidated
        arrays, so later appends can never race the decode thread.
        """
        indptr, agents, counts, results = self.stream.prefix(m)
        return ReplayedStream(
            self.params.n,
            self.params.gamma,
            self.truth,
            indptr,
            agents,
            counts,
            results,
        )

    # -- durability -----------------------------------------------------

    def record(self) -> dict:
        """The session's durable JSON-able record (see module notes)."""
        return {
            "version": 1,
            "session_id": self.session_id,
            "n": self.params.n,
            "gamma": self.params.gamma,
            "channel": dict(self.params.channel_spec),
            "centering": self.params.centering,
            "sigma": self.truth.sigma.tolist(),
            "m": self.stream.m_done,
            "indptr": self.stream.indptr.tolist(),
            "agents": self.stream.agents.tolist(),
            "counts": self.stream.counts.tolist(),
            "results": self.stream.results.tolist(),
            "applied": dict(self.applied),
        }

    @classmethod
    def from_record(cls, record: dict) -> "Session":
        """Rebuild a session by replaying its record in arrival order."""
        params = SessionParams.create(
            record["n"],
            record["gamma"],
            record["channel"],
            record["centering"],
        )
        session = cls(str(record["session_id"]), params, record["sigma"])
        indptr = np.asarray(record["indptr"], dtype=np.int64)
        agents = np.asarray(record["agents"], dtype=np.int64)
        counts = np.asarray(record["counts"], dtype=np.int64)
        results = np.asarray(record["results"], dtype=np.float64)
        for i in range(int(record["m"])):
            lo, hi = int(indptr[i]), int(indptr[i + 1])
            session.stream.append(
                agents[lo:hi], counts[lo:hi], float(results[i])
            )
            session.decoder.ingest_query(
                agents[lo:hi], counts[lo:hi], float(results[i])
            )
        session.applied = {
            str(k): int(v) for k, v in dict(record["applied"]).items()
        }
        return session


__all__ = [
    "CENTERINGS",
    "channel_to_spec",
    "channel_from_spec",
    "SessionParams",
    "Session",
]
