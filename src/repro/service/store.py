"""Durable session storage for the online decode service.

One JSON file per session under the server's state directory, written
through :func:`repro.experiments.storage.save_json_atomic` — the
write-to-temp-then-``os.replace`` primitive the sweep checkpoint layer
already trusts. A reader therefore sees either the previous complete
record or the new complete record, never a torn write, which is what
lets a SIGKILLed server restart and resume every session bit-
identically (:meth:`repro.service.session.Session.from_record`).

Write-ahead discipline: the server persists a session *before*
acknowledging the ingest that changed it, so any measurement a client
saw acked survives the crash; at worst an *unacked* tail is lost, and
the client's idempotent retry re-delivers it.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict

from repro.experiments.storage import load_json, save_json_atomic
from repro.service.session import Session


class SessionStore:
    """Directory of durable session records."""

    def __init__(self, root):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, session_id: str) -> Path:
        # Session ids are client-chosen; flatten anything that is not
        # filename-safe so an id can never escape the state directory.
        safe = "".join(
            ch if ch.isalnum() or ch in "-_." else "_" for ch in session_id
        )
        return self.root / f"{safe}.session.json"

    def save(self, session: Session) -> None:
        """Persist one session atomically (write-then-rename)."""
        save_json_atomic(self._path(session.session_id), session.record())

    def delete(self, session_id: str) -> None:
        path = self._path(session_id)
        if path.exists():
            path.unlink()

    def load_all(self) -> Dict[str, Session]:
        """Rebuild every stored session (server start / restart).

        Records are replayed through :meth:`Session.from_record`, so
        the restored in-memory state is bit-identical to the state at
        the last acknowledged ingest. Leftover ``*.tmp`` files from an
        interrupted atomic write are ignored (the rename never
        happened, so the previous complete record is still in place).
        """
        sessions: Dict[str, Session] = {}
        for path in sorted(self.root.glob("*.session.json")):
            session = Session.from_record(load_json(path))
            sessions[session.session_id] = session
        return sessions


__all__ = ["SessionStore"]
