"""Subprocess harness for decode-server tests, smokes, and examples.

Launches ``python -m repro serve`` with an ephemeral port, parses the
ready banner for the bound address, and exposes the two exits the
chaos tests need: a clean ``stop()`` and a ``kill()`` that SIGKILLs
the process mid-stream (no shutdown path runs — exactly the crash the
durable session store must survive).
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import threading
import time
from typing import List, Optional

#: the ready banner printed by ``repro serve``; the launcher parses the
#: bound (possibly ephemeral) port out of it
BANNER_RE = re.compile(r"listening on ([^\s:]+):(\d+)")


class ServerProcess:
    """A running ``repro serve`` subprocess."""

    def __init__(self, proc: subprocess.Popen, host: str, port: int):
        self.proc = proc
        self.host = host
        self.port = port
        self._lines: List[str] = []
        self._reader = threading.Thread(
            target=self._drain, name="serve-stdout", daemon=True
        )
        self._reader.start()

    def _drain(self) -> None:
        for line in self.proc.stdout:
            self._lines.append(line)

    @property
    def output(self) -> str:
        return "".join(self._lines)

    def kill(self) -> None:
        """SIGKILL — the crash injection; no shutdown code runs."""
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait()

    def stop(self) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait()


def start_server(
    state_dir,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    args: Optional[List[str]] = None,
    env: Optional[dict] = None,
    timeout: float = 30.0,
) -> ServerProcess:
    """Start a decode server and wait for its ready banner.

    ``env`` entries overlay the inherited environment (use for
    ``REPRO_SERVICE_*`` knobs); ``args`` appends raw CLI flags. The
    default ``port=0`` binds an ephemeral port, read back from the
    banner — so parallel test runs never collide.
    """
    cmd = [
        sys.executable, "-m", "repro", "serve",
        "--host", host, "--port", str(port),
        "--state-dir", str(state_dir),
    ] + list(args or [])
    full_env = dict(os.environ)
    if env:
        full_env.update({k: str(v) for k, v in env.items()})
    proc = subprocess.Popen(
        cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=full_env,
    )
    deadline = time.monotonic() + timeout
    lines: List[str] = []
    while True:
        if time.monotonic() > deadline:
            proc.kill()
            raise TimeoutError(
                "server did not print its ready banner within "
                f"{timeout:.0f}s; output so far:\n{''.join(lines)}"
            )
        line = proc.stdout.readline()
        if line:
            lines.append(line)
            match = BANNER_RE.search(line)
            if match:
                server = ServerProcess(proc, match.group(1), int(match.group(2)))
                server._lines = lines + server._lines
                return server
        elif proc.poll() is not None:
            raise RuntimeError(
                f"server exited with {proc.returncode} before becoming "
                f"ready; output:\n{''.join(lines)}"
            )
        else:
            time.sleep(0.01)


__all__ = ["BANNER_RE", "ServerProcess", "start_server"]
