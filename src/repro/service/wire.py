"""Wire protocol of the online decode service.

Same hardened frame format as the sweep engine's socket backend
(:mod:`repro.experiments.worker`, protocol notes there)::

    8-byte big-endian payload length | 32-byte HMAC-SHA256 tag | payload

with the same two non-negotiables: the length prefix is checked
against :func:`repro.experiments.worker.max_frame_bytes` **before**
the receive buffer is allocated, and the HMAC tag (keyed from
``REPRO_AUTH_TOKEN`` via :func:`repro.experiments.worker.
resolve_auth_key`) is verified **before** the payload is unpickled.
The service side adds asyncio stream variants of the frame functions
(the server is a single-threaded event loop) next to the synchronous
ones the client uses.

The handshake is the service's own — ``("hello", "service", version)``
/ ``("welcome", "service", version)`` — so a decode client that
accidentally dials a sweep worker (or vice versa) fails with a clear
rejection instead of a mid-conversation shape error.
"""

from __future__ import annotations

import asyncio
import hashlib
import hmac
import pickle
import socket
from typing import Optional

from repro.experiments.worker import (
    _HEADER,
    _TAG_SIZE,
    AuthError,
    ProtocolError,
    max_frame_bytes,
    recv_message,
    resolve_auth_key,
    send_message,
)

#: service wire protocol version; bump on any frame or message-shape
#: change so mismatched versions reject at the handshake
SERVICE_PROTOCOL_VERSION = 1

#: the handshake family tag distinguishing decode-service conversations
#: from sweep-worker ones on the shared frame format
SERVICE_FAMILY = "service"


async def read_frame(
    reader: asyncio.StreamReader,
    key: bytes,
    max_bytes: Optional[int] = None,
):
    """Read one authenticated frame; ``None`` on clean EOF at a boundary.

    The asyncio twin of :func:`repro.experiments.worker.recv_message`,
    with the identical cap-before-allocate / verify-before-unpickle
    order.
    """
    if max_bytes is None:
        max_bytes = max_frame_bytes()
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise EOFError("connection closed mid-frame") from exc
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        raise ProtocolError(
            f"frame announces {length} payload bytes, above the "
            f"{max_bytes}-byte cap; refusing the allocation"
        )
    try:
        tag = await reader.readexactly(_TAG_SIZE)
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise EOFError("connection closed mid-frame") from exc
    expected = hmac.new(key, payload, hashlib.sha256).digest()
    if not hmac.compare_digest(tag, expected):
        raise AuthError(
            "frame HMAC verification failed; payload discarded unread"
        )
    return pickle.loads(payload)


async def write_frame(
    writer: asyncio.StreamWriter, obj, key: bytes
) -> None:
    """Send one authenticated frame on an asyncio stream."""
    payload = pickle.dumps(obj, pickle.HIGHEST_PROTOCOL)
    tag = hmac.new(key, payload, hashlib.sha256).digest()
    writer.write(_HEADER.pack(len(payload)) + tag + payload)
    await writer.drain()


async def server_handshake(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    key: bytes,
) -> bool:
    """Serve the handshake; returns ``False`` when the peer was rejected.

    An unauthenticated hello (wrong token) gets a silent disconnect —
    nothing is revealed to a peer that cannot produce a valid tag. A
    wrong family or version gets an authenticated rejection naming the
    reason.
    """
    try:
        hello = await read_frame(reader, key)
    except (AuthError, ProtocolError, EOFError):
        return False
    if hello is None:
        return False
    if (
        not isinstance(hello, tuple)
        or len(hello) != 3
        or hello[0] != "hello"
        or hello[1] != SERVICE_FAMILY
    ):
        await write_frame(
            writer,
            ("reject", "this port speaks the repro decode-service protocol"),
            key,
        )
        return False
    if hello[2] != SERVICE_PROTOCOL_VERSION:
        await write_frame(
            writer,
            (
                "reject",
                f"service protocol {hello[2]} != {SERVICE_PROTOCOL_VERSION}",
            ),
            key,
        )
        return False
    await write_frame(
        writer, ("welcome", SERVICE_FAMILY, SERVICE_PROTOCOL_VERSION), key
    )
    return True


def client_handshake(conn: socket.socket, key: bytes) -> None:
    """Run the client side of the service handshake on a sync socket.

    Mirrors :func:`repro.experiments.worker.client_handshake`'s error
    contract: :class:`AuthError` on a silent disconnect (token
    mismatch), :class:`ProtocolError` on an authenticated rejection or
    malformed reply — both permanent, never retried.
    """
    send_message(conn, ("hello", SERVICE_FAMILY, SERVICE_PROTOCOL_VERSION), key)
    reply = recv_message(conn, key)
    if reply is None:
        raise AuthError(
            "server closed the connection during the handshake — almost "
            "always an auth-token mismatch between client and server"
        )
    if isinstance(reply, tuple) and reply and reply[0] == "reject":
        raise ProtocolError(f"server rejected the handshake: {reply[1]}")
    if reply != ("welcome", SERVICE_FAMILY, SERVICE_PROTOCOL_VERSION):
        raise ProtocolError(
            f"unexpected handshake reply {reply!r} (client speaks "
            f"service protocol {SERVICE_PROTOCOL_VERSION})"
        )


__all__ = [
    "SERVICE_PROTOCOL_VERSION",
    "SERVICE_FAMILY",
    "read_frame",
    "write_frame",
    "server_handshake",
    "client_handshake",
    "resolve_auth_key",
    "max_frame_bytes",
    "send_message",
    "recv_message",
    "AuthError",
    "ProtocolError",
]
