"""Analysis toolbox: concentration bounds and moment predictions.

Implements the probabilistic machinery of the paper's Section IV:

* :mod:`repro.theory.concentration` — Chernoff bounds for (negatively
  associated) Bernoulli sums (Theorem 10) and Gaussian tail bounds with
  Mill's-ratio lower bounds (Theorem 11);
* :mod:`repro.theory.degrees` — degree moments and concentration
  intervals of the random pooling graph (Lemmas 3 and 4, Corollary 5);
* :mod:`repro.theory.neighborhood` — moments of the neighborhood sum
  ``Psi_j`` under the noise models (Lemmas 6-8, Corollary 9).

These are used by the statistical test-suite to check the simulated
system against the paper's distributional claims, and by the oracle
centering / diagnostics in the core package.
"""

from repro.theory.concentration import (
    chernoff_lower_tail,
    chernoff_upper_tail,
    gaussian_tail_lower,
    gaussian_tail_upper,
)
from repro.theory.degrees import (
    degree_interval,
    distinct_degree_interval,
    expected_distinct_degree,
    expected_multi_degree,
)
from repro.theory.neighborhood import (
    NeighborhoodMoments,
    gaussian_noise_std,
    neighborhood_moments,
    second_neighborhood_size,
)

__all__ = [
    "chernoff_upper_tail",
    "chernoff_lower_tail",
    "gaussian_tail_upper",
    "gaussian_tail_lower",
    "expected_multi_degree",
    "expected_distinct_degree",
    "degree_interval",
    "distinct_degree_interval",
    "NeighborhoodMoments",
    "neighborhood_moments",
    "second_neighborhood_size",
    "gaussian_noise_std",
]
