"""Concentration inequalities used in the paper's analysis.

Theorem 10 (Chernoff for negatively associated Bernoulli sums): for
``X = sum X_i`` with mean ``mu``,

* ``P(X >= (1+eps) mu) <= exp(-eps^2 mu / (2 + eps))``
* ``P(X <= (1-eps) mu) <= exp(-eps^2 mu / 2)``

Theorem 11 (Gaussian tails, with Mill's-ratio lower bound): for
``X ~ N(0, lam^2)`` and ``y > 0``,

* ``P(X >= y) <= (lam/y) * phi(y/lam) / ... `` — precisely
  ``(lam / y) * (1/sqrt(2 pi)) * exp(-y^2 / (2 lam^2))``
* ``P(X >= y) >= (lam/y - lam^3/y^3) * (1/sqrt(2 pi)) * exp(-y^2/(2 lam^2))``
"""

from __future__ import annotations

import math

from repro.utils.validation import check_non_negative, check_positive


def chernoff_upper_tail(eps: float, mean: float) -> float:
    """Upper bound on ``P(X >= (1 + eps) E[X])`` (Theorem 10)."""
    eps = check_non_negative(eps, "eps")
    mean = check_non_negative(mean, "mean")
    if eps == 0.0:
        return 1.0
    return min(1.0, math.exp(-(eps * eps) * mean / (2.0 + eps)))


def chernoff_lower_tail(eps: float, mean: float) -> float:
    """Upper bound on ``P(X <= (1 - eps) E[X])`` (Theorem 10)."""
    eps = check_non_negative(eps, "eps")
    mean = check_non_negative(mean, "mean")
    if eps == 0.0:
        return 1.0
    return min(1.0, math.exp(-(eps * eps) * mean / 2.0))


def chernoff_two_sided(eps: float, mean: float) -> float:
    """Union bound on ``P(|X - E[X]| >= eps E[X])``."""
    return min(1.0, chernoff_upper_tail(eps, mean) + chernoff_lower_tail(eps, mean))


def gaussian_tail_upper(y: float, lam: float) -> float:
    """Theorem 11 upper bound on ``P(N(0, lam^2) >= y)`` for ``y > 0``."""
    y = check_positive(y, "y")
    lam = check_positive(lam, "lam")
    return min(
        1.0,
        (lam / y) * math.exp(-(y * y) / (2.0 * lam * lam)) / math.sqrt(2.0 * math.pi),
    )


def gaussian_tail_lower(y: float, lam: float) -> float:
    """Theorem 11 (Mill's ratio) lower bound on ``P(N(0, lam^2) >= y)``."""
    y = check_positive(y, "y")
    lam = check_positive(lam, "lam")
    prefactor = lam / y - (lam**3) / (y**3)
    if prefactor <= 0.0:
        return 0.0
    return prefactor * math.exp(-(y * y) / (2.0 * lam * lam)) / math.sqrt(2.0 * math.pi)


def gaussian_tail_exact(y: float, lam: float) -> float:
    """Exact ``P(N(0, lam^2) >= y)`` via the complementary error function.

    Provided so tests can sandwich it between the Theorem 11 bounds.
    """
    lam = check_positive(lam, "lam")
    return 0.5 * math.erfc(y / (lam * math.sqrt(2.0)))


__all__ = [
    "chernoff_upper_tail",
    "chernoff_lower_tail",
    "chernoff_two_sided",
    "gaussian_tail_upper",
    "gaussian_tail_lower",
    "gaussian_tail_exact",
]
