"""Degree statistics of the random pooling graph (Lemmas 3-5).

With ``m`` queries of ``Gamma`` half-edges each thrown uniformly into
``n`` agents:

* ``Delta_i ~ Bin(m Gamma, 1/n)`` with mean ``Delta = m Gamma / n``
  (``= m/2`` for the paper's ``Gamma = n/2``); Lemma 3 asserts all
  degrees lie within ``Delta ± ln(n) sqrt(Delta)`` w.p. ``1 - o(1/n)``.
* The number of *distinct* queries satisfies
  ``E[Delta*_i] = m (1 - (1 - 1/n)^Gamma) ≈ m (1 - e^{-Gamma/n})``;
  for ``Gamma = n/2`` this is the paper's
  ``Delta* = (1 - e^{-1/2}) m = 2 gamma_const * Delta`` (Lemma 4 /
  Corollary 5), with fluctuation window ``ln^2(n) sqrt(Delta*)``.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.utils.validation import check_positive_int


def expected_multi_degree(n: int, m: int, gamma: int) -> float:
    """``E[Delta_i] = m * gamma / n`` (Lemma 3)."""
    n = check_positive_int(n, "n")
    m = check_positive_int(m, "m", minimum=0)
    gamma = check_positive_int(gamma, "gamma")
    return m * gamma / n


def expected_distinct_degree(n: int, m: int, gamma: int) -> float:
    """``E[Delta*_i] = m (1 - (1 - 1/n)^gamma)`` (exact finite-n form).

    For ``gamma = n/2`` this approaches the paper's
    ``(1 - e^{-1/2}) m`` as ``n`` grows (Lemma 4).
    """
    n = check_positive_int(n, "n")
    m = check_positive_int(m, "m", minimum=0)
    gamma = check_positive_int(gamma, "gamma")
    return m * (1.0 - (1.0 - 1.0 / n) ** gamma)


def degree_interval(n: int, m: int, gamma: int) -> Tuple[float, float]:
    """Lemma 3's concentration window for all multi-degrees.

    Returns ``(Delta - ln(n) sqrt(Delta), Delta + ln(n) sqrt(Delta))``.
    """
    delta = expected_multi_degree(n, m, gamma)
    width = math.log(max(n, 2)) * math.sqrt(delta)
    return delta - width, delta + width


def distinct_degree_interval(n: int, m: int, gamma: int) -> Tuple[float, float]:
    """Corollary 5's concentration window for all distinct degrees.

    Returns ``(Delta* - ln^2(n) sqrt(Delta*), Delta* + ln^2(n) sqrt(Delta*))``.
    """
    delta_star = expected_distinct_degree(n, m, gamma)
    width = math.log(max(n, 2)) ** 2 * math.sqrt(delta_star)
    return delta_star - width, delta_star + width


def distinct_to_multi_ratio(n: int, gamma: int) -> float:
    """Asymptotic ratio ``E[Delta*] / E[Delta]``.

    Lemma 4 states ``Delta* ≈ 2 (1 - e^{-1/2}) Delta`` for
    ``gamma = n/2``; the general form is
    ``n (1 - (1-1/n)^gamma) / gamma``.
    """
    n = check_positive_int(n, "n")
    gamma = check_positive_int(gamma, "gamma")
    return n * (1.0 - (1.0 - 1.0 / n) ** gamma) / gamma


__all__ = [
    "expected_multi_degree",
    "expected_distinct_degree",
    "degree_interval",
    "distinct_degree_interval",
    "distinct_to_multi_ratio",
]
