"""Moments of the neighborhood sum ``Psi_j`` (Lemmas 6-8, Corollary 9).

The paper derives, for an agent ``j`` with multi-degree ``Delta_j`` and
distinct degree ``Delta*_j``, the law of the neighborhood sum under the
noisy channel:

    Psi_j ~ Xi^{pq}_j + 1{sigma_j = 1} Bin(Delta_j, 1 - p)
                       + 1{sigma_j = 0} Bin(Delta_j, q)

where ``Xi^{pq}_j = Lambda_j(0,1) + Lambda_j(1,1)`` counts observed ones
in the second neighborhood of size ``n_j = Delta*_j Gamma - Delta_j``
(Lemma 7); a random second-neighborhood edge observes a one with
probability ``s_j = q + pi_j (1 - p - q)`` for
``pi_j = (k - 1{sigma_j=1}) / (n - 1)`` (Eq. 1).

Under the noisy query model (Corollary 9) the same holds with
``p = q = 0`` plus an independent Gaussian ``X_j ~ N(0, lam^2 Delta*_j)``.

These closed forms power the statistical tests (empirical moments of the
simulated system must match) and the oracle diagnostics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.noise import Channel, GaussianQueryNoise, NoiselessChannel, NoisyChannel


def second_neighborhood_size(delta_star: float, delta: float, gamma: int) -> float:
    """``n_j = Delta*_j Gamma - Delta_j`` (Lemma 6)."""
    return delta_star * gamma - delta


@dataclass(frozen=True)
class NeighborhoodMoments:
    """Mean and variance of ``Psi_j`` conditioned on the agent's bit."""

    mean_one: float
    mean_zero: float
    var_one: float
    var_zero: float

    @property
    def mean_gap(self) -> float:
        """``E[Psi | sigma=1] - E[Psi | sigma=0]`` — the decodable signal.

        The exact conditional gap is
        ``Delta (1 - p - q) - n_j (1 - p - q) / (n - 1)``: the
        self-contribution gap of Eq. (2) minus the second-neighborhood
        prior shift (a 1-agent sees one fewer 1-agent among the others).
        The paper's analysis centers each agent by its own
        ``E[Xi^pq_j | G]`` (Eq. 3), which absorbs the second term.
        """
        return self.mean_one - self.mean_zero


def _channel_rates(channel: Channel) -> "tuple[float, float, float]":
    """Extract ``(p, q, lam)`` from any supported channel."""
    if isinstance(channel, NoisyChannel):
        return channel.p, channel.q, 0.0
    if isinstance(channel, GaussianQueryNoise):
        return 0.0, 0.0, channel.lam
    if isinstance(channel, NoiselessChannel):
        return 0.0, 0.0, 0.0
    raise TypeError(f"unsupported channel type: {type(channel).__name__}")


def neighborhood_moments(
    n: int,
    k: int,
    gamma: int,
    delta: float,
    delta_star: float,
    channel: Channel,
) -> NeighborhoodMoments:
    """Closed-form moments of ``Psi_j`` given degrees and the channel.

    Parameters
    ----------
    n, k, gamma:
        Model parameters.
    delta, delta_star:
        The agent's multi-degree ``Delta_j`` and distinct degree
        ``Delta*_j`` (typically their expectations for predictions, or
        the realized values for conditional tests).
    channel:
        Any of the library's channels.

    Notes
    -----
    The variance of ``Xi^{pq}`` uses that the sum of two multinomial
    cells is binomial: ``Var = n_j s (1 - s)``. The self-contribution
    adds ``Delta_j (1-p) p`` (bit 1) or ``Delta_j q (1-q)`` (bit 0). The
    Gaussian model adds ``lam^2 Delta*_j`` to both variances.
    """
    p, q, lam = _channel_rates(channel)
    nj = second_neighborhood_size(delta_star, delta, gamma)
    if nj < 0:
        raise ValueError(
            f"inconsistent degrees: delta_star*gamma - delta = {nj} < 0"
        )

    def xi_moments(self_is_one: bool) -> "tuple[float, float]":
        pi = (k - (1 if self_is_one else 0)) / (n - 1) if n > 1 else 0.0
        s = q + pi * (1.0 - p - q)
        return nj * s, nj * s * (1.0 - s)

    xi_mean_1, xi_var_1 = xi_moments(True)
    xi_mean_0, xi_var_0 = xi_moments(False)

    gauss_var = lam * lam * delta_star
    mean_one = xi_mean_1 + delta * (1.0 - p)
    mean_zero = xi_mean_0 + delta * q
    var_one = xi_var_1 + delta * (1.0 - p) * p + gauss_var
    var_zero = xi_var_0 + delta * q * (1.0 - q) + gauss_var
    return NeighborhoodMoments(
        mean_one=mean_one, mean_zero=mean_zero, var_one=var_one, var_zero=var_zero
    )


def gaussian_noise_std(lam: float, delta_star: float) -> float:
    """Std of the aggregated Gaussian noise ``X_j ~ N(0, lam^2 Delta*_j)``."""
    return lam * math.sqrt(max(delta_star, 0.0))


__all__ = [
    "second_neighborhood_size",
    "NeighborhoodMoments",
    "neighborhood_moments",
    "gaussian_noise_std",
]
