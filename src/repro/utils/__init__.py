"""Shared utilities: RNG management, validation helpers, ASCII tables."""

from repro.utils.rng import normalize_rng, spawn_rngs, spawn_seeds
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_positive_int,
    check_probability,
)

__all__ = [
    "normalize_rng",
    "spawn_rngs",
    "spawn_seeds",
    "check_fraction",
    "check_positive",
    "check_positive_int",
    "check_probability",
]
