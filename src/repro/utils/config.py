"""Validated ``REPRO_*`` environment-variable parsing, in one place.

Every runtime knob the library reads from the environment —
``REPRO_WORKERS``, ``REPRO_HEARTBEAT_INTERVAL`` /
``REPRO_HEARTBEAT_TIMEOUT``, ``REPRO_CONNECT_RETRY``,
``REPRO_MAX_FRAME_BYTES``, ``REPRO_CSR_THREADS``, ``REPRO_SPECULATE``,
``REPRO_SHM`` and the ``REPRO_SERVICE_*`` family — is parsed through
the helpers below, so a bad value always fails the same way: a
``ConfigError`` (a ``ValueError``) whose message leads with the
variable name, states the expected shape, and quotes the offending
raw string::

    REPRO_WORKERS must be an integer >= 0, got 'many'

The helpers return ``None`` for unset/blank variables (the caller owns
the default), never silently coerce, and never read anything but the
named variable — so call sites stay declarative one-liners and the
error format can never drift between subsystems.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence

#: spellings accepted by :func:`env_flag` (case-insensitive)
_TRUE_WORDS = ("1", "true", "yes", "on")
_FALSE_WORDS = ("0", "false", "no", "off")


class ConfigError(ValueError):
    """An environment variable held an invalid value.

    A ``ValueError`` subclass so existing ``except ValueError`` /
    ``pytest.raises(ValueError)`` call sites keep working.
    """


def env_raw(name: str) -> Optional[str]:
    """The stripped value of ``name``, or ``None`` when unset/blank."""
    raw = os.environ.get(name, "").strip()
    return raw or None


def _fail(name: str, expected: str, raw: str) -> ConfigError:
    return ConfigError(f"{name} must be {expected}, got {raw!r}")


def env_int(name: str, *, minimum: Optional[int] = None) -> Optional[int]:
    """Parse an integer variable, or ``None`` when unset/blank.

    ``minimum`` folds the range rule into the one error message, e.g.
    ``REPRO_CSR_THREADS must be an integer >= 1, got '0'``.
    """
    raw = env_raw(name)
    if raw is None:
        return None
    expected = "an integer" if minimum is None else f"an integer >= {minimum}"
    try:
        value = int(raw)
    except ValueError:
        raise _fail(name, expected, raw) from None
    if minimum is not None and value < minimum:
        raise _fail(name, expected, raw)
    return value


def env_float(
    name: str,
    *,
    minimum: Optional[float] = None,
    positive: bool = False,
) -> Optional[float]:
    """Parse a float variable, or ``None`` when unset/blank.

    ``minimum`` enforces an inclusive lower bound, ``positive`` a
    strict ``> 0`` one; NaN is always rejected.
    """
    raw = env_raw(name)
    if raw is None:
        return None
    if positive:
        expected = "a number > 0"
    elif minimum is not None:
        expected = f"a number >= {minimum:g}"
    else:
        expected = "a number"
    try:
        value = float(raw)
    except ValueError:
        raise _fail(name, expected, raw) from None
    if value != value:  # NaN
        raise _fail(name, expected, raw)
    if positive and not value > 0.0:
        raise _fail(name, expected, raw)
    if minimum is not None and value < minimum:
        raise _fail(name, expected, raw)
    return value


def env_flag(name: str) -> bool:
    """Parse a boolean switch; unset/blank means ``False``.

    Accepts the usual spellings case-insensitively (``1/true/yes/on``
    and ``0/false/no/off``); anything else is an error rather than a
    silent "off" — a typo in a switch must never quietly disable it.
    """
    raw = env_raw(name)
    if raw is None:
        return False
    word = raw.lower()
    if word in _TRUE_WORDS:
        return True
    if word in _FALSE_WORDS:
        return False
    raise _fail(name, f"one of {_TRUE_WORDS + _FALSE_WORDS}", raw)


def env_str(
    name: str, *, choices: Optional[Sequence[str]] = None
) -> Optional[str]:
    """Parse a string variable, optionally validated against ``choices``."""
    raw = env_raw(name)
    if raw is None:
        return None
    if choices is not None and raw not in choices:
        raise _fail(name, f"one of {tuple(choices)}", raw)
    return raw


__all__ = [
    "ConfigError",
    "env_raw",
    "env_int",
    "env_float",
    "env_flag",
    "env_str",
]
