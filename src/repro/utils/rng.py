"""Deterministic random-number-generator plumbing.

Every stochastic entry point in this library accepts either an integer
seed, a :class:`numpy.random.Generator`, or ``None`` (fresh OS entropy).
Experiments that run many independent trials spawn one child generator
per trial through :func:`spawn_rngs` so that

* results are exactly reproducible from a single root seed, and
* trials are statistically independent regardless of execution order.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def normalize_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` (fresh entropy), an integer seed, a ``SeedSequence``, or
        an existing ``Generator`` (returned unchanged).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    if rng is None or isinstance(rng, (int, np.integer)):
        return np.random.default_rng(rng)
    raise TypeError(f"cannot interpret {rng!r} as a random generator")


def spawn_seeds(root: RngLike, count: int) -> List[np.random.SeedSequence]:
    """Derive ``count`` independent seed sequences from a root seed.

    The derivation uses ``numpy.random.SeedSequence.spawn`` which
    guarantees statistically independent streams.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(root, np.random.SeedSequence):
        seq = root
    elif isinstance(root, np.random.Generator):
        # Use the generator to draw a fresh entropy value; keeps the
        # caller's generator as the single source of determinism.
        seq = np.random.SeedSequence(int(root.integers(0, 2**63 - 1)))
    else:
        seq = np.random.SeedSequence(root)
    return seq.spawn(count)


def spawn_rngs(root: RngLike, count: int) -> List[np.random.Generator]:
    """Spawn ``count`` independent generators from a root seed."""
    return [np.random.default_rng(s) for s in spawn_seeds(root, count)]


def interleave_seeds(
    root: RngLike, labels: Sequence[str]
) -> "dict[str, np.random.SeedSequence]":
    """Derive one named seed sequence per label.

    Useful when an experiment has several independent sources of
    randomness (e.g. ground truth vs. pooling design vs. channel noise)
    that must stay decoupled when one of them is re-drawn.
    """
    seqs = spawn_seeds(root, len(labels))
    return dict(zip(labels, seqs))


def generator_state_fingerprint(rng: np.random.Generator) -> int:
    """Cheap fingerprint of generator state (for tests and debugging)."""
    state = rng.bit_generator.state
    return hash(str(sorted(state.items()))) & 0x7FFFFFFFFFFFFFFF


__all__ = [
    "RngLike",
    "normalize_rng",
    "spawn_seeds",
    "spawn_rngs",
    "interleave_seeds",
    "generator_state_fingerprint",
]
