"""Input validation helpers shared across the library.

All validators raise ``ValueError`` (or ``TypeError`` for wrong types)
with a message that names the offending parameter, following the
"errors should never pass silently" principle.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def check_positive_int(value, name: str, *, minimum: int = 1) -> int:
    """Validate that ``value`` is an integer ``>= minimum`` and return it."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_non_negative_int(value, name: str) -> int:
    """Validate that ``value`` is an integer ``>= 0`` and return it."""
    return check_positive_int(value, name, minimum=0)


def check_probability(value, name: str, *, allow_one: bool = False) -> float:
    """Validate that ``value`` is a probability in ``[0, 1)`` (or ``[0, 1]``)."""
    value = _as_float(value, name)
    upper_ok = value <= 1.0 if allow_one else value < 1.0
    if not (0.0 <= value and upper_ok):
        bound = "[0, 1]" if allow_one else "[0, 1)"
        raise ValueError(f"{name} must lie in {bound}, got {value}")
    return value


def check_fraction(value, name: str) -> float:
    """Validate that ``value`` lies strictly inside ``(0, 1)``."""
    value = _as_float(value, name)
    if not (0.0 < value < 1.0):
        raise ValueError(f"{name} must lie in (0, 1), got {value}")
    return value


def check_positive(value, name: str) -> float:
    """Validate that ``value`` is a strictly positive real number."""
    value = _as_float(value, name)
    if not value > 0.0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def check_non_negative(value, name: str) -> float:
    """Validate that ``value`` is a real number ``>= 0``."""
    value = _as_float(value, name)
    if value < 0.0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_in_range(
    value,
    name: str,
    *,
    low: Optional[float] = None,
    high: Optional[float] = None,
) -> float:
    """Validate that ``value`` lies in the closed interval ``[low, high]``."""
    value = _as_float(value, name)
    if low is not None and value < low:
        raise ValueError(f"{name} must be >= {low}, got {value}")
    if high is not None and value > high:
        raise ValueError(f"{name} must be <= {high}, got {value}")
    return value


def env_int(name: str) -> Optional[int]:
    """Parse an integer environment variable, or ``None`` when unset/blank.

    Kept as a re-export seam: the implementation (and the single error
    format every ``REPRO_*`` variable shares) lives in
    :mod:`repro.utils.config`; range rules belong to the caller (e.g.
    ``REPRO_WORKERS`` accepts 0 = one per CPU) or to the ``minimum=``
    option of :func:`repro.utils.config.env_int`.
    """
    from repro.utils.config import env_int as config_env_int

    return config_env_int(name)


def _as_float(value, name: str) -> float:
    if isinstance(value, bool) or not isinstance(
        value, (int, float, np.integer, np.floating)
    ):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if np.isnan(value):
        raise ValueError(f"{name} must not be NaN")
    return value


__all__ = [
    "check_positive_int",
    "check_non_negative_int",
    "check_probability",
    "check_fraction",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "env_int",
]
