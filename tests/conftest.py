"""Shared pytest fixtures for the repro test suite."""

import numpy as np
import pytest

import repro


@pytest.fixture
def rng():
    """A deterministic generator; tests needing more streams spawn from it."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_instance(rng):
    """A small solvable noiseless instance: (truth, graph, measurements)."""
    n, k, m = 200, 5, 120
    truth = repro.sample_ground_truth(n, k, rng)
    graph = repro.sample_pooling_graph(n, m, rng=rng)
    meas = repro.measure(graph, truth, repro.NoiselessChannel(), rng)
    return truth, graph, meas


@pytest.fixture
def z_instance(rng):
    """A moderately noisy Z-channel instance."""
    n, k, m = 400, 7, 400
    truth = repro.sample_ground_truth(n, k, rng)
    graph = repro.sample_pooling_graph(n, m, rng=rng)
    channel = repro.ZChannel(p=0.1)
    meas = repro.measure(graph, truth, channel, rng)
    return truth, graph, meas
