"""Tests for the AMP baseline: denoisers, iteration, state evolution."""

import numpy as np
import pytest

import repro
from repro.amp import (
    AMPConfig,
    BayesBernoulliDenoiser,
    SoftThresholdDenoiser,
    denoiser_mse,
    predicted_success,
    run_amp,
    standardize_system,
    state_evolution,
)


class TestBayesBernoulliDenoiser:
    def test_output_is_probability(self):
        d = BayesBernoulliDenoiser(0.01)
        x = np.linspace(-5, 5, 101)
        out = d(x, 0.5)
        assert np.all(out >= 0) and np.all(out <= 1)

    def test_monotone_in_x(self):
        d = BayesBernoulliDenoiser(0.1)
        x = np.linspace(-3, 3, 51)
        out = d(x, 0.7)
        assert np.all(np.diff(out) >= 0)

    def test_small_tau_hard_decision(self):
        d = BayesBernoulliDenoiser(0.5)
        out = d(np.array([0.0, 1.0]), 1e-6)
        assert out[0] < 1e-6
        assert out[1] > 1 - 1e-6

    def test_large_tau_returns_prior(self):
        d = BayesBernoulliDenoiser(0.3)
        out = d(np.array([0.0, 1.0, -2.0]), 1e6)
        assert np.allclose(out, 0.3, atol=1e-3)

    def test_derivative_matches_finite_difference(self):
        d = BayesBernoulliDenoiser(0.05)
        x = np.linspace(-1, 2, 31)
        tau, h = 0.4, 1e-6
        numeric = (d(x + h, tau) - d(x - h, tau)) / (2 * h)
        assert np.allclose(d.derivative(x, tau), numeric, rtol=1e-4, atol=1e-6)

    def test_no_overflow_extreme_inputs(self):
        d = BayesBernoulliDenoiser(0.01)
        out = d(np.array([-1e8, 1e8]), 0.1)
        assert np.all(np.isfinite(out))

    def test_invalid_pi(self):
        for bad in (0.0, 1.0, -0.5):
            with pytest.raises(ValueError):
                BayesBernoulliDenoiser(bad)

    def test_posterior_variance(self):
        d = BayesBernoulliDenoiser(0.2)
        x = np.array([0.5])
        eta = d(x, 0.5)
        assert d.posterior_variance(x, 0.5) == pytest.approx(eta * (1 - eta))


class TestSoftThresholdDenoiser:
    def test_kills_small_values(self):
        d = SoftThresholdDenoiser(alpha=2.0)
        out = d(np.array([0.1, -0.1]), 1.0)
        assert np.allclose(out, 0.0)

    def test_shrinks_large_values(self):
        d = SoftThresholdDenoiser(alpha=1.0)
        out = d(np.array([5.0, -5.0]), 1.0)
        assert np.allclose(out, [4.0, -4.0])

    def test_derivative_is_indicator(self):
        d = SoftThresholdDenoiser(alpha=1.0)
        out = d.derivative(np.array([0.5, 2.0, -3.0]), 1.0)
        assert np.array_equal(out, [0.0, 1.0, 1.0])

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            SoftThresholdDenoiser(alpha=0.0)


class TestStandardizeSystem:
    def test_columns_approximately_unit_norm(self, rng):
        graph = repro.sample_pooling_graph(500, 200, rng=rng)
        truth = repro.sample_ground_truth(500, 10, rng)
        meas = repro.measure(graph, truth, rng=rng)
        a_s, _ = standardize_system(
            graph.adjacency_dense(), meas.results, truth.k, graph.gamma, meas.channel
        )
        norms = np.linalg.norm(a_s, axis=0)
        assert abs(norms.mean() - 1.0) < 0.05

    def test_standardized_model_consistency_noiseless(self, rng):
        # y should equal A_s sigma exactly in the noiseless case.
        graph = repro.sample_pooling_graph(300, 100, rng=rng)
        truth = repro.sample_ground_truth(300, 8, rng)
        meas = repro.measure(graph, truth, rng=rng)
        a_s, y = standardize_system(
            graph.adjacency_dense(), meas.results, truth.k, graph.gamma, meas.channel
        )
        assert np.allclose(y, a_s @ truth.sigma)

    def test_channel_correction_unbiased(self):
        # After p/q correction, E[y] should match A_s sigma.
        gen = np.random.default_rng(3)
        graph = repro.sample_pooling_graph(300, 80, rng=gen)
        truth = repro.sample_ground_truth(300, 30, gen)
        channel = repro.NoisyChannel(0.2, 0.1)
        ys = []
        for _ in range(800):
            meas = repro.measure(graph, truth, channel, gen)
            _, y = standardize_system(
                graph.adjacency_dense(), meas.results, truth.k, graph.gamma, channel
            )
            ys.append(y)
        a_s, _ = standardize_system(
            graph.adjacency_dense(),
            np.zeros(graph.m),
            truth.k,
            graph.gamma,
            repro.NoiselessChannel(),
        )
        target = a_s @ truth.sigma
        # Per-trial std of y is ~0.9 here; 800 trials -> mean std ~0.03,
        # so 0.15 is a generous 5-sigma corridor per coordinate.
        assert np.allclose(np.mean(ys, axis=0), target, atol=0.15)

    def test_shape_mismatch_rejected(self, rng):
        graph = repro.sample_pooling_graph(50, 10, rng=rng)
        with pytest.raises(ValueError):
            standardize_system(
                graph.adjacency_dense(), np.zeros(11), 5, graph.gamma,
                repro.NoiselessChannel(),
            )

    def test_unsupported_channel_rejected(self, rng):
        graph = repro.sample_pooling_graph(50, 10, rng=rng)

        class Weird:
            pass

        with pytest.raises(TypeError):
            standardize_system(
                graph.adjacency_dense(), np.zeros(10), 5, graph.gamma, Weird()
            )


class TestAMPConfig:
    def test_defaults_valid(self):
        AMPConfig()

    def test_invalid_damping(self):
        with pytest.raises(ValueError):
            AMPConfig(damping=1.0)

    def test_invalid_tol(self):
        with pytest.raises(ValueError):
            AMPConfig(tol=-1.0)

    def test_invalid_max_iter(self):
        with pytest.raises(ValueError):
            AMPConfig(max_iter=0)


class TestRunAMP:
    def test_recovers_noiseless(self, rng):
        truth = repro.sample_ground_truth(400, 5, rng)
        graph = repro.sample_pooling_graph(400, 120, rng=rng)
        meas = repro.measure(graph, truth, rng=rng)
        result = run_amp(meas)
        assert result.exact
        assert result.meta["algorithm"] == "amp"

    def test_recovers_z_channel(self, rng):
        truth = repro.sample_ground_truth(500, 5, rng)
        graph = repro.sample_pooling_graph(500, 200, rng=rng)
        meas = repro.measure(graph, truth, repro.ZChannel(0.1), rng)
        assert run_amp(meas).exact

    def test_estimate_weight_is_k(self, rng):
        truth = repro.sample_ground_truth(200, 7, rng)
        graph = repro.sample_pooling_graph(200, 30, rng=rng)
        meas = repro.measure(graph, truth, repro.ZChannel(0.3), rng)
        assert run_amp(meas).estimate.sum() == 7

    def test_zero_queries_rejected(self, rng):
        truth = repro.sample_ground_truth(50, 3, rng)
        graph = repro.sample_pooling_graph(50, 0, rng=rng)
        meas = repro.measure(graph, truth, rng=rng)
        with pytest.raises(ValueError):
            run_amp(meas)

    def test_history_tracked(self, rng):
        truth = repro.sample_ground_truth(200, 5, rng)
        graph = repro.sample_pooling_graph(200, 80, rng=rng)
        meas = repro.measure(graph, truth, rng=rng)
        result = run_amp(meas)
        assert len(result.meta["history"]) == result.meta["iterations"]
        assert all("tau" in h for h in result.meta["history"])

    def test_history_disabled(self, rng):
        truth = repro.sample_ground_truth(200, 5, rng)
        graph = repro.sample_pooling_graph(200, 80, rng=rng)
        meas = repro.measure(graph, truth, rng=rng)
        result = run_amp(meas, config=AMPConfig(track_history=False))
        assert result.meta["history"] == []

    def test_converges_on_easy_instance(self, rng):
        truth = repro.sample_ground_truth(300, 4, rng)
        graph = repro.sample_pooling_graph(300, 150, rng=rng)
        meas = repro.measure(graph, truth, rng=rng)
        result = run_amp(meas)
        assert result.meta["converged"]
        assert result.meta["iterations"] < 50

    def test_amp_beats_greedy_at_low_m(self):
        """The paper's Fig. 6 headline: AMP succeeds with fewer queries."""
        amp_wins, greedy_wins = 0, 0
        n, k, m = 1000, 6, 120
        for seed in range(10):
            gen = np.random.default_rng(seed)
            truth = repro.sample_ground_truth(n, k, gen)
            graph = repro.sample_pooling_graph(n, m, rng=gen)
            meas = repro.measure(graph, truth, repro.ZChannel(0.1), gen)
            amp_wins += run_amp(meas).exact
            greedy_wins += repro.greedy_reconstruct(meas).exact
        assert amp_wins > greedy_wins
        assert amp_wins >= 8

    def test_soft_threshold_denoiser_also_works_noiseless(self, rng):
        truth = repro.sample_ground_truth(300, 4, rng)
        graph = repro.sample_pooling_graph(300, 150, rng=rng)
        meas = repro.measure(graph, truth, rng=rng)
        result = run_amp(meas, denoiser=SoftThresholdDenoiser(alpha=1.5))
        assert result.meta["denoiser"].startswith("soft-threshold")
        # Soft threshold is weaker but should still rank most ones high.
        assert result.overlap >= 0.5

    def test_damping_still_recovers(self, rng):
        truth = repro.sample_ground_truth(300, 4, rng)
        graph = repro.sample_pooling_graph(300, 150, rng=rng)
        meas = repro.measure(graph, truth, rng=rng)
        result = run_amp(meas, config=AMPConfig(damping=0.3))
        assert result.exact

    def test_determinism(self):
        gen1 = np.random.default_rng(77)
        truth1 = repro.sample_ground_truth(200, 5, gen1)
        graph1 = repro.sample_pooling_graph(200, 100, rng=gen1)
        meas1 = repro.measure(graph1, truth1, repro.ZChannel(0.1), gen1)
        r1 = run_amp(meas1)
        gen2 = np.random.default_rng(77)
        truth2 = repro.sample_ground_truth(200, 5, gen2)
        graph2 = repro.sample_pooling_graph(200, 100, rng=gen2)
        meas2 = repro.measure(graph2, truth2, repro.ZChannel(0.1), gen2)
        r2 = run_amp(meas2)
        assert np.allclose(r1.scores, r2.scores)

    def test_sparse_default_never_materializes_dense(self, monkeypatch):
        # The hot path must stay sparse at every size: poison the dense
        # conversion and check the default still runs (and is flagged
        # sparse in the metadata).
        gen = np.random.default_rng(91)
        truth = repro.sample_ground_truth(300, 5, gen)
        graph = repro.sample_pooling_graph(300, 120, rng=gen)
        meas = repro.measure(graph, truth, repro.ZChannel(0.1), gen)
        monkeypatch.setattr(
            repro.PoolingGraph,
            "adjacency_dense",
            lambda self, dtype=np.float64: (_ for _ in ()).throw(
                AssertionError("dense adjacency materialized on the AMP hot path")
            ),
        )
        result = run_amp(meas)
        assert result.meta["sparse"] is True
        assert result.scores.shape == (300,)
        # the legacy "auto" sentinel must also stay off the dense path
        assert run_amp(meas, sparse=None).meta["sparse"] is True

    def test_dense_override_matches_sparse(self):
        gen = np.random.default_rng(93)
        truth = repro.sample_ground_truth(150, 4, gen)
        graph = repro.sample_pooling_graph(150, 80, rng=gen)
        meas = repro.measure(graph, truth, rng=gen)
        sparse = run_amp(meas)
        dense = run_amp(meas, sparse=False)
        assert dense.meta["sparse"] is False
        assert np.allclose(sparse.scores, dense.scores, atol=1e-9)


class TestStateEvolution:
    def test_mse_decreases_noiseless_easy(self):
        d = BayesBernoulliDenoiser(0.01)
        res = state_evolution(d, pi=0.01, delta=0.2)
        assert res.mse[-1] <= res.mse[0]

    def test_fixed_point_near_zero_when_easy(self):
        d = BayesBernoulliDenoiser(0.005)
        res = state_evolution(d, pi=0.005, delta=0.15)
        assert res.fixed_point_mse < 1e-8

    def test_fixed_point_large_when_hard(self):
        # Extreme undersampling: SE must not predict recovery.
        d = BayesBernoulliDenoiser(0.3)
        res = state_evolution(d, pi=0.3, delta=0.001)
        assert res.fixed_point_mse > 1e-3

    def test_noise_floor_respected(self):
        d = BayesBernoulliDenoiser(0.01)
        clean = state_evolution(d, pi=0.01, delta=0.2, sigma_w2=0.0)
        noisy = state_evolution(d, pi=0.01, delta=0.2, sigma_w2=0.5)
        assert noisy.tau2[-1] > clean.tau2[-1]

    def test_denoiser_mse_bounds(self):
        d = BayesBernoulliDenoiser(0.1)
        # MSE can never exceed the prior variance pi(1-pi) for Bayes eta.
        for tau in (0.1, 1.0, 10.0):
            assert 0 <= denoiser_mse(d, 0.1, tau) <= 0.1 * 0.9 + 1e-9

    def test_predicted_success_flags(self):
        d_easy = BayesBernoulliDenoiser(0.005)
        assert predicted_success(d_easy, 0.005, 0.15)
        d_hard = BayesBernoulliDenoiser(0.3)
        assert not predicted_success(d_hard, 0.3, 0.001)

    def test_se_matches_simulated_amp_first_iterations(self):
        """SE tau trajectory should track simulated AMP (coarsely)."""
        gen = np.random.default_rng(10)
        n, k, m = 2000, 20, 600
        truth = repro.sample_ground_truth(n, k, gen)
        graph = repro.sample_pooling_graph(n, m, rng=gen)
        meas = repro.measure(graph, truth, rng=gen)
        result = run_amp(meas)
        empirical_tau0 = result.meta["history"][0]["tau"]
        se = state_evolution(BayesBernoulliDenoiser(k / n), k / n, delta=m / n)
        assert empirical_tau0**2 == pytest.approx(se.tau2[0], rel=0.25)

    def test_invalid_inputs(self):
        d = BayesBernoulliDenoiser(0.1)
        with pytest.raises(ValueError):
            state_evolution(d, pi=0.1, delta=0.0)
        with pytest.raises(ValueError):
            state_evolution(d, pi=1.5, delta=0.1)
        with pytest.raises(ValueError):
            denoiser_mse(d, 0.1, 0.0)
