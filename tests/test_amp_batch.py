"""Seeded equivalence of the batched (block-diagonal) AMP runner.

The contract under test (``repro/amp/batch_amp.py``): stacking T
trials into one block-diagonal system produces, for every trial,
results bit-identical to a standalone :func:`repro.amp.run_amp` call
on the same spawned child seed — same scores, estimate, exact flag,
overlap, iteration count and history — for every supported channel,
for mixed per-trial convergence (freezing + stack compaction), for any
stack size, and through the experiment harness with any worker count.
"""

import numpy as np
import pytest

import repro
from repro.amp import AMPConfig, SoftThresholdDenoiser, run_amp, run_amp_batch
from repro.amp.batch_amp import _stack_size, run_amp_trials
from repro.experiments import parallel
from repro.experiments.runner import success_rate_curve
from repro.utils.rng import spawn_rngs, spawn_seeds

CHANNELS = [
    repro.NoiselessChannel(),
    repro.ZChannel(0.15),
    repro.NoisyChannel(0.1, 0.05),
    repro.GaussianQueryNoise(1.0),
]


def _per_trial_results(n, k, channel, m, seed, trials, config, denoiser=None):
    """The legacy harness loop: one standalone run_amp per child seed."""
    out = []
    for gen in spawn_rngs(seed, trials):
        truth = repro.sample_ground_truth(n, k, gen)
        graph = repro.sample_pooling_graph(n, m, None, gen)
        meas = repro.measure(graph, truth, channel, gen)
        out.append(run_amp(meas, config=config, denoiser=denoiser))
    return out


class TestRunAmpTrialsEquivalence:
    @pytest.mark.parametrize("channel", CHANNELS, ids=lambda c: c.describe())
    def test_bit_identical_to_per_trial_run_amp(self, channel):
        n, k, m, trials, seed = 400, 5, 130, 7, 11
        config = AMPConfig(track_history=True)
        singles = _per_trial_results(n, k, channel, m, seed, trials, config)
        batched = run_amp_trials(
            n, k, channel, m, spawn_seeds(seed, trials), config=config
        )
        assert len(batched) == trials
        for single, stacked in zip(singles, batched):
            assert np.array_equal(single.scores, stacked.scores)
            assert np.array_equal(single.estimate, stacked.estimate)
            assert single.exact == stacked.exact
            assert single.overlap == stacked.overlap
            assert single.separated == stacked.separated
            assert single.hamming_errors == stacked.hamming_errors
            assert single.meta["iterations"] == stacked.meta["iterations"]
            assert single.meta["converged"] == stacked.meta["converged"]
            assert single.meta["history"] == stacked.meta["history"]

    def test_mixed_iteration_counts_freeze_independently(self):
        # The noisy channel spreads per-trial convergence over many
        # iterations, exercising the freeze mask and (with >= half the
        # trials converged early) the stack compaction rebuild.
        n, k, m, trials, seed = 500, 6, 150, 12, 3
        channel = repro.NoisyChannel(0.1, 0.05)
        config = AMPConfig(track_history=False)
        singles = _per_trial_results(n, k, channel, m, seed, trials, config)
        batched = run_amp_trials(
            n, k, channel, m, spawn_seeds(seed, trials), config=config
        )
        iters = [r.meta["iterations"] for r in singles]
        assert len(set(iters)) > 1  # the scenario really is mixed
        assert iters == [r.meta["iterations"] for r in batched]
        for single, stacked in zip(singles, batched):
            assert np.array_equal(single.scores, stacked.scores)

    def test_stack_boundaries_do_not_matter(self):
        n, k, m, trials, seed = 300, 4, 100, 8, 21
        channel = repro.ZChannel(0.1)
        wide = run_amp_trials(n, k, channel, m, spawn_seeds(seed, trials))
        # Tiny element budget -> every trial lands in its own stack.
        narrow = run_amp_trials(
            n, k, channel, m, spawn_seeds(seed, trials), stack_elements=1
        )
        assert _stack_size(n, m, repro.default_gamma(n), 1) == 1
        for a, b in zip(wide, narrow):
            assert np.array_equal(a.scores, b.scores)
            assert a.meta["iterations"] == b.meta["iterations"]

    def test_large_nnz_cutoff_dispatch_is_invisible(self, monkeypatch):
        # Above STACK_NNZ_CUTOFF the trials run through standalone
        # run_amp instead of the stack; outputs must not change at all.
        from repro.amp import batch_amp

        n, k, m, trials, seed = 300, 4, 100, 6, 13
        channel = repro.ZChannel(0.1)
        stacked = run_amp_trials(n, k, channel, m, spawn_seeds(seed, trials))
        monkeypatch.setattr(batch_amp, "STACK_NNZ_CUTOFF", 1)
        looped = run_amp_trials(n, k, channel, m, spawn_seeds(seed, trials))
        for a, b in zip(stacked, looped):
            assert np.array_equal(a.scores, b.scores)
            assert np.array_equal(a.estimate, b.estimate)
            assert a.meta["iterations"] == b.meta["iterations"]
            assert b.meta["history"] == []  # history default stays off

    def test_custom_denoiser_and_damping(self):
        n, k, m, trials, seed = 300, 4, 150, 5, 9
        channel = repro.NoiselessChannel()
        config = AMPConfig(damping=0.3, track_history=False)
        denoiser = SoftThresholdDenoiser(alpha=1.5)
        singles = _per_trial_results(
            n, k, channel, m, seed, trials, config, denoiser=denoiser
        )
        batched = run_amp_trials(
            n, k, channel, m, spawn_seeds(seed, trials),
            config=config, denoiser=denoiser,
        )
        for single, stacked in zip(singles, batched):
            assert np.array_equal(single.scores, stacked.scores)
            assert stacked.meta["denoiser"].startswith("soft-threshold")

    def test_history_off_by_default_in_batch_paths(self):
        results = run_amp_trials(
            200, 3, repro.NoiselessChannel(), 80, spawn_seeds(0, 3)
        )
        assert all(r.meta["history"] == [] for r in results)
        # ... while a direct run_amp call keeps recording history.
        gen = np.random.default_rng(0)
        truth = repro.sample_ground_truth(200, 3, gen)
        graph = repro.sample_pooling_graph(200, 80, rng=gen)
        meas = repro.measure(graph, truth, rng=gen)
        direct = run_amp(meas)
        assert len(direct.meta["history"]) == direct.meta["iterations"]

    def test_empty_seed_list(self):
        assert run_amp_trials(100, 3, repro.NoiselessChannel(), 50, []) == []


class TestRunAmpBatchValidation:
    def _measurements(self, seed, n=120, k=3, m=40, channel=None):
        gen = np.random.default_rng(seed)
        truth = repro.sample_ground_truth(n, k, gen)
        graph = repro.sample_pooling_graph(n, m, rng=gen)
        return repro.measure(graph, truth, channel or repro.NoiselessChannel(), gen)

    def test_batch_of_measurements_matches_run_amp(self):
        config = AMPConfig(track_history=True)
        batch = [self._measurements(s) for s in range(4)]
        stacked = run_amp_batch(batch, config=config)
        for meas, result in zip(batch, stacked):
            single = run_amp(meas, config=config)
            assert np.array_equal(single.scores, result.scores)
            assert single.meta["iterations"] == result.meta["iterations"]
            assert single.meta["history"] == result.meta["history"]

    def test_empty_batch(self):
        assert run_amp_batch([]) == []

    def test_mismatched_cells_rejected(self):
        a = self._measurements(0, m=40)
        b = self._measurements(1, m=41)
        with pytest.raises(ValueError, match=r"\(n, m, k, gamma\)"):
            run_amp_batch([a, b])

    def test_mismatched_channels_rejected(self):
        a = self._measurements(0)
        b = self._measurements(1, channel=repro.ZChannel(0.1))
        with pytest.raises(ValueError, match="channel"):
            run_amp_batch([a, b])

    def test_zero_queries_rejected(self):
        gen = np.random.default_rng(0)
        truth = repro.sample_ground_truth(50, 3, gen)
        graph = repro.sample_pooling_graph(50, 0, rng=gen)
        meas = repro.measure(graph, truth, rng=gen)
        with pytest.raises(ValueError, match="at least one query"):
            run_amp_batch([meas])

    def test_sparse_contract_never_materializes_dense(self, monkeypatch):
        batch = [self._measurements(s, n=200, m=60) for s in range(3)]
        monkeypatch.setattr(
            repro.PoolingGraph,
            "adjacency_dense",
            lambda self, dtype=np.float64: (_ for _ in ()).throw(
                AssertionError("dense adjacency materialized in batched AMP")
            ),
        )
        results = run_amp_batch(batch)
        assert all(r.meta["sparse"] is True for r in results)


class TestHarnessDispatch:
    """success_rate_curve(algorithm="amp"): batch engine + sharding."""

    @pytest.fixture(scope="class", autouse=True)
    def _shutdown_pool_after(self):
        yield
        parallel.shutdown_pool()

    def test_batch_engine_matches_legacy_engine(self):
        kwargs = dict(algorithm="amp", trials=6, seed=5)
        legacy = success_rate_curve(
            200, 4, repro.ZChannel(0.1), [60, 120], engine="legacy", **kwargs
        )
        batch = success_rate_curve(
            200, 4, repro.ZChannel(0.1), [60, 120], engine="batch", **kwargs
        )
        assert batch.success_rates == legacy.success_rates
        assert batch.overlaps == legacy.overlaps

    def test_batch_engine_sharded_matches_serial(self):
        kwargs = dict(algorithm="amp", trials=6, seed=7, engine="batch")
        serial = success_rate_curve(
            150, 3, repro.NoiselessChannel(), [50, 90], **kwargs
        )
        sharded = success_rate_curve(
            150, 3, repro.NoiselessChannel(), [50, 90], workers=2, **kwargs
        )
        assert sharded.success_rates == serial.success_rates
        assert sharded.overlaps == serial.overlaps

    def test_unsupported_kwargs_fall_back_to_legacy_loop(self):
        # A dense-path override has no stacked implementation; the
        # harness must quietly run the (seed-compatible) per-trial loop.
        kwargs = dict(
            algorithm="amp",
            trials=4,
            seed=2,
            algorithm_kwargs={"sparse": False},
        )
        legacy = success_rate_curve(
            150, 3, repro.ZChannel(0.1), [70], engine="legacy", **kwargs
        )
        batch = success_rate_curve(
            150, 3, repro.ZChannel(0.1), [70], engine="batch", **kwargs
        )
        assert batch.success_rates == legacy.success_rates
        assert batch.overlaps == legacy.overlaps
