"""Grid-exactness and bit-identity of the AMP required-queries scan.

The contract under test (``repro/amp/batch_amp.py``):

* ``required_queries_amp`` returns, per trial, exactly the m a
  brute-force ascending per-grid-point ``run_amp`` scan over the same
  trial's prefix data returns (``required_queries_amp_linear``) — for
  every channel, ``check_every`` stride and stack budget;
* each trial's query stream is sampled **once** and probes replay
  prefixes of it, so the trial is a pure function of its child seed —
  which makes sharded (``workers=N``) and chunk-stacked scans
  bit-identical to serial ones;
* heterogeneous-m stacked probes run the ragged ``iterate_amp`` path
  with iterates bit-identical to standalone ``run_amp`` on the same
  prefix system.
"""

import numpy as np
import pytest

import repro
from repro.amp import AMPConfig, run_amp
from repro.amp.batch_amp import (
    _decode_prefix_stack,
    _RequiredMSearch,
    required_queries_amp,
    required_queries_amp_linear,
)
from repro.core.batch import MeasurementStream
from repro.experiments import parallel
from repro.experiments.runner import (
    REQUIRED_QUERIES_ALGORITHMS,
    required_queries_trials,
)
from repro.utils.rng import spawn_seeds

CHANNELS = [
    repro.NoiselessChannel(),
    repro.ZChannel(0.15),
    repro.GaussianQueryNoise(1.0),
]


def _required(results):
    return [r.required_m for r in results]


class TestGridExactness:
    @pytest.mark.parametrize("channel", CHANNELS, ids=lambda c: c.describe())
    @pytest.mark.parametrize("check_every", [1, 4, 7])
    def test_scan_matches_linear_reference(self, channel, check_every):
        kwargs = dict(check_every=check_every, max_m=400)
        scan = required_queries_amp(
            150, 3, channel, spawn_seeds(5, 6), **kwargs
        )
        linear = required_queries_amp_linear(
            150, 3, channel, spawn_seeds(5, 6), **kwargs
        )
        assert _required(scan) == _required(linear)
        for r in scan:
            assert r.succeeded == (r.required_m is not None)
            if r.required_m is not None:
                assert r.required_m % check_every == 0
            assert r.meta["engine"] == "batch"
            assert r.meta["algorithm"] == "amp"

    def test_stack_budget_boundaries_do_not_matter(self):
        channel = repro.ZChannel(0.1)
        wide = required_queries_amp(
            120, 3, channel, spawn_seeds(9, 5), check_every=2, max_m=300
        )
        # A one-element budget forces every probe into its own stack.
        narrow = required_queries_amp(
            120, 3, channel, spawn_seeds(9, 5), check_every=2, max_m=300,
            stack_elements=1,
        )
        assert _required(wide) == _required(narrow)
        assert [r.checks for r in wide] == [r.checks for r in narrow]

    def test_nnz_cutoff_dispatch_is_invisible(self, monkeypatch):
        from repro.amp import batch_amp

        channel = repro.NoiselessChannel()
        stacked = required_queries_amp(
            100, 3, channel, spawn_seeds(3, 4), check_every=2, max_m=200
        )
        # Force every probe onto the standalone run_amp path.
        monkeypatch.setattr(batch_amp, "STACK_NNZ_CUTOFF", 0)
        standalone = required_queries_amp(
            100, 3, channel, spawn_seeds(3, 4), check_every=2, max_m=200
        )
        assert _required(stacked) == _required(standalone)

    def test_trials_are_pure_functions_of_their_seed(self):
        # A trial's stopping m must not depend on which other trials
        # share its probe rounds/stacks.
        channel = repro.ZChannel(0.1)
        seeds = spawn_seeds(17, 6)
        together = required_queries_amp(
            130, 3, channel, seeds, check_every=3, max_m=300
        )
        alone = [
            required_queries_amp(
                130, 3, channel, [seed], check_every=3, max_m=300
            )[0]
            for seed in spawn_seeds(17, 6)
        ]
        assert _required(together) == _required(alone)
        assert [r.checks for r in together] == [r.checks for r in alone]

    def test_exhausted_budget_reports_failure(self):
        # A budget far below the recovery threshold fails every trial
        # after probing the full grid (the brute-force None semantics).
        channel = repro.ZChannel(0.3)
        scan = required_queries_amp(
            200, 4, channel, spawn_seeds(0, 3), check_every=2, max_m=8
        )
        linear = required_queries_amp_linear(
            200, 4, channel, spawn_seeds(0, 3), check_every=2, max_m=8
        )
        assert _required(scan) == _required(linear)
        for r_scan, r_linear in zip(scan, linear):
            if r_scan.required_m is None:
                assert not r_scan.succeeded
                # every grid point was probed before giving up
                assert r_scan.checks == 8 // 2 == r_linear.checks

    def test_check_grid_coarser_than_budget(self):
        # check_every > max_m leaves no checkable grid point.
        results = required_queries_amp(
            100, 3, repro.NoiselessChannel(), spawn_seeds(1, 2),
            check_every=50, max_m=20,
        )
        assert _required(results) == [None, None]
        assert all(r.checks == 0 for r in results)

    def test_empty_seed_list(self):
        assert required_queries_amp(100, 3, repro.NoiselessChannel(), []) == []


class TestRaggedKernelBitIdentity:
    def test_heterogeneous_stack_matches_standalone_run_amp(self):
        # Stack prefixes of different trials at different m into one
        # ragged block-diagonal call and compare scores bit for bit
        # against standalone run_amp on each prefix system.
        from repro.amp.amp import default_denoiser
        from repro.core.measurement import Measurements
        from repro.core.pooling import PoolingGraph

        n, k, gamma = 200, 4, 100
        channel = repro.ZChannel(0.1)
        config = AMPConfig(track_history=False)
        denoiser = default_denoiser(n, k)
        streams = []
        for seed in spawn_seeds(23, 3):
            gen = np.random.default_rng(seed)
            truth = repro.sample_ground_truth(n, k, gen)
            stream = MeasurementStream(
                n, gamma, channel, truth, gen, max_m=120
            )
            stream.grow_to(120)
            streams.append(stream)
        jobs = [(0, 37), (1, 80), (2, 113)]  # heterogeneous per-trial m
        exact, scores = _decode_prefix_stack(
            jobs, streams, n, k, gamma, channel, denoiser, config
        )
        for (i, m), flag, row in zip(jobs, exact, scores):
            indptr, agents, counts, results = streams[i].prefix(m)
            meas = Measurements(
                graph=PoolingGraph._unchecked(n, gamma, indptr, agents, counts),
                truth=streams[i].truth,
                channel=channel,
                results=results,
            )
            single = run_amp(meas, denoiser=denoiser, config=config)
            assert np.array_equal(single.scores, row)
            assert bool(single.exact) == bool(flag)

    def test_ragged_history_matches_standalone(self):
        # track_history on: per-iteration tau/step/residual records of
        # a ragged one-trial stack equal the standalone ones.
        from repro.amp.amp import default_denoiser
        from repro.core.measurement import Measurements
        from repro.core.pooling import PoolingGraph

        n, k, gamma = 150, 3, 75
        channel = repro.NoiselessChannel()
        config = AMPConfig(track_history=True, max_iter=12)
        denoiser = default_denoiser(n, k)
        gen = np.random.default_rng(7)
        truth = repro.sample_ground_truth(n, k, gen)
        stream = MeasurementStream(n, gamma, channel, truth, gen, max_m=60)
        stream.grow_to(60)
        from repro.amp.batch_amp import (
            _PrefixStackOperators,
            _stack_blocks,  # noqa: F401  (re-exported for kernel tests)
        )
        from repro.amp.amp import (
            channel_corrected_results,
            iterate_amp,
            standardization_constants,
        )

        m = 41
        indptr, agents, counts, results = stream.prefix(m)
        c, scale = standardization_constants(n, m, gamma)
        y = (channel_corrected_results(results, gamma, channel) - c * k) / scale
        ops = _PrefixStackOperators(
            [(indptr, agents, counts)], n, np.array([m]), c, np.array([scale])
        )
        scores, iters, conv, hist = iterate_amp(
            ops.operators([0]), y, denoiser, config, n=n,
            row_sizes=np.array([m]), restrict=ops.operators,
        )
        meas = Measurements(
            graph=PoolingGraph._unchecked(n, gamma, indptr, agents, counts),
            truth=truth,
            channel=channel,
            results=results,
        )
        single = run_amp(meas, denoiser=denoiser, config=config)
        assert np.array_equal(single.scores, scores[0])
        assert single.meta["iterations"] == int(iters[0])
        assert single.meta["history"] == hist[0]


class TestSearchStateMachine:
    def _drive(self, step, grid_max, successes):
        """Run the state machine against a fixed success-profile oracle."""
        search = _RequiredMSearch(step, grid_max)
        probed = []
        while not search.done:
            wave = search.next_probes(8)
            assert wave, "active search must request probes"
            for m in wave:
                assert m not in probed, "probes must never repeat"
                probed.append(m)
                search.record(m, m in successes)
            search.advance()
        brute = next(
            (g for g in range(step, grid_max + 1, step) if g in successes),
            None,
        )
        assert search.required_m == brute
        return probed

    def test_monotone_profile(self):
        successes = set(range(48, 1001))
        probed = self._drive(4, 1000, successes)
        # galloping + bisection + verify below the answer only
        assert max(probed) <= 64  # first successful gallop point
        assert len(probed) <= 48 // 4 + 10

    def test_non_monotone_profiles_stay_exact(self):
        # isolated success below a failed gallop point
        self._drive(1, 64, {3})
        # success run starting between gallop points
        self._drive(1, 64, set(range(5, 65)) - {9})
        # failure everywhere
        probed = self._drive(2, 30, set())
        assert sorted(probed) == list(range(2, 31, 2))

    def test_degenerate_grid(self):
        search = _RequiredMSearch(10, 0)
        assert search.done and search.required_m is None

    def test_invalid_verify_mode_rejected(self):
        with pytest.raises(ValueError, match="verify mode"):
            _RequiredMSearch(1, 10, verify="paranoid")

    def _drive_mode(self, step, grid_max, successes, verify):
        search = _RequiredMSearch(step, grid_max, verify)
        while not search.done:
            wave = search.next_probes(8)
            for m in wave:
                search.record(m, m in successes)
            search.advance()
        return search

    def test_window_mode_exact_for_in_bracket_dropouts(self):
        # Monotone profile: all three modes agree with brute force.
        successes = set(range(48, 1001))
        for verify in ("full", "window", "none"):
            assert self._drive_mode(4, 1000, successes, verify).required_m == 48
        # Dropout inside the galloping bracket (32, 64]: bisection can
        # land on it, but the window sweep still finds the first
        # success at 40 — while "none" trusts the bisection boundary.
        successes = set(range(40, 101)) - {48}
        assert self._drive_mode(4, 100, successes, "full").required_m == 40
        assert self._drive_mode(4, 100, successes, "window").required_m == 40

    def test_window_mode_trusts_failed_gallop_points(self):
        # An isolated success below a failed gallop point is invisible
        # to the windowed sweep (that's the documented trade) but not
        # to the full certificate.
        successes = {3} | set(range(40, 65))
        assert self._drive_mode(1, 64, successes, "full").required_m == 3
        windowed = self._drive_mode(1, 64, successes, "window")
        assert windowed.required_m == 40
        assert windowed.checks < 64  # ...and it probes far fewer points

    def test_none_mode_probe_count_is_sublinear(self):
        successes = set(range(640, 4097))
        search = self._drive_mode(1, 4096, successes, "none")
        assert search.required_m == 640
        # gallop (log) + bisection (log) only — no certificate sweep
        assert search.checks <= 2 * 13

    def test_failed_grid_modes(self):
        assert self._drive_mode(2, 30, set(), "full").checks == 15
        trusting = self._drive_mode(2, 30, set(), "window")
        assert trusting.required_m is None
        assert trusting.checks <= 5  # gallop probes only


class TestHarnessDispatch:
    @pytest.fixture(scope="class", autouse=True)
    def _shutdown_pool_after(self):
        yield
        parallel.shutdown_pool()

    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("engine", ["batch", "legacy"])
    def test_workers_and_engines_bit_identical(self, engine, workers):
        sample = required_queries_trials(
            150,
            3,
            repro.ZChannel(0.1),
            trials=5,
            seed=7,
            algorithm="amp",
            check_every=3,
            max_m=300,
            engine=engine,
            workers=workers,
        )
        baseline = required_queries_trials(
            150,
            3,
            repro.ZChannel(0.1),
            trials=5,
            seed=7,
            algorithm="amp",
            check_every=3,
            max_m=300,
        )
        assert sample.values == baseline.values
        assert sample.failures == baseline.failures
        assert sample.algorithm == "amp"

    @pytest.mark.parametrize("verify", ["window", "none"])
    def test_fast_verify_modes_bit_identical_across_workers(self, verify):
        kwargs = dict(
            trials=5, seed=7, algorithm="amp", check_every=3, max_m=300,
            verify=verify,
        )
        serial = required_queries_trials(150, 3, repro.ZChannel(0.1), **kwargs)
        sharded = required_queries_trials(
            150, 3, repro.ZChannel(0.1), workers=2, **kwargs
        )
        assert sharded.values == serial.values
        assert sharded.failures == serial.failures

    def test_greedy_default_unchanged(self):
        sample = required_queries_trials(
            150, 4, repro.ZChannel(0.1), trials=4, seed=9
        )
        assert sample.algorithm == "greedy"

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="required-queries algorithm"):
            required_queries_trials(
                100, 3, repro.NoiselessChannel(), algorithm="distributed"
            )
        assert "amp" in REQUIRED_QUERIES_ALGORITHMS

    def test_amp_values_differ_from_greedy_rule(self):
        # Sanity: the two stopping rules measure different quantities
        # on the same seeds (AMP stops at exact decode, greedy at
        # strict separation) — the sample must record which.
        kwargs = dict(trials=4, seed=3, check_every=1, max_m=400)
        greedy = required_queries_trials(
            150, 3, repro.NoiselessChannel(), algorithm="greedy", **kwargs
        )
        amp = required_queries_trials(
            150, 3, repro.NoiselessChannel(), algorithm="amp", **kwargs
        )
        assert greedy.algorithm != amp.algorithm


class TestMeasurementStream:
    def test_prefix_views_are_stable_under_growth(self):
        gen = np.random.default_rng(0)
        truth = repro.sample_ground_truth(100, 3, gen)
        channel = repro.ZChannel(0.1)
        stream = MeasurementStream(
            100, 50, channel, truth, gen, max_m=200, initial_block=8
        )
        stream.grow_to(40)
        snapshot = [np.array(a) for a in stream.prefix(40)]
        stream.grow_to(200)
        regrown = stream.prefix(40)
        for before, after in zip(snapshot, regrown):
            assert np.array_equal(before, after)
        assert stream.m_done == 200

    def test_prefix_requires_growth_and_retention(self):
        gen = np.random.default_rng(0)
        truth = repro.sample_ground_truth(50, 2, gen)
        stream = MeasurementStream(
            50, 25, repro.NoiselessChannel(), truth, gen, max_m=100
        )
        with pytest.raises(ValueError, match="exceeds the grown stream"):
            stream.prefix(10)
        streaming = MeasurementStream(
            50, 25, repro.NoiselessChannel(), truth, gen, max_m=100,
            retain=False,
        )
        streaming.next_block()
        with pytest.raises(ValueError, match="retained stream"):
            streaming.prefix(1)

    def test_stream_matches_batch_sampler_prefix(self):
        # The stream's CSR prefix equals a one-shot batch-sampled graph
        # on the same seed for the noiseless channel (no interleaved
        # noise draws), for any prefix covered by the first block.
        from repro.core.batch import sample_pooling_graph_batch

        n, gamma, m = 80, 40, 16
        truth = repro.sample_ground_truth(n, 3, np.random.default_rng(1))
        stream = MeasurementStream(
            n, gamma, repro.NoiselessChannel(), truth,
            np.random.default_rng(42), max_m=m, initial_block=m,
        )
        stream.grow_to(m)
        graph = sample_pooling_graph_batch(
            n, m, gamma, np.random.default_rng(42)
        )
        indptr, agents, counts, _ = stream.prefix(m)
        assert np.array_equal(indptr, graph.indptr)
        assert np.array_equal(agents, graph.agents)
        assert np.array_equal(counts, graph.counts)
